//! Batch analytics window: overnight report jobs with a hard morning
//! deadline run on leftover cluster capacity. Workloads are heavy-tailed
//! (bounded Pareto), capacity follows a two-state Markov process (the
//! paper's §IV model), and we sweep the *deadline slack factor* to show how
//! individual admissibility margin changes who wins.
//!
//! Run with: `cargo run --release --example batch_analytics`

#![forbid(unsafe_code)]

use cloudsched::core::{Job, JobId};
use cloudsched::prelude::*;
use cloudsched::workload::ctmc::CtmcCapacity;
use cloudsched::workload::dist::{bounded_pareto, uniform};
use cloudsched_core::rng::{Pcg32, Rng};

fn main() {
    let mut rng = Pcg32::seed_from_u64(88); // lint: allow(L009) — pedagogical demo seed, feeds no recorded artifact
    let night = 480.0; // an 8-hour window, in minutes
    let chain = CtmcCapacity::two_state(1.0, 6.0, 60.0).expect("chain");
    let capacity = chain.sample(&mut rng, night).expect("trace");

    println!("Overnight window: {night} min, capacity class C(1, 6)\n");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "slack", "V-Dover", "Dover(1)", "EDF", "HVDF"
    );
    for slack in [1.0, 1.5, 2.5, 4.0] {
        // lint: allow(L009) — pedagogical demo seed, feeds no recorded artifact
        let jobs = batch_jobs(&mut Pcg32::seed_from_u64(99), night, slack);
        let k = jobs.importance_ratio().unwrap_or(7.0);
        let mut row = format!("{slack:<8}");
        for mut s in [
            Box::new(VDover::new(k, 6.0)) as Box<dyn Scheduler>,
            Box::new(Dover::new(k, 1.0)),
            Box::new(Edf::new()),
            Box::new(Greedy::highest_density()),
        ] {
            let report = simulate(&jobs, &capacity, &mut *s, RunOptions::lean());
            row.push_str(&format!(" {:>9.1}%", report.value_fraction * 100.0));
        }
        println!("{row}");
    }
    println!(
        "\nWith tight slack (1.0: zero conservative laxity) value-aware triage\n\
         dominates; as slack grows the system approaches underload and the\n\
         deadline-driven schedulers catch up (Theorem 2 territory)."
    );
}

/// Heavy-tailed nightly batch: ~90 reports released through the first half
/// of the night, each due `slack × workload / c_lo` after release, values
/// mixing size and per-team priority.
fn batch_jobs(rng: &mut Pcg32, night: f64, slack: f64) -> JobSet {
    let n = 90;
    let jobs: Vec<Job> = (0..n)
        .map(|i| {
            let release = rng.next_f64() * night * 0.5;
            let workload = bounded_pareto(rng, 1.3, 1.0, 60.0);
            let deadline = release + slack * workload; // c_lo = 1
            let priority = uniform(rng, 1.0, 7.0);
            Job::new(
                JobId(i as u64),
                Time::new(release),
                Time::new(deadline),
                workload,
                priority * workload,
            )
            .expect("job")
        })
        .collect();
    JobSet::new(jobs).expect("set")
}
