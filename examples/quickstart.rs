//! Quickstart: schedule a handful of secondary jobs on a processor whose
//! capacity varies, compare V-Dover against EDF, and audit the run.
//!
//! Run with: `cargo run --release --example quickstart`

#![forbid(unsafe_code)]

use cloudsched::prelude::*;

fn main() {
    // A processor that is busy with primary work early (capacity 1) and
    // mostly free later (capacity 4). Declared class: C(1, 4).
    let capacity = PiecewiseConstant::from_durations(&[(6.0, 1.0), (4.0, 4.0)])
        .unwrap()
        .with_declared_bounds(1.0, 4.0)
        .unwrap();

    // Five secondary jobs: (release, deadline, workload, value). The slow
    // regime is overloaded — 11 units of work demanded where only 6 fit —
    // so somebody has to triage. EDF chases the tight cheap job and loses
    // the premium one; value-aware triage keeps it.
    let jobs = JobSet::from_tuples(&[
        (0.0, 6.0, 6.0, 12.0),  // premium job, zero conservative laxity
        (0.0, 3.0, 3.0, 3.0),   // cheap, tight — EDF bait
        (1.0, 6.0, 2.0, 8.0),   // valuable, moderate
        (6.0, 12.0, 6.0, 9.0),  // lands in the fast regime
        (7.0, 15.0, 8.0, 10.0), // big late job
    ])
    .unwrap();

    println!(
        "Instance: {} jobs, total value {:.1}, capacity class C(1, 4)\n",
        jobs.len(),
        jobs.total_value()
    );

    let k = jobs.importance_ratio().unwrap_or(7.0);
    for mut scheduler in [
        Box::new(VDover::new(k, 4.0)) as Box<dyn Scheduler>,
        Box::new(Edf::new()),
        Box::new(Greedy::highest_value()),
    ] {
        let report = simulate(&jobs, &capacity, &mut *scheduler, RunOptions::full());
        // Every run is re-verified against the model invariants.
        audit_report(&jobs, &capacity, &report).expect("audit clean");
        println!(
            "{:<16} value {:>5.1} ({:>5.1}% of total)  completed {}/{}  preemptions {}",
            report.scheduler,
            report.value,
            report.value_fraction * 100.0,
            report.completed,
            report.completed + report.missed,
            report.preemptions,
        );
        if report.scheduler == "V-Dover" {
            println!("\n  V-Dover execution schedule:");
            for s in report.schedule.as_ref().unwrap().slices() {
                println!(
                    "    [{:>6.2}, {:>6.2})  {}",
                    s.start.as_f64(),
                    s.end.as_f64(),
                    s.job
                );
            }
            println!();
        }
    }

    // The offline clairvoyant optimum for context (exact branch-and-bound).
    let (opt, chosen) = cloudsched::offline::optimal_value(&jobs, &capacity);
    println!(
        "\nOffline optimum: {:.1} by completing {:?}",
        opt,
        chosen.iter().map(ToString::to_string).collect::<Vec<_>>()
    );
}
