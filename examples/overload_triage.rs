//! Overload triage: a flash crowd of secondary jobs hits a mostly-busy
//! server. Under overload EDF collapses (it chases deadlines, not value)
//! while the Dover family triages by value; V-Dover additionally rescues
//! conservatively-abandoned jobs when capacity recovers.
//!
//! On this deliberately small instance we also compute the exact clairvoyant
//! optimum and report *empirical competitive ratios* — the quantity the
//! paper's theorems bound.
//!
//! Run with: `cargo run --release --example overload_triage`

#![forbid(unsafe_code)]

use cloudsched::offline::optimal_value;
use cloudsched::prelude::*;

fn main() {
    // Capacity: scarce during the burst, recovers afterwards. Class C(1, 3).
    let capacity = PiecewiseConstant::from_durations(&[(6.0, 1.0), (6.0, 3.0)])
        .unwrap()
        .with_declared_bounds(1.0, 3.0)
        .unwrap();

    // Flash crowd at t ∈ [0, 3]: far more work than the slow regime can
    // serve; everything individually admissible (d − r ≥ p / c_lo).
    let jobs = JobSet::from_tuples(&[
        (0.0, 3.0, 3.0, 21.0), // premium job, zero conservative laxity
        (0.0, 4.0, 2.0, 2.0),
        (0.5, 4.5, 4.0, 4.0),
        (1.0, 4.0, 3.0, 9.0),
        (1.5, 7.0, 2.0, 10.0), // premium, more slack
        (2.0, 6.0, 4.0, 4.0),
        (2.5, 12.0, 6.0, 12.0), // long job that survives into the recovery
        (3.0, 9.0, 3.0, 3.0),
        (6.0, 10.0, 6.0, 8.0), // recovery-era arrivals
        (7.0, 11.5, 9.0, 13.0),
    ])
    .unwrap();

    let k = jobs.importance_ratio().unwrap();
    let delta = capacity.delta();
    let (opt, opt_set) = optimal_value(&jobs, &capacity);
    println!(
        "Flash crowd: {} jobs / total value {:.0}; clairvoyant optimum {:.0} ({} jobs)\n",
        jobs.len(),
        jobs.total_value(),
        opt,
        opt_set.len()
    );

    let guarantee = cloudsched::analysis::vdover_achievable_ratio(k, delta);
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(VDover::new(k, delta)),
        Box::new(Dover::new(k, 1.0)),
        Box::new(Dover::new(k, 3.0)),
        Box::new(Edf::new()),
        Box::new(Llf::with_estimate(1.0)),
        Box::new(Greedy::highest_value()),
        Box::new(Fifo::new()),
    ];
    println!(
        "{:<16} {:>7} {:>10} {:>12}",
        "scheduler", "value", "completed", "value/OPT"
    );
    for mut s in schedulers {
        let report = simulate(&jobs, &capacity, &mut *s, RunOptions::full());
        audit_report(&jobs, &capacity, &report).expect("audit clean");
        println!(
            "{:<16} {:>7.0} {:>7}/{:<2} {:>12.3}",
            report.scheduler,
            report.value,
            report.completed,
            jobs.len(),
            report.value / opt
        );
    }
    println!(
        "\nTheorem 3(2) guarantees V-Dover ≥ {guarantee:.4} × OPT for k={k:.1}, δ={delta:.0};\n\
         worst-case bounds are loose — observed ratios are far higher."
    );
}
