//! Spot-market scenario: secondary jobs scheduled on the *surplus* capacity
//! a server has left after serving its primary (on-demand) customers —
//! the EC2-Spot-style setting that motivates the paper.
//!
//! The primary side is an M/G/∞ population of VMs; the surplus profile it
//! induces is the `c(t)` the secondary scheduler sees. Secondary job values
//! scale with a utilisation-driven price proxy, and we compare how much
//! revenue each scheduler extracts.
//!
//! Run with: `cargo run --release --example spot_market`

#![forbid(unsafe_code)]

use cloudsched::cloud::spot::{build_spot_instance, SpotPrice, SpotWorkload};
use cloudsched::cloud::{induced_capacity, PrimaryLoad, Server};
use cloudsched::prelude::*;
use cloudsched_core::rng::Pcg32;

fn main() {
    let mut rng = Pcg32::seed_from_u64(2026); // lint: allow(L009) — pedagogical demo seed, feeds no recorded artifact
    let horizon = 200.0;

    // A 16-unit server; at least 2 units always remain for secondary work.
    let server = Server::new(16.0, 2.0);
    // Primary VMs: 0.5/s arrivals × 6s mean holding × ~4 units ≈ 12 of the
    // 16 units occupied on average — a busy machine whose surplus swings.
    let primary = PrimaryLoad::new(0.5, 6.0, (2.0, 6.0));
    let surplus = induced_capacity(&mut rng, &server, &primary, horizon).expect("surplus");
    let (c_lo, c_hi) = (surplus.c_lo(), surplus.c_hi());
    println!(
        "Induced surplus capacity: class C({c_lo}, {c_hi}), {} segments over {horizon}s",
        surplus.segment_count()
    );

    // Secondary demand: requests worth more when submitted at busy times.
    let price = SpotPrice {
        base: 1.0,
        sensitivity: 3.0,
        server_capacity: server.capacity,
    };
    let workload = SpotWorkload {
        arrival_rate: 2.0,
        mean_workload: 3.0,
        slack: 1.0, // zero conservative laxity — the hardest admissible case
        revenue_rate: 1.0,
    };
    let instance =
        build_spot_instance(&mut rng, surplus, price, workload, horizon).expect("instance");
    println!(
        "Secondary demand: {} jobs, total booked revenue {:.1}\n",
        instance.job_count(),
        instance.jobs.total_value()
    );
    assert!(instance.all_individually_admissible());

    let k = instance.importance_ratio().unwrap_or(4.0);
    let delta = instance.delta();
    let mut results: Vec<(String, f64)> = Vec::new();
    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(VDover::new(k, delta)),
        Box::new(Dover::new(k, c_lo)),
        Box::new(Dover::new(k, c_hi)),
        Box::new(Edf::new()),
        Box::new(Fifo::new()),
        Box::new(Greedy::highest_density()),
    ];
    for mut s in schedulers {
        let report = simulate(
            &instance.jobs,
            &instance.capacity,
            &mut *s,
            RunOptions::lean(),
        );
        results.push((report.scheduler.clone(), report.value));
        println!(
            "{:<16} revenue {:>8.1}  ({:>5.1}% of booked)  completed {}/{}",
            report.scheduler,
            report.value,
            report.value_fraction * 100.0,
            report.completed,
            report.completed + report.missed
        );
    }
    let best = results
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("results");
    println!(
        "\nBest extractor on this sample path: {} ({:.1})",
        best.0, best.1
    );
}
