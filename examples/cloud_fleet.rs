//! Cloud-wise scheduling: the paper's sketched extension from one server to
//! a fleet. A dispatcher routes each secondary job to a server at release
//! time; every server runs its own V-Dover on its own surplus-capacity
//! profile (induced by independent primary loads).
//!
//! Run with: `cargo run --release --example cloud_fleet`

#![forbid(unsafe_code)]

use cloudsched::cloud::{induced_capacity, schedule_fleet, DispatchPolicy, PrimaryLoad, Server};
use cloudsched::core::{Job, JobId};
use cloudsched::prelude::*;
use cloudsched::workload::dist::{exponential, uniform};
use cloudsched_core::rng::{Pcg32, Rng};

fn main() {
    let mut rng = Pcg32::seed_from_u64(4242); // lint: allow(L009) — pedagogical demo seed, feeds no recorded artifact
    let horizon = 150.0;
    let fleet_size = 4;

    // Four servers with different sizes and different primary loads.
    let mut surpluses = Vec::new();
    for s in 0..fleet_size {
        let capacity = 8.0 + 4.0 * s as f64;
        let server = Server::new(capacity, 1.0);
        let primary = PrimaryLoad::new(0.4 + 0.1 * s as f64, 8.0, (2.0, capacity * 0.6));
        let surplus = induced_capacity(&mut rng, &server, &primary, horizon).expect("surplus");
        println!(
            "server {s}: total capacity {capacity:>4}, surplus class C({}, {}), {} segments",
            surplus.c_lo(),
            surplus.c_hi(),
            surplus.segment_count()
        );
        surpluses.push(surplus);
    }

    // Secondary demand aimed at the whole fleet.
    let jobs = secondary_jobs(&mut rng, horizon, 600);
    let k = jobs.importance_ratio().unwrap_or(7.0);
    println!(
        "\nsecondary demand: {} jobs, total value {:.0}\n",
        jobs.len(),
        jobs.total_value()
    );

    println!(
        "{:<16} {:>9} {:>9} {:>11}",
        "dispatch", "value", "value %", "completed"
    );
    for policy in [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::LeastBacklog,
        DispatchPolicy::BestHeadroom,
    ] {
        let report = schedule_fleet(
            &jobs,
            &surpluses,
            policy,
            |s| {
                let delta = surpluses[s].delta().max(1.0 + 1e-9);
                Box::new(VDover::new(k, delta))
            },
            RunOptions::lean(),
        );
        println!(
            "{:<16} {:>9.0} {:>8.1}% {:>6}/{}",
            format!("{policy:?}"),
            report.value,
            report.value_fraction * 100.0,
            report.completed,
            jobs.len()
        );
    }
    println!(
        "\nBacklog-aware dispatch routes around busy machines; round-robin\n\
         blindly overloads the small ones."
    );
}

fn secondary_jobs(rng: &mut Pcg32, horizon: f64, n: usize) -> JobSet {
    let jobs: Vec<Job> = (0..n)
        .map(|i| {
            let release = rng.next_f64() * horizon * 0.9;
            let workload = exponential(rng, 0.5).max(0.05); // mean 2
            let slack = 1.0 + rng.next_f64() * 2.0;
            let density = uniform(rng, 1.0, 7.0);
            Job::new(
                JobId(i as u64),
                Time::new(release),
                Time::new(release + slack * workload), // admissible at c_lo = 1
                workload,
                density * workload,
            )
            .expect("job")
        })
        .collect();
    JobSet::new(jobs).expect("set")
}
