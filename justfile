# Local mirror of .github/workflows/ci.yml. Everything runs offline: the
# workspace has no registry dependencies, and CARGO_NET_OFFLINE makes any
# regression of that property an immediate error.

export CARGO_NET_OFFLINE := "true"

# Run the full CI gauntlet.
ci: fmt build bench-check test lint golden-trace chaos

fmt:
    cargo fmt --all --check

build:
    cargo build --release --workspace

bench-check:
    cargo check --benches --workspace

test:
    cargo test -q --workspace

# Workspace static analysis (rules L001–L006); also runs as a tier-1 test.
lint:
    cargo run --release -p cloudsched-lint

# Regenerate lint.baseline (only to grandfather genuinely unfixable debt).
lint-baseline:
    cargo run --release -p cloudsched-lint -- --write-baseline

# Certify a generated trace against Thm 2 / Def 4 / the SIII-A bijection.
audit lambda="8" seed="1":
    cargo run --release -p cloudsched-cli -- gen --lambda {{lambda}} --seed {{seed}} --out /tmp/cloudsched-trace.txt
    cargo run --release -p cloudsched-cli -- audit --trace /tmp/cloudsched-trace.txt

# Trace determinism gate: regenerate the golden instance's JSONL stream and
# byte-diff it against the checked-in golden (mirrors the CI step).
golden-trace:
    cargo run --release -p cloudsched-cli -- trace --lambda 12 --seed 7 --horizon 6 --scheduler vdover --out /tmp/golden-trace.jsonl
    diff -u tests/golden/trace_seed7_vdover.jsonl /tmp/golden-trace.jsonl

# Regenerate the checked-in golden trace after an *intentional* semantic change.
golden-trace-regen:
    cargo run --release -p cloudsched-cli -- trace --lambda 12 --seed 7 --horizon 6 --scheduler vdover --out tests/golden/trace_seed7_vdover.jsonl

# Span profile + tracing-overhead microbench.
profile:
    cargo run --release -p cloudsched-bench --bin profile

# Chaos smoke: run a fixed-seed fault-injection campaign twice and byte-diff
# the fault traces — zero panics, deterministic fault sequence (mirrors CI).
chaos:
    cargo run --release -p cloudsched-cli -- chaos --lambda 6 --seed 3 --seeds 2 --plan harsh --trace-out /tmp/chaos-trace-a.jsonl
    cargo run --release -p cloudsched-cli -- chaos --lambda 6 --seed 3 --seeds 2 --plan harsh --trace-out /tmp/chaos-trace-b.jsonl
    diff -u /tmp/chaos-trace-a.jsonl /tmp/chaos-trace-b.jsonl
    diff -u tests/golden/chaos_seed3_degrade.jsonl /tmp/chaos-trace-a.jsonl

# Regenerate the checked-in golden chaos trace after an *intentional* change
# to fault injection or the degradation layer.
chaos-golden-regen:
    cargo run --release -p cloudsched-cli -- chaos --lambda 6 --seed 3 --seeds 1 --plan harsh --policy degrade --trace-out tests/golden/chaos_seed3_degrade.jsonl
