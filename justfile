# Local mirror of .github/workflows/ci.yml. Everything runs offline: the
# workspace has no registry dependencies, and CARGO_NET_OFFLINE makes any
# regression of that property an immediate error.

export CARGO_NET_OFFLINE := "true"

# Run the full CI gauntlet.
ci: fmt build bench-check test lint

fmt:
    cargo fmt --all --check

build:
    cargo build --release --workspace

bench-check:
    cargo check --benches --workspace

test:
    cargo test -q --workspace

# Workspace static analysis (rules L001–L005); also runs as a tier-1 test.
lint:
    cargo run --release -p cloudsched-lint

# Regenerate lint.baseline (only to grandfather genuinely unfixable debt).
lint-baseline:
    cargo run --release -p cloudsched-lint -- --write-baseline

# Certify a generated trace against Thm 2 / Def 4 / the SIII-A bijection.
audit lambda="8" seed="1":
    cargo run --release -p cloudsched-cli -- gen --lambda {{lambda}} --seed {{seed}} --out /tmp/cloudsched-trace.txt
    cargo run --release -p cloudsched-cli -- audit --trace /tmp/cloudsched-trace.txt
