# Local mirror of .github/workflows/ci.yml. Everything runs offline: the
# workspace has no registry dependencies, and CARGO_NET_OFFLINE makes any
# regression of that property an immediate error.

export CARGO_NET_OFFLINE := "true"

# Run the full CI gauntlet.
ci: fmt build bench-check test lint golden-trace chaos serve-smoke bench-smoke sweep-smoke fleet-smoke

fmt:
    cargo fmt --all --check

build:
    cargo build --release --workspace

bench-check:
    cargo check --benches --workspace

test:
    cargo test -q --workspace

# Workspace static analysis (rules L001–L011); also runs as a tier-1 test.
lint:
    cargo run --release -p cloudsched-lint

# Machine-readable lint report (the artifact CI uploads).
lint-json:
    cargo run --release -p cloudsched-lint -- --json

# Explain one rule: summary, scope, rationale, fix. E.g. `just lint-explain L007`.
lint-explain rule:
    cargo run --release -p cloudsched-lint -- --explain {{rule}}

# Regenerate lint.baseline (only to grandfather genuinely unfixable debt).
lint-baseline:
    cargo run --release -p cloudsched-lint -- --write-baseline

# Certify a generated trace against Thm 2 / Def 4 / the SIII-A bijection.
audit lambda="8" seed="1":
    cargo run --release -p cloudsched-cli -- gen --lambda {{lambda}} --seed {{seed}} --out /tmp/cloudsched-trace.txt
    cargo run --release -p cloudsched-cli -- audit --trace /tmp/cloudsched-trace.txt

# Trace determinism gate: regenerate the golden instance's JSONL stream and
# byte-diff it against the checked-in golden (mirrors the CI step).
golden-trace:
    cargo run --release -p cloudsched-cli -- trace --lambda 12 --seed 7 --horizon 6 --scheduler vdover --out /tmp/golden-trace.jsonl
    diff -u tests/golden/trace_seed7_vdover.jsonl /tmp/golden-trace.jsonl

# Regenerate the checked-in golden trace after an *intentional* semantic change.
golden-trace-regen:
    cargo run --release -p cloudsched-cli -- trace --lambda 12 --seed 7 --horizon 6 --scheduler vdover --out tests/golden/trace_seed7_vdover.jsonl

# Span profile + tracing-overhead microbench.
profile:
    cargo run --release -p cloudsched-bench --bin profile

# Kernel hot-path benchmark: EDF / Dover / V-Dover at n ∈ {1e3 … 1e6},
# rewriting BENCH_kernel.json at the repo root (see DESIGN.md §10). Run on
# an otherwise-idle machine before updating the checked-in report.
bench:
    cargo run --release -p cloudsched-cli -- bench --out BENCH_kernel.json

# Flat-vs-heap comparison: the kernel suite with --compare, so every
# (scheduler, n) cell is measured twice — once on the default calendar
# event queue and once on the reference binary-heap workspace — and the
# report carries paired rows (the heap row is tagged `"queue":"heap"`).
# This is the configuration of the checked-in BENCH_kernel.json.
bench-flat:
    cargo run --release -p cloudsched-cli -- bench --compare --out BENCH_kernel.json

# CI bench smoke: the quick sweep (n = 1e3, one rep) written to a scratch
# file — validates the benchmark harness and its JSON schema on every
# commit without gating on timing-sensitive numbers.
bench-smoke:
    cargo run --release -p cloudsched-cli -- bench --quick --out /tmp/bench-smoke.json

# Sweep-scale throughput benchmark: Monte-Carlo runs/sec of the Table-I
# panel, fresh vs reused workspaces across thread counts, rewriting
# BENCH_sweep.json at the repo root (see DESIGN.md §11). Run on an
# otherwise-idle machine before updating the checked-in report.
sweep:
    cargo run --release -p cloudsched-cli -- bench --suite sweep --out BENCH_sweep.json

# CI sweep smoke: the quick sweep configuration written to a scratch file —
# validates the harness, the digest invariance across modes/threads and the
# JSON schema, without gating on timing-sensitive numbers.
sweep-smoke:
    cargo run --release -p cloudsched-cli -- bench --suite sweep --quick --out /tmp/sweep-smoke.json

# Fleet-scaling benchmark: multi-machine fleet runs/sec across fleet sizes
# and thread counts, rewriting BENCH_fleet.json at the repo root (see
# DESIGN.md §16). The harness refuses to emit rows whose digests diverge
# across thread counts within a fleet size. Run on an otherwise-idle
# multi-core machine before updating the checked-in report.
fleet:
    cargo run --release -p cloudsched-cli -- bench --suite fleet --out BENCH_fleet.json

# CI fleet smoke (mirrors the CI step): the quick fleet configuration
# written to a scratch file — validates the harness, the cross-thread
# digest invariance and the JSON schema — plus one `cloudsched fleet` run
# diffed byte-for-byte between serial and 2-thread execution.
fleet-smoke:
    cargo run --release -p cloudsched-cli -- bench --suite fleet --quick --out /tmp/fleet-smoke.json
    cargo run --release -p cloudsched-cli -- fleet --machines 4 --lambda 4 --horizon 12 --threads 1 > /tmp/fleet-serial.txt
    cargo run --release -p cloudsched-cli -- fleet --machines 4 --lambda 4 --horizon 12 --threads 2 > /tmp/fleet-threaded.txt
    diff -u /tmp/fleet-serial.txt /tmp/fleet-threaded.txt

# Value-loss ledger for one instance: where did the arrived value go?
# E.g. `just inspect 12 7` or `just inspect 8 1 --queues`.
inspect lambda="8" seed="1" *flags="":
    cargo run --release -p cloudsched-cli -- inspect --lambda {{lambda}} --seed {{seed}} {{flags}}

# Empirical competitive ratio vs the paper's Theorem 3 bounds.
inspect-ratio lambda="8" seed="1" seeds="3":
    cargo run --release -p cloudsched-cli -- inspect --ratio --lambda {{lambda}} --seed {{seed}} --seeds {{seeds}}

# Regenerate the checked-in golden ledger summary after an *intentional*
# change to the ledger's classification rules or report format.
golden-inspect-regen:
    cargo run --release -p cloudsched-cli -- inspect --lambda 12 --seed 7 --horizon 6 --scheduler vdover --in tests/golden/trace_seed7_vdover.jsonl > tests/golden/inspect_seed7_vdover.txt

# Compare fresh quick kernel and sweep runs against the checked-in reports
# (report-only in CI; run `just bench` / `just sweep` on an idle machine for
# real numbers). bench-diff auto-detects the suite from the report schema.
bench-diff tol="50":
    cargo run --release -p cloudsched-cli -- bench --quick --out /tmp/bench-smoke.json
    cargo run --release -p cloudsched-cli -- bench-diff --old BENCH_kernel.json --new /tmp/bench-smoke.json --tol {{tol}}
    cargo run --release -p cloudsched-cli -- bench --suite sweep --quick --out /tmp/sweep-smoke.json
    cargo run --release -p cloudsched-cli -- bench-diff --old BENCH_sweep.json --new /tmp/sweep-smoke.json --tol {{tol}}
    cargo run --release -p cloudsched-cli -- bench --suite fleet --quick --out /tmp/fleet-smoke.json
    cargo run --release -p cloudsched-cli -- bench-diff --old BENCH_fleet.json --new /tmp/fleet-smoke.json --tol {{tol}}

# Crash-recovery smoke (mirrors the CI kill-and-recover step): serve the
# checked-in golden stream to completion, then serve it again with a seeded
# crash mid-stream and recover from the journal — both the uninterrupted
# and the recovered ledger + commitment audit must match the checked-in
# golden byte-for-byte.
serve-smoke:
    cargo run --release -p cloudsched-cli -- serve --in tests/golden/stream_small.jsonl --scheduler vdover --k 7 --snapshot-every 8 --journal /tmp/serve-smoke-full.wal > /tmp/serve-smoke-full.txt
    diff -u tests/golden/serve_stream_small.txt /tmp/serve-smoke-full.txt
    cargo run --release -p cloudsched-cli -- serve --in tests/golden/stream_small.jsonl --scheduler vdover --k 7 --snapshot-every 8 --journal /tmp/serve-smoke-crash.wal --crash-after 17
    cargo run --release -p cloudsched-cli -- recover --journal /tmp/serve-smoke-crash.wal --in tests/golden/stream_small.jsonl > /tmp/serve-smoke-recovered.txt
    diff -u tests/golden/serve_stream_small.txt /tmp/serve-smoke-recovered.txt

# Regenerate the checked-in golden service ledger after an *intentional*
# change to the admission service, the ledger, or the commitment audit.
serve-golden-regen:
    cargo run --release -p cloudsched-cli -- serve --in tests/golden/stream_small.jsonl --scheduler vdover --k 7 --snapshot-every 8 > tests/golden/serve_stream_small.txt

# Chaos smoke: run a fixed-seed fault-injection campaign twice and byte-diff
# the fault traces — zero panics, deterministic fault sequence (mirrors CI).
chaos:
    cargo run --release -p cloudsched-cli -- chaos --lambda 6 --seed 3 --seeds 2 --plan harsh --trace-out /tmp/chaos-trace-a.jsonl
    cargo run --release -p cloudsched-cli -- chaos --lambda 6 --seed 3 --seeds 2 --plan harsh --trace-out /tmp/chaos-trace-b.jsonl
    diff -u /tmp/chaos-trace-a.jsonl /tmp/chaos-trace-b.jsonl
    diff -u tests/golden/chaos_seed3_degrade.jsonl /tmp/chaos-trace-a.jsonl

# Regenerate the checked-in golden chaos trace after an *intentional* change
# to fault injection or the degradation layer.
chaos-golden-regen:
    cargo run --release -p cloudsched-cli -- chaos --lambda 6 --seed 3 --seeds 1 --plan harsh --policy degrade --trace-out tests/golden/chaos_seed3_degrade.jsonl
