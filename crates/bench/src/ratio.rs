//! Empirical competitive-ratio measurement.
//!
//! The paper normalises Table I by the *total generated value* because "the
//! optimal offline value is hard to compute". This module offers all three
//! normalisers so experiments can report genuine ratios when affordable:
//!
//! * [`Normalizer::TotalValue`] — the paper's choice (a lower bound on the
//!   true ratio);
//! * [`Normalizer::Fractional`] — the LP upper bound on OPT (polynomial,
//!   works at any scale; yields a slightly pessimistic ratio);
//! * [`Normalizer::Exact`] — branch-and-bound OPT (small instances only).

use crate::algos::SchedulerSpec;
use crate::harness::run_instance;
use cloudsched_analysis::stats::Summary;
use cloudsched_capacity::Instance;
use cloudsched_offline::{fractional_optimal, optimal_value};
use cloudsched_sim::RunOptions;

/// Which denominator to divide the online value by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Normalizer {
    /// Sum of all generated values (the paper's Table I metric).
    TotalValue,
    /// The fractional LP optimum (an upper bound on OPT).
    Fractional,
    /// The exact offline optimum (exponential-time; keep instances small).
    Exact,
}

/// The denominator for one instance under the chosen normaliser.
pub fn denominator(instance: &Instance, normalizer: Normalizer) -> f64 {
    match normalizer {
        Normalizer::TotalValue => instance.jobs.total_value(),
        Normalizer::Fractional => fractional_optimal(&instance.jobs, &instance.capacity).0,
        Normalizer::Exact => optimal_value(&instance.jobs, &instance.capacity).0,
    }
}

/// Online value ÷ denominator for one scheduler on one instance.
pub fn empirical_ratio(instance: &Instance, spec: &SchedulerSpec, normalizer: Normalizer) -> f64 {
    let denom = denominator(instance, normalizer);
    if denom <= 0.0 {
        return 1.0; // nothing to earn: vacuously optimal
    }
    run_instance(instance, spec, RunOptions::lean()).value / denom
}

/// Ratios of one scheduler over a set of instances, summarised.
pub fn ratio_summary(
    instances: &[Instance],
    spec: &SchedulerSpec,
    normalizer: Normalizer,
) -> (Vec<f64>, Summary) {
    let ratios: Vec<f64> = instances
        .iter()
        .map(|i| empirical_ratio(i, spec, normalizer))
        .collect();
    let summary = Summary::from_samples(&ratios);
    (ratios, summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_capacity::PiecewiseConstant;
    use cloudsched_core::JobSet;

    fn small_instance() -> Instance {
        let jobs = JobSet::from_tuples(&[
            (0.0, 2.0, 2.0, 4.0),
            (0.0, 2.0, 2.0, 1.0),
            (2.0, 5.0, 3.0, 6.0),
        ])
        .unwrap();
        let cap = PiecewiseConstant::constant(1.0).unwrap();
        Instance::new(jobs, cap)
    }

    #[test]
    fn denominators_are_ordered() {
        let inst = small_instance();
        let total = denominator(&inst, Normalizer::TotalValue);
        let frac = denominator(&inst, Normalizer::Fractional);
        let exact = denominator(&inst, Normalizer::Exact);
        assert!(exact <= frac + 1e-9, "exact {exact} <= fractional {frac}");
        assert!(frac <= total + 1e-9, "fractional {frac} <= total {total}");
        assert!(exact > 0.0);
    }

    #[test]
    fn ratios_ordered_inversely_to_denominators() {
        let inst = small_instance();
        let spec = SchedulerSpec::Edf;
        let r_total = empirical_ratio(&inst, &spec, Normalizer::TotalValue);
        let r_frac = empirical_ratio(&inst, &spec, Normalizer::Fractional);
        let r_exact = empirical_ratio(&inst, &spec, Normalizer::Exact);
        assert!(r_total <= r_frac + 1e-9);
        assert!(r_frac <= r_exact + 1e-9);
        assert!(r_exact <= 1.0 + 1e-9, "nobody beats the exact optimum");
    }

    #[test]
    fn summary_over_instances() {
        let instances = vec![small_instance(), small_instance()];
        let (ratios, summary) = ratio_summary(&instances, &SchedulerSpec::Edf, Normalizer::Exact);
        assert_eq!(ratios.len(), 2);
        assert_eq!(summary.n, 2);
        assert!((ratios[0] - ratios[1]).abs() < 1e-12, "deterministic");
    }

    #[test]
    fn empty_instance_is_vacuously_optimal() {
        let inst = Instance::new(
            JobSet::new(vec![]).unwrap(),
            PiecewiseConstant::constant(1.0).unwrap(),
        );
        assert_eq!(
            empirical_ratio(&inst, &SchedulerSpec::Edf, Normalizer::Exact),
            1.0
        );
    }
}
