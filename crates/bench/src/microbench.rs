//! A minimal std-only micro-benchmark harness.
//!
//! The sandbox build has no registry access, so the workspace cannot depend
//! on Criterion. This module provides the small slice of it the benches
//! actually use: warm-up, adaptive batching to a target sample duration, and
//! a min/median/mean report per benchmark.
//!
//! Timing uses `std::time::Instant`, which is monotonic. The harness lives in
//! `cloudsched-bench` (measurement code), never in the simulator: simulated
//! time must stay virtual (lint rule L005).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Number of timed samples per benchmark.
const SAMPLES: usize = 10;

/// Target wall-clock duration of one sample batch.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// A named group of benchmarks, printed as one table.
pub struct BenchGroup {
    name: String,
    rows: Vec<(String, Stats)>,
    /// Multiplier applied to iteration counts; `CLOUDSCHED_BENCH_QUICK=1`
    /// drops it for fast smoke runs.
    quick: bool,
}

/// Summary statistics over the per-iteration sample times (nanoseconds).
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Fastest sample (ns/iter) — least noise, the headline number.
    pub min_ns: f64,
    /// Median sample (ns/iter).
    pub median_ns: f64,
    /// Mean sample (ns/iter).
    pub mean_ns: f64,
    /// Iterations per sample batch.
    pub iters: u64,
}

impl BenchGroup {
    /// Creates a group titled `name`.
    pub fn new(name: &str) -> Self {
        BenchGroup {
            name: name.to_string(),
            rows: Vec::new(),
            quick: std::env::var_os("CLOUDSCHED_BENCH_QUICK").is_some(),
        }
    }

    /// Times `f`, recording a row labelled `label`. The closure's return
    /// value is passed through [`black_box`] so the work is not optimized out.
    pub fn bench<T, F: FnMut() -> T>(&mut self, label: &str, mut f: F) -> Stats {
        // Warm-up + calibration: find how many iterations fill the target.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let mut iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        if self.quick {
            iters = iters.min(3);
        }
        let samples = if self.quick { 3 } else { SAMPLES };
        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(f64::total_cmp);
        let stats = Stats {
            min_ns: per_iter[0],
            median_ns: per_iter[per_iter.len() / 2],
            mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
            iters,
        };
        self.rows.push((label.to_string(), stats));
        stats
    }

    /// Prints the group as an aligned table.
    pub fn report(&self) {
        println!("\n== {} ==", self.name);
        println!(
            "{:<40} {:>12} {:>12} {:>12} {:>8}",
            "benchmark", "min", "median", "mean", "iters"
        );
        for (label, s) in &self.rows {
            println!(
                "{:<40} {:>12} {:>12} {:>12} {:>8}",
                label,
                fmt_ns(s.min_ns),
                fmt_ns(s.median_ns),
                fmt_ns(s.mean_ns),
                s.iters
            );
        }
    }
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_and_records() {
        std::env::set_var("CLOUDSCHED_BENCH_QUICK", "1");
        let mut g = BenchGroup::new("test");
        let s = g.bench("sum", || (0..100u64).sum::<u64>());
        assert!(s.min_ns >= 0.0);
        assert!(s.iters >= 1);
        assert_eq!(g.rows.len(), 1);
        g.report();
    }

    #[test]
    fn formatting_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with(" s"));
    }
}
