//! The sweep-scale throughput benchmark behind `cloudsched bench --suite
//! sweep` and the `sweep` binary: a Table-I-shaped Monte-Carlo sweep
//! (λ = 8, five policies per seed on the shared instance) timed in two
//! modes — `fresh` (a throwaway [`SimWorkspace`] per run, the allocation
//! baseline) and `reuse` (one workspace per worker, recycled across runs)
//! — at each configured thread count. Results land in `BENCH_sweep.json`
//! at the repository root, validated by the same strict-schema treatment
//! as `BENCH_kernel.json`.
//!
//! Every row carries an FNV-1a digest of the per-run reports (value bits,
//! completed, events, preemptions, dispatches, folded in run order), and
//! [`run_sweep_bench`] asserts all rows share one digest: whatever the
//! mode or thread count, the sweep produces identical output bytes.
//! Workspace reuse is additionally surfaced through the obs counters
//! `sweep.workspace.runs` / `sweep.workspace.reuse_hits`.
//!
//! Timing flows through the [`cloudsched_obs::Clock`] seam
//! ([`MonotonicClock`] — the bench crate is the sanctioned wall-clock
//! user, lint rules L005/L006).

use crate::harness::{parallel_map, parallel_map_with, run_instance, run_instance_batch_in};
use crate::SchedulerSpec;
use cloudsched_core::rng::{derive_seed, SEED_STREAM_TABLE1};
use cloudsched_obs::{Clock, MetricsRegistry, MetricsSnapshot, MonotonicClock};
use cloudsched_sim::{RunOptions, RunReport, SimWorkspace};
use cloudsched_workload::PaperScenario;

/// One measurement: a `(mode, threads)` cell of the sweep.
///
/// Serialized verbatim as one JSON object per row of `BENCH_sweep.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepBenchRow {
    /// Benchmark family (always `"sweep"`).
    pub bench: String,
    /// `"fresh"` (workspace per run) or `"reuse"` (workspace per worker).
    pub mode: String,
    /// Worker threads the sweep fanned out over.
    pub threads: usize,
    /// Monte-Carlo runs (seeds) in the sweep; each run simulates every
    /// policy of the Table-I panel on the shared instance.
    pub runs: usize,
    /// Total wall time of the cell, in milliseconds.
    pub wall_ms: f64,
    /// Runs per second (`runs / wall`), the headline throughput number.
    pub runs_per_sec: f64,
    /// Workspace reuse hits under the *canonical* accounting: runs (in
    /// index order) whose job count does not raise the high-water mark of
    /// a single virtual serial arena. This is a pure function of the seed
    /// sequence — identical at every thread count — unlike the physical
    /// per-worker counters, which depend on which runs each worker saw
    /// first. 0 in `fresh` mode by construction.
    pub reuse_hits: u64,
    /// FNV-1a 64 digest of every report in run order, as 16 hex digits.
    /// Identical across all rows of a report, or the bench refuses to emit.
    pub digest: String,
    /// Seed stream the per-run seeds derive from.
    pub seed: u64,
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct SweepBenchConfig {
    /// Arrival rate of the Table-I scenario (default 8 — deep overload).
    pub lambda: f64,
    /// Monte-Carlo runs per cell (default 48).
    pub runs: usize,
    /// Thread counts to sweep (default `[1, 4]`).
    pub threads: Vec<usize>,
}

impl Default for SweepBenchConfig {
    fn default() -> Self {
        SweepBenchConfig {
            lambda: 8.0,
            runs: 48,
            threads: vec![1, 4],
        }
    }
}

impl SweepBenchConfig {
    /// CI smoke configuration: 6 runs, threads 1 and 2.
    pub fn quick() -> Self {
        SweepBenchConfig {
            lambda: 8.0,
            runs: 6,
            threads: vec![1, 2],
        }
    }
}

/// The Table-I policy panel every run replays on its shared instance:
/// Dover at ĉ ∈ {1, 10.5, 24.5, 35} plus V-Dover, k = 7, δ = 35.
pub fn sweep_specs() -> Vec<SchedulerSpec> {
    let mut specs: Vec<SchedulerSpec> = [1.0, 10.5, 24.5, 35.0]
        .iter()
        .map(|&c| SchedulerSpec::Dover {
            k: 7.0,
            c_estimate: c,
        })
        .collect();
    specs.push(SchedulerSpec::VDover {
        k: 7.0,
        delta: 35.0,
    });
    specs
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one u64 into an FNV-1a 64 state, byte by byte.
fn fnv1a(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Digest of one run's reports: the observable outputs a sweep aggregates
/// (value bits, completed, events, preemptions, dispatches), spec order.
fn run_digest(reports: &[RunReport]) -> u64 {
    let mut h = FNV_OFFSET;
    for r in reports {
        for word in [
            r.value.to_bits(),
            r.completed as u64,
            r.events as u64,
            r.preemptions as u64,
            r.dispatches as u64,
        ] {
            h = fnv1a(h, word);
        }
    }
    h
}

/// Per-run result the workers hand back: the run's digest, its instance
/// size (for the canonical reuse-hit fold) and its physical workspace
/// bookkeeping delta.
struct RunCell {
    digest: u64,
    jobs: usize,
    ws_runs: u64,
}

/// Canonical reuse-hit count: fold the per-run instance sizes in run
/// (index) order through one virtual serial arena — a run hits iff its
/// job count fits the high-water mark of the runs before it. The physical
/// per-workspace counters ([`SimWorkspace::reuse_hits`]) depend on which
/// runs each worker happened to draw, so they drift with the thread count;
/// this fold is a pure function of the seed sequence.
fn canonical_reuse_hits(cells: &[RunCell]) -> u64 {
    let mut high_water = 0usize;
    let mut hits = 0u64;
    for c in cells {
        if c.jobs <= high_water {
            hits += 1;
        }
        high_water = high_water.max(c.jobs);
    }
    hits
}

/// Combines per-run digests in run (index) order — this is what makes the
/// digest thread-count independent: `parallel_map` already returns results
/// in index order regardless of which worker computed them.
fn combine(cells: &[RunCell]) -> u64 {
    cells.iter().fold(FNV_OFFSET, |h, c| fnv1a(h, c.digest))
}

/// Everything `run_sweep_bench` produces: the schema rows plus a metrics
/// snapshot carrying the workspace-reuse counters.
#[derive(Debug, Clone)]
pub struct SweepBenchOutcome {
    /// One row per `(mode, threads)` cell, in sweep order.
    pub rows: Vec<SweepBenchRow>,
    /// Counters `sweep.workspace.runs` (workspace activations — one per
    /// policy simulation) and `sweep.workspace.reuse_hits`, totalled over
    /// every `reuse`-mode cell.
    pub metrics: MetricsSnapshot,
}

/// Runs the full sweep: for each thread count, a `fresh` cell and a
/// `reuse` cell, all on the same derived seed sequence. `progress`
/// receives one line per completed cell.
///
/// # Panics
/// If any cell's digest diverges from the first — a sweep whose output
/// depends on the mode or the thread count is a correctness bug, and the
/// bench refuses to report throughput for it.
pub fn run_sweep_bench(
    cfg: &SweepBenchConfig,
    mut progress: impl FnMut(&SweepBenchRow),
) -> SweepBenchOutcome {
    let scenario = PaperScenario::table1(cfg.lambda);
    let specs = sweep_specs();
    let clock = MonotonicClock::new();
    let mut metrics = MetricsRegistry::new();
    let mut rows: Vec<SweepBenchRow> = Vec::new();

    for &threads in &cfg.threads {
        for mode in ["fresh", "reuse"] {
            let t0 = clock.now_ns();
            let cells: Vec<RunCell> = if mode == "fresh" {
                parallel_map(cfg.runs, threads, |run| {
                    let seed = derive_seed(SEED_STREAM_TABLE1, cfg.lambda, run);
                    let generated = scenario.generate(seed).expect("generation");
                    let reports: Vec<RunReport> = specs
                        .iter()
                        .map(|spec| run_instance(&generated.instance, spec, RunOptions::lean()))
                        .collect();
                    RunCell {
                        digest: run_digest(&reports),
                        jobs: generated.instance.jobs.len(),
                        ws_runs: 0,
                    }
                })
            } else {
                parallel_map_with(cfg.runs, threads, SimWorkspace::new, |ws, run| {
                    let seed = derive_seed(SEED_STREAM_TABLE1, cfg.lambda, run);
                    let generated = scenario.generate(seed).expect("generation");
                    let runs0 = ws.runs();
                    let mut reports =
                        run_instance_batch_in(ws, &generated.instance, &specs, RunOptions::lean());
                    let digest = run_digest(&reports);
                    if let Some(last) = reports.pop() {
                        ws.recycle(last);
                    }
                    RunCell {
                        digest,
                        jobs: generated.instance.jobs.len(),
                        ws_runs: ws.runs() - runs0,
                    }
                })
            };
            let wall_ns = clock.now_ns().saturating_sub(t0).max(1);
            let reuse_hits: u64 = if mode == "reuse" {
                canonical_reuse_hits(&cells)
            } else {
                0
            };
            if mode == "reuse" {
                metrics.incr(
                    "sweep.workspace.runs",
                    cells.iter().map(|c| c.ws_runs).sum(),
                );
                metrics.incr("sweep.workspace.reuse_hits", reuse_hits);
            }
            let row = SweepBenchRow {
                bench: "sweep".into(),
                mode: mode.into(),
                threads,
                runs: cfg.runs,
                wall_ms: wall_ns as f64 / 1e6,
                runs_per_sec: cfg.runs as f64 / (wall_ns as f64 / 1e9),
                reuse_hits,
                digest: format!("{:016x}", combine(&cells)),
                seed: SEED_STREAM_TABLE1,
            };
            progress(&row);
            rows.push(row);
        }
    }
    let first = rows[0].digest.clone();
    for row in &rows {
        assert_eq!(
            row.digest, first,
            "sweep output diverged at mode={} threads={} — equal bytes are a hard invariant",
            row.mode, row.threads
        );
    }
    SweepBenchOutcome {
        rows,
        metrics: metrics.snapshot(),
    }
}

/// Formats one f64 for the JSON report: fixed 3 decimal places.
fn fmt_f64(x: f64) -> String {
    format!("{x:.3}")
}

/// Serializes rows as a JSON array, one object per line (stable key order).
pub fn sweep_rows_to_json(rows: &[SweepBenchRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"bench\":\"{}\",\"mode\":\"{}\",\"threads\":{},\"runs\":{},\"wall_ms\":{},\"runs_per_sec\":{},\"reuse_hits\":{},\"digest\":\"{}\",\"seed\":{}}}{}\n",
            r.bench,
            r.mode,
            r.threads,
            r.runs,
            fmt_f64(r.wall_ms),
            fmt_f64(r.runs_per_sec),
            r.reuse_hits,
            r.digest,
            r.seed,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

/// Strictly parses the exact format written by [`sweep_rows_to_json`] —
/// the schema validator used by the CI sweep-smoke step. Returns the rows,
/// or the first format violation.
pub fn parse_sweep_rows(text: &str) -> Result<Vec<SweepBenchRow>, String> {
    let mut lines = text.lines().enumerate();
    let (_, first) = lines.next().ok_or("empty report")?;
    if first.trim() != "[" {
        return Err("line 1: expected `[`".into());
    }
    let mut rows = Vec::new();
    let mut closed = false;
    for (idx, line) in lines {
        let line_no = idx + 1;
        let t = line.trim();
        if t == "]" {
            closed = true;
            continue;
        }
        if closed {
            if !t.is_empty() {
                return Err(format!("line {line_no}: content after closing `]`"));
            }
            continue;
        }
        let obj = t.trim_end_matches(',');
        rows.push(parse_sweep_row(obj).map_err(|e| format!("line {line_no}: {e}"))?);
    }
    if !closed {
        return Err("missing closing `]`".into());
    }
    if rows.is_empty() {
        return Err("report carries no rows".into());
    }
    let digest = &rows[0].digest;
    if let Some(bad) = rows.iter().find(|r| &r.digest != digest) {
        return Err(format!(
            "digest mismatch: mode={} threads={} disagrees with the first row",
            bad.mode, bad.threads
        ));
    }
    Ok(rows)
}

/// Parses one row object, requiring the exact field set and order of the
/// schema: `bench`, `mode`, `threads`, `runs`, `wall_ms`, `runs_per_sec`,
/// `reuse_hits`, `digest`, `seed`.
fn parse_sweep_row(obj: &str) -> Result<SweepBenchRow, String> {
    let inner = obj
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("row is not a JSON object")?;
    let mut fields = crate::kernel_bench::split_top_level(inner).into_iter();
    let mut next = |key: &str| -> Result<String, String> {
        let field = fields.next().ok_or(format!("missing field `{key}`"))?;
        let (k, v) = field
            .split_once(':')
            .ok_or(format!("malformed field `{field}`"))?;
        if k.trim() != format!("\"{key}\"") {
            return Err(format!("expected field `{key}`, found `{}`", k.trim()));
        }
        Ok(v.trim().to_string())
    };
    let bench = crate::kernel_bench::unquote(&next("bench")?)?;
    let mode = crate::kernel_bench::unquote(&next("mode")?)?;
    let threads: usize = next("threads")?
        .parse()
        .map_err(|e| format!("threads: {e}"))?;
    let runs: usize = next("runs")?.parse().map_err(|e| format!("runs: {e}"))?;
    let wall_ms: f64 = next("wall_ms")?
        .parse()
        .map_err(|e| format!("wall_ms: {e}"))?;
    let runs_per_sec: f64 = next("runs_per_sec")?
        .parse()
        .map_err(|e| format!("runs_per_sec: {e}"))?;
    let reuse_hits: u64 = next("reuse_hits")?
        .parse()
        .map_err(|e| format!("reuse_hits: {e}"))?;
    let digest = crate::kernel_bench::unquote(&next("digest")?)?;
    let seed: u64 = next("seed")?.parse().map_err(|e| format!("seed: {e}"))?;
    if let Some(extra) = fields.next() {
        return Err(format!("unexpected extra field `{extra}`"));
    }
    if bench != "sweep" {
        return Err(format!("bench must be `sweep`, got `{bench}`"));
    }
    if mode != "fresh" && mode != "reuse" {
        return Err(format!("mode must be `fresh` or `reuse`, got `{mode}`"));
    }
    if threads == 0 {
        return Err("threads must be positive".into());
    }
    if runs == 0 {
        return Err("runs must be positive".into());
    }
    if !(wall_ms.is_finite() && wall_ms > 0.0) {
        return Err(format!("wall_ms must be positive, got {wall_ms}"));
    }
    if !(runs_per_sec.is_finite() && runs_per_sec > 0.0) {
        return Err(format!("runs_per_sec must be positive, got {runs_per_sec}"));
    }
    if mode == "fresh" && reuse_hits != 0 {
        return Err(format!(
            "fresh mode cannot report reuse hits, got {reuse_hits}"
        ));
    }
    if digest.len() != 16 || !digest.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("digest must be 16 hex digits, got `{digest}`"));
    }
    Ok(SweepBenchRow {
        bench,
        mode,
        threads,
        runs,
        wall_ms,
        runs_per_sec,
        reuse_hits,
        digest,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepBenchConfig {
        SweepBenchConfig {
            lambda: 4.0,
            runs: 3,
            threads: vec![1, 2],
        }
    }

    #[test]
    fn sweep_rows_round_trip_through_the_schema() {
        let outcome = run_sweep_bench(&tiny(), |_| {});
        assert_eq!(outcome.rows.len(), 4, "2 modes x 2 thread counts");
        let json = sweep_rows_to_json(&outcome.rows);
        let back = parse_sweep_rows(&json).expect("round trip");
        assert_eq!(back.len(), outcome.rows.len());
        for (a, b) in outcome.rows.iter().zip(back.iter()) {
            assert_eq!(a.mode, b.mode);
            assert_eq!(a.threads, b.threads);
            assert_eq!(a.digest, b.digest);
            assert_eq!(a.reuse_hits, b.reuse_hits);
        }
    }

    #[test]
    fn all_cells_share_one_digest_and_reuse_hits_accrue() {
        let outcome = run_sweep_bench(&tiny(), |_| {});
        let digest = &outcome.rows[0].digest;
        assert!(outcome.rows.iter().all(|r| &r.digest == digest));
        // Every run after each worker's first recycles warmed buffers. With
        // 3 runs the single-threaded reuse cell must hit at least once.
        let reuse_1 = outcome
            .rows
            .iter()
            .find(|r| r.mode == "reuse" && r.threads == 1)
            .expect("reuse cell at threads=1");
        assert!(reuse_1.reuse_hits >= 1, "got {}", reuse_1.reuse_hits);
        // One workspace activation per policy simulation: 2 reuse cells x
        // 3 runs x the 5-spec panel.
        assert_eq!(outcome.metrics.counter("sweep.workspace.runs"), 30);
        assert_eq!(
            outcome.metrics.counter("sweep.workspace.reuse_hits"),
            outcome
                .rows
                .iter()
                .filter(|r| r.mode == "reuse")
                .map(|r| r.reuse_hits)
                .sum::<u64>()
        );
    }

    #[test]
    fn validator_rejects_malformed_sweep_reports() {
        assert!(parse_sweep_rows("").is_err());
        assert!(parse_sweep_rows("[\n]\n").is_err(), "no rows");
        assert!(parse_sweep_rows("[\n  {\"bench\":\"sweep\"}\n]\n").is_err());
        let row = |mode: &str, digest: &str| {
            format!(
                "  {{\"bench\":\"sweep\",\"mode\":\"{mode}\",\"threads\":1,\"runs\":2,\"wall_ms\":1.000,\"runs_per_sec\":5.000,\"reuse_hits\":0,\"digest\":\"{digest}\",\"seed\":1}}"
            )
        };
        let good = format!("[\n{},\n{}\n]\n", row("fresh", &"a".repeat(16)), {
            let mut r = row("reuse", &"a".repeat(16));
            r = r.replace("\"reuse_hits\":0", "\"reuse_hits\":1");
            r
        });
        assert_eq!(parse_sweep_rows(&good).expect("valid").len(), 2);
        let drift = format!(
            "[\n{},\n{}\n]\n",
            row("fresh", &"a".repeat(16)),
            row("reuse", &"b".repeat(16))
        );
        assert!(parse_sweep_rows(&drift).is_err(), "digest drift");
        let hits = format!("[\n{}\n]\n", {
            let mut r = row("fresh", &"a".repeat(16));
            r = r.replace("\"reuse_hits\":0", "\"reuse_hits\":3");
            r
        });
        assert!(parse_sweep_rows(&hits).is_err(), "fresh mode with hits");
    }
}
