//! Scheduler factory: build any scheduler in the workspace from a spec.

use cloudsched_sched::{
    dover::SupplementOrder, Dover, Edf, Fifo, Greedy, Llf, VDover, VDoverConfig,
};
use cloudsched_sim::Scheduler;

/// A constructible scheduler description (cheap to clone, `Send + Sync`).
#[derive(Debug, Clone)]
pub enum SchedulerSpec {
    /// Preemptive EDF.
    Edf,
    /// LLF with capacity estimate.
    Llf(f64),
    /// Non-preemptive FIFO.
    Fifo,
    /// Preemptive highest-value-first.
    GreedyValue,
    /// Preemptive highest-density-first.
    GreedyDensity,
    /// Dover with importance bound `k` and capacity estimate `ĉ`.
    Dover {
        /// Importance-ratio bound.
        k: f64,
        /// Capacity estimate `ĉ`.
        c_estimate: f64,
    },
    /// V-Dover with the paper's optimal β for `(k, δ)`.
    VDover {
        /// Importance-ratio bound.
        k: f64,
        /// Capacity variation bound.
        delta: f64,
    },
    /// V-Dover with explicit knobs (ablations).
    VDoverCustom {
        /// Threshold β.
        beta: f64,
        /// Keep the supplement queue.
        supplement: bool,
        /// Supplement revival order.
        order: SupplementOrder,
    },
}

impl SchedulerSpec {
    /// Instantiates a fresh scheduler.
    pub fn build(&self) -> Box<dyn Scheduler + Send> {
        match *self {
            SchedulerSpec::Edf => Box::new(Edf::new()),
            SchedulerSpec::Llf(c) => Box::new(Llf::with_estimate(c)),
            SchedulerSpec::Fifo => Box::new(Fifo::new()),
            SchedulerSpec::GreedyValue => Box::new(Greedy::highest_value()),
            SchedulerSpec::GreedyDensity => Box::new(Greedy::highest_density()),
            SchedulerSpec::Dover { k, c_estimate } => Box::new(Dover::new(k, c_estimate)),
            SchedulerSpec::VDover { k, delta } => Box::new(VDover::new(k, delta)),
            SchedulerSpec::VDoverCustom {
                beta,
                supplement,
                order,
            } => Box::new(VDover::from_config(VDoverConfig {
                beta,
                supplement,
                supplement_order: order,
            })),
        }
    }

    /// The display name the built scheduler will report.
    pub fn name(&self) -> String {
        self.build().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_build_and_name() {
        let specs = [
            SchedulerSpec::Edf,
            SchedulerSpec::Llf(2.0),
            SchedulerSpec::Fifo,
            SchedulerSpec::GreedyValue,
            SchedulerSpec::GreedyDensity,
            SchedulerSpec::Dover {
                k: 7.0,
                c_estimate: 10.5,
            },
            SchedulerSpec::VDover {
                k: 7.0,
                delta: 35.0,
            },
        ];
        let names: Vec<String> = specs.iter().map(SchedulerSpec::name).collect();
        assert_eq!(names[0], "EDF");
        assert!(names[5].contains("Dover"));
        assert_eq!(names[6], "V-Dover");
        // All distinct.
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len());
    }
}
