//! Profiling & tracing-overhead experiment.
//!
//! Two questions, answered on the paper's §IV workload:
//!
//! 1. **Where does the time go?** A wall-clock [`Profiler`] (monotonic
//!    clock) wraps kernel dispatch and the stretch transform of a V-Dover
//!    run and prints per-span statistics.
//! 2. **Is the observability layer free when off?** The same simulation is
//!    micro-benchmarked through `simulate` (the `NoopTracer` default path)
//!    and through `simulate_observed` with live tracing sinks. The noop
//!    column must match the seed baseline — `Tracer` is a generic kernel
//!    parameter, so the disabled hooks fold away at compile time.
//!
//! ```text
//! cargo run --release -p cloudsched-bench --bin profile
//! ```

#![forbid(unsafe_code)]

use cloudsched_bench::microbench::BenchGroup;
use cloudsched_capacity::StretchMap;
use cloudsched_obs::{MetricsRegistry, MonotonicClock, NoopTracer, Profiler, RingTracer};
use cloudsched_sched::VDover;
use cloudsched_sim::{simulate, simulate_observed, RunOptions};
use cloudsched_workload::PaperScenario;

fn main() {
    let generated = PaperScenario::table1(8.0)
        .generate(7)
        .expect("paper scenario generates");
    let instance = &generated.instance;
    let k = instance.importance_ratio().unwrap_or(7.0);
    let delta = instance.delta().max(1.0 + 1e-9);

    // --- 1. span profile of one observed run -----------------------------
    let profiler = Profiler::new(Box::new(MonotonicClock::new()));
    let mut tracer = NoopTracer;
    let mut sched = VDover::new(k, delta);
    let report = simulate_observed(
        &instance.jobs,
        &instance.capacity,
        &mut sched,
        RunOptions::lean(),
        &mut tracer,
        Some(&profiler),
    );
    let map = StretchMap::new(instance.capacity.clone());
    let stretched = map
        .stretch_jobs_profiled(&instance.jobs, &profiler)
        .expect("stretch transform");
    println!(
        "profiled V-Dover run: value {:.2}, {}/{} completed, {} stretched jobs",
        report.value,
        report.completed,
        instance.job_count(),
        stretched.len()
    );
    print!("{}", profiler.render());

    // --- 2. tracing overhead ---------------------------------------------
    let mut g = BenchGroup::new("observability overhead (V-Dover, λ=8, seed 7)");
    g.bench("simulate (noop tracer, static)", || {
        let mut s = VDover::new(k, delta);
        simulate(
            &instance.jobs,
            &instance.capacity,
            &mut s,
            RunOptions::lean(),
        )
    });
    g.bench("simulate_observed + noop tracer", || {
        let mut s = VDover::new(k, delta);
        let mut t = NoopTracer;
        simulate_observed(
            &instance.jobs,
            &instance.capacity,
            &mut s,
            RunOptions::lean(),
            &mut t,
            None,
        )
    });
    g.bench("simulate_observed + ring tracer", || {
        let mut s = VDover::new(k, delta);
        let mut t = RingTracer::new(1 << 16);
        simulate_observed(
            &instance.jobs,
            &instance.capacity,
            &mut s,
            RunOptions::lean(),
            &mut t,
            None,
        )
    });
    g.bench("simulate_observed + metrics registry", || {
        let mut s = VDover::new(k, delta);
        let mut t = MetricsRegistry::for_sim();
        simulate_observed(
            &instance.jobs,
            &instance.capacity,
            &mut s,
            RunOptions::lean(),
            &mut t,
            None,
        )
    });
    g.report();
}
