//! Sweep-scale throughput benchmark: Monte-Carlo runs/second for the
//! Table-I policy panel in `fresh` vs `reuse` workspace modes across
//! thread counts, written to `BENCH_sweep.json`.
//!
//! ```text
//! cargo run --release -p cloudsched-bench --bin sweep [-- --quick] [--out FILE]
//! ```
//!
//! `--quick` (or `CLOUDSCHED_BENCH_QUICK=1`) restricts the sweep to 6
//! runs at threads {1, 2} — the CI smoke configuration. The written
//! report is re-parsed through the strict schema validator before the
//! process exits, and the bench itself refuses to emit rows whose output
//! digests disagree, so throughput numbers always describe byte-identical
//! work.

#![forbid(unsafe_code)]

use cloudsched_bench::{parse_sweep_rows, run_sweep_bench, sweep_rows_to_json, SweepBenchConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick =
        args.iter().any(|a| a == "--quick") || std::env::var_os("CLOUDSCHED_BENCH_QUICK").is_some();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sweep.json".into());
    let cfg = if quick {
        SweepBenchConfig::quick()
    } else {
        SweepBenchConfig::default()
    };
    eprintln!(
        "sweep bench: lambda {}, {} runs/cell, threads {:?}",
        cfg.lambda, cfg.runs, cfg.threads
    );
    let outcome = run_sweep_bench(&cfg, |row| {
        eprintln!(
            "  {:<5} threads={:<2} {:>9.2} runs/s  {:>10.3} ms  reuse_hits={}",
            row.mode, row.threads, row.runs_per_sec, row.wall_ms, row.reuse_hits
        );
    });
    eprintln!(
        "workspace counters: runs={} reuse_hits={}",
        outcome.metrics.counter("sweep.workspace.runs"),
        outcome.metrics.counter("sweep.workspace.reuse_hits"),
    );
    let json = sweep_rows_to_json(&outcome.rows);
    parse_sweep_rows(&json).expect("schema: generated report must validate");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("{out}: {e}"));
    eprintln!("wrote {} rows to {out}", outcome.rows.len());
}
