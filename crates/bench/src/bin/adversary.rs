//! Demonstrates Theorem 3(3): without individual admissibility, no online
//! algorithm keeps a positive competitive ratio.
//!
//! The adaptive adversary plays `n` independent trap rounds
//! (`cloudsched_analysis::adversary`): each round offers a high-value bait
//! job that is *not* individually admissible (it completes only if capacity
//! stays at `c_hi` for its whole window) plus a zero-laxity filler stream.
//! After watching what the scheduler does under the stay-high future, the
//! adversary commits to whichever capacity future hurts more. The achieved
//! ratio (online value / clairvoyant optimum) is printed as the filler
//! granularity grows with `n` — it decays toward zero for every scheduler in
//! the workspace, while the same schedulers keep a healthy ratio once the
//! bait is made admissible.
//!
//! Usage: `adversary [--out DIR]`

#![forbid(unsafe_code)]

use cloudsched_analysis::adversary::{TrapParams, TrapRound};
use cloudsched_analysis::table::{fnum, Table};
use cloudsched_bench::{run_instance, SchedulerSpec};
use cloudsched_capacity::Instance;
use cloudsched_sim::RunOptions;

fn main() {
    let out = std::env::args()
        .skip(1)
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "results".into());

    let k = 7.0;
    let delta = 5.0;
    let specs = [
        SchedulerSpec::VDover { k, delta },
        SchedulerSpec::Dover {
            k,
            c_estimate: delta,
        },
        SchedulerSpec::Edf,
        SchedulerSpec::GreedyValue,
    ];
    let rounds_list = [1usize, 2, 4, 8, 16, 32];

    let mut table = Table::new(
        ["rounds (n)"]
            .into_iter()
            .map(String::from)
            .chain(specs.iter().map(|s| format!("{} ratio", s.name())))
            .collect::<Vec<_>>(),
    );

    for &n in &rounds_list {
        let params = TrapParams {
            k,
            delta,
            window: 1.0,
            fillers: 4 * n, // granularity grows with n
        };
        let mut row = vec![fnum(n as f64, 0)];
        for spec in &specs {
            let (online, offline) = play(spec, params, n);
            row.push(fnum(online / offline, 4));
        }
        table.push_row(row);
    }

    println!("Theorem 3(3) adversary (k = {k}, δ = {delta}): achieved value ratio vs rounds\n");
    println!("{}", table.to_markdown());
    println!(
        "The bait job is NOT individually admissible; the adaptive adversary\n\
         drives every scheduler's ratio toward 0 as n grows. With admissible\n\
         inputs Theorem 3(2) instead guarantees V-Dover ratio >= {:.4e}.",
        cloudsched_analysis::bounds::vdover_achievable_ratio(k, delta)
    );
    std::fs::create_dir_all(&out).expect("create output dir");
    std::fs::write(format!("{out}/adversary.csv"), table.to_csv()).expect("write");
    eprintln!("wrote {out}/adversary.csv");
}

/// Plays `n` rounds adaptively against one scheduler; returns accumulated
/// (online value, clairvoyant optimal value).
fn play(spec: &SchedulerSpec, params: TrapParams, n: usize) -> (f64, f64) {
    let round = TrapRound::build(params).expect("valid trap");
    let mut online_total = 0.0;
    let mut offline_total = 0.0;
    for _ in 0..n {
        // Rounds are i.i.d. gadgets and jobs never span rounds, so playing
        // them as separate simulations with a fresh scheduler each time is
        // equivalent to one long trace.
        let stay = run_instance(
            &Instance::new(round.jobs.clone(), round.cap_stay_high.clone()),
            spec,
            RunOptions::lean(),
        );
        let drop = run_instance(
            &Instance::new(round.jobs.clone(), round.cap_drop.clone()),
            spec,
            RunOptions::lean(),
        );
        // The adversary picks the future minimising the online/offline ratio.
        let ratio_stay = stay.value / round.opt_stay_high;
        let ratio_drop = drop.value / round.opt_drop;
        if ratio_stay <= ratio_drop {
            online_total += stay.value;
            offline_total += round.opt_stay_high;
        } else {
            online_total += drop.value;
            offline_total += round.opt_drop;
        }
    }
    (online_total, offline_total)
}
