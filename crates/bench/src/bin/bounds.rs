//! Prints the theoretical competitive-ratio landscape of Theorems 1 and 3:
//! the overload penalty `f(k,δ)`, V-Dover's achievable ratio, the online
//! upper bound `1/(1+√k)²`, their quotient (asymptotic optimality), and the
//! optimal threshold `β*`.
//!
//! Usage: `bounds [--out DIR]`

#![forbid(unsafe_code)]

use cloudsched_analysis::bounds::{
    dover_beta, f_overload, optimal_beta, vdover_achievable_ratio, vdover_upper_bound,
};
use cloudsched_analysis::table::{fnum, Table};

fn main() {
    let out = std::env::args()
        .skip(1)
        .collect::<Vec<_>>()
        .windows(2)
        .find(|w| w[0] == "--out")
        .map(|w| w[1].clone())
        .unwrap_or_else(|| "results".into());

    // Sweep over k at the paper's δ = 35, and over δ at the paper's k = 7.
    let mut by_k = Table::new(vec![
        "k",
        "f(k,35)",
        "beta*",
        "achievable",
        "upper bound",
        "ach/ub",
    ]);
    for &k in &[1.0, 2.0, 4.0, 7.0, 16.0, 64.0, 256.0, 1024.0, 1e6] {
        let delta = 35.0;
        by_k.push_row(vec![
            fnum(k, 0),
            fnum(f_overload(k, delta), 3),
            fnum(optimal_beta(k, delta), 4),
            format!("{:.3e}", vdover_achievable_ratio(k, delta)),
            format!("{:.3e}", vdover_upper_bound(k)),
            fnum(vdover_achievable_ratio(k, delta) / vdover_upper_bound(k), 4),
        ]);
    }
    let mut by_delta = Table::new(vec![
        "delta",
        "f(7,delta)",
        "beta*",
        "achievable",
        "Dover beta (1+sqrt k)",
    ]);
    for &delta in &[1.1, 1.5, 2.0, 5.0, 10.0, 35.0, 100.0, 1000.0] {
        by_delta.push_row(vec![
            fnum(delta, 1),
            fnum(f_overload(7.0, delta), 3),
            fnum(optimal_beta(7.0, delta), 4),
            format!("{:.3e}", vdover_achievable_ratio(7.0, delta)),
            fnum(dover_beta(7.0), 4),
        ]);
    }

    println!("Theorem 3 bounds at δ = 35 (paper's capacity class), varying k:\n");
    println!("{}", by_k.to_markdown());
    println!("\nTheorem 3 bounds at k = 7 (paper's importance bound), varying δ:\n");
    println!("{}", by_delta.to_markdown());
    println!("\nAsymptotic optimality: ach/ub → 1 as k → ∞ (last rows of the first table).");

    std::fs::create_dir_all(&out).expect("create output dir");
    std::fs::write(format!("{out}/bounds_by_k.csv"), by_k.to_csv()).expect("write");
    std::fs::write(format!("{out}/bounds_by_delta.csv"), by_delta.to_csv()).expect("write");
    eprintln!("wrote {out}/bounds_by_k.csv and {out}/bounds_by_delta.csv");
}
