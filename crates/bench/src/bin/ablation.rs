//! Ablations of V-Dover's design choices (DESIGN.md §4) on the paper's
//! Table-I scenario at λ = 6:
//!
//! 1. the supplement queue (on/off) — the paper's mechanism (ii);
//! 2. the threshold β — paper-optimal `β* = 1+√(k/f)` vs Dover's `1+√k` vs a
//!    sweep;
//! 3. the supplement revival order — latest-deadline (paper) vs
//!    earliest-deadline vs highest-value;
//! 4. Dover's capacity estimate ĉ — fine sweep between `c_lo` and `c_hi`.
//!
//! Usage: `ablation [--runs N] [--threads N] [--out DIR]`

#![forbid(unsafe_code)]

use cloudsched_analysis::bounds::{dover_beta, optimal_beta};
use cloudsched_analysis::stats::Summary;
use cloudsched_analysis::table::{fnum, Table};
use cloudsched_bench::{parallel_map_with, run_instance_in, SchedulerSpec};
use cloudsched_core::rng::{derive_seed, SEED_STREAM_ABLATION};
use cloudsched_sched::dover::SupplementOrder;
use cloudsched_sim::{RunOptions, SimWorkspace};
use cloudsched_workload::PaperScenario;

fn main() {
    let args = Args::parse();
    let lambda = 6.0;
    let (k, delta) = (7.0, 35.0);
    let beta_star = optimal_beta(k, delta);
    let beta_dover = dover_beta(k);

    let mut variants: Vec<(String, SchedulerSpec)> = vec![
        (
            format!("V-Dover β*={beta_star:.3} (paper)"),
            SchedulerSpec::VDover { k, delta },
        ),
        (
            "V-Dover, no supplement queue".into(),
            SchedulerSpec::VDoverCustom {
                beta: beta_star,
                supplement: false,
                order: SupplementOrder::LatestDeadline,
            },
        ),
        (
            format!("V-Dover β={beta_dover:.3} (Dover's 1+√k)"),
            SchedulerSpec::VDoverCustom {
                beta: beta_dover,
                supplement: true,
                order: SupplementOrder::LatestDeadline,
            },
        ),
        (
            "V-Dover, Qsupp earliest-deadline".into(),
            SchedulerSpec::VDoverCustom {
                beta: beta_star,
                supplement: true,
                order: SupplementOrder::EarliestDeadline,
            },
        ),
        (
            "V-Dover, Qsupp highest-value".into(),
            SchedulerSpec::VDoverCustom {
                beta: beta_star,
                supplement: true,
                order: SupplementOrder::HighestValue,
            },
        ),
    ];
    for beta in [1.2, 2.0, 4.0, 8.0] {
        variants.push((
            format!("V-Dover β={beta} (sweep)"),
            SchedulerSpec::VDoverCustom {
                beta,
                supplement: true,
                order: SupplementOrder::LatestDeadline,
            },
        ));
    }
    for c in [1.0, 5.0, 17.5, 35.0] {
        variants.push((
            format!("Dover ĉ={c} (estimate sweep)"),
            SchedulerSpec::Dover { k, c_estimate: c },
        ));
    }
    // Non-Dover baselines for context.
    variants.push(("EDF".into(), SchedulerSpec::Edf));
    variants.push(("LLF(ĉ=1)".into(), SchedulerSpec::Llf(1.0)));
    variants.push(("HVDF".into(), SchedulerSpec::GreedyDensity));
    variants.push(("Greedy(value)".into(), SchedulerSpec::GreedyValue));
    variants.push(("FIFO".into(), SchedulerSpec::Fifo));

    let scenario = PaperScenario::table1(lambda);
    eprintln!(
        "Ablation at λ={lambda}: {} variants × {} runs",
        variants.len(),
        args.runs
    );
    let rows: Vec<Vec<f64>> =
        parallel_map_with(args.runs, args.threads, SimWorkspace::new, |ws, run| {
            let seed = derive_seed(SEED_STREAM_ABLATION, 0.0, run);
            let inst = scenario.generate(seed).expect("generation").instance;
            variants
                .iter()
                .map(|(_, spec)| {
                    let report = run_instance_in(ws, &inst, spec, RunOptions::lean());
                    let fraction = report.value_fraction * 100.0;
                    ws.recycle(report);
                    fraction
                })
                .collect()
        });

    let mut table = Table::new(vec!["variant", "value %", "±95% CI"]);
    for (a, (name, _)) in variants.iter().enumerate() {
        let s = Summary::from_samples(&rows.iter().map(|r| r[a]).collect::<Vec<_>>());
        table.push_row(vec![
            name.clone(),
            fnum(s.mean, 3),
            fnum(s.ci95_half_width(), 3),
        ]);
    }
    println!("\nV-Dover design ablations (λ = 6, {} runs):\n", args.runs);
    println!("{}", table.to_markdown());
    std::fs::create_dir_all(&args.out).expect("create output dir");
    std::fs::write(format!("{}/ablation.csv", args.out), table.to_csv()).expect("write");
    eprintln!("wrote {}/ablation.csv", args.out);
}

struct Args {
    runs: usize,
    threads: usize,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            runs: 200,
            threads: cloudsched_bench::default_threads(),
            out: "results".into(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--runs" => args.runs = it.next().expect("--runs N").parse().expect("number"),
                "--threads" => {
                    args.threads = it.next().expect("--threads N").parse().expect("number")
                }
                "--out" => args.out = it.next().expect("--out DIR"),
                other => panic!("unknown flag {other}"),
            }
        }
        args
    }
}
