//! Reproduces **Figure 1** of the paper: cumulative value versus time for
//! V-Dover and Dover at λ = 6, one panel per Dover capacity estimate
//! ĉ ∈ {1, 10.5, 24.5, 35}, on a single common sample path.
//!
//! Emits `results/fig1_<panel>.csv` step curves (`time,value`) per algorithm
//! and an ASCII sketch of each panel to stdout.
//!
//! Usage: `fig1 [--seed N] [--lambda F] [--out DIR]`

#![forbid(unsafe_code)]

use cloudsched_bench::{run_instance_batch, SchedulerSpec};
use cloudsched_sim::{RunOptions, TrajectoryPoint};
use cloudsched_workload::PaperScenario;

fn main() {
    let args = Args::parse();
    let scenario = PaperScenario::table1(args.lambda);
    let generated = scenario.generate(args.seed).expect("generation");
    let instance = &generated.instance;
    let total_value = instance.jobs.total_value();
    eprintln!(
        "Figure 1: λ={}, {} jobs, total value {:.1}, horizon {:.1}",
        args.lambda,
        instance.job_count(),
        total_value,
        scenario.horizon
    );

    std::fs::create_dir_all(&args.out).expect("create output dir");
    // All five curves come from one batch over the shared sample path: the
    // instance is consumed once and every policy replays it.
    let c_estimates = [1.0, 10.5, 24.5, 35.0];
    let mut specs = vec![SchedulerSpec::VDover {
        k: 7.0,
        delta: 35.0,
    }];
    specs.extend(c_estimates.iter().map(|&c| SchedulerSpec::Dover {
        k: 7.0,
        c_estimate: c,
    }));
    let mut opts = RunOptions::lean();
    opts.record_trajectory = true;
    let mut curves: Vec<Vec<TrajectoryPoint>> = run_instance_batch(instance, &specs, opts)
        .into_iter()
        .map(|report| report.trajectory.expect("trajectory recorded"))
        .collect();
    let dovers = curves.split_off(1);
    let vdover = curves.remove(0);
    write_curve(&args.out, "fig1_vdover", &vdover);

    for (&c, dover) in c_estimates.iter().zip(&dovers) {
        let panel = format!("fig1_dover_c{}", c.to_string().replace('.', "_"));
        write_curve(&args.out, &panel, dover);
        println!(
            "\nPanel ĉ = {c}: final value V-Dover {:.1} vs Dover {:.1} (of {:.1} total)",
            last_value(&vdover),
            last_value(dover),
            total_value
        );
        ascii_panel(&vdover, dover, scenario.horizon);
    }
    eprintln!("curves written under {}/", args.out);
}

fn last_value(t: &[TrajectoryPoint]) -> f64 {
    t.last().map(|p| p.cumulative_value).unwrap_or(0.0)
}

fn write_curve(dir: &str, name: &str, t: &[TrajectoryPoint]) {
    let mut out = String::from("time,value\n");
    for p in t {
        out.push_str(&format!("{:.6},{:.6}\n", p.time, p.cumulative_value));
    }
    let path = format!("{dir}/{name}.csv");
    std::fs::write(&path, out).expect("write curve");
}

/// Tiny ASCII rendition: V-Dover `*`, Dover `o`, both `#`.
fn ascii_panel(vd: &[TrajectoryPoint], dv: &[TrajectoryPoint], horizon: f64) {
    const W: usize = 72;
    const H: usize = 14;
    let max = last_value(vd).max(last_value(dv)).max(1e-9);
    let sample = |t: &[TrajectoryPoint], x: f64| -> f64 {
        // Step function: last value at time <= x.
        t.iter()
            .take_while(|p| p.time <= x)
            .last()
            .map(|p| p.cumulative_value)
            .unwrap_or(0.0)
    };
    let mut grid = vec![vec![' '; W]; H];
    for (col, cell) in (0..W).zip(0..W) {
        let x = horizon * (col as f64 + 0.5) / W as f64;
        let yv = ((sample(vd, x) / max) * (H as f64 - 1.0)).round() as usize;
        let yd = ((sample(dv, x) / max) * (H as f64 - 1.0)).round() as usize;
        let rv = H - 1 - yv.min(H - 1);
        let rd = H - 1 - yd.min(H - 1);
        grid[rd][cell] = 'o';
        grid[rv][cell] = if rv == rd { '#' } else { '*' };
    }
    for row in grid {
        println!("  |{}", row.into_iter().collect::<String>());
    }
    println!("  +{}", "-".repeat(W));
    println!(
        "   0 {:>w$.1} (time)   [*: V-Dover, o: Dover, #: both]",
        horizon,
        w = W - 4
    );
}

struct Args {
    seed: u64,
    lambda: f64,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            seed: 2011,
            lambda: 6.0,
            out: "results".into(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--seed" => args.seed = it.next().expect("--seed N").parse().expect("number"),
                "--lambda" => args.lambda = it.next().expect("--lambda F").parse().expect("number"),
                "--out" => args.out = it.next().expect("--out DIR"),
                other => panic!("unknown flag {other} (try --seed/--lambda/--out)"),
            }
        }
        args
    }
}
