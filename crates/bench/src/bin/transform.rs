//! Demonstrates the §III-A stretch transformation: solving the transformed
//! constant-capacity problem gives *exactly* the optimal value of the
//! original varying-capacity problem, and schedules map back bijectively.
//!
//! For random small instances we compare: (a) exact optimum computed
//! directly on the varying-capacity system, (b) exact optimum via the
//! stretch reduction, (c) the offline greedy heuristics on both sides.
//!
//! Usage: `transform [--instances N] [--jobs N]`

#![forbid(unsafe_code)]

use cloudsched_analysis::table::{fnum, Table};
use cloudsched_capacity::Instance;
use cloudsched_core::rng::{derive_seed, Pcg32, Rng, SEED_STREAM_TRANSFORM};
use cloudsched_core::{Job, JobId, JobSet, Time};
use cloudsched_offline::exact::optimal_value;
use cloudsched_offline::greedy::greedy_by_density;
use cloudsched_offline::reduction::{reduce, solve_via_stretch};
use cloudsched_workload::ctmc::CtmcCapacity;
use cloudsched_workload::dist::{exponential, uniform};

fn main() {
    let args = Args::parse();
    let mut agree = 0usize;
    let mut max_abs_diff: f64 = 0.0;
    let mut table = Table::new(vec![
        "instance",
        "direct opt",
        "via-stretch opt",
        "greedy (orig)",
        "greedy (stretched)",
    ]);

    for i in 0..args.instances {
        // SEED_STREAM_TRANSFORM == the former literal base, and
        // `derive_seed(s, 0.0, i) == s + i` exactly — output is unchanged.
        let mut rng = Pcg32::seed_from_u64(derive_seed(SEED_STREAM_TRANSFORM, 0.0, i));
        let inst = random_instance(&mut rng, args.jobs);
        let (direct, _) = optimal_value(&inst.jobs, &inst.capacity);
        let (via, _) = solve_via_stretch(&inst).expect("reduction");
        let (g_orig, _) = greedy_by_density(&inst.jobs, &inst.capacity);
        let reduced = reduce(&inst).expect("reduction");
        let (g_stretch, _) = greedy_by_density(&reduced.jobs, &reduced.capacity);
        let diff = (direct - via).abs();
        max_abs_diff = max_abs_diff.max(diff);
        if diff < 1e-6 {
            agree += 1;
        }
        if i < 10 {
            table.push_row(vec![
                fnum(i as f64, 0),
                fnum(direct, 4),
                fnum(via, 4),
                fnum(g_orig, 4),
                fnum(g_stretch, 4),
            ]);
        }
    }

    println!(
        "Stretch-transformation equivalence over {} random instances ({} jobs each):\n",
        args.instances, args.jobs
    );
    println!("{}", table.to_markdown());
    println!(
        "\nDirect and via-stretch optima agree on {agree}/{} instances \
         (max |difference| = {max_abs_diff:.2e}).",
        args.instances
    );
    println!(
        "The greedy heuristic is also invariant under the transformation — the\n\
         bijection maps feasible sets to feasible sets, so any subset-selection\n\
         algorithm that only queries feasibility behaves identically."
    );
}

fn random_instance(rng: &mut Pcg32, jobs: usize) -> Instance {
    let chain = CtmcCapacity::two_state(1.0, 3.0, 2.0).expect("chain");
    let capacity = chain.sample(rng, 30.0).expect("trace");
    let tuples: Vec<Job> = (0..jobs)
        .map(|i| {
            let r = rng.next_f64() * 10.0;
            let p = exponential(rng, 1.0).max(0.05);
            let slack = 0.3 + rng.next_f64() * 2.0;
            let d = r + p * slack;
            let v = p * uniform(rng, 1.0, 7.0);
            Job::new(JobId(i as u64), Time::new(r), Time::new(d), p, v).expect("job")
        })
        .collect();
    Instance::new(JobSet::new(tuples).expect("jobs"), capacity)
}

struct Args {
    instances: usize,
    jobs: usize,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            instances: 50,
            jobs: 12,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--instances" => {
                    args.instances = it.next().expect("--instances N").parse().expect("number")
                }
                "--jobs" => args.jobs = it.next().expect("--jobs N").parse().expect("number"),
                other => panic!("unknown flag {other}"),
            }
        }
        args
    }
}
