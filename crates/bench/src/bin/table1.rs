//! Reproduces **Table I** of the paper: percentage of the total generated
//! value obtained by Dover (with capacity estimates ĉ ∈ {1, 10.5, 24.5, 35})
//! and by V-Dover, for λ ∈ {4, 5, 6, 7, 8, 10, 12}, averaged over Monte-Carlo
//! runs; plus the relative gain of V-Dover over the best Dover column.
//!
//! Usage: `table1 [--runs N] [--threads N] [--out DIR]`
//! (paper defaults: 800 runs).

#![forbid(unsafe_code)]

use cloudsched_analysis::stats::Summary;
use cloudsched_analysis::table::{fnum, Table};
use cloudsched_bench::{parallel_map_with, run_instance_batch_in, SchedulerSpec};
use cloudsched_core::rng::{derive_seed, SEED_STREAM_TABLE1};
use cloudsched_sim::{RunOptions, SimWorkspace};
use cloudsched_workload::PaperScenario;

fn main() {
    let args = Args::parse();
    let lambdas = [4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0];
    let c_estimates = [1.0, 10.5, 24.5, 35.0];
    let k = 7.0;
    let delta = 35.0;

    let mut specs: Vec<SchedulerSpec> = c_estimates
        .iter()
        .map(|&c| SchedulerSpec::Dover { k, c_estimate: c })
        .collect();
    specs.push(SchedulerSpec::VDover { k, delta });
    let names: Vec<String> = specs.iter().map(SchedulerSpec::name).collect();

    let mut table = Table::new(
        ["lambda"]
            .into_iter()
            .map(String::from)
            .chain(names.iter().cloned())
            .chain(["best Dover".into(), "gain %".into()])
            .collect::<Vec<String>>(),
    );
    let mut csv = Table::new(
        ["lambda"]
            .into_iter()
            .map(String::from)
            .chain(names.iter().cloned())
            .chain(["gain_percent".into()])
            .collect::<Vec<String>>(),
    );

    eprintln!(
        "Table I: {} runs per (lambda, algorithm) cell, {} threads",
        args.runs, args.threads
    );
    for &lambda in &lambdas {
        let scenario = PaperScenario::table1(lambda);
        // One fraction per (run, algorithm): all algorithms see the SAME
        // instance per seed (paired comparison, as the paper's Fig. 1 does),
        // generated once and replayed across the batch. Each worker reuses a
        // simulation workspace across its runs.
        let rows: Vec<Vec<f64>> =
            parallel_map_with(args.runs, args.threads, SimWorkspace::new, |ws, run| {
                let seed = derive_seed(SEED_STREAM_TABLE1, lambda, run);
                let generated = scenario.generate(seed).expect("generation");
                run_instance_batch_in(ws, &generated.instance, &specs, RunOptions::lean())
                    .into_iter()
                    .map(|report| {
                        let fraction = report.value_fraction * 100.0;
                        ws.recycle(report);
                        fraction
                    })
                    .collect()
            });
        let means: Vec<Summary> = (0..specs.len())
            .map(|a| Summary::from_samples(&rows.iter().map(|r| r[a]).collect::<Vec<_>>()))
            .collect();
        let dover_best = means[..c_estimates.len()]
            .iter()
            .map(|s| s.mean)
            .fold(0.0f64, f64::max);
        let vdover = means[c_estimates.len()].mean;
        let gain = (vdover - dover_best) / dover_best * 100.0;

        let mut row = vec![fnum(lambda, 0)];
        row.extend(means.iter().map(|s| fnum(s.mean, 4)));
        row.push(fnum(dover_best, 4));
        row.push(fnum(gain, 2));
        table.push_row(row);
        let mut crow = vec![fnum(lambda, 1)];
        crow.extend(means.iter().map(|s| fnum(s.mean, 6)));
        crow.push(fnum(gain, 4));
        csv.push_row(crow);
        eprintln!(
            "  λ={lambda:>4}: best Dover {:.2}%, V-Dover {:.2}% (gain {:+.2}%)",
            dover_best, vdover, gain
        );
    }

    println!(
        "\nTable I (reproduced): % of total value obtained, {} runs\n",
        args.runs
    );
    println!("{}", table.to_markdown());
    let path = format!("{}/table1.csv", args.out);
    std::fs::create_dir_all(&args.out).expect("create output dir");
    std::fs::write(&path, csv.to_csv()).expect("write csv");
    eprintln!("wrote {path}");
}

struct Args {
    runs: usize,
    threads: usize,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            runs: 800,
            threads: cloudsched_bench::default_threads(),
            out: "results".into(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--runs" => args.runs = it.next().expect("--runs N").parse().expect("number"),
                "--threads" => {
                    args.threads = it.next().expect("--threads N").parse().expect("number")
                }
                "--out" => args.out = it.next().expect("--out DIR"),
                other => panic!("unknown flag {other} (try --runs/--threads/--out)"),
            }
        }
        args
    }
}
