//! Kernel hot-path benchmark: ns/decision for EDF / Dover / V-Dover at
//! n ∈ {1e3, 1e4, 1e5} jobs, written to `BENCH_kernel.json`.
//!
//! ```text
//! cargo run --release -p cloudsched-bench --bin kernel [-- --quick] [--out FILE]
//! ```
//!
//! `--quick` (or `CLOUDSCHED_BENCH_QUICK=1`) restricts the sweep to
//! n = 1e3 with a single repetition — the CI smoke configuration. The
//! written report is re-parsed through the strict schema validator before
//! the process exits, so a malformed report fails the run.

#![forbid(unsafe_code)]

use cloudsched_bench::{parse_rows, rows_to_json, run_kernel_bench, KernelBenchConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick =
        args.iter().any(|a| a == "--quick") || std::env::var_os("CLOUDSCHED_BENCH_QUICK").is_some();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernel.json".into());
    let cfg = if quick {
        KernelBenchConfig::quick()
    } else {
        KernelBenchConfig::default()
    };
    eprintln!(
        "kernel bench: sizes {:?}, seed {}, {} rep(s)",
        cfg.sizes, cfg.seed, cfg.reps
    );
    let rows = run_kernel_bench(&cfg, |row| {
        eprintln!(
            "  {:<14} n={:<7} {:>10.1} ns/decision  {:>10.3} ms",
            row.scheduler, row.n, row.ns_per_decision, row.wall_ms
        );
    });
    let json = rows_to_json(&rows);
    parse_rows(&json).expect("schema: generated report must validate");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("{out}: {e}"));
    eprintln!("wrote {} rows to {out}", rows.len());
}
