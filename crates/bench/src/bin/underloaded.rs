//! Empirical check of **Theorem 2**: EDF achieves competitive ratio 1 for
//! underloaded systems even under time-varying capacity.
//!
//! Generates certified-underloaded instances (carved from a witness
//! schedule, `cloudsched_workload::underloaded`) on random piecewise
//! capacity, and reports the fraction of the total value each scheduler
//! earns. EDF must hit 100% on every instance; the overload-oriented and
//! naive baselines generally do not.
//!
//! Usage: `underloaded [--instances N] [--jobs N] [--out DIR]`

#![forbid(unsafe_code)]

use cloudsched_analysis::stats::Summary;
use cloudsched_analysis::table::{fnum, Table};
use cloudsched_bench::{parallel_map_with, run_instance_batch_in, SchedulerSpec};
use cloudsched_core::rng::{derive_seed, Pcg32, SEED_STREAM_UNDERLOADED};
use cloudsched_sim::{RunOptions, SimWorkspace};
use cloudsched_workload::ctmc::CtmcCapacity;
use cloudsched_workload::underloaded::{carve_underloaded, UnderloadedParams};

fn main() {
    let args = Args::parse();
    let specs = [
        SchedulerSpec::Edf,
        SchedulerSpec::Llf(1.0),
        SchedulerSpec::VDover { k: 7.0, delta: 4.0 },
        SchedulerSpec::Dover {
            k: 7.0,
            c_estimate: 1.0,
        },
        SchedulerSpec::Fifo,
        SchedulerSpec::GreedyValue,
    ];

    let fractions: Vec<Vec<f64>> =
        parallel_map_with(args.instances, args.threads, SimWorkspace::new, |ws, i| {
            let seed = derive_seed(SEED_STREAM_UNDERLOADED, 0.0, i);
            let mut rng = Pcg32::seed_from_u64(seed);
            let chain = CtmcCapacity::two_state(1.0, 4.0, 3.0).expect("chain");
            let capacity = chain.sample(&mut rng, 200.0).expect("trace");
            let params = UnderloadedParams {
                jobs: args.jobs,
                ..UnderloadedParams::default()
            };
            let instance = carve_underloaded(&mut rng, capacity, params).expect("carve");
            run_instance_batch_in(ws, &instance, &specs, RunOptions::lean())
                .into_iter()
                .map(|report| {
                    let fraction = report.value_fraction;
                    ws.recycle(report);
                    fraction
                })
                .collect()
        });

    let mut table = Table::new(vec![
        "scheduler",
        "mean value %",
        "min value %",
        "instances at 100%",
    ]);
    for (a, spec) in specs.iter().enumerate() {
        let samples: Vec<f64> = fractions.iter().map(|r| r[a] * 100.0).collect();
        let s = Summary::from_samples(&samples);
        let perfect = samples.iter().filter(|&&x| x > 100.0 - 1e-6).count();
        table.push_row(vec![
            spec.name(),
            fnum(s.mean, 3),
            fnum(s.min, 3),
            format!("{perfect}/{}", args.instances),
        ]);
    }

    println!(
        "Theorem 2 check: {} certified-underloaded instances × {} jobs on CTMC(1,4) capacity\n",
        args.instances, args.jobs
    );
    println!("{}", table.to_markdown());
    let edf_min = fractions.iter().map(|r| r[0]).fold(f64::INFINITY, f64::min);
    if edf_min > 1.0 - 1e-6 {
        println!("EDF earned 100% of the value on every instance — Theorem 2 confirmed.");
    } else {
        println!(
            "WARNING: EDF dropped below 100% (min {:.4}).",
            edf_min * 100.0
        );
    }
    std::fs::create_dir_all(&args.out).expect("create output dir");
    std::fs::write(format!("{}/underloaded.csv", args.out), table.to_csv()).expect("write");
    eprintln!("wrote {}/underloaded.csv", args.out);
}

struct Args {
    instances: usize,
    jobs: usize,
    threads: usize,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            instances: 200,
            jobs: 60,
            threads: cloudsched_bench::default_threads(),
            out: "results".into(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--instances" => {
                    args.instances = it.next().expect("--instances N").parse().expect("number")
                }
                "--jobs" => args.jobs = it.next().expect("--jobs N").parse().expect("number"),
                "--threads" => {
                    args.threads = it.next().expect("--threads N").parse().expect("number")
                }
                "--out" => args.out = it.next().expect("--out DIR"),
                other => panic!("unknown flag {other}"),
            }
        }
        args
    }
}
