//! # cloudsched-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§IV), plus the extra experiments indexed in
//! `DESIGN.md`:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I — value percentage, Dover(ĉ) vs V-Dover, relative gain |
//! | `fig1` | Figure 1(a–d) — cumulative value vs time at λ = 6 |
//! | `bounds` | the Theorem 1/3 competitive-ratio curves and β* |
//! | `adversary` | Theorem 3(3) — vanishing ratio without admissibility |
//! | `underloaded` | Theorem 2 — EDF earns 100% on underloaded instances |
//! | `transform` | §III-A — stretch reduction equals direct solving |
//! | `ablation` | design-choice ablations (supplement queue, β, ĉ, Qsupp order) |
//!
//! The library part hosts the parallel Monte-Carlo driver, the scheduler
//! factory, the std-only [`microbench`] timing harness shared by the
//! binaries and the bench targets, and the two checked-in benchmark
//! suites behind `cloudsched bench`: the [`kernel_bench`] hot-path sweep
//! (`BENCH_kernel.json`) and the [`sweep_bench`] Monte-Carlo throughput
//! sweep (`BENCH_sweep.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algos;
pub mod fleet_bench;
pub mod harness;
pub mod kernel_bench;
pub mod microbench;
pub mod ratio;
pub mod sweep_bench;

pub use algos::SchedulerSpec;
pub use fleet_bench::{
    fleet_digest, fleet_rows_to_json, fleet_suite_run, parse_fleet_rows, run_fleet_bench,
    FleetBenchConfig, FleetBenchRow,
};
pub use harness::{
    default_threads, parallel_map, parallel_map_with, run_instance, run_instance_batch,
    run_instance_batch_in, run_instance_in,
};
pub use kernel_bench::{
    bench_instance, parse_rows, rows_to_json, run_kernel_bench, KernelBenchConfig, KernelBenchRow,
};
pub use microbench::BenchGroup;
pub use ratio::{empirical_ratio, Normalizer};
pub use sweep_bench::{
    parse_sweep_rows, run_sweep_bench, sweep_rows_to_json, sweep_specs, SweepBenchConfig,
    SweepBenchOutcome, SweepBenchRow,
};
