//! The fleet-scaling benchmark behind `cloudsched bench --suite fleet`:
//! per-machine kernels fanned out over `core::par` — the first workload
//! where `--threads N` buys real wall-clock speedup (`DESIGN.md` §16).
//!
//! Each `(machines, threads)` cell runs the same Monte-Carlo fleet runs —
//! power-of-two-choices dispatch over V-Dover machines on the fleet Table-I
//! scenario — and times the whole thing. Rows are paired by `machines`:
//! every thread count must reproduce the *identical* per-run fleet digests
//! (value bits, completed, events, preemptions, dispatches per machine,
//! plus the quarantine/steal counters), and [`run_fleet_bench`] refuses to
//! emit a report whose rows diverge within a pair. Thread-count invariance
//! is a hard output contract, not a statistical observation.
//!
//! Timing flows through the [`cloudsched_obs::Clock`] seam
//! ([`MonotonicClock`] — the bench crate is the sanctioned wall-clock
//! user, lint rules L005/L006).

use crate::SchedulerSpec;
use cloudsched_core::rng::{derive_seed, FLEET_DISPATCH_RUN_OFFSET, SEED_STREAM_FLEET};
use cloudsched_obs::{Clock, MonotonicClock};
use cloudsched_sched::DispatchPolicy;
use cloudsched_sim::{run_fleet, FleetReport, RunOptions, Scheduler};
use cloudsched_workload::FleetScenario;

/// One measurement: a `(machines, threads)` cell of the fleet suite.
///
/// Serialized verbatim as one JSON object per row of `BENCH_fleet.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetBenchRow {
    /// Benchmark family (always `"fleet"`).
    pub bench: String,
    /// Fleet size `M`.
    pub machines: usize,
    /// Worker threads the per-machine kernels fanned out over.
    pub threads: usize,
    /// Monte-Carlo fleet runs in the cell.
    pub runs: usize,
    /// Total wall time of the cell, in milliseconds.
    pub wall_ms: f64,
    /// Fleet runs per second — the headline scaling number.
    pub runs_per_sec: f64,
    /// Cross-machine steals summed over the cell's runs (thread-count
    /// invariant, like everything the digest covers).
    pub steals: u64,
    /// FNV-1a 64 digest of every fleet report in run order, as 16 hex
    /// digits. Identical across thread counts within a `machines` pair, or
    /// the bench refuses to emit.
    pub digest: String,
    /// Seed stream the per-run seeds derive from.
    pub seed: u64,
}

/// Fleet suite configuration.
#[derive(Debug, Clone)]
pub struct FleetBenchConfig {
    /// Per-machine arrival rate of the fleet Table-I scenario (default 8).
    pub lambda: f64,
    /// Scenario horizon (default 250 — the paper's `2000/λ` at λ = 8,
    /// ≈ 2000 jobs per machine).
    pub horizon: f64,
    /// Fleet sizes to sweep (default `[4, 16, 64]`).
    pub machines: Vec<usize>,
    /// Thread counts to pair per fleet size (default `[1, 4]`).
    pub threads: Vec<usize>,
    /// Monte-Carlo fleet runs per cell (default 4).
    pub runs: usize,
}

impl Default for FleetBenchConfig {
    fn default() -> Self {
        FleetBenchConfig {
            lambda: 8.0,
            horizon: 250.0,
            machines: vec![4, 16, 64],
            threads: vec![1, 4],
            runs: 4,
        }
    }
}

impl FleetBenchConfig {
    /// CI smoke configuration: tiny horizon, fleets of 2 and 4, threads 1
    /// and 2 — fast enough for every commit, still exercising the
    /// serial-vs-threaded digest pairing.
    pub fn quick() -> Self {
        FleetBenchConfig {
            lambda: 6.0,
            horizon: 8.0,
            machines: vec![2, 4],
            threads: vec![1, 2],
            runs: 2,
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one u64 into an FNV-1a 64 state, byte by byte.
fn fnv1a(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Digest of one fleet run: the per-machine observables in machine-index
/// order, then the fleet-level dispatch counters. Everything the digest
/// covers must be a pure function of `(seed, M, policy)`.
pub fn fleet_digest(report: &FleetReport) -> u64 {
    let mut h = FNV_OFFSET;
    for m in &report.per_machine {
        for word in [
            m.report.value.to_bits(),
            m.report.completed as u64,
            m.report.events as u64,
            m.report.preemptions as u64,
            m.report.dispatches as u64,
        ] {
            h = fnv1a(h, word);
        }
    }
    for word in [
        report.quarantined as u64,
        report.steals as u64,
        report.readmitted as u64,
    ] {
        h = fnv1a(h, word);
    }
    h
}

/// One Monte-Carlo fleet run of the suite: instance from run slot `run`,
/// p2c dispatch seeded from the offset run slot, V-Dover (k = 7, δ = 35)
/// per machine.
pub fn fleet_suite_run(
    cfg: &FleetBenchConfig,
    m: usize,
    run: usize,
    threads: usize,
) -> FleetReport {
    let scenario = FleetScenario::table1(cfg.lambda, m).with_horizon(cfg.horizon);
    let seed = derive_seed(SEED_STREAM_FLEET, cfg.lambda, run);
    let instance = scenario
        .generate(seed)
        .expect("fleet scenario generation is infallible for valid configs");
    let mut dispatch = DispatchPolicy::PowerOfTwo.build(derive_seed(
        SEED_STREAM_FLEET,
        cfg.lambda,
        FLEET_DISPATCH_RUN_OFFSET + run,
    ));
    let spec = SchedulerSpec::VDover {
        k: 7.0,
        delta: 35.0,
    };
    let factory = move |_m: usize| -> Box<dyn Scheduler> { spec.build() };
    run_fleet(
        &instance.jobs,
        &instance.machines,
        dispatch.as_mut(),
        &factory,
        RunOptions::lean(),
        threads,
    )
}

/// Runs the full fleet suite: for each fleet size, one cell per thread
/// count, every cell replaying the identical run sequence. `progress`
/// receives one line per completed cell.
///
/// # Panics
/// If two cells of the same fleet size disagree on digest or steal count —
/// output that depends on the thread count is a correctness bug, and the
/// bench refuses to report throughput for it.
pub fn run_fleet_bench(
    cfg: &FleetBenchConfig,
    mut progress: impl FnMut(&FleetBenchRow),
) -> Vec<FleetBenchRow> {
    let clock = MonotonicClock::new();
    let mut rows: Vec<FleetBenchRow> = Vec::new();
    for &m in &cfg.machines {
        let mut pair_digest: Option<String> = None;
        for &threads in &cfg.threads {
            let t0 = clock.now_ns();
            let mut h = FNV_OFFSET;
            let mut steals = 0u64;
            for run in 0..cfg.runs {
                let report = fleet_suite_run(cfg, m, run, threads);
                h = fnv1a(h, fleet_digest(&report));
                steals += report.steals as u64;
            }
            let wall_ns = clock.now_ns().saturating_sub(t0).max(1);
            let row = FleetBenchRow {
                bench: "fleet".into(),
                machines: m,
                threads,
                runs: cfg.runs,
                wall_ms: wall_ns as f64 / 1e6,
                runs_per_sec: cfg.runs as f64 / (wall_ns as f64 / 1e9),
                steals,
                digest: format!("{h:016x}"),
                seed: SEED_STREAM_FLEET,
            };
            match &pair_digest {
                None => pair_digest = Some(row.digest.clone()),
                Some(first) => assert_eq!(
                    &row.digest, first,
                    "fleet output diverged at machines={m} threads={threads} — \
                     equal bytes across thread counts are a hard invariant"
                ),
            }
            progress(&row);
            rows.push(row);
        }
    }
    rows
}

/// Formats one f64 for the JSON report: fixed 3 decimal places.
fn fmt_f64(x: f64) -> String {
    format!("{x:.3}")
}

/// Serializes rows as a JSON array, one object per line (stable key order).
pub fn fleet_rows_to_json(rows: &[FleetBenchRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"bench\":\"{}\",\"machines\":{},\"threads\":{},\"runs\":{},\"wall_ms\":{},\"runs_per_sec\":{},\"steals\":{},\"digest\":\"{}\",\"seed\":{}}}{}\n",
            r.bench,
            r.machines,
            r.threads,
            r.runs,
            fmt_f64(r.wall_ms),
            fmt_f64(r.runs_per_sec),
            r.steals,
            r.digest,
            r.seed,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

/// Strictly parses the exact format written by [`fleet_rows_to_json`] —
/// the schema validator behind the CI fleet-smoke step. Returns the rows,
/// or the first format violation. Digest and steal-count equality within
/// each `machines` group is part of the schema.
pub fn parse_fleet_rows(text: &str) -> Result<Vec<FleetBenchRow>, String> {
    let mut lines = text.lines().enumerate();
    let (_, first) = lines.next().ok_or("empty report")?;
    if first.trim() != "[" {
        return Err("line 1: expected `[`".into());
    }
    let mut rows = Vec::new();
    let mut closed = false;
    for (idx, line) in lines {
        let line_no = idx + 1;
        let t = line.trim();
        if t == "]" {
            closed = true;
            continue;
        }
        if closed {
            if !t.is_empty() {
                return Err(format!("line {line_no}: content after closing `]`"));
            }
            continue;
        }
        let obj = t.trim_end_matches(',');
        rows.push(parse_fleet_row(obj).map_err(|e| format!("line {line_no}: {e}"))?);
    }
    if !closed {
        return Err("missing closing `]`".into());
    }
    if rows.is_empty() {
        return Err("report carries no rows".into());
    }
    // Pairing invariant: within one fleet size, every thread count must
    // agree on digest and steal count.
    for r in &rows {
        let anchor = rows
            .iter()
            .find(|a| a.machines == r.machines)
            .expect("self-inclusive search");
        if r.digest != anchor.digest {
            return Err(format!(
                "digest mismatch: machines={} threads={} disagrees with threads={}",
                r.machines, r.threads, anchor.threads
            ));
        }
        if r.steals != anchor.steals {
            return Err(format!(
                "steal-count mismatch: machines={} threads={} disagrees with threads={}",
                r.machines, r.threads, anchor.threads
            ));
        }
    }
    Ok(rows)
}

/// Parses one row object, requiring the exact field set and order of the
/// schema: `bench`, `machines`, `threads`, `runs`, `wall_ms`,
/// `runs_per_sec`, `steals`, `digest`, `seed`.
fn parse_fleet_row(obj: &str) -> Result<FleetBenchRow, String> {
    let inner = obj
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("row is not a JSON object")?;
    let mut fields = crate::kernel_bench::split_top_level(inner).into_iter();
    let mut next = |key: &str| -> Result<String, String> {
        let field = fields.next().ok_or(format!("missing field `{key}`"))?;
        let (k, v) = field
            .split_once(':')
            .ok_or(format!("malformed field `{field}`"))?;
        if k.trim() != format!("\"{key}\"") {
            return Err(format!("expected field `{key}`, found `{}`", k.trim()));
        }
        Ok(v.trim().to_string())
    };
    let bench = crate::kernel_bench::unquote(&next("bench")?)?;
    let machines: usize = next("machines")?
        .parse()
        .map_err(|e| format!("machines: {e}"))?;
    let threads: usize = next("threads")?
        .parse()
        .map_err(|e| format!("threads: {e}"))?;
    let runs: usize = next("runs")?.parse().map_err(|e| format!("runs: {e}"))?;
    let wall_ms: f64 = next("wall_ms")?
        .parse()
        .map_err(|e| format!("wall_ms: {e}"))?;
    let runs_per_sec: f64 = next("runs_per_sec")?
        .parse()
        .map_err(|e| format!("runs_per_sec: {e}"))?;
    let steals: u64 = next("steals")?
        .parse()
        .map_err(|e| format!("steals: {e}"))?;
    let digest = crate::kernel_bench::unquote(&next("digest")?)?;
    let seed: u64 = next("seed")?.parse().map_err(|e| format!("seed: {e}"))?;
    if let Some(extra) = fields.next() {
        return Err(format!("unexpected extra field `{extra}`"));
    }
    if bench != "fleet" {
        return Err(format!("bench must be `fleet`, got `{bench}`"));
    }
    if machines == 0 {
        return Err("machines must be positive".into());
    }
    if threads == 0 {
        return Err("threads must be positive".into());
    }
    if runs == 0 {
        return Err("runs must be positive".into());
    }
    if !(wall_ms.is_finite() && wall_ms > 0.0) {
        return Err(format!("wall_ms must be positive, got {wall_ms}"));
    }
    if !(runs_per_sec.is_finite() && runs_per_sec > 0.0) {
        return Err(format!("runs_per_sec must be positive, got {runs_per_sec}"));
    }
    if digest.len() != 16 || !digest.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("digest must be 16 hex digits, got `{digest}`"));
    }
    Ok(FleetBenchRow {
        bench,
        machines,
        threads,
        runs,
        wall_ms,
        runs_per_sec,
        steals,
        digest,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FleetBenchConfig {
        FleetBenchConfig {
            lambda: 4.0,
            horizon: 5.0,
            machines: vec![2, 3],
            threads: vec![1, 2],
            runs: 2,
        }
    }

    #[test]
    fn fleet_rows_round_trip_through_the_schema() {
        let rows = run_fleet_bench(&tiny(), |_| {});
        assert_eq!(rows.len(), 4, "2 fleet sizes x 2 thread counts");
        let json = fleet_rows_to_json(&rows);
        let back = parse_fleet_rows(&json).expect("round trip");
        assert_eq!(back.len(), rows.len());
        for (a, b) in rows.iter().zip(back.iter()) {
            assert_eq!(a.machines, b.machines);
            assert_eq!(a.threads, b.threads);
            assert_eq!(a.digest, b.digest);
            assert_eq!(a.steals, b.steals);
        }
    }

    #[test]
    fn digests_pair_within_a_fleet_size_and_differ_across_sizes() {
        let rows = run_fleet_bench(&tiny(), |_| {});
        let d2: Vec<&String> = rows
            .iter()
            .filter(|r| r.machines == 2)
            .map(|r| &r.digest)
            .collect();
        let d3: Vec<&String> = rows
            .iter()
            .filter(|r| r.machines == 3)
            .map(|r| &r.digest)
            .collect();
        assert!(d2.windows(2).all(|w| w[0] == w[1]));
        assert!(d3.windows(2).all(|w| w[0] == w[1]));
        assert_ne!(d2[0], d3[0], "different fleets, different workloads");
    }

    #[test]
    fn validator_rejects_malformed_fleet_reports() {
        assert!(parse_fleet_rows("").is_err());
        assert!(parse_fleet_rows("[\n]\n").is_err(), "no rows");
        assert!(parse_fleet_rows("[\n  {\"bench\":\"fleet\"}\n]\n").is_err());
        let row = |threads: usize, steals: u64, digest: &str| {
            format!(
                "  {{\"bench\":\"fleet\",\"machines\":4,\"threads\":{threads},\"runs\":2,\"wall_ms\":1.000,\"runs_per_sec\":5.000,\"steals\":{steals},\"digest\":\"{digest}\",\"seed\":1}}"
            )
        };
        let good = format!(
            "[\n{},\n{}\n]\n",
            row(1, 3, &"a".repeat(16)),
            row(2, 3, &"a".repeat(16))
        );
        assert_eq!(parse_fleet_rows(&good).expect("valid").len(), 2);
        let drift = format!(
            "[\n{},\n{}\n]\n",
            row(1, 3, &"a".repeat(16)),
            row(2, 3, &"b".repeat(16))
        );
        assert!(parse_fleet_rows(&drift).is_err(), "digest drift");
        let steal_drift = format!(
            "[\n{},\n{}\n]\n",
            row(1, 3, &"a".repeat(16)),
            row(2, 4, &"a".repeat(16))
        );
        assert!(parse_fleet_rows(&steal_drift).is_err(), "steal drift");
    }
}
