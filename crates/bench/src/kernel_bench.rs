//! The kernel hot-path benchmark behind `cloudsched bench` and the
//! `kernel` binary: seeded EDF / Dover / V-Dover runs at n ∈ {1e3, 1e4,
//! 1e5} jobs, reporting nanoseconds per scheduling decision and total wall
//! time, serialized to `BENCH_kernel.json` at the repository root so the
//! perf trajectory of the project is reproducible and diffable.
//!
//! Timing flows through the [`cloudsched_obs::Clock`] seam
//! ([`MonotonicClock`] — the bench crate is the sanctioned wall-clock user,
//! lint rules L005/L006); the workload generator is fully deterministic in
//! the seed, so two runs on the same machine measure the same instruction
//! stream.

use crate::SchedulerSpec;
use cloudsched_capacity::Instance;
use cloudsched_core::rng::{Pcg32, Rng};
use cloudsched_core::{Job, JobId, JobSet, Time};
use cloudsched_obs::{Clock, MonotonicClock};
use cloudsched_sim::{RunOptions, SimWorkspace};
use cloudsched_workload::dist::{exponential, uniform};
use cloudsched_workload::CtmcCapacity;

/// One measurement: a `(bench, n, scheduler, seed)` cell of the sweep.
///
/// Serialized verbatim as one JSON object per row of `BENCH_kernel.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBenchRow {
    /// Benchmark family (currently always `"kernel"`).
    pub bench: String,
    /// Number of jobs in the instance.
    pub n: usize,
    /// Scheduler display name (`EDF`, `Dover(c=18)`, `V-Dover`).
    pub scheduler: String,
    /// Wall nanoseconds per scheduling decision (kernel events processed).
    pub ns_per_decision: f64,
    /// Total wall time of the fastest run, in milliseconds.
    pub wall_ms: f64,
    /// Workload seed.
    pub seed: u64,
    /// Event-queue backend the cell ran on: `"flat"` (calendar queue, the
    /// production path) or `"heap"` (reference `BinaryHeap`, emitted by the
    /// flat-vs-heap comparison mode). Older reports omit the field and
    /// parse as `"flat"`.
    pub queue: String,
}

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct KernelBenchConfig {
    /// Instance sizes to sweep (default `[1_000, 10_000, 100_000]`).
    pub sizes: Vec<usize>,
    /// Workload seed (default 7, the golden-trace seed).
    pub seed: u64,
    /// Timed repetitions per cell; the fastest run is reported (default 3).
    pub reps: usize,
    /// Flat-vs-heap comparison mode: when set, every cell is measured twice
    /// — once on the calendar queue (`queue: "flat"`) and once on the
    /// reference `BinaryHeap` backend (`queue: "heap"`) — so the memory-
    /// layout win is recorded in the report instead of a commit message.
    pub compare: bool,
}

impl Default for KernelBenchConfig {
    fn default() -> Self {
        KernelBenchConfig {
            sizes: vec![1_000, 10_000, 100_000, 1_000_000],
            seed: 7,
            reps: 3,
            compare: false,
        }
    }
}

impl KernelBenchConfig {
    /// CI smoke configuration: n = 1e3 only, single repetition.
    pub fn quick() -> Self {
        KernelBenchConfig {
            sizes: vec![1_000],
            seed: 7,
            reps: 1,
            compare: false,
        }
    }
}

/// Arrival horizon of the benchmark workload (time units). All `n` jobs
/// are released within `[0, HORIZON]`, so the arrival rate — and with it
/// the instantaneous queue depth — scales linearly with `n`. A fixed-rate
/// generator keeps queue depths at O(λ) no matter how large `n` grows and
/// linear-time queue operations never surface; the fixed-horizon burst is
/// what makes O(n) work inside the event loop visible as a super-linear
/// ns/decision trend across the sweep.
const HORIZON: f64 = 100.0;

/// The schedulers the sweep measures. Dover gets the mid-class capacity
/// estimate the paper's §IV uses against C(1, 35).
fn specs() -> Vec<SchedulerSpec> {
    vec![
        SchedulerSpec::Edf,
        SchedulerSpec::Dover {
            k: 7.0,
            c_estimate: 18.0,
        },
        SchedulerSpec::VDover {
            k: 7.0,
            delta: 35.0,
        },
    ]
}

/// Fraction of *urgent* jobs — short windows, negative conservative laxity
/// at `c_lo`, so every one of them runs the zero-laxity arbitration path
/// (the paper's §IV overload regime).
const TIGHT_SHARE: f64 = 0.9;

/// Generates the benchmark instance: exactly `n` jobs released over the
/// fixed [`HORIZON`] with Exp(n/HORIZON) inter-arrivals, Exp(1) workloads
/// and value densities U[1, 7]; capacity follows the two-state CTMC on
/// {0.01, 35} with mean sojourn a quarter of the horizon (so the run
/// alternates between deep overload and fast drains that exercise the
/// supplement-rescue path). Deadlines are a 90/10 mix: *urgent* jobs get
/// windows of 40–70% of the horizon — under `c_lo = 0.01` the estimated
/// processing time `p/c_lo = 100·p` typically exceeds the window, so their
/// zero-laxity interrupts fire early, the Dover arbitration path runs for
/// every one of them, and the losers dwell in `Qsupp` until their deadline
/// — while *loose* jobs get a batch-style window of 70–95% of the horizon.
/// Because the arrival rate grows with `n`, every queue a scheduler keeps
/// (ready sets, `Qother`, `Qsupp`) holds Θ(n) jobs at the peak, and any
/// linear-time queue operation inside the event loop shows up as a
/// super-linear ns/decision trend across the sweep.
pub fn bench_instance(n: usize, seed: u64) -> Instance {
    let mut rng = Pcg32::seed_from_u64(seed);
    let lambda = n as f64 / HORIZON;
    let mut jobs = Vec::with_capacity(n);
    let mut t = 0.0f64;
    for i in 0..n {
        t += exponential(&mut rng, lambda);
        let workload = exponential(&mut rng, 1.0).max(1e-9);
        let density = uniform(&mut rng, 1.0, 7.0);
        let window = if rng.next_f64() < TIGHT_SHARE {
            workload + uniform(&mut rng, 0.40, 0.70) * HORIZON
        } else {
            workload + uniform(&mut rng, 0.70, 0.95) * HORIZON
        };
        jobs.push(
            Job::new(
                JobId(i as u64),
                Time::new(t),
                Time::new(t + window),
                workload,
                density * workload,
            )
            .expect("invariant: generated job parameters are positive and ordered"),
        );
    }
    let jobs = JobSet::new(jobs).expect("invariant: generated ids are dense and sorted");
    let horizon = (jobs.last_deadline().as_f64() + 1.0).max(1.0);
    let chain = CtmcCapacity::two_state(0.01, 35.0, HORIZON / 4.0)
        .expect("invariant: CTMC bounds are positive and ordered");
    let capacity = chain
        .sample(&mut rng, horizon)
        .expect("invariant: sampled capacity trace covers a positive horizon");
    Instance::new(jobs, capacity)
}

/// Measures one `(instance, spec, queue)` cell: runs the simulation `reps`
/// times and reports the fastest wall time, normalised per kernel decision
/// (the processed-event count, which is independent of wall time). Both
/// backends get a fresh workspace per repetition, so the comparison
/// measures the queue, not allocator warm-up asymmetry.
fn measure(
    instance: &Instance,
    spec: &SchedulerSpec,
    reps: usize,
    seed: u64,
    queue: &str,
) -> KernelBenchRow {
    let clock = MonotonicClock::new();
    let mut best_ns = u64::MAX;
    let mut decisions = 1usize;
    for _ in 0..reps.max(1) {
        let mut ws = if queue == "heap" {
            SimWorkspace::with_reference_queue()
        } else {
            SimWorkspace::new()
        };
        let t0 = clock.now_ns();
        let report = crate::run_instance_in(&mut ws, instance, spec, RunOptions::lean());
        let elapsed = clock.now_ns().saturating_sub(t0);
        best_ns = best_ns.min(elapsed.max(1));
        decisions = report.events.max(1);
    }
    KernelBenchRow {
        bench: "kernel".into(),
        n: instance.job_count(),
        scheduler: spec.name(),
        ns_per_decision: best_ns as f64 / decisions as f64,
        wall_ms: best_ns as f64 / 1e6,
        seed,
        queue: queue.into(),
    }
}

/// Runs the full sweep: every scheduler at every size, in deterministic
/// order (sizes ascending, schedulers EDF → Dover → V-Dover; in comparison
/// mode each cell's `flat` row is immediately followed by its `heap` row).
/// `progress` receives one line per completed cell.
pub fn run_kernel_bench(
    cfg: &KernelBenchConfig,
    mut progress: impl FnMut(&KernelBenchRow),
) -> Vec<KernelBenchRow> {
    let mut rows = Vec::new();
    for &n in &cfg.sizes {
        let instance = bench_instance(n, cfg.seed);
        for spec in specs() {
            for queue in if cfg.compare {
                &["flat", "heap"][..]
            } else {
                &["flat"][..]
            } {
                let row = measure(&instance, &spec, cfg.reps, cfg.seed, queue);
                progress(&row);
                rows.push(row);
            }
        }
    }
    rows
}

/// Formats one f64 for the JSON report: fixed 3 decimal places, which is
/// plenty for nanosecond ratios and keeps rows diff-friendly.
fn fmt_f64(x: f64) -> String {
    format!("{x:.3}")
}

/// Serializes rows as a JSON array, one object per line (stable key order).
pub fn rows_to_json(rows: &[KernelBenchRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"bench\":\"{}\",\"n\":{},\"scheduler\":\"{}\",\"ns_per_decision\":{},\"wall_ms\":{},\"seed\":{},\"queue\":\"{}\"}}{}\n",
            r.bench,
            r.n,
            r.scheduler,
            fmt_f64(r.ns_per_decision),
            fmt_f64(r.wall_ms),
            r.seed,
            r.queue,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

/// Strictly parses the exact format written by [`rows_to_json`] — the
/// schema validator used by the CI bench-smoke step. Returns the rows, or
/// the first format violation.
pub fn parse_rows(text: &str) -> Result<Vec<KernelBenchRow>, String> {
    let mut lines = text.lines().enumerate();
    let (_, first) = lines.next().ok_or("empty report")?;
    if first.trim() != "[" {
        return Err("line 1: expected `[`".into());
    }
    let mut rows = Vec::new();
    let mut closed = false;
    for (idx, line) in lines {
        let line_no = idx + 1;
        let t = line.trim();
        if t == "]" {
            closed = true;
            continue;
        }
        if closed {
            if !t.is_empty() {
                return Err(format!("line {line_no}: content after closing `]`"));
            }
            continue;
        }
        let obj = t.trim_end_matches(',');
        rows.push(parse_row(obj).map_err(|e| format!("line {line_no}: {e}"))?);
    }
    if !closed {
        return Err("missing closing `]`".into());
    }
    if rows.is_empty() {
        return Err("report carries no rows".into());
    }
    Ok(rows)
}

/// Parses one row object, requiring the exact field set and order of the
/// schema: `bench`, `n`, `scheduler`, `ns_per_decision`, `wall_ms`, `seed`,
/// plus an optional trailing `queue` (`"flat"`/`"heap"`; pre-comparison
/// reports omit it and default to `"flat"`).
fn parse_row(obj: &str) -> Result<KernelBenchRow, String> {
    let inner = obj
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("row is not a JSON object")?;
    let mut fields = split_top_level(inner).into_iter();
    let mut next = |key: &str| -> Result<String, String> {
        let field = fields.next().ok_or(format!("missing field `{key}`"))?;
        let (k, v) = field
            .split_once(':')
            .ok_or(format!("malformed field `{field}`"))?;
        if k.trim() != format!("\"{key}\"") {
            return Err(format!("expected field `{key}`, found `{}`", k.trim()));
        }
        Ok(v.trim().to_string())
    };
    let bench = unquote(&next("bench")?)?;
    let n: usize = next("n")?.parse().map_err(|e| format!("n: {e}"))?;
    let scheduler = unquote(&next("scheduler")?)?;
    let ns_per_decision: f64 = next("ns_per_decision")?
        .parse()
        .map_err(|e| format!("ns_per_decision: {e}"))?;
    let wall_ms: f64 = next("wall_ms")?
        .parse()
        .map_err(|e| format!("wall_ms: {e}"))?;
    let seed: u64 = next("seed")?.parse().map_err(|e| format!("seed: {e}"))?;
    let queue = match fields.next() {
        Some(field) => {
            let (k, v) = field
                .split_once(':')
                .ok_or(format!("malformed field `{field}`"))?;
            if k.trim() != "\"queue\"" {
                return Err(format!("unexpected extra field `{field}`"));
            }
            unquote(v.trim())?
        }
        None => "flat".to_string(),
    };
    if let Some(extra) = fields.next() {
        return Err(format!("unexpected extra field `{extra}`"));
    }
    if !(ns_per_decision.is_finite() && ns_per_decision > 0.0) {
        return Err(format!(
            "ns_per_decision must be positive, got {ns_per_decision}"
        ));
    }
    if !(wall_ms.is_finite() && wall_ms > 0.0) {
        return Err(format!("wall_ms must be positive, got {wall_ms}"));
    }
    if n == 0 {
        return Err("n must be positive".into());
    }
    if queue != "flat" && queue != "heap" {
        return Err(format!("queue must be `flat` or `heap`, got `{queue}`"));
    }
    Ok(KernelBenchRow {
        bench,
        n,
        scheduler,
        ns_per_decision,
        wall_ms,
        seed,
        queue,
    })
}

/// Splits a flat JSON-object body on commas that are not inside strings.
/// Shared with the sweep-bench schema validator.
pub(crate) fn split_top_level(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                parts.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

pub(crate) fn unquote(s: &str) -> Result<String, String> {
    s.strip_prefix('"')
        .and_then(|x| x.strip_suffix('"'))
        .map(str::to_string)
        .ok_or(format!("expected a JSON string, got `{s}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_is_deterministic_and_sized() {
        let a = bench_instance(500, 7);
        let b = bench_instance(500, 7);
        assert_eq!(a.job_count(), 500);
        assert_eq!(b.job_count(), 500);
        for (x, y) in a.jobs.iter().zip(b.jobs.iter()) {
            assert_eq!(x.release, y.release);
            assert_eq!(x.deadline, y.deadline);
        }
        let c = bench_instance(500, 8);
        assert!(a
            .jobs
            .iter()
            .zip(c.jobs.iter())
            .any(|(x, y)| x.release != y.release));
    }

    #[test]
    fn quick_sweep_produces_schema_valid_rows() {
        let cfg = KernelBenchConfig {
            sizes: vec![200],
            seed: 7,
            reps: 1,
            compare: false,
        };
        let rows = run_kernel_bench(&cfg, |_| {});
        assert_eq!(rows.len(), 3, "EDF, Dover, V-Dover");
        assert!(rows.iter().all(|r| r.queue == "flat"));
        let json = rows_to_json(&rows);
        let back = parse_rows(&json).expect("round trip");
        assert_eq!(back.len(), rows.len());
        for (a, b) in rows.iter().zip(back.iter()) {
            assert_eq!(a.scheduler, b.scheduler);
            assert_eq!(a.n, b.n);
            assert_eq!(a.seed, b.seed);
            assert_eq!(a.queue, b.queue);
        }
    }

    #[test]
    fn compare_mode_emits_paired_flat_and_heap_rows() {
        let cfg = KernelBenchConfig {
            sizes: vec![200],
            seed: 7,
            reps: 1,
            compare: true,
        };
        let rows = run_kernel_bench(&cfg, |_| {});
        assert_eq!(rows.len(), 6, "each scheduler cell measured twice");
        for pair in rows.chunks(2) {
            assert_eq!(pair[0].scheduler, pair[1].scheduler);
            assert_eq!(pair[0].n, pair[1].n);
            assert_eq!(
                (pair[0].queue.as_str(), pair[1].queue.as_str()),
                ("flat", "heap")
            );
        }
        let back = parse_rows(&rows_to_json(&rows)).expect("round trip");
        assert_eq!(back, rows_should_eq(&rows));
    }

    /// Timing fields survive the 3-decimal serialization only approximately;
    /// normalise them so `compare_mode_emits_paired_flat_and_heap_rows` can
    /// compare full rows.
    fn rows_should_eq(rows: &[KernelBenchRow]) -> Vec<KernelBenchRow> {
        rows.iter()
            .map(|r| KernelBenchRow {
                ns_per_decision: format!("{:.3}", r.ns_per_decision).parse().unwrap(),
                wall_ms: format!("{:.3}", r.wall_ms).parse().unwrap(),
                ..r.clone()
            })
            .collect()
    }

    #[test]
    fn validator_rejects_malformed_reports() {
        assert!(parse_rows("").is_err());
        assert!(parse_rows("[\n]\n").is_err(), "no rows");
        assert!(parse_rows("[\n  {\"bench\":\"kernel\"}\n]\n").is_err());
        assert!(parse_rows(
            "[\n  {\"bench\":\"k\",\"n\":1,\"scheduler\":\"EDF\",\"ns_per_decision\":-1,\"wall_ms\":1,\"seed\":7}\n]\n"
        )
        .is_err(), "negative ns/decision");
        assert!(parse_rows("[\n  {\"n\":1}\n").is_err(), "unclosed array");
        // Pre-comparison reports (no queue field) parse as flat rows.
        let legacy = parse_rows(
            "[\n  {\"bench\":\"kernel\",\"n\":1,\"scheduler\":\"EDF\",\"ns_per_decision\":1,\"wall_ms\":1,\"seed\":7}\n]\n"
        ).expect("legacy rows stay valid");
        assert_eq!(legacy[0].queue, "flat");
        assert!(parse_rows(
            "[\n  {\"bench\":\"kernel\",\"n\":1,\"scheduler\":\"EDF\",\"ns_per_decision\":1,\"wall_ms\":1,\"seed\":7,\"queue\":\"ring\"}\n]\n"
        ).is_err(), "unknown queue backend");
        assert!(parse_rows(
            "[\n  {\"bench\":\"kernel\",\"n\":1,\"scheduler\":\"EDF\",\"ns_per_decision\":1,\"wall_ms\":1,\"seed\":7,\"queue\":\"heap\",\"x\":1}\n]\n"
        ).is_err(), "extra field after queue");
    }
}
