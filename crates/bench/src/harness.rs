//! Parallel Monte-Carlo driver.
//!
//! The index fan-out lives in [`cloudsched_core::par`] (work-stealing,
//! index-order deterministic, thread-count independent) and is re-exported
//! here so experiment binaries keep a single import point. This module adds
//! the simulation-specific layers on top: per-worker workspace reuse
//! ([`run_instance_in`]) and the shared-instance multi-policy batch runner
//! ([`run_instance_batch`]).

use crate::algos::SchedulerSpec;
use cloudsched_capacity::Instance;
use cloudsched_sim::{simulate_into, RunOptions, RunReport, SimWorkspace};

pub use cloudsched_core::par::{default_threads, parallel_map, parallel_map_with};

/// Simulates one scheduler spec on one instance.
///
/// Convenience form of [`run_instance_in`] with a throwaway workspace —
/// fine for single runs; sweeps should hold a [`SimWorkspace`] per worker
/// (e.g. via [`parallel_map_with`]) and call [`run_instance_in`] or
/// [`run_instance_batch`] instead.
pub fn run_instance(instance: &Instance, spec: &SchedulerSpec, options: RunOptions) -> RunReport {
    run_instance_in(&mut SimWorkspace::new(), instance, spec, options)
}

/// Simulates one scheduler spec on one instance, reusing `ws` for every
/// per-run buffer. Results are byte-identical to [`run_instance`].
pub fn run_instance_in(
    ws: &mut SimWorkspace,
    instance: &Instance,
    spec: &SchedulerSpec,
    options: RunOptions,
) -> RunReport {
    let mut scheduler = spec.build();
    simulate_into(
        ws,
        &instance.jobs,
        &instance.capacity,
        &mut *scheduler,
        options,
    )
}

/// Runs every spec in `specs` on the same instance and returns the reports
/// in spec order.
///
/// This is the Table I inner loop: the instance (arrival draw + capacity
/// realisation) is built **once** per seed and replayed across all
/// schedulers, instead of regenerating per policy. All runs share one
/// internal workspace, so after the first spec warms it the remaining
/// specs reuse its buffers (every report keeps its own outcome table — the
/// one per-run allocation the batch can't recycle, since it's returned).
/// The reports are exactly what per-spec [`run_instance`] calls would have
/// produced.
pub fn run_instance_batch(
    instance: &Instance,
    specs: &[SchedulerSpec],
    options: RunOptions,
) -> Vec<RunReport> {
    run_instance_batch_in(&mut SimWorkspace::new(), instance, specs, options)
}

/// [`run_instance_batch`] into a caller-owned workspace, for sweeps that
/// batch many seeds per worker.
pub fn run_instance_batch_in(
    ws: &mut SimWorkspace,
    instance: &Instance,
    specs: &[SchedulerSpec],
    options: RunOptions,
) -> Vec<RunReport> {
    specs
        .iter()
        .map(|spec| run_instance_in(ws, instance, spec, options))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_core::JobSet;

    fn small_instance() -> Instance {
        let jobs = JobSet::from_tuples(&[
            (0.0, 4.0, 2.0, 1.0),
            (0.5, 3.0, 1.0, 5.0),
            (1.0, 9.0, 4.0, 2.0),
        ])
        .unwrap();
        let cap = cloudsched_capacity::PiecewiseConstant::constant(1.0).unwrap();
        Instance::new(jobs, cap)
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, 8, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn parallel_map_edge_cases() {
        assert!(parallel_map(0, 4, |i| i).is_empty());
        assert_eq!(parallel_map(1, 16, |i| i + 1), vec![1]);
    }

    #[test]
    fn run_instance_smoke() {
        let jobs = JobSet::from_tuples(&[(0.0, 4.0, 2.0, 1.0)]).unwrap();
        let cap = cloudsched_capacity::PiecewiseConstant::constant(1.0).unwrap();
        let inst = Instance::new(jobs, cap);
        let r = run_instance(&inst, &SchedulerSpec::Edf, RunOptions::lean());
        assert_eq!(r.completed, 1);
        assert_eq!(r.scheduler, "EDF");
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // The same indexed tasks give identical results regardless of
        // parallelism.
        let a = parallel_map(50, 1, |i| i as u64 * 7 % 13);
        let b = parallel_map(50, 8, |i| i as u64 * 7 % 13);
        assert_eq!(a, b);
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs() {
        let inst = small_instance();
        let mut ws = SimWorkspace::new();
        let vdover = SchedulerSpec::VDover { k: 5.0, delta: 1.0 };
        for spec in [SchedulerSpec::Edf, vdover] {
            let fresh = run_instance(&inst, &spec, RunOptions::full());
            let reused = run_instance_in(&mut ws, &inst, &spec, RunOptions::full());
            assert_eq!(format!("{fresh:?}"), format!("{reused:?}"));
            ws.recycle(reused);
        }
        assert_eq!(ws.runs(), 2);
    }

    #[test]
    fn batch_equals_per_spec_runs() {
        let inst = small_instance();
        let specs = [
            SchedulerSpec::Edf,
            SchedulerSpec::VDover { k: 5.0, delta: 1.0 },
            SchedulerSpec::Edf,
        ];
        let batch = run_instance_batch(&inst, &specs, RunOptions::full());
        assert_eq!(batch.len(), specs.len());
        for (spec, got) in specs.iter().zip(&batch) {
            let want = run_instance(&inst, spec, RunOptions::full());
            assert_eq!(format!("{want:?}"), format!("{got:?}"));
        }
    }
}
