//! Parallel Monte-Carlo driver.

use crate::algos::SchedulerSpec;
use cloudsched_capacity::Instance;
use cloudsched_sim::{simulate, RunOptions, RunReport};

/// Runs `f(i)` for `i in 0..n` across `threads` workers and returns results
/// in index order. Deterministic: the index is the only per-task input, so
/// callers derive RNG seeds from it.
///
/// Each worker owns a contiguous chunk of the output buffer
/// (`chunks_mut`), so results are written lock-free and without any shared
/// counters — the per-slot `Mutex` allocation the previous implementation
/// paid per task is gone, and false sharing is limited to the two cache
/// lines at each chunk boundary.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads > 0, "need at least one worker");
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        for (c, out) in slots.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = c * chunk;
                for (off, slot) in out.iter_mut().enumerate() {
                    *slot = Some(f(base + off));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("invariant: every index 0..n was computed by exactly one worker"))
        .collect()
}

/// Simulates one scheduler spec on one instance.
pub fn run_instance(instance: &Instance, spec: &SchedulerSpec, options: RunOptions) -> RunReport {
    let mut scheduler = spec.build();
    simulate(&instance.jobs, &instance.capacity, &mut *scheduler, options)
}

/// Default worker count: all cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_core::JobSet;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(100, 8, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn parallel_map_edge_cases() {
        assert!(parallel_map(0, 4, |i| i).is_empty());
        assert_eq!(parallel_map(1, 16, |i| i + 1), vec![1]);
    }

    #[test]
    fn run_instance_smoke() {
        let jobs = JobSet::from_tuples(&[(0.0, 4.0, 2.0, 1.0)]).unwrap();
        let cap = cloudsched_capacity::PiecewiseConstant::constant(1.0).unwrap();
        let inst = Instance::new(jobs, cap);
        let r = run_instance(&inst, &SchedulerSpec::Edf, RunOptions::lean());
        assert_eq!(r.completed, 1);
        assert_eq!(r.scheduler, "EDF");
    }

    #[test]
    fn deterministic_across_thread_counts() {
        // The same indexed tasks give identical results regardless of
        // parallelism.
        let a = parallel_map(50, 1, |i| i as u64 * 7 % 13);
        let b = parallel_map(50, 8, |i| i as u64 * 7 % 13);
        assert_eq!(a, b);
    }
}
