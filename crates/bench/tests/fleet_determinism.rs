//! Satellite of `DESIGN.md` §16: fleet output is a pure function of
//! `(seed, M, policy)` — bit-identical at every thread count.
//!
//! 50 seeds × M ∈ {2, 16} × threads ∈ {1, 2, 8}, p2c dispatch over V-Dover
//! machines on a tiny-horizon fleet scenario: the serial run is the
//! reference, and every threaded run must reproduce its fleet digest *and*
//! the byte-exact per-machine reports (Debug formatting covers every field,
//! float bits included).

#![forbid(unsafe_code)]

use cloudsched_bench::{fleet_digest, fleet_suite_run, FleetBenchConfig};

#[test]
fn p2c_dispatch_is_bit_identical_across_thread_counts() {
    let cfg = FleetBenchConfig {
        lambda: 4.0,
        horizon: 4.0,
        machines: vec![],
        threads: vec![],
        runs: 0,
    };
    for m in [2usize, 16] {
        for run in 0..50 {
            let reference = fleet_suite_run(&cfg, m, run, 1);
            let ref_digest = fleet_digest(&reference);
            let ref_bytes: Vec<String> = reference
                .per_machine
                .iter()
                .map(|r| format!("{r:?}"))
                .collect();
            for threads in [2usize, 8] {
                let got = fleet_suite_run(&cfg, m, run, threads);
                assert_eq!(
                    fleet_digest(&got),
                    ref_digest,
                    "digest drift at M={m} run={run} threads={threads}"
                );
                assert_eq!(
                    got.per_machine.len(),
                    reference.per_machine.len(),
                    "machine count drift at M={m} run={run} threads={threads}"
                );
                for (machine, bytes) in ref_bytes.iter().enumerate() {
                    assert_eq!(
                        &format!("{:?}", got.per_machine[machine]),
                        bytes,
                        "per-machine report drift at M={m} run={run} \
                         threads={threads} machine={machine}"
                    );
                }
                assert_eq!(got.assignment, reference.assignment);
                assert_eq!(got.steals, reference.steals);
                assert_eq!(got.quarantined, reference.quarantined);
                assert_eq!(
                    got.value.to_bits(),
                    reference.value.to_bits(),
                    "aggregate value bits drift at M={m} run={run} threads={threads}"
                );
            }
        }
    }
}
