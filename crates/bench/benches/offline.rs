//! Offline-algorithm scaling: EDF feasibility testing and the exact
//! branch-and-bound optimum as the instance grows (NP-hard problem — the
//! point is to document where exactness stays affordable).

#![forbid(unsafe_code)]

use cloudsched_bench::BenchGroup;
use cloudsched_capacity::PiecewiseConstant;
use cloudsched_core::{Job, JobId, JobSet, Time};
use cloudsched_offline::{edf_feasible, greedy_by_density, optimal_value};
use std::hint::black_box;

fn deterministic_jobs(n: usize) -> JobSet {
    let jobs: Vec<Job> = (0..n)
        .map(|i| {
            let f = i as f64;
            let r = (f * 0.73) % 5.0;
            let p = 0.3 + (f * 0.41) % 1.2;
            let d = r + p * (0.8 + (f * 0.29) % 1.6);
            let v = 1.0 + (f * 1.7) % 6.0;
            Job::new(JobId(i as u64), Time::new(r), Time::new(d), p, v).expect("job")
        })
        .collect();
    JobSet::new(jobs).expect("set")
}

fn capacity() -> PiecewiseConstant {
    PiecewiseConstant::from_durations(&[(2.0, 1.0), (3.0, 3.0), (2.0, 2.0)]).expect("capacity")
}

fn main() {
    let cap = capacity();

    let mut group = BenchGroup::new("offline/edf-feasible");
    for &n in &[10usize, 100, 1000] {
        let jobs = deterministic_jobs(n);
        let cap = cap.clone();
        group.bench(&format!("{n} jobs"), move || {
            black_box(edf_feasible(jobs.as_slice(), &cap))
        });
    }
    group.report();

    let mut group = BenchGroup::new("offline/exact-bnb");
    for &n in &[8usize, 12, 16] {
        let jobs = deterministic_jobs(n);
        let cap = cap.clone();
        group.bench(&format!("{n} jobs"), move || {
            black_box(optimal_value(&jobs, &cap))
        });
    }
    group.report();

    let mut group = BenchGroup::new("offline/greedy");
    let jobs = deterministic_jobs(100);
    group.bench("greedy-density-100", || {
        black_box(greedy_by_density(&jobs, &cap))
    });
    group.report();
}
