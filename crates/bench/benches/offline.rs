//! Offline-algorithm scaling: EDF feasibility testing and the exact
//! branch-and-bound optimum as the instance grows (NP-hard problem — the
//! point is to document where exactness stays affordable).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cloudsched_capacity::PiecewiseConstant;
use cloudsched_core::{Job, JobId, JobSet, Time};
use cloudsched_offline::{edf_feasible, greedy_by_density, optimal_value};
use std::hint::black_box;

fn deterministic_jobs(n: usize) -> JobSet {
    let jobs: Vec<Job> = (0..n)
        .map(|i| {
            let f = i as f64;
            let r = (f * 0.73) % 5.0;
            let p = 0.3 + (f * 0.41) % 1.2;
            let d = r + p * (0.8 + (f * 0.29) % 1.6);
            let v = 1.0 + (f * 1.7) % 6.0;
            Job::new(JobId(i as u64), Time::new(r), Time::new(d), p, v).expect("job")
        })
        .collect();
    JobSet::new(jobs).expect("set")
}

fn capacity() -> PiecewiseConstant {
    PiecewiseConstant::from_durations(&[(2.0, 1.0), (3.0, 3.0), (2.0, 2.0)]).expect("capacity")
}

fn feasibility(c: &mut Criterion) {
    let cap = capacity();
    let mut group = c.benchmark_group("offline/edf-feasible");
    for &n in &[10usize, 100, 1000] {
        let jobs = deterministic_jobs(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &jobs, |b, jobs| {
            b.iter(|| black_box(edf_feasible(jobs.as_slice(), &cap)))
        });
    }
    group.finish();
}

fn exact_optimum(c: &mut Criterion) {
    let cap = capacity();
    let mut group = c.benchmark_group("offline/exact-bnb");
    group.sample_size(10);
    for &n in &[8usize, 12, 16] {
        let jobs = deterministic_jobs(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &jobs, |b, jobs| {
            b.iter(|| black_box(optimal_value(jobs, &cap)))
        });
    }
    group.finish();
}

fn greedy(c: &mut Criterion) {
    let cap = capacity();
    let jobs = deterministic_jobs(100);
    c.bench_function("offline/greedy-density-100", |b| {
        b.iter(|| black_box(greedy_by_density(&jobs, &cap)))
    });
}

criterion_group!(benches, feasibility, exact_optimum, greedy);
criterion_main!(benches);
