//! Simulation-kernel throughput on the paper's §IV workload: full runs of
//! the Table-I scenario at several arrival rates, measuring end-to-end
//! simulation time of the event core including scheduler callbacks.

#![forbid(unsafe_code)]

use cloudsched_bench::{run_instance, BenchGroup, SchedulerSpec};
use cloudsched_sim::RunOptions;
use cloudsched_workload::PaperScenario;

fn main() {
    let mut group = BenchGroup::new("kernel/paper-scenario");
    for &lambda in &[4.0, 8.0, 12.0] {
        let scenario = PaperScenario::table1(lambda);
        let instance = scenario.generate(7).expect("generation").instance;
        let jobs = instance.job_count();
        group.bench(&format!("vdover/lambda{lambda} ({jobs} jobs)"), || {
            run_instance(
                &instance,
                &SchedulerSpec::VDover {
                    k: 7.0,
                    delta: 35.0,
                },
                RunOptions::lean(),
            )
        });
    }
    group.report();

    let scenario = PaperScenario::table1(8.0);
    let instance = scenario.generate(7).expect("generation").instance;
    let mut group = BenchGroup::new("kernel/recording");
    group.bench("lean", || {
        run_instance(&instance, &SchedulerSpec::Edf, RunOptions::lean())
    });
    group.bench("full", || {
        run_instance(&instance, &SchedulerSpec::Edf, RunOptions::full())
    });
    group.report();
}
