//! Simulation-kernel throughput on the paper's §IV workload: full runs of
//! the Table-I scenario at several arrival rates, measuring end-to-end
//! events/second of the event core including scheduler callbacks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cloudsched_bench::{run_instance, SchedulerSpec};
use cloudsched_sim::RunOptions;
use cloudsched_workload::PaperScenario;
use std::hint::black_box;

fn kernel_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/paper-scenario");
    group.sample_size(10);
    for &lambda in &[4.0, 8.0, 12.0] {
        let scenario = PaperScenario::table1(lambda);
        let instance = scenario.generate(7).expect("generation").instance;
        group.throughput(Throughput::Elements(instance.job_count() as u64));
        group.bench_with_input(
            BenchmarkId::new("vdover", lambda as u64),
            &instance,
            |b, inst| {
                b.iter(|| {
                    black_box(run_instance(
                        inst,
                        &SchedulerSpec::VDover { k: 7.0, delta: 35.0 },
                        RunOptions::lean(),
                    ))
                })
            },
        );
    }
    group.finish();
}

fn recording_overhead(c: &mut Criterion) {
    let scenario = PaperScenario::table1(8.0);
    let instance = scenario.generate(7).expect("generation").instance;
    let mut group = c.benchmark_group("kernel/recording");
    group.sample_size(10);
    group.bench_function("lean", |b| {
        b.iter(|| {
            black_box(run_instance(
                &instance,
                &SchedulerSpec::Edf,
                RunOptions::lean(),
            ))
        })
    });
    group.bench_function("full", |b| {
        b.iter(|| {
            black_box(run_instance(
                &instance,
                &SchedulerSpec::Edf,
                RunOptions::full(),
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, kernel_throughput, recording_overhead);
criterion_main!(benches);
