//! Per-scheduler decision overhead: identical Table-I instance (λ = 8),
//! one full simulation per scheduler. Differences are pure scheduler cost
//! (queue maintenance, timers, value comparisons) on top of the same kernel.

#![forbid(unsafe_code)]

use cloudsched_bench::{run_instance, BenchGroup, SchedulerSpec};
use cloudsched_sim::RunOptions;
use cloudsched_workload::PaperScenario;

fn main() {
    let instance = PaperScenario::table1(8.0)
        .generate(42)
        .expect("generation")
        .instance;
    let specs: Vec<(&str, SchedulerSpec)> = vec![
        ("edf", SchedulerSpec::Edf),
        ("llf", SchedulerSpec::Llf(1.0)),
        ("fifo", SchedulerSpec::Fifo),
        ("hvdf", SchedulerSpec::GreedyDensity),
        (
            "dover",
            SchedulerSpec::Dover {
                k: 7.0,
                c_estimate: 10.5,
            },
        ),
        (
            "vdover",
            SchedulerSpec::VDover {
                k: 7.0,
                delta: 35.0,
            },
        ),
    ];
    let mut group = BenchGroup::new("schedulers/lambda8");
    for (name, spec) in specs {
        group.bench(name, || run_instance(&instance, &spec, RunOptions::lean()));
    }
    group.report();
}
