//! Per-scheduler decision overhead: identical Table-I instance (λ = 8),
//! one full simulation per scheduler. Differences are pure scheduler cost
//! (queue maintenance, timers, value comparisons) on top of the same kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use cloudsched_bench::{run_instance, SchedulerSpec};
use cloudsched_sim::RunOptions;
use cloudsched_workload::PaperScenario;
use std::hint::black_box;

fn scheduler_overhead(c: &mut Criterion) {
    let instance = PaperScenario::table1(8.0)
        .generate(42)
        .expect("generation")
        .instance;
    let specs: Vec<(&str, SchedulerSpec)> = vec![
        ("edf", SchedulerSpec::Edf),
        ("llf", SchedulerSpec::Llf(1.0)),
        ("fifo", SchedulerSpec::Fifo),
        ("hvdf", SchedulerSpec::GreedyDensity),
        (
            "dover",
            SchedulerSpec::Dover {
                k: 7.0,
                c_estimate: 10.5,
            },
        ),
        ("vdover", SchedulerSpec::VDover { k: 7.0, delta: 35.0 }),
    ];
    let mut group = c.benchmark_group("schedulers/lambda8");
    group.sample_size(10);
    for (name, spec) in specs {
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_instance(&instance, &spec, RunOptions::lean())))
        });
    }
    group.finish();
}

criterion_group!(benches, scheduler_overhead);
criterion_main!(benches);
