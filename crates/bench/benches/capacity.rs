//! Capacity-profile primitive costs: integration, inverse queries and the
//! stretch transformation on profiles with many segments (the hot path of
//! every kernel event).

#![forbid(unsafe_code)]

use cloudsched_bench::BenchGroup;
use cloudsched_capacity::{CapacityProfile, PiecewiseConstant, StretchMap};
use cloudsched_core::Time;
use std::hint::black_box;

fn profile_with(n: usize) -> PiecewiseConstant {
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|i| (0.5 + (i % 3) as f64 * 0.25, 1.0 + (i % 5) as f64))
        .collect();
    PiecewiseConstant::from_durations(&pairs).expect("profile")
}

fn main() {
    let mut group = BenchGroup::new("capacity/integrate");
    for &n in &[16usize, 256, 4096] {
        let p = profile_with(n);
        let end = 0.6 * n as f64;
        let mut x = 0.1;
        group.bench(&format!("{n} segments"), move || {
            x = (x * 1.37) % end;
            black_box(p.integrate(Time::new(x * 0.5), Time::new(x)))
        });
    }
    group.report();

    let mut group = BenchGroup::new("capacity/time_to_complete");
    for &n in &[16usize, 256, 4096] {
        let p = profile_with(n);
        let mut w = 0.1;
        group.bench(&format!("{n} segments"), move || {
            w = (w * 1.61) % 50.0;
            black_box(p.time_to_complete(Time::new(1.0), w))
        });
    }
    group.report();

    let mut group = BenchGroup::new("capacity/stretch");
    let map = StretchMap::new(profile_with(1024));
    let mut x = 0.1;
    group.bench("forward-inverse (1024 segments)", move || {
        x = (x * 1.29) % 500.0;
        let f = map.forward(Time::new(x));
        black_box(map.inverse(f))
    });
    group.report();
}
