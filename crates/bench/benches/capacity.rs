//! Capacity-profile primitive costs: integration, inverse queries and the
//! stretch transformation on profiles with many segments (the hot path of
//! every kernel event).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cloudsched_capacity::{CapacityProfile, PiecewiseConstant, StretchMap};
use cloudsched_core::Time;
use std::hint::black_box;

fn profile_with(n: usize) -> PiecewiseConstant {
    let pairs: Vec<(f64, f64)> = (0..n)
        .map(|i| (0.5 + (i % 3) as f64 * 0.25, 1.0 + (i % 5) as f64))
        .collect();
    PiecewiseConstant::from_durations(&pairs).expect("profile")
}

fn integration(c: &mut Criterion) {
    let mut group = c.benchmark_group("capacity/integrate");
    for &n in &[16usize, 256, 4096] {
        let p = profile_with(n);
        let end = 0.6 * n as f64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            let mut x = 0.1;
            b.iter(|| {
                x = (x * 1.37) % end;
                black_box(p.integrate(Time::new(x * 0.5), Time::new(x)))
            })
        });
    }
    group.finish();
}

fn inverse_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("capacity/time_to_complete");
    for &n in &[16usize, 256, 4096] {
        let p = profile_with(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            let mut w = 0.1;
            b.iter(|| {
                w = (w * 1.61) % 50.0;
                black_box(p.time_to_complete(Time::new(1.0), w))
            })
        });
    }
    group.finish();
}

fn stretch_map(c: &mut Criterion) {
    let p = profile_with(1024);
    let map = StretchMap::new(p);
    c.bench_function("capacity/stretch-forward-inverse", |b| {
        let mut x = 0.1;
        b.iter(|| {
            x = (x * 1.29) % 500.0;
            let f = map.forward(Time::new(x));
            black_box(map.inverse(f))
        })
    });
}

criterion_group!(benches, integration, inverse_queries, stretch_map);
criterion_main!(benches);
