//! # cloudsched-core
//!
//! Core domain types for *secondary job scheduling in the cloud with deadlines*
//! (Chen, He, Wong, Lee, Tong — IPDPS 2011).
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`Time`] — a totally ordered instant on the continuous simulation time
//!   line (finite or `+∞`),
//! * [`Job`] — a secondary job `(r, d, p, v)` with firm deadline and value,
//! * [`JobSet`] — a released-job collection with derived quantities such as the
//!   importance ratio `k`,
//! * [`Schedule`] / [`ExecutionSlice`] — an explicit record of which job ran
//!   when, used both by offline algorithms and by the simulator's audit layer,
//! * [`Outcome`] — per-job success/failure bookkeeping,
//! * [`rng`] — vendored deterministic RNGs ([`SplitMix64`], [`Pcg32`]) so the
//!   stochastic generators build with zero external dependencies.
//!
//! The crate is dependency-free and `#![forbid(unsafe_code)]`; all numeric
//! subtleties (total order on `f64`, tolerance-based comparisons) are
//! concentrated here so downstream crates can stay simple.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod job;
pub mod jobset;
pub mod numeric;
pub mod outcome;
pub mod par;
pub mod rng;
pub mod schedule;
pub mod time;

pub use error::CoreError;
pub use job::{Job, JobBuilder, JobId};
pub use jobset::JobSet;
pub use numeric::{approx_eq, approx_ge, approx_le, approx_zero, EPS_ABS, EPS_REL};
pub use outcome::{JobOutcome, Outcome};
pub use par::{default_threads, parallel_map, parallel_map_with};
pub use rng::{derive_seed, Pcg32, Rng, SplitMix64};
pub use schedule::{ExecutionSlice, Schedule};
pub use time::{Duration, Time};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::error::CoreError;
    pub use crate::job::{Job, JobBuilder, JobId};
    pub use crate::jobset::JobSet;
    pub use crate::outcome::{JobOutcome, Outcome};
    pub use crate::schedule::{ExecutionSlice, Schedule};
    pub use crate::time::{Duration, Time};
}
