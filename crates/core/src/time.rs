//! Continuous simulation time.
//!
//! [`Time`] is a newtype over `f64` representing an instant on the continuous
//! time line of the model in §II-A of the paper. It is totally ordered
//! (`f64::total_cmp`), supports `+∞` as a sentinel ("never"), and rejects NaN
//! at construction. [`Duration`] is the corresponding length type; the two are
//! kept distinct so that `Time + Time` does not type-check.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::numeric::approx_eq;

/// An instant on the continuous simulation time line.
///
/// Invariants: never NaN. May be `+∞` (the "never happens" sentinel used for
/// event horizons) but not `-∞`.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct Time(f64);

/// A (possibly negative) length of simulation time.
///
/// Negative durations arise naturally as laxities of late jobs, so unlike
/// `std::time::Duration` this type is signed. Never NaN.
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct Duration(f64);

impl Time {
    /// The time origin. Job release times are all `>= ZERO`.
    pub const ZERO: Time = Time(0.0);
    /// The "never" sentinel, later than every finite instant.
    pub const NEVER: Time = Time(f64::INFINITY);

    /// Creates a time from seconds.
    ///
    /// # Panics
    /// Panics if `t` is NaN or `-∞`.
    #[inline]
    pub fn new(t: f64) -> Self {
        assert!(!t.is_nan(), "Time cannot be NaN");
        assert!(t != f64::NEG_INFINITY, "Time cannot be -infinity"); // lint: allow(L001) — exact sentinel check
        Time(t)
    }

    /// Raw seconds since the origin.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// `true` for every value except the `NEVER` sentinel.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Tolerance-based equality (see [`crate::numeric`]).
    #[inline]
    pub fn approx_eq(self, other: Time) -> bool {
        approx_eq(self.0, other.0)
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0.0);
    /// An unbounded duration (used for "infinite slack").
    pub const INFINITE: Duration = Duration(f64::INFINITY);

    /// Creates a duration from seconds (may be negative).
    ///
    /// # Panics
    /// Panics if `d` is NaN.
    #[inline]
    pub fn new(d: f64) -> Self {
        assert!(!d.is_nan(), "Duration cannot be NaN");
        Duration(d)
    }

    /// Raw length in seconds.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// `true` if the duration is not `±∞`.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// `true` if strictly negative beyond tolerance.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 < -crate::numeric::EPS_ABS
    }

    /// Tolerance-based equality.
    #[inline]
    pub fn approx_eq(self, other: Duration) -> bool {
        approx_eq(self.0, other.0)
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

// ---- total order ------------------------------------------------------

impl Eq for Time {}
impl Ord for Time {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl Eq for Duration {}
impl Ord for Duration {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

// ---- arithmetic --------------------------------------------------------

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time::new(self.0 + rhs.0)
    }
}
impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}
impl Sub<Duration> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Duration) -> Time {
        Time::new(self.0 - rhs.0)
    }
}
impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        Duration::new(self.0 - rhs.0)
    }
}
impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration::new(self.0 + rhs.0)
    }
}
impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}
impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration::new(self.0 - rhs.0)
    }
}
impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}
impl Neg for Duration {
    type Output = Duration;
    #[inline]
    fn neg(self) -> Duration {
        Duration::new(-self.0)
    }
}
impl Mul<f64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: f64) -> Duration {
        Duration::new(self.0 * rhs)
    }
}
impl Div<f64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: f64) -> Duration {
        Duration::new(self.0 / rhs)
    }
}

// ---- formatting --------------------------------------------------------

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "t=never")
        } else {
            write!(f, "t={:.6}", self.0)
        }
    }
}
impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_infinite() {
            write!(f, "never")
        } else {
            write!(f, "{:.6}", self.0)
        }
    }
}
impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Δ{:.6}", self.0)
    }
}
impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

impl From<f64> for Time {
    #[inline]
    fn from(t: f64) -> Self {
        Time::new(t)
    }
}
impl From<f64> for Duration {
    #[inline]
    fn from(d: f64) -> Self {
        Duration::new(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Time::new(2.5);
        assert_eq!(t.as_f64(), 2.5);
        assert!(t.is_finite());
        assert!(!Time::NEVER.is_finite());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let _ = Time::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "-infinity")]
    fn negative_infinity_rejected() {
        let _ = Time::new(f64::NEG_INFINITY);
    }

    #[test]
    fn ordering_is_total_and_never_is_latest() {
        let a = Time::new(1.0);
        let b = Time::new(2.0);
        assert!(a < b);
        assert!(b < Time::NEVER);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(Time::NEVER.min(a), a);
    }

    #[test]
    fn time_duration_arithmetic() {
        let t = Time::new(3.0);
        let d = Duration::new(1.5);
        assert_eq!((t + d).as_f64(), 4.5);
        assert_eq!((t - d).as_f64(), 1.5);
        assert_eq!((t - Time::new(1.0)).as_f64(), 2.0);
        let mut u = t;
        u += d;
        assert_eq!(u.as_f64(), 4.5);
    }

    #[test]
    fn duration_arithmetic_and_sign() {
        let d = Duration::new(-2.0);
        assert!(d.is_negative());
        assert!(!Duration::ZERO.is_negative());
        assert_eq!((-d).as_f64(), 2.0);
        assert_eq!((d * 3.0).as_f64(), -6.0);
        assert_eq!((d / 2.0).as_f64(), -1.0);
        assert_eq!((d + Duration::new(5.0)).as_f64(), 3.0);
        assert_eq!(Duration::new(1.0).max(d).as_f64(), 1.0);
        assert_eq!(Duration::new(1.0).min(d).as_f64(), -2.0);
    }

    #[test]
    fn infinite_slack_behaves() {
        let inf = Duration::INFINITE;
        assert!(!inf.is_finite());
        assert!(Duration::new(1e12) < inf);
        let t = Time::ZERO + inf;
        assert_eq!(t, Time::NEVER);
    }

    #[test]
    fn approx_helpers() {
        assert!(Time::new(1.0).approx_eq(Time::new(1.0 + 1e-13)));
        assert!(Duration::new(0.0).approx_eq(Duration::new(1e-12)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Time::new(1.25)), "1.250000");
        assert_eq!(format!("{}", Time::NEVER), "never");
        assert_eq!(format!("{:?}", Duration::new(0.5)), "Δ0.500000");
    }
}
