//! Vendored deterministic random number generation.
//!
//! The sandbox this workspace builds in has no registry access, so the
//! default feature set must compile with zero external dependencies. This
//! module vendors two tiny, well-studied generators — enough for every
//! stochastic generator in `cloudsched-workload` and `cloudsched-cloud`:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer. One multiply and a
//!   few xor-shifts per output; primarily used to expand a user seed into
//!   stream state for other generators.
//! * [`Pcg32`] — O'Neill's PCG-XSH-RR 64/32. The workspace default: small
//!   state, excellent statistical quality, and a fixed, documented output
//!   sequence so seeded experiments stay reproducible across releases.
//!
//! Both implement the minimal [`Rng`] trait, which mirrors the narrow slice
//! of the `rand` API the workspace actually uses: raw 64-bit words, unit
//! uniforms and bounded indices. Every sampler in the workspace is an
//! inverse transform over these three primitives.
//!
//! Determinism contract: for a fixed seed the output sequence of each
//! generator is stable — it is part of the public API and is pinned by unit
//! tests below. Do not change the constants.

/// Seed stream for the Table I sweep (`bench --bin table1`).
pub const SEED_STREAM_TABLE1: u64 = 0x5EED_0000;

/// Seed stream for the ablation sweep (`bench --bin ablation`).
pub const SEED_STREAM_ABLATION: u64 = 0xAB1A7E;

/// Seed stream for the underloaded-regime sweep (`bench --bin underloaded`).
pub const SEED_STREAM_UNDERLOADED: u64 = 0xAB1E;

/// Seed stream for the stretch-transformation validation (`bench --bin
/// transform`). Value matches the literal base seed the binary used before
/// seed derivation was centralised here, so its output is unchanged:
/// `derive_seed(SEED_STREAM_TRANSFORM, 0.0, i) == 0x57E7C4 + i` exactly.
pub const SEED_STREAM_TRANSFORM: u64 = 0x57E7C4;

/// Seed stream for the multi-machine fleet suite (`bench --suite fleet` and
/// the `cloudsched fleet` subcommand). Instance generation uses run slots
/// `0..runs`; the power-of-two-choices dispatcher draws its own seed from
/// run slot [`FLEET_DISPATCH_RUN_OFFSET`]` + run` so the dispatch coin flips
/// never alias the workload draws.
pub const SEED_STREAM_FLEET: u64 = 0xF1EE7;

/// Run-slot offset separating fleet dispatch seeds from fleet instance
/// seeds on [`SEED_STREAM_FLEET`] (far above any realistic run count).
pub const FLEET_DISPATCH_RUN_OFFSET: usize = 1_000_000;

/// Derives the RNG seed for run `run` of a sweep on `stream`, with `lambda`
/// folded in for sweeps that vary the arrival rate (pass `0.0` otherwise).
///
/// This is the one formula behind every experiment binary:
/// `stream + (lambda * 1000) as u64 * 1_000_003 + run`, in wrapping
/// arithmetic. The constants are frozen — all checked-in experiment outputs
/// (Table I numbers, golden traces, `BENCH_*.json`) were recorded under
/// them, so changing this function shifts every recorded result. A unit
/// test below pins the streams pairwise collision-free over the sweep grids
/// actually in use.
#[inline]
pub fn derive_seed(stream: u64, lambda: f64, run: usize) -> u64 {
    // `f64_to_u64_saturating` is exactly `as u64` (truncate toward zero,
    // saturate, NaN → 0) — the helper keeps the recorded bit pattern while
    // making the truncation explicit (lint rule L010).
    stream
        .wrapping_add(
            crate::numeric::f64_to_u64_saturating(lambda * 1000.0).wrapping_mul(1_000_003),
        )
        .wrapping_add(run as u64)
}

/// Minimal uniform random source.
///
/// The trait is object-safe and implemented for `&mut R` like `rand::Rng`,
/// so generator functions take `rng: &mut R` with `R: Rng + ?Sized`.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the 53 high bits: every representable multiple of 2^-53 in
        // [0, 1) is equally likely.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform index in `0..n`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    /// If `n == 0`.
    #[inline]
    fn next_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_index needs a non-empty range");
        let n = n as u64;
        // Widening multiply keeps the low word for rejection.
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as usize;
            }
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// SplitMix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014). A fixed-increment Weyl sequence through a
/// 64-bit finalizer; passes BigCrush, period 2^64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator whose sequence is fully determined by `seed`.
    #[inline]
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG-XSH-RR 64/32 (O'Neill, "PCG: a family of simple fast space-efficient
/// statistically good algorithms for random number generation", 2014).
///
/// 64-bit LCG state with a 32-bit xorshift-high/random-rotation output.
/// [`Rng::next_u64`] concatenates two 32-bit outputs, low word first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    /// Stream selector; must be odd.
    inc: u64,
}

const PCG_MULTIPLIER: u64 = 6_364_136_223_846_793_005;
const PCG_DEFAULT_STREAM: u64 = 1_442_695_040_888_963_407;

impl Pcg32 {
    /// Creates the default-stream generator for `seed`.
    ///
    /// The seed is pre-mixed through [`SplitMix64`] so that small consecutive
    /// seeds (0, 1, 2, …) — the common experiment pattern — land in
    /// decorrelated regions of the state space.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::seed_from_u64(seed);
        Self::with_stream(mix.next_u64(), PCG_DEFAULT_STREAM)
    }

    /// Creates a generator on an explicit stream (`stream` may be any value;
    /// it is forced odd internally).
    pub fn with_stream(state_seed: u64, stream: u64) -> Self {
        let inc = (stream << 1) | 1;
        let mut rng = Pcg32 { state: 0, inc };
        rng.step();
        rng.state = rng.state.wrapping_add(state_seed);
        rng.step();
        rng
    }

    #[inline]
    fn step(&mut self) {
        self.state = self
            .state
            .wrapping_mul(PCG_MULTIPLIER)
            .wrapping_add(self.inc);
    }

    /// The next 32-bit output word.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.step();
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }
}

impl Rng for Pcg32 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_sequence() {
        // Reference vector from the public-domain C implementation
        // (seed = 1234567).
        let mut rng = SplitMix64::seed_from_u64(1234567);
        let expect = [
            6_457_827_717_110_365_317u64,
            3_203_168_211_198_807_973,
            9_817_491_932_198_370_423,
            4_593_380_528_125_082_431,
            16_408_922_859_458_223_821,
        ];
        for &e in &expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn pcg_streams_differ_and_are_deterministic() {
        let a: Vec<u64> = {
            let mut r = Pcg32::seed_from_u64(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Pcg32::seed_from_u64(9);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Pcg32::seed_from_u64(10);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b, "same seed must reproduce the same stream");
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn unit_uniform_is_in_range_and_well_spread() {
        let mut rng = Pcg32::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x} out of [0,1)");
            sum += x;
            min = min.min(x);
            max = max.max(x);
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} should be ~0.5");
        assert!(
            min < 0.001 && max > 0.999,
            "range [{min}, {max}] too narrow"
        );
    }

    #[test]
    fn next_index_is_unbiased_over_small_ranges() {
        let mut rng = Pcg32::seed_from_u64(7);
        let mut counts = [0usize; 5];
        let n = 50_000;
        for _ in 0..n {
            counts[rng.next_index(5)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!(
                (frac - 0.2).abs() < 0.02,
                "bucket {i} frequency {frac} should be ~0.2"
            );
        }
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn next_index_rejects_empty_range() {
        Pcg32::seed_from_u64(0).next_index(0);
    }

    #[test]
    fn trait_object_and_reference_forwarding() {
        let mut rng = Pcg32::seed_from_u64(5);
        let reference = Pcg32::seed_from_u64(5).next_u64();
        fn first<R: Rng + ?Sized>(r: &mut R) -> u64 {
            r.next_u64()
        }
        // &mut R path.
        assert_eq!(first(&mut rng), reference);
        // dyn path.
        let mut rng2 = Pcg32::seed_from_u64(5);
        let dyn_rng: &mut dyn Rng = &mut rng2;
        assert_eq!(first(dyn_rng), reference);
    }

    #[test]
    fn derive_seed_reproduces_the_historical_formulas() {
        // These are the exact inline expressions the experiment binaries
        // used before centralization; recorded results depend on them.
        for &lambda in &[4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0] {
            for run in [0usize, 1, 799] {
                assert_eq!(
                    derive_seed(SEED_STREAM_TABLE1, lambda, run),
                    0x5EED_0000 + (lambda * 1000.0) as u64 * 1_000_003 + run as u64
                );
            }
        }
        assert_eq!(derive_seed(SEED_STREAM_ABLATION, 0.0, 17), 0xAB1A7E + 17);
        assert_eq!(derive_seed(SEED_STREAM_UNDERLOADED, 0.0, 17), 0xAB1E + 17);
    }

    #[test]
    fn derive_seed_is_collision_free_over_the_sweep_grids() {
        // Union of every (stream, lambda, run) triple the experiment
        // binaries actually generate: Table I's 7x800 grid plus the
        // lambda-independent ablation and underloaded sweeps.
        let mut seen = std::collections::BTreeSet::new();
        let mut total = 0usize;
        for &lambda in &[4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0] {
            for run in 0..800 {
                assert!(seen.insert(derive_seed(SEED_STREAM_TABLE1, lambda, run)));
                total += 1;
            }
        }
        for run in 0..800 {
            assert!(seen.insert(derive_seed(SEED_STREAM_ABLATION, 0.0, run)));
            assert!(seen.insert(derive_seed(SEED_STREAM_UNDERLOADED, 0.0, run)));
            total += 2;
        }
        // Fleet instance and dispatch slots, over the bench lambda.
        for run in 0..800 {
            assert!(seen.insert(derive_seed(SEED_STREAM_FLEET, 8.0, run)));
            assert!(seen.insert(derive_seed(
                SEED_STREAM_FLEET,
                8.0,
                FLEET_DISPATCH_RUN_OFFSET + run
            )));
            total += 2;
        }
        assert_eq!(seen.len(), total);
    }

    #[test]
    fn splitmix_seeds_decorrelate_pcg() {
        // Consecutive seeds must not produce correlated first outputs.
        let outs: Vec<u64> = (0..16)
            .map(|s| Pcg32::seed_from_u64(s).next_u64())
            .collect();
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), outs.len(), "collisions across seeds");
    }
}
