//! Collections of jobs with derived instance-level quantities.

use crate::error::CoreError;
use crate::job::{Job, JobId};
use crate::time::Time;

/// An immutable, validated collection of jobs forming the job part of an
/// input instance `I` (§II-A).
///
/// Jobs are stored indexed by [`JobId`] (dense ids `0..n`) and the set also
/// keeps a release-ordered index for simulators.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSet {
    jobs: Vec<Job>,
    /// Job ids sorted by (release, id).
    by_release: Vec<JobId>,
}

impl JobSet {
    /// Builds a job set from jobs with dense ids `0..n` (any order).
    ///
    /// # Errors
    /// [`CoreError::DuplicateJob`] / [`CoreError::UnknownJob`] if the ids are
    /// not exactly `0..n`.
    pub fn new(mut jobs: Vec<Job>) -> Result<Self, CoreError> {
        jobs.sort_by_key(|j| j.id);
        for (i, j) in jobs.iter().enumerate() {
            if j.id.index() < i {
                return Err(CoreError::DuplicateJob { id: j.id.0 });
            }
            if j.id.index() > i {
                return Err(CoreError::UnknownJob { id: i as u64 });
            }
        }
        let mut by_release: Vec<JobId> = jobs.iter().map(|j| j.id).collect();
        by_release.sort_by(|&a, &b| {
            let (ja, jb) = (&jobs[a.index()], &jobs[b.index()]);
            ja.release.cmp(&jb.release).then(a.cmp(&b))
        });
        Ok(JobSet { jobs, by_release })
    }

    /// Builds a job set from `(release, deadline, workload, value)` tuples,
    /// assigning ids in order.
    pub fn from_tuples(tuples: &[(f64, f64, f64, f64)]) -> Result<Self, CoreError> {
        let jobs = tuples
            .iter()
            .enumerate()
            .map(|(i, &(r, d, p, v))| Job::new(JobId(i as u64), Time::new(r), Time::new(d), p, v))
            .collect::<Result<Vec<_>, _>>()?;
        JobSet::new(jobs)
    }

    /// Number of jobs.
    #[inline]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` if there are no jobs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Looks a job up by id.
    #[inline]
    pub fn get(&self, id: JobId) -> &Job {
        &self.jobs[id.index()]
    }

    /// Iterates jobs in id order.
    pub fn iter(&self) -> impl Iterator<Item = &Job> {
        self.jobs.iter()
    }

    /// Iterates jobs in release order (ties broken by id).
    pub fn iter_by_release(&self) -> impl Iterator<Item = &Job> + '_ {
        self.by_release.iter().map(move |&id| self.get(id))
    }

    /// All jobs as a slice, indexed by `JobId`.
    #[inline]
    pub fn as_slice(&self) -> &[Job] {
        &self.jobs
    }

    /// Sum of all job values: the normaliser used by the paper's Table I
    /// ("we normalize the online value with the value of all jobs generated").
    pub fn total_value(&self) -> f64 {
        self.jobs.iter().map(|j| j.value).sum()
    }

    /// Sum of all workloads.
    pub fn total_workload(&self) -> f64 {
        self.jobs.iter().map(|j| j.workload).sum()
    }

    /// Earliest release time, or `Time::ZERO` for an empty set.
    pub fn first_release(&self) -> Time {
        self.by_release
            .first()
            .map(|&id| self.get(id).release)
            .unwrap_or(Time::ZERO)
    }

    /// Latest deadline, or `Time::ZERO` for an empty set.
    pub fn last_deadline(&self) -> Time {
        self.jobs
            .iter()
            .map(|j| j.deadline)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Importance ratio `k_I` (Definition 3): max value density over min value
    /// density. Returns `None` for an empty set or if some job has zero value
    /// (density 0 would make the ratio infinite).
    pub fn importance_ratio(&self) -> Option<f64> {
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for j in &self.jobs {
            let rho = j.value_density();
            // lint: allow(L001) — exact sign guard
            if rho <= 0.0 {
                return None;
            }
            min = min.min(rho);
            max = max.max(rho);
        }
        if self.jobs.is_empty() {
            None
        } else {
            Some(max / min)
        }
    }

    /// `true` iff every job is individually admissible w.r.t. `c_lo`
    /// (Definition 4).
    pub fn all_individually_admissible(&self, c_lo: f64) -> bool {
        self.jobs.iter().all(|j| j.individually_admissible(c_lo))
    }

    /// Returns a new set with value densities renormalised so the minimum
    /// density is 1 (the paper's convention below Definition 3). Workloads and
    /// timing are unchanged; values are scaled by a common factor.
    pub fn normalize_min_density(&self) -> JobSet {
        let min = self
            .jobs
            .iter()
            .map(|j| j.value_density())
            .fold(f64::INFINITY, f64::min);
        // lint: allow(L001) — exact sign guard
        if !min.is_finite() || min <= 0.0 {
            return self.clone();
        }
        let jobs = self
            .jobs
            .iter()
            .map(|j| Job {
                value: j.value / min,
                ..j.clone()
            })
            .collect();
        JobSet::new(jobs).expect("scaling preserves validity")
    }
}

impl std::ops::Index<JobId> for JobSet {
    type Output = Job;
    #[inline]
    fn index(&self, id: JobId) -> &Job {
        self.get(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> JobSet {
        // (r, d, p, v)
        JobSet::from_tuples(&[
            (2.0, 6.0, 2.0, 2.0), // density 1
            (0.0, 4.0, 1.0, 3.0), // density 3
            (1.0, 9.0, 4.0, 8.0), // density 2
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let s = set();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.get(JobId(1)).value, 3.0);
        assert_eq!(s[JobId(2)].workload, 4.0);
    }

    #[test]
    fn release_order_iteration() {
        let s = set();
        let order: Vec<u64> = s.iter_by_release().map(|j| j.id.0).collect();
        assert_eq!(order, vec![1, 2, 0]);
        assert_eq!(s.first_release(), Time::ZERO);
        assert_eq!(s.last_deadline(), Time::new(9.0));
    }

    #[test]
    fn aggregates() {
        let s = set();
        assert_eq!(s.total_value(), 13.0);
        assert_eq!(s.total_workload(), 7.0);
        assert_eq!(s.importance_ratio(), Some(3.0));
    }

    #[test]
    fn duplicate_and_missing_ids_rejected() {
        let j = |id| Job::new(JobId(id), Time::ZERO, Time::new(1.0), 1.0, 1.0).unwrap();
        assert!(matches!(
            JobSet::new(vec![j(0), j(0)]),
            Err(CoreError::DuplicateJob { id: 0 })
        ));
        assert!(matches!(
            JobSet::new(vec![j(0), j(2)]),
            Err(CoreError::UnknownJob { id: 1 })
        ));
    }

    #[test]
    fn out_of_order_ids_are_sorted() {
        let j = |id, v| Job::new(JobId(id), Time::ZERO, Time::new(1.0), 1.0, v).unwrap();
        let s = JobSet::new(vec![j(2, 30.0), j(0, 10.0), j(1, 20.0)]).unwrap();
        assert_eq!(s.get(JobId(0)).value, 10.0);
        assert_eq!(s.get(JobId(2)).value, 30.0);
    }

    #[test]
    fn empty_set_aggregates() {
        let s = JobSet::new(vec![]).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.total_value(), 0.0);
        assert_eq!(s.importance_ratio(), None);
        assert_eq!(s.first_release(), Time::ZERO);
    }

    #[test]
    fn zero_value_job_voids_importance_ratio() {
        let s = JobSet::from_tuples(&[(0.0, 1.0, 1.0, 0.0), (0.0, 1.0, 1.0, 1.0)]).unwrap();
        assert_eq!(s.importance_ratio(), None);
    }

    #[test]
    fn admissibility_of_whole_set() {
        let s = set();
        // Tightest job: id 0 with d-r = 4, p = 2 => needs c_lo >= 0.5.
        assert!(s.all_individually_admissible(0.5));
        assert!(!s.all_individually_admissible(0.3));
    }

    #[test]
    fn min_density_normalisation() {
        let s = set().normalize_min_density();
        let min = s
            .iter()
            .map(|j| j.value_density())
            .fold(f64::INFINITY, f64::min);
        assert!((min - 1.0).abs() < 1e-12);
        // Ratios between densities preserved.
        assert_eq!(s.importance_ratio(), Some(3.0));
    }
}
