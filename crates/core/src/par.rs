//! Deterministic work-stealing parallel map.
//!
//! The Monte-Carlo layer above the simulator fans one closure out over an
//! index range (`f(i)` for `i in 0..n`) and needs three properties at once:
//!
//! * **index-order determinism** — the output vector is `[f(0), …, f(n-1)]`
//!   no matter which worker computed which index, so callers can derive RNG
//!   seeds from the index alone;
//! * **thread-count independence** — the result is byte-identical for any
//!   worker count, including 1, so `--threads` is a pure throughput knob;
//! * **load balance under heavy-tailed task costs** — per-run wall time in
//!   the paper's overload regime varies with the instance draw (deep
//!   overloads run long event loops), which starves a static chunk split.
//!
//! [`parallel_map`] hands out small index blocks from a shared atomic
//! counter: a worker that draws cheap runs comes back for more instead of
//! idling, and the block size caps counter traffic at a few hundred
//! `fetch_add`s per sweep. [`parallel_map_with`] additionally threads a
//! per-worker scratch state (e.g. a reusable simulation workspace) through
//! every call the worker makes — the state must be a pure *arena*: outputs
//! may only depend on the index, never on which indices the worker saw
//! before, or thread-count independence is lost.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on the stolen block size: small enough to balance
/// heavy-tailed sweeps, large enough that the shared counter is touched
/// O(n/32) times.
const MAX_BLOCK: usize = 32;

/// Default worker count: all cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Runs `f(i)` for `i in 0..n` across up to `threads` workers and returns
/// the results in index order.
///
/// Work is distributed by block stealing (see the module docs), so the
/// assignment of indices to workers is nondeterministic — but the output
/// is not: slot `i` always holds `f(i)`. Degenerate arguments are safe:
/// `n == 0` returns an empty vector without spawning, `threads` is clamped
/// to `1..=n` so no idle workers are spawned, and `threads == 0` is treated
/// as 1.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_map_with(n, threads, || (), |(), i| f(i))
}

/// [`parallel_map`] with a per-worker scratch state: every worker calls
/// `init()` once and then `f(&mut state, i)` for each index it steals.
///
/// The state is a reuse arena (buffers, workspaces, caches) — `f`'s output
/// must depend only on `i`, or the result ceases to be thread-count
/// independent.
pub fn parallel_map_with<W, T, I, F>(n: usize, threads: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> W + Sync,
    F: Fn(&mut W, usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    // The requested count is honored even past the detected core count:
    // callers like the fleet bench measure serial-vs-threaded wall time and
    // need `--threads N` to actually spawn N workers, and the determinism
    // suites need real cross-thread interleaving at every requested count.
    // Capping here silently turned both into serial runs on small machines.
    // Oversubscription costs only idle workers (output is index-ordered and
    // thread-count invariant either way); `default_threads()` remains the
    // sizing hint for callers that want one worker per core.
    let workers = threads.max(1).min(n);
    if workers == 1 {
        let mut state = init();
        return (0..n).map(|i| f(&mut state, i)).collect();
    }
    // Aim for ~8 blocks per worker so late-arriving stragglers still find
    // work to steal, capped so the counter stays cold. Round up: truncating
    // degenerated to block = 1 whenever n < workers * 8 (exactly the small
    // sweep fan-outs we run), maximizing counter traffic.
    let block = n.div_ceil(workers * 8).clamp(1, MAX_BLOCK);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let next = &next;
            let init = &init;
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut state = init();
                let mut produced: Vec<(usize, T)> = Vec::new();
                loop {
                    let start = next.fetch_add(block, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + block).min(n) {
                        produced.push((i, f(&mut state, i)));
                    }
                }
                produced
            }));
        }
        for handle in handles {
            let produced = handle
                .join()
                .expect("invariant: a panicking worker re-raises its panic here");
            for (i, value) in produced {
                slots[i] = Some(value);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("invariant: the counter hands every index 0..n to exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_index_order() {
        let out = parallel_map(100, 8, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn empty_range_spawns_nothing_and_returns_empty() {
        let calls = AtomicUsize::new(0);
        let out = parallel_map(0, 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert!(out.is_empty());
        assert_eq!(calls.load(Ordering::Relaxed), 0);
        // Zero workers on an empty range must not panic either.
        assert!(parallel_map(0, 0, |i| i).is_empty());
    }

    #[test]
    fn more_threads_than_tasks_is_exact_with_no_idle_workers() {
        // threads is clamped to n, so a 1-task sweep with 16 requested
        // workers computes exactly one result, once.
        let calls = AtomicUsize::new(0);
        let out = parallel_map(1, 16, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i + 1
        });
        assert_eq!(out, vec![1]);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        // n slightly above threads exercises the stealing loop.
        let out = parallel_map(5, 3, |i| i * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn zero_threads_is_treated_as_one() {
        assert_eq!(parallel_map(3, 0, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let reference = parallel_map(257, 1, |i| (i as u64).wrapping_mul(0x9E37) % 8191);
        for threads in [2, 3, 8, 64] {
            let out = parallel_map(257, threads, |i| (i as u64).wrapping_mul(0x9E37) % 8191);
            assert_eq!(out, reference, "threads={threads} diverged");
        }
    }

    #[test]
    fn worker_state_is_initialized_per_worker_and_threaded_through() {
        // Each worker counts its own calls; the sum over workers must be n
        // and every index must be computed exactly once.
        let out = parallel_map_with(
            97,
            4,
            || 0usize,
            |seen, i| {
                *seen += 1;
                (i, *seen)
            },
        );
        assert_eq!(out.len(), 97);
        for (slot, (i, seen)) in out.iter().enumerate() {
            assert_eq!(*i, slot);
            assert!(*seen >= 1, "worker-local call counter starts at 1");
        }
    }

    #[test]
    fn uneven_tail_blocks_cover_the_whole_range() {
        // n chosen to not divide evenly by any plausible block size.
        for n in [1usize, 2, 31, 33, 63, 101] {
            let out = parallel_map(n, 7, |i| i);
            assert_eq!(out, (0..n).collect::<Vec<_>>(), "n={n}");
        }
    }
}
