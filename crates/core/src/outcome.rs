//! Per-job and per-run outcome bookkeeping.

use crate::job::JobId;
use crate::jobset::JobSet;
use crate::time::Time;

/// What happened to a single job by the end of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobOutcome {
    /// Completed at the given time, earning its full value.
    Completed {
        /// Completion instant (`<=` the job's deadline).
        at: Time,
    },
    /// Reached its deadline with work remaining; earns zero value.
    Missed {
        /// Workload still unexecuted at the deadline.
        remaining_workload: f64,
    },
    /// Never released within the simulated horizon, or dropped by an
    /// algorithm before release (adversary analyses use this).
    NotReleased,
}

impl JobOutcome {
    /// `true` iff the job completed by its deadline.
    #[inline]
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed { .. })
    }
}

/// Outcome of a whole run: one [`JobOutcome`] per job plus derived totals.
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    outcomes: Vec<JobOutcome>,
}

impl Default for Outcome {
    /// An empty table — the state a recycled workspace starts from.
    fn default() -> Self {
        Outcome::new(0)
    }
}

impl Outcome {
    /// Creates an outcome table for `n` jobs, all initially `NotReleased`.
    pub fn new(n: usize) -> Self {
        Outcome {
            outcomes: vec![JobOutcome::NotReleased; n],
        }
    }

    /// Resets the table to `n` jobs, all `NotReleased`, keeping the
    /// allocation. Workspace reuse (`sim::SimWorkspace`) recycles outcome
    /// tables across Monte-Carlo runs through this.
    pub fn reset(&mut self, n: usize) {
        self.outcomes.clear();
        self.outcomes.resize(n, JobOutcome::NotReleased);
    }

    /// Number of jobs the table can hold without reallocating.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.outcomes.capacity()
    }

    /// Extends the table to `n` jobs, new slots `NotReleased`, without
    /// touching existing entries — streaming admission grows the table one
    /// arrival at a time mid-run. A no-op when `n <= len()`.
    pub fn grow(&mut self, n: usize) {
        if n > self.outcomes.len() {
            self.outcomes.resize(n, JobOutcome::NotReleased);
        }
    }

    /// Sets the outcome of one job.
    #[inline]
    pub fn set(&mut self, id: JobId, outcome: JobOutcome) {
        self.outcomes[id.index()] = outcome;
    }

    /// Outcome of one job.
    #[inline]
    pub fn get(&self, id: JobId) -> JobOutcome {
        self.outcomes[id.index()]
    }

    /// Number of jobs tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// `true` if no jobs are tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Ids of completed jobs.
    pub fn completed(&self) -> impl Iterator<Item = JobId> + '_ {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_completed())
            .map(|(i, _)| JobId(i as u64))
    }

    /// Ids of missed jobs.
    pub fn missed(&self) -> impl Iterator<Item = JobId> + '_ {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o, JobOutcome::Missed { .. }))
            .map(|(i, _)| JobId(i as u64))
    }

    /// Number of completed jobs.
    pub fn completed_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_completed()).count()
    }

    /// Total value earned, looking job values up in `jobs`.
    pub fn value(&self, jobs: &JobSet) -> f64 {
        self.completed().map(|id| jobs.get(id).value).sum()
    }

    /// Fraction of the total generated value that was earned — the metric
    /// reported by the paper's Table I.
    pub fn value_fraction(&self, jobs: &JobSet) -> f64 {
        let total = jobs.total_value();
        // lint: allow(L001) — exact zero guard before division
        if total == 0.0 {
            0.0
        } else {
            self.value(jobs) / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs() -> JobSet {
        JobSet::from_tuples(&[
            (0.0, 4.0, 1.0, 10.0),
            (0.0, 4.0, 1.0, 20.0),
            (0.0, 4.0, 1.0, 30.0),
        ])
        .unwrap()
    }

    #[test]
    fn initial_state_is_not_released() {
        let o = Outcome::new(3);
        assert_eq!(o.len(), 3);
        assert_eq!(o.get(JobId(1)), JobOutcome::NotReleased);
        assert_eq!(o.completed_count(), 0);
    }

    #[test]
    fn value_accounting() {
        let js = jobs();
        let mut o = Outcome::new(3);
        o.set(JobId(0), JobOutcome::Completed { at: Time::new(1.0) });
        o.set(JobId(2), JobOutcome::Completed { at: Time::new(2.0) });
        o.set(
            JobId(1),
            JobOutcome::Missed {
                remaining_workload: 0.5,
            },
        );
        assert_eq!(o.completed_count(), 2);
        assert_eq!(o.value(&js), 40.0);
        assert!((o.value_fraction(&js) - 40.0 / 60.0).abs() < 1e-12);
        assert_eq!(o.completed().collect::<Vec<_>>(), vec![JobId(0), JobId(2)]);
        assert_eq!(o.missed().collect::<Vec<_>>(), vec![JobId(1)]);
    }

    #[test]
    fn value_fraction_of_empty_set_is_zero() {
        let js = JobSet::new(vec![]).unwrap();
        let o = Outcome::new(0);
        assert!(o.is_empty());
        assert_eq!(o.value_fraction(&js), 0.0);
    }

    #[test]
    fn reset_clears_state_but_keeps_capacity() {
        let mut o = Outcome::new(8);
        o.set(JobId(3), JobOutcome::Completed { at: Time::new(1.0) });
        let cap = o.capacity();
        assert!(cap >= 8);
        o.reset(5);
        assert_eq!(o.len(), 5);
        assert_eq!(o.capacity(), cap, "reset within capacity must not realloc");
        assert_eq!(o.get(JobId(3)), JobOutcome::NotReleased);
        // Growing past capacity is allowed, just not free.
        o.reset(cap + 1);
        assert_eq!(o.len(), cap + 1);
        assert_eq!(Outcome::default().len(), 0);
    }

    #[test]
    fn grow_preserves_existing_entries() {
        let mut o = Outcome::new(2);
        o.set(JobId(1), JobOutcome::Completed { at: Time::new(3.0) });
        o.grow(4);
        assert_eq!(o.len(), 4);
        assert_eq!(
            o.get(JobId(1)),
            JobOutcome::Completed { at: Time::new(3.0) }
        );
        assert_eq!(o.get(JobId(3)), JobOutcome::NotReleased);
        o.grow(1); // shrink request is a no-op
        assert_eq!(o.len(), 4);
    }

    #[test]
    fn outcome_predicates() {
        assert!(JobOutcome::Completed { at: Time::ZERO }.is_completed());
        assert!(!JobOutcome::Missed {
            remaining_workload: 1.0
        }
        .is_completed());
        assert!(!JobOutcome::NotReleased.is_completed());
    }
}
