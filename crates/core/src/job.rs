//! Secondary jobs.
//!
//! A job `T_i` in the paper's model (§II-A) is a tuple `(p_i, r_i, d_i, v_i)`:
//! workload, release time, firm deadline and value. Workload is measured in
//! capacity-seconds: executing the job for wall time `[t1, t2]` on a processor
//! with capacity `c(t)` performs `∫ c(τ)dτ` units of workload.

use crate::error::CoreError;
use crate::time::{Duration, Time};

/// Identifier of a job within one instance. Dense, starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl JobId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A secondary job with firm deadline.
///
/// Invariants (enforced by [`Job::new`] / [`JobBuilder`]):
/// `workload > 0`, `value >= 0`, `0 <= release < deadline < ∞`.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Identifier, unique within a [`crate::JobSet`].
    pub id: JobId,
    /// Release time `r_i`: the job is unknown to online schedulers before it.
    pub release: Time,
    /// Firm deadline `d_i`: completing after it yields zero value.
    pub deadline: Time,
    /// Workload `p_i` in capacity-seconds.
    pub workload: f64,
    /// Value `v_i` obtained iff the job completes by its deadline.
    pub value: f64,
}

impl Job {
    /// Creates a validated job.
    pub fn new(
        id: JobId,
        release: Time,
        deadline: Time,
        workload: f64,
        value: f64,
    ) -> Result<Self, CoreError> {
        if !(workload > 0.0) || !workload.is_finite() {
            return Err(CoreError::NonPositiveWorkload { workload });
        }
        // lint: allow(L001) — exact sign check; !(x >= 0) also rejects NaN
        if !(value >= 0.0) || !value.is_finite() {
            return Err(CoreError::NegativeValue { value });
        }
        if release.as_f64() < 0.0 {
            return Err(CoreError::NegativeRelease {
                release: release.as_f64(),
            });
        }
        if !deadline.is_finite() {
            return Err(CoreError::NonFiniteDeadline);
        }
        if deadline <= release {
            return Err(CoreError::DeadlineNotAfterRelease {
                release: release.as_f64(),
                deadline: deadline.as_f64(),
            });
        }
        Ok(Job {
            id,
            release,
            deadline,
            workload,
            value,
        })
    }

    /// Value density `v_i / p_i` (Definition 3).
    #[inline]
    pub fn value_density(&self) -> f64 {
        self.value / self.workload
    }

    /// Relative deadline `d_i - r_i`.
    #[inline]
    pub fn relative_deadline(&self) -> Duration {
        self.deadline - self.release
    }

    /// Individual admissibility (Definition 4): the job can always complete
    /// by its deadline under the worst-case capacity `c_lo`, i.e.
    /// `d_i - r_i >= p_i / c_lo`.
    #[inline]
    pub fn individually_admissible(&self, c_lo: f64) -> bool {
        debug_assert!(c_lo > 0.0);
        crate::numeric::approx_ge(self.relative_deadline().as_f64(), self.workload / c_lo)
    }

    /// Laxity at time `t` given remaining workload and an assumed constant
    /// future capacity `c` (Definition 2 generalised; Definition 5 with
    /// `c = c_lo` is the *conservative laxity*).
    #[inline]
    pub fn laxity_with(&self, t: Time, remaining_workload: f64, c: f64) -> Duration {
        debug_assert!(c > 0.0);
        (self.deadline - t) - Duration::new(remaining_workload / c)
    }
}

/// Fluent builder for [`Job`], convenient in tests and generators.
///
/// ```
/// use cloudsched_core::{JobBuilder, JobId};
/// let job = JobBuilder::new(JobId(0))
///     .release(1.0)
///     .deadline(5.0)
///     .workload(2.0)
///     .value(3.0)
///     .build()
///     .unwrap();
/// assert_eq!(job.value_density(), 1.5);
/// ```
#[derive(Debug, Clone)]
pub struct JobBuilder {
    id: JobId,
    release: f64,
    deadline: f64,
    workload: f64,
    value: f64,
}

impl JobBuilder {
    /// Starts a builder; defaults: release 0, deadline 1, workload 1, value 1.
    pub fn new(id: JobId) -> Self {
        JobBuilder {
            id,
            release: 0.0,
            deadline: 1.0,
            workload: 1.0,
            value: 1.0,
        }
    }

    /// Sets the release time (seconds).
    pub fn release(mut self, r: f64) -> Self {
        self.release = r;
        self
    }

    /// Sets the absolute deadline (seconds).
    pub fn deadline(mut self, d: f64) -> Self {
        self.deadline = d;
        self
    }

    /// Sets the workload (capacity-seconds).
    pub fn workload(mut self, p: f64) -> Self {
        self.workload = p;
        self
    }

    /// Sets the value.
    pub fn value(mut self, v: f64) -> Self {
        self.value = v;
        self
    }

    /// Validates and builds the job.
    pub fn build(self) -> Result<Job, CoreError> {
        Job::new(
            self.id,
            Time::new(self.release),
            Time::new(self.deadline),
            self.workload,
            self.value,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(r: f64, d: f64, p: f64, v: f64) -> Job {
        Job::new(JobId(0), Time::new(r), Time::new(d), p, v).unwrap()
    }

    #[test]
    fn valid_job_constructs() {
        let j = job(0.0, 10.0, 4.0, 8.0);
        assert_eq!(j.value_density(), 2.0);
        assert_eq!(j.relative_deadline().as_f64(), 10.0);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            Job::new(JobId(0), Time::new(0.0), Time::new(1.0), 0.0, 1.0),
            Err(CoreError::NonPositiveWorkload { .. })
        ));
        assert!(matches!(
            Job::new(JobId(0), Time::new(0.0), Time::new(1.0), -2.0, 1.0),
            Err(CoreError::NonPositiveWorkload { .. })
        ));
        assert!(matches!(
            Job::new(JobId(0), Time::new(0.0), Time::new(1.0), 1.0, -1.0),
            Err(CoreError::NegativeValue { .. })
        ));
        assert!(matches!(
            Job::new(JobId(0), Time::new(2.0), Time::new(2.0), 1.0, 1.0),
            Err(CoreError::DeadlineNotAfterRelease { .. })
        ));
        assert!(matches!(
            Job::new(JobId(0), Time::new(-1.0), Time::new(2.0), 1.0, 1.0),
            Err(CoreError::NegativeRelease { .. })
        ));
        assert!(matches!(
            Job::new(JobId(0), Time::new(0.0), Time::NEVER, 1.0, 1.0),
            Err(CoreError::NonFiniteDeadline)
        ));
        assert!(matches!(
            Job::new(JobId(0), Time::new(0.0), Time::new(1.0), f64::INFINITY, 1.0),
            Err(CoreError::NonPositiveWorkload { .. })
        ));
    }

    #[test]
    fn zero_value_is_allowed() {
        // Jobs of zero value are legal (they just never help the objective).
        let j = job(0.0, 1.0, 1.0, 0.0);
        assert_eq!(j.value_density(), 0.0);
    }

    #[test]
    fn admissibility_matches_definition_4() {
        // d - r = 4, p = 2 => admissible iff p / c_lo <= 4 iff c_lo >= 0.5.
        let j = job(1.0, 5.0, 2.0, 1.0);
        assert!(j.individually_admissible(0.5));
        assert!(j.individually_admissible(1.0));
        assert!(!j.individually_admissible(0.4));
    }

    #[test]
    fn admissibility_boundary_uses_tolerance() {
        // Exactly zero conservative laxity (the paper's simulation setup):
        // d - r = p / c_lo precisely => admissible.
        let j = job(0.0, 2.0, 2.0, 1.0);
        assert!(j.individually_admissible(1.0));
    }

    #[test]
    fn laxity_with_constant_capacity() {
        let j = job(0.0, 10.0, 4.0, 1.0);
        // At t=2 with remaining workload 4 and c=1: laxity = 10 - 2 - 4 = 4.
        assert_eq!(j.laxity_with(Time::new(2.0), 4.0, 1.0).as_f64(), 4.0);
        // With c=2 the remaining processing time halves: 10 - 2 - 2 = 6.
        assert_eq!(j.laxity_with(Time::new(2.0), 4.0, 2.0).as_f64(), 6.0);
        // Late job => negative laxity.
        assert!(j.laxity_with(Time::new(9.0), 4.0, 1.0).is_negative());
    }

    #[test]
    fn builder_defaults_and_overrides() {
        let j = JobBuilder::new(JobId(7)).build().unwrap();
        assert_eq!(j.id, JobId(7));
        assert_eq!(j.workload, 1.0);
        let j = JobBuilder::new(JobId(1))
            .release(2.0)
            .deadline(8.0)
            .workload(3.0)
            .value(6.0)
            .build()
            .unwrap();
        assert_eq!(j.relative_deadline().as_f64(), 6.0);
        assert_eq!(j.value_density(), 2.0);
    }

    #[test]
    fn job_id_display_and_index() {
        assert_eq!(JobId(3).to_string(), "T3");
        assert_eq!(JobId(3).index(), 3);
    }
}
