//! Tolerance-based floating point comparisons.
//!
//! The simulator integrates piecewise-constant capacity exactly, but chained
//! additions and subtractions of `f64` still accumulate rounding on the order
//! of a few ulps. Every "has this job finished?", "did this deadline pass?"
//! style predicate in the workspace goes through the helpers here so the
//! tolerance policy lives in one place.
//!
//! The policy is a standard mixed absolute/relative test:
//! `|a - b| <= EPS_ABS + EPS_REL * max(|a|, |b|)`.

/// Absolute comparison tolerance.
///
/// Chosen so that workloads/times on the order of `1e-3 ..= 1e6` (the ranges
/// exercised by the paper's experiments) compare robustly.
pub const EPS_ABS: f64 = 1e-9;

/// Relative comparison tolerance (a few hundred ulps at scale 1.0).
pub const EPS_REL: f64 = 1e-12;

/// Returns `true` if `a` and `b` are equal up to the workspace tolerance.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    if a == b {
        return true; // handles infinities of the same sign
    }
    if a.is_infinite() || b.is_infinite() {
        return false; // an infinity is close only to itself
    }
    let diff = (a - b).abs();
    diff <= EPS_ABS + EPS_REL * a.abs().max(b.abs())
}

/// Returns `true` if `a >= b` up to the workspace tolerance.
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a >= b || approx_eq(a, b)
}

/// Returns `true` if `a <= b` up to the workspace tolerance.
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b || approx_eq(a, b)
}

/// Returns `true` if `a` is zero up to the absolute tolerance.
#[inline]
pub fn approx_zero(a: f64) -> bool {
    a.abs() <= EPS_ABS
}

/// Converts `x` to `u64` with Rust's `as`-cast semantics made explicit:
/// truncation toward zero, saturation at the type bounds, NaN → 0.
///
/// This is the sanctioned spelling of `x as u64` on a float quantity
/// (lint rule L010): the call site documents that truncation/saturation is
/// intended, and the frozen `derive_seed` formula keeps its exact bit
/// pattern by delegating here.
#[inline]
pub fn f64_to_u64_saturating(x: f64) -> u64 {
    x as u64
}

/// Checked `f64 → u64`: `Some(x as u64)` (truncating toward zero) only when
/// `x` is finite, non-negative, and below `2^64`; `None` otherwise.
///
/// Use this when an out-of-range value indicates a logic error upstream —
/// unlike [`f64_to_u64_saturating`], nothing is silently clamped.
#[inline]
pub fn checked_u64_from_f64(x: f64) -> Option<u64> {
    // `u64::MAX as f64` rounds up to exactly 2^64, so `<` is the right
    // exclusive bound for every representable in-range value.
    if x.is_finite() && x >= 0.0 && x < u64::MAX as f64 {
        Some(x as u64)
    } else {
        None
    }
}

/// Checked `f64 → usize`: like [`checked_u64_from_f64`], additionally
/// bounded by the platform's `usize`.
#[inline]
pub fn checked_usize_from_f64(x: f64) -> Option<usize> {
    checked_u64_from_f64(x).and_then(|v| usize::try_from(v).ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_equality() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(0.0, 0.0));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY));
    }

    #[test]
    fn near_equality_within_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-13));
        assert!(approx_eq(1e6, 1e6 + 1e-7));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
    }

    #[test]
    fn absolute_floor_near_zero() {
        assert!(approx_eq(0.0, 1e-10));
        assert!(!approx_eq(0.0, 1e-8));
    }

    #[test]
    fn ordering_helpers() {
        assert!(approx_ge(1.0, 1.0 + 1e-13));
        assert!(approx_ge(2.0, 1.0));
        assert!(!approx_ge(1.0, 2.0));
        assert!(approx_le(1.0 + 1e-13, 1.0));
        assert!(approx_le(1.0, 2.0));
        assert!(!approx_le(2.0, 1.0));
    }

    #[test]
    fn zero_test() {
        assert!(approx_zero(0.0));
        assert!(approx_zero(-1e-12));
        assert!(!approx_zero(1e-3));
    }

    #[test]
    fn infinities_are_not_close_to_finite() {
        assert!(!approx_eq(f64::INFINITY, 1e300));
        assert!(approx_ge(f64::INFINITY, 1e300));
        assert!(!approx_le(f64::INFINITY, 1e300));
    }

    #[test]
    fn nan_is_never_equal() {
        assert!(!approx_eq(f64::NAN, f64::NAN));
        assert!(!approx_ge(f64::NAN, 0.0));
        assert!(!approx_le(f64::NAN, 0.0));
    }
}
