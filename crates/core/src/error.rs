//! Workspace-wide error type for domain validation.

use std::fmt;

/// Errors raised when constructing or validating domain objects.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A job was constructed with a non-positive workload.
    NonPositiveWorkload {
        /// Offending workload value.
        workload: f64,
    },
    /// A job was constructed with a negative value.
    NegativeValue {
        /// Offending value.
        value: f64,
    },
    /// A job's deadline is not strictly after its release time.
    DeadlineNotAfterRelease {
        /// Release time (seconds).
        release: f64,
        /// Deadline (seconds).
        deadline: f64,
    },
    /// A job's release time is negative.
    NegativeRelease {
        /// Offending release time.
        release: f64,
    },
    /// A job's deadline is not finite.
    NonFiniteDeadline,
    /// A capacity profile was given an out-of-order or empty breakpoint list.
    InvalidCapacityProfile {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A schedule failed validation.
    InvalidSchedule {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A referenced job id does not exist in the job set.
    UnknownJob {
        /// The dangling id.
        id: u64,
    },
    /// Two jobs in one job set share an id.
    DuplicateJob {
        /// The duplicated id.
        id: u64,
    },
    /// A scheduler name was not recognised by the factory.
    UnknownScheduler {
        /// The unrecognised name.
        name: String,
    },
    /// A scheduler parameter is outside its admissible domain (e.g. `k < 1`,
    /// `δ < 1`, a non-positive class bound).
    InvalidParameter {
        /// Parameter name (`k`, `delta`, `c_lo`, …).
        name: String,
        /// The offending value.
        value: f64,
        /// Why it is inadmissible.
        reason: String,
    },
    /// The realised capacity dropped below the declared class bound `c_lo`:
    /// the SLA behind Definition 5 / Theorem 3 is broken.
    CapacitySlaViolation {
        /// Simulation instant of the violation.
        at: f64,
        /// Observed rate.
        rate: f64,
        /// Declared lower class bound.
        c_lo: f64,
    },
    /// The capacity oracle stayed dark past its retry budget and was
    /// declared dead.
    OracleDown {
        /// Simulation instant the oracle was declared dead.
        at: f64,
        /// Consecutive failed readings before declaring death.
        retries: u32,
    },
    /// A released job violates individual admissibility (Definition 4:
    /// `d − r ≥ p / c_lo`).
    InadmissibleJob {
        /// The offending job id.
        id: u64,
        /// Its window `d − r`.
        window: f64,
        /// Its minimum completion time `p / c_lo`.
        min_time: f64,
    },
    /// A job with identical parameters was already released (a duplicate in
    /// the input stream, as opposed to [`CoreError::DuplicateJob`]'s
    /// id-level collision at job-set construction).
    DuplicateRelease {
        /// The duplicate's job id.
        id: u64,
        /// The id of the earlier job it duplicates.
        of: u64,
    },
    /// A job's value density exceeds the assumed importance-ratio bound `k`
    /// relative to the smallest density seen so far.
    ValueSpike {
        /// The offending job id.
        id: u64,
        /// Its value density `v / p`.
        density: f64,
        /// The largest density admissible under the assumed `k`.
        limit: f64,
    },
    /// A command-line argument was missing or malformed.
    InvalidArgument {
        /// The flag, including leading dashes (e.g. `--seeds`).
        flag: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A write-ahead journal append or sync failed even after the retry
    /// budget was exhausted. Carries a rendered cause rather than the
    /// underlying `io::Error` (which is neither `Clone` nor `PartialEq`).
    JournalWrite {
        /// Rendered cause of the final failed attempt.
        reason: String,
        /// Total attempts made (first try plus retries).
        attempts: u32,
    },
    /// The streaming service's bounded admission queue overflowed under the
    /// `Strict` backpressure policy.
    QueueOverflow {
        /// 0-based arrival sequence number that overflowed the queue.
        seq: u64,
        /// Admitted-but-unresolved jobs at that instant.
        live: usize,
        /// The configured queue capacity.
        cap: usize,
    },
    /// A journal or snapshot record could not be parsed during recovery.
    CorruptJournal {
        /// 1-based line number of the offending record.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NonPositiveWorkload { workload } => {
                write!(f, "job workload must be positive, got {workload}")
            }
            CoreError::NegativeValue { value } => {
                write!(f, "job value must be non-negative, got {value}")
            }
            CoreError::DeadlineNotAfterRelease { release, deadline } => write!(
                f,
                "deadline ({deadline}) must be strictly after release ({release})"
            ),
            CoreError::NegativeRelease { release } => {
                write!(f, "release time must be non-negative, got {release}")
            }
            CoreError::NonFiniteDeadline => write!(f, "deadline must be finite"),
            CoreError::InvalidCapacityProfile { reason } => {
                write!(f, "invalid capacity profile: {reason}")
            }
            CoreError::InvalidSchedule { reason } => write!(f, "invalid schedule: {reason}"),
            CoreError::UnknownJob { id } => write!(f, "unknown job id {id}"),
            CoreError::DuplicateJob { id } => write!(f, "duplicate job id {id}"),
            CoreError::UnknownScheduler { name } => write!(f, "unknown scheduler `{name}`"),
            CoreError::InvalidParameter {
                name,
                value,
                reason,
            } => write!(f, "invalid parameter {name} = {value}: {reason}"),
            CoreError::CapacitySlaViolation { at, rate, c_lo } => write!(
                f,
                "capacity SLA violated at t = {at}: observed rate {rate} < declared c_lo {c_lo}"
            ),
            CoreError::OracleDown { at, retries } => write!(
                f,
                "capacity oracle declared dead at t = {at} after {retries} failed readings"
            ),
            CoreError::InadmissibleJob {
                id,
                window,
                min_time,
            } => write!(
                f,
                "job {id} is not individually admissible: window {window} < p/c_lo = {min_time}"
            ),
            CoreError::DuplicateRelease { id, of } => {
                write!(f, "job {id} duplicates the parameters of job {of}")
            }
            CoreError::ValueSpike { id, density, limit } => write!(
                f,
                "job {id} value density {density} exceeds the importance-ratio limit {limit}"
            ),
            CoreError::InvalidArgument { flag, reason } => {
                write!(f, "argument {flag}: {reason}")
            }
            CoreError::QueueOverflow { seq, live, cap } => write!(
                f,
                "admission queue overflow at arrival {seq}: {live} live jobs, capacity {cap}"
            ),
            CoreError::JournalWrite { reason, attempts } => {
                write!(
                    f,
                    "journal write failed after {attempts} attempts: {reason}"
                )
            }
            CoreError::CorruptJournal { line, reason } => {
                write!(f, "corrupt journal record at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offending_values() {
        let e = CoreError::NonPositiveWorkload { workload: -1.0 };
        assert!(e.to_string().contains("-1"));
        let e = CoreError::DeadlineNotAfterRelease {
            release: 2.0,
            deadline: 1.0,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('1'));
        let e = CoreError::UnknownJob { id: 42 };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn fault_variants_render_their_context() {
        let e = CoreError::CapacitySlaViolation {
            at: 3.5,
            rate: 0.4,
            c_lo: 1.0,
        };
        let s = e.to_string();
        assert!(s.contains("3.5") && s.contains("0.4") && s.contains("SLA"));
        let e = CoreError::OracleDown {
            at: 2.0,
            retries: 3,
        };
        assert!(e.to_string().contains("3 failed"));
        let e = CoreError::InadmissibleJob {
            id: 5,
            window: 1.0,
            min_time: 2.0,
        };
        assert!(e.to_string().contains("job 5"));
        let e = CoreError::DuplicateRelease { id: 9, of: 4 };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
        let e = CoreError::ValueSpike {
            id: 1,
            density: 99.0,
            limit: 7.0,
        };
        assert!(e.to_string().contains("99"));
        let e = CoreError::UnknownScheduler {
            name: "bogus".into(),
        };
        assert!(e.to_string().contains("bogus"));
        let e = CoreError::InvalidArgument {
            flag: "--seeds".into(),
            reason: "not a number".into(),
        };
        assert!(e.to_string().contains("--seeds"));
        let e = CoreError::JournalWrite {
            reason: "disk full".into(),
            attempts: 3,
        };
        assert!(e.to_string().contains("3 attempts") && e.to_string().contains("disk full"));
        let e = CoreError::CorruptJournal {
            line: 17,
            reason: "bad svc record".into(),
        };
        assert!(e.to_string().contains("line 17"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(CoreError::NonFiniteDeadline);
        assert!(e.to_string().contains("finite"));
    }
}
