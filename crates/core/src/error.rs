//! Workspace-wide error type for domain validation.

use std::fmt;

/// Errors raised when constructing or validating domain objects.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A job was constructed with a non-positive workload.
    NonPositiveWorkload {
        /// Offending workload value.
        workload: f64,
    },
    /// A job was constructed with a negative value.
    NegativeValue {
        /// Offending value.
        value: f64,
    },
    /// A job's deadline is not strictly after its release time.
    DeadlineNotAfterRelease {
        /// Release time (seconds).
        release: f64,
        /// Deadline (seconds).
        deadline: f64,
    },
    /// A job's release time is negative.
    NegativeRelease {
        /// Offending release time.
        release: f64,
    },
    /// A job's deadline is not finite.
    NonFiniteDeadline,
    /// A capacity profile was given an out-of-order or empty breakpoint list.
    InvalidCapacityProfile {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A schedule failed validation.
    InvalidSchedule {
        /// Human-readable description of the defect.
        reason: String,
    },
    /// A referenced job id does not exist in the job set.
    UnknownJob {
        /// The dangling id.
        id: u64,
    },
    /// Two jobs in one job set share an id.
    DuplicateJob {
        /// The duplicated id.
        id: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NonPositiveWorkload { workload } => {
                write!(f, "job workload must be positive, got {workload}")
            }
            CoreError::NegativeValue { value } => {
                write!(f, "job value must be non-negative, got {value}")
            }
            CoreError::DeadlineNotAfterRelease { release, deadline } => write!(
                f,
                "deadline ({deadline}) must be strictly after release ({release})"
            ),
            CoreError::NegativeRelease { release } => {
                write!(f, "release time must be non-negative, got {release}")
            }
            CoreError::NonFiniteDeadline => write!(f, "deadline must be finite"),
            CoreError::InvalidCapacityProfile { reason } => {
                write!(f, "invalid capacity profile: {reason}")
            }
            CoreError::InvalidSchedule { reason } => write!(f, "invalid schedule: {reason}"),
            CoreError::UnknownJob { id } => write!(f, "unknown job id {id}"),
            CoreError::DuplicateJob { id } => write!(f, "duplicate job id {id}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_offending_values() {
        let e = CoreError::NonPositiveWorkload { workload: -1.0 };
        assert!(e.to_string().contains("-1"));
        let e = CoreError::DeadlineNotAfterRelease {
            release: 2.0,
            deadline: 1.0,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('1'));
        let e = CoreError::UnknownJob { id: 42 };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(CoreError::NonFiniteDeadline);
        assert!(e.to_string().contains("finite"));
    }
}
