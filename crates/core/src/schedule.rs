//! Explicit schedules: who ran when.
//!
//! A [`Schedule`] is a sequence of [`ExecutionSlice`]s — half-open intervals
//! `[start, end)` during which one job executes on the (single) processor.
//! Offline algorithms produce schedules directly; the simulator records one as
//! it runs so that the audit layer can re-check every invariant after the
//! fact.

use crate::error::CoreError;
use crate::job::JobId;
use crate::time::Time;

/// One maximal period of uninterrupted execution of a single job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionSlice {
    /// The executing job.
    pub job: JobId,
    /// Slice start (inclusive).
    pub start: Time,
    /// Slice end (exclusive).
    pub end: Time,
}

impl ExecutionSlice {
    /// Creates a slice; `start < end` is required.
    pub fn new(job: JobId, start: Time, end: Time) -> Result<Self, CoreError> {
        if end <= start {
            return Err(CoreError::InvalidSchedule {
                reason: format!("slice for {job} has end {end} <= start {start}"),
            });
        }
        Ok(ExecutionSlice { job, start, end })
    }

    /// Wall-clock length of the slice.
    #[inline]
    pub fn wall_time(&self) -> f64 {
        self.end.as_f64() - self.start.as_f64()
    }
}

/// A time-ordered, non-overlapping sequence of execution slices.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schedule {
    slices: Vec<ExecutionSlice>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule { slices: Vec::new() }
    }

    /// Creates a schedule from slices, validating ordering and disjointness.
    pub fn from_slices(slices: Vec<ExecutionSlice>) -> Result<Self, CoreError> {
        for w in slices.windows(2) {
            // Tolerate exact adjacency; reject genuine overlap.
            if w[1].start < w[0].end && !w[1].start.approx_eq(w[0].end) {
                return Err(CoreError::InvalidSchedule {
                    reason: format!(
                        "slices overlap: {:?} then {:?}",
                        (w[0].job, w[0].start, w[0].end),
                        (w[1].job, w[1].start, w[1].end)
                    ),
                });
            }
        }
        Ok(Schedule { slices })
    }

    /// Appends a slice at the end of the schedule.
    ///
    /// # Errors
    /// If the slice is empty/inverted or starts before the last recorded end.
    pub fn push(&mut self, job: JobId, start: Time, end: Time) -> Result<(), CoreError> {
        let slice = ExecutionSlice::new(job, start, end)?;
        if let Some(last) = self.slices.last() {
            if slice.start < last.end && !slice.start.approx_eq(last.end) {
                return Err(CoreError::InvalidSchedule {
                    reason: format!(
                        "slice for {} starting at {} overlaps previous slice ending at {}",
                        job, slice.start, last.end
                    ),
                });
            }
        }
        // Merge with previous slice if it is a seamless continuation.
        if let Some(last) = self.slices.last_mut() {
            if last.job == job && slice.start.approx_eq(last.end) {
                last.end = slice.end;
                return Ok(());
            }
        }
        self.slices.push(slice);
        Ok(())
    }

    /// The recorded slices in time order.
    #[inline]
    pub fn slices(&self) -> &[ExecutionSlice] {
        &self.slices
    }

    /// Number of slices.
    #[inline]
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// `true` if nothing was ever executed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// All slices belonging to one job, in time order.
    pub fn slices_of(&self, job: JobId) -> impl Iterator<Item = &ExecutionSlice> {
        self.slices.iter().filter(move |s| s.job == job)
    }

    /// Total wall-clock time during which `job` executes.
    pub fn wall_time_of(&self, job: JobId) -> f64 {
        self.slices_of(job).map(|s| s.wall_time()).sum()
    }

    /// Total busy wall-clock time.
    pub fn busy_time(&self) -> f64 {
        self.slices.iter().map(|s| s.wall_time()).sum()
    }

    /// Number of preemptions: context switches where a job's slice ends
    /// without that job being finished *and* another slice follows. We count
    /// conservatively as (slices of job) - 1 summed over jobs, i.e. how many
    /// times execution of some job was split.
    pub fn preemption_count(&self) -> usize {
        use std::collections::BTreeMap;
        let mut per_job: BTreeMap<JobId, usize> = BTreeMap::new();
        for s in &self.slices {
            *per_job.entry(s.job).or_insert(0) += 1;
        }
        per_job.values().map(|&n| n - 1).sum()
    }

    /// End of the last slice, or `None` if empty.
    pub fn makespan_end(&self) -> Option<Time> {
        self.slices.last().map(|s| s.end)
    }

    /// Applies a strictly-increasing time map to every slice boundary
    /// (used by the stretch transformation of §III-A).
    pub fn map_time<F: Fn(Time) -> Time>(&self, f: F) -> Result<Schedule, CoreError> {
        let slices = self
            .slices
            .iter()
            .map(|s| ExecutionSlice::new(s.job, f(s.start), f(s.end)))
            .collect::<Result<Vec<_>, _>>()?;
        Schedule::from_slices(slices)
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for s in &self.slices {
            writeln!(f, "[{}, {}) {}", s.start, s.end, s.job)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> Time {
        Time::new(x)
    }

    #[test]
    fn slice_rejects_inverted_interval() {
        assert!(ExecutionSlice::new(JobId(0), t(2.0), t(1.0)).is_err());
        assert!(ExecutionSlice::new(JobId(0), t(1.0), t(1.0)).is_err());
        let s = ExecutionSlice::new(JobId(0), t(1.0), t(3.0)).unwrap();
        assert_eq!(s.wall_time(), 2.0);
    }

    #[test]
    fn push_enforces_time_order() {
        let mut sched = Schedule::new();
        sched.push(JobId(0), t(0.0), t(1.0)).unwrap();
        sched.push(JobId(1), t(1.0), t(2.0)).unwrap();
        // Going back in time is rejected.
        assert!(sched.push(JobId(2), t(1.5), t(3.0)).is_err());
        // Gap is fine.
        sched.push(JobId(2), t(5.0), t(6.0)).unwrap();
        assert_eq!(sched.len(), 3);
    }

    #[test]
    fn seamless_continuation_merges() {
        let mut sched = Schedule::new();
        sched.push(JobId(0), t(0.0), t(1.0)).unwrap();
        sched.push(JobId(0), t(1.0), t(2.0)).unwrap();
        assert_eq!(sched.len(), 1);
        assert_eq!(sched.slices()[0].end, t(2.0));
    }

    #[test]
    fn per_job_accounting() {
        let mut sched = Schedule::new();
        sched.push(JobId(0), t(0.0), t(1.0)).unwrap();
        sched.push(JobId(1), t(1.0), t(3.0)).unwrap();
        sched.push(JobId(0), t(3.0), t(4.0)).unwrap();
        assert_eq!(sched.wall_time_of(JobId(0)), 2.0);
        assert_eq!(sched.wall_time_of(JobId(1)), 2.0);
        assert_eq!(sched.busy_time(), 4.0);
        assert_eq!(sched.preemption_count(), 1);
        assert_eq!(sched.makespan_end(), Some(t(4.0)));
        assert_eq!(sched.slices_of(JobId(0)).count(), 2);
    }

    #[test]
    fn from_slices_validates_overlap() {
        let a = ExecutionSlice::new(JobId(0), t(0.0), t(2.0)).unwrap();
        let b = ExecutionSlice::new(JobId(1), t(1.0), t(3.0)).unwrap();
        assert!(Schedule::from_slices(vec![a, b]).is_err());
        let c = ExecutionSlice::new(JobId(1), t(2.0), t(3.0)).unwrap();
        assert!(Schedule::from_slices(vec![a, c]).is_ok());
    }

    #[test]
    fn time_map_scales_schedule() {
        let mut sched = Schedule::new();
        sched.push(JobId(0), t(0.0), t(1.0)).unwrap();
        sched.push(JobId(1), t(2.0), t(3.0)).unwrap();
        let doubled = sched.map_time(|x| Time::new(x.as_f64() * 2.0)).unwrap();
        assert_eq!(doubled.slices()[1].start, t(4.0));
        assert_eq!(doubled.busy_time(), 4.0);
    }

    #[test]
    fn display_lists_slices() {
        let mut sched = Schedule::new();
        sched.push(JobId(0), t(0.0), t(1.0)).unwrap();
        let out = sched.to_string();
        assert!(out.contains("T0"));
    }

    #[test]
    fn empty_schedule_properties() {
        let sched = Schedule::new();
        assert!(sched.is_empty());
        assert_eq!(sched.busy_time(), 0.0);
        assert_eq!(sched.preemption_count(), 0);
        assert_eq!(sched.makespan_end(), None);
    }
}
