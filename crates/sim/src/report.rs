//! Run results.

use cloudsched_core::{JobSet, Outcome, Schedule};
use cloudsched_obs::MetricsSnapshot;

/// One point of the cumulative value-versus-time curve (the paper's Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// Completion instant.
    pub time: f64,
    /// Total value accrued up to and including this instant.
    pub cumulative_value: f64,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Name of the scheduler that produced this run.
    pub scheduler: String,
    /// Per-job outcomes.
    pub outcome: Outcome,
    /// Total value earned (sum over completed jobs).
    pub value: f64,
    /// `value / total generated value` — the paper's Table I metric.
    pub value_fraction: f64,
    /// Number of completed jobs.
    pub completed: usize,
    /// Number of deadline misses — always `expired + abandoned`.
    pub missed: usize,
    /// Misses whose deadline passed with work left and no abandonment
    /// decision (the job simply ran out of time).
    pub expired: usize,
    /// Total value lost to passive expiry.
    pub expired_value: f64,
    /// Misses the scheduler explicitly gave up on before the deadline
    /// (`SimContext::abandon`, e.g. Dover's procedure D without a
    /// supplement queue).
    pub abandoned: usize,
    /// Total value forfeited by explicit abandonment.
    pub abandoned_value: f64,
    /// Number of preemptions (a running job displaced before finishing).
    pub preemptions: usize,
    /// Number of dispatches (context switches onto the processor).
    pub dispatches: usize,
    /// Number of kernel events processed.
    pub events: usize,
    /// The full execution schedule, if recording was enabled.
    pub schedule: Option<Schedule>,
    /// The value-vs-time curve, if recording was enabled.
    pub trajectory: Option<Vec<TrajectoryPoint>>,
    /// Metrics snapshot, when the run was driven through
    /// [`crate::engine::simulate_with_metrics`] (or a caller attached one).
    pub metrics: Option<MetricsSnapshot>,
}

impl RunReport {
    /// Recomputes the value fraction against a job set (useful after
    /// normalising values).
    pub fn value_fraction_of(&self, jobs: &JobSet) -> f64 {
        let total = jobs.total_value();
        // lint: allow(L001) — exact zero guard before division
        if total == 0.0 {
            0.0
        } else {
            self.value / total
        }
    }

    /// Completion ratio `completed / (completed + missed)`.
    pub fn completion_ratio(&self) -> f64 {
        let n = self.completed + self.missed;
        if n == 0 {
            0.0
        } else {
            self.completed as f64 / n as f64
        }
    }

    /// Response times (completion − release) of all completed jobs, in job-id
    /// order.
    pub fn response_times(&self, jobs: &JobSet) -> Vec<f64> {
        self.outcome
            .completed()
            .map(|id| match self.outcome.get(id) {
                cloudsched_core::JobOutcome::Completed { at } => {
                    (at - jobs.get(id).release).as_f64()
                }
                _ => unreachable!("completed() yields completed jobs"),
            })
            .collect()
    }

    /// Mean response time of completed jobs (`None` if nothing completed).
    pub fn mean_response_time(&self, jobs: &JobSet) -> Option<f64> {
        let rts = self.response_times(jobs);
        if rts.is_empty() {
            None
        } else {
            Some(rts.iter().sum::<f64>() / rts.len() as f64)
        }
    }

    /// Fraction of the wall-clock span `[first release, last deadline]` the
    /// processor spent executing. Requires a recorded schedule.
    pub fn busy_fraction(&self, jobs: &JobSet) -> Option<f64> {
        let schedule = self.schedule.as_ref()?;
        let span = (jobs.last_deadline() - jobs.first_release()).as_f64();
        // lint: allow(L001) — exact degenerate-span guard
        if span <= 0.0 {
            return Some(0.0);
        }
        Some(schedule.busy_time() / span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_core::{JobId, JobOutcome, Time};

    #[test]
    fn derived_ratios() {
        let jobs = JobSet::from_tuples(&[(0.0, 1.0, 1.0, 4.0), (0.0, 1.0, 1.0, 6.0)]).unwrap();
        let mut outcome = Outcome::new(2);
        outcome.set(JobId(0), JobOutcome::Completed { at: Time::new(0.5) });
        outcome.set(
            JobId(1),
            JobOutcome::Missed {
                remaining_workload: 0.1,
            },
        );
        let r = RunReport {
            scheduler: "test".into(),
            outcome,
            value: 4.0,
            value_fraction: 0.4,
            completed: 1,
            missed: 1,
            expired: 1,
            expired_value: 6.0,
            abandoned: 0,
            abandoned_value: 0.0,
            preemptions: 0,
            dispatches: 1,
            events: 4,
            schedule: None,
            trajectory: None,
            metrics: None,
        };
        assert_eq!(r.completion_ratio(), 0.5);
        assert!((r.value_fraction_of(&jobs) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn response_time_and_busy_metrics() {
        use cloudsched_core::{ExecutionSlice, Schedule};
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 1.0, 4.0), (2.0, 10.0, 1.0, 6.0)]).unwrap();
        let mut outcome = Outcome::new(2);
        outcome.set(JobId(0), JobOutcome::Completed { at: Time::new(1.0) });
        outcome.set(JobId(1), JobOutcome::Completed { at: Time::new(5.0) });
        let schedule = Schedule::from_slices(vec![
            ExecutionSlice::new(JobId(0), Time::new(0.0), Time::new(1.0)).unwrap(),
            ExecutionSlice::new(JobId(1), Time::new(4.0), Time::new(5.0)).unwrap(),
        ])
        .unwrap();
        let r = RunReport {
            scheduler: "test".into(),
            outcome,
            value: 10.0,
            value_fraction: 1.0,
            completed: 2,
            missed: 0,
            expired: 0,
            expired_value: 0.0,
            abandoned: 0,
            abandoned_value: 0.0,
            preemptions: 0,
            dispatches: 2,
            events: 6,
            schedule: Some(schedule),
            trajectory: None,
            metrics: None,
        };
        assert_eq!(r.response_times(&jobs), vec![1.0, 3.0]);
        assert_eq!(r.mean_response_time(&jobs), Some(2.0));
        // Busy 2 over span 10.
        assert!((r.busy_fraction(&jobs).unwrap() - 0.2).abs() < 1e-12);
        // No schedule -> no busy fraction.
        let lean = RunReport {
            schedule: None,
            ..r.clone()
        };
        assert_eq!(lean.busy_fraction(&jobs), None);
    }

    #[test]
    fn empty_run_ratios_are_zero() {
        let jobs = JobSet::new(vec![]).unwrap();
        let r = RunReport {
            scheduler: "test".into(),
            outcome: Outcome::new(0),
            value: 0.0,
            value_fraction: 0.0,
            completed: 0,
            missed: 0,
            expired: 0,
            expired_value: 0.0,
            abandoned: 0,
            abandoned_value: 0.0,
            preemptions: 0,
            dispatches: 0,
            events: 0,
            schedule: None,
            trajectory: None,
            metrics: None,
        };
        assert_eq!(r.completion_ratio(), 0.0);
        assert_eq!(r.value_fraction_of(&jobs), 0.0);
    }
}
