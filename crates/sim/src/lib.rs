//! # cloudsched-sim
//!
//! Event-driven simulator for preemptive scheduling of firm-deadline jobs on
//! a single processor with time-varying capacity — the evaluation substrate
//! for *Secondary Job Scheduling in the Cloud with Deadlines* (§II-A, §IV).
//!
//! The authors' simulator was never published; this one implements the
//! paper's mathematical model *exactly*:
//!
//! * continuous time, **no quantisation** — job progress is the exact
//!   integral `∫ c(τ)dτ` over execution slices of a piecewise-constant
//!   capacity profile, and completion instants are closed-form inverse
//!   integrals;
//! * the three interrupt types of the V-Dover skeleton (procedure A) map
//!   one-to-one onto kernel events: *job release*, *job completion or
//!   failure* (deadline), and scheduler-requested *timers* (used for the
//!   zero-conservative-laxity interrupt, and by Dover for latest-start-time
//!   interrupts);
//! * preemption is free and exact, as the model assumes.
//!
//! Schedulers implement the [`Scheduler`] trait: the kernel calls one handler
//! per interrupt and the handler returns a [`Decision`] (run job X / idle /
//! keep going). Everything a legitimate *online* algorithm may observe —
//! job parameters of released jobs, remaining workloads (derivable online
//! from the observed past capacity), the current rate, and the declared
//! capacity class bounds — is exposed through [`SimContext`]; the future of
//! the capacity trace is not reachable from scheduler code.
//!
//! After a run, [`audit::audit_report`] re-checks the recorded schedule
//! against the model invariants (single job at a time, capacity-respecting
//! progress, firm deadlines, value accounting).
//!
//! When the cloud breaks the model's assumptions instead — capacity-SLA
//! dips, oracle dropouts, corrupt job streams — the [`degrade`] layer keeps
//! the kernel deterministic and honest: a [`Watchdog`] re-checks the paper's
//! preconditions online and a [`DegradationPolicy`] decides between aborting
//! with a typed error, quarantining-and-recovering, or logging and carrying
//! on ([`engine::simulate_degraded`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod context;
pub mod degrade;
pub mod engine;
pub mod event;
pub mod fleet;
pub mod report;
pub mod scheduler;
pub mod service;
pub mod snapshot;
pub mod workspace;

pub use context::{Decision, SimContext};
pub use degrade::{
    DegradationPolicy, DegradationStats, DegradedOutcome, OracleReading, RateOracle, TrueOracle,
    Watchdog, WatchdogConfig,
};
pub use engine::{
    simulate, simulate_degraded, simulate_into, simulate_into_traced, simulate_observed,
    simulate_traced, simulate_with_metrics, RunOptions,
};
pub use fleet::{run_fleet, Dispatch, FleetLoads, FleetReport, MachineReport};
pub use report::{RunReport, TrajectoryPoint};
pub use scheduler::Scheduler;
pub use service::{
    journal_header, parse_stream, recover, serve, Arrival, DecisionReason, JournalHeader,
    ServiceConfig, ServiceDecision, ServiceOutcome,
};
pub use workspace::SimWorkspace;
