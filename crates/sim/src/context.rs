//! The scheduler's window into the simulation.

use cloudsched_core::{Duration, Job, JobId, JobSet, Time};
use cloudsched_obs::{DecisionAction, TraceEvent, Tracer};

/// What the scheduler wants the processor to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Dispatch this job (preempting the current one if different).
    Run(JobId),
    /// Leave the processor idle (preempting the current job if any).
    Idle,
    /// Keep doing whatever is currently happening.
    Continue,
}

/// A timer registration created by the scheduler during a handler call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimerRequest {
    /// When the timer fires.
    pub at: Time,
    /// The job it concerns.
    pub job: JobId,
    /// Token echoed back in [`crate::Scheduler::on_timer`].
    pub token: u64,
}

/// Read access to everything an *online* scheduler may legitimately observe
/// (§II-A: job parameters at release, the capacity realised so far — hence
/// remaining workloads — and the declared capacity class bounds), plus the
/// ability to request timer interrupts, emit scheduler-level trace events
/// and declare explicit job abandonment.
///
/// The future of the capacity trace is deliberately unreachable.
pub struct SimContext<'a> {
    now: Time,
    jobs: &'a JobSet,
    remaining: &'a [f64],
    running: Option<JobId>,
    current_rate: f64,
    c_lo: f64,
    c_hi: f64,
    // Scratch buffers owned by the kernel's workspace and drained by the
    // dispatch loop after each handler call; borrowing them keeps the
    // steady state of a Monte-Carlo sweep allocation-free.
    timer_requests: &'a mut Vec<TimerRequest>,
    abandon_notices: &'a mut Vec<JobId>,
    tracer: &'a mut dyn Tracer,
}

impl std::fmt::Debug for SimContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimContext")
            .field("now", &self.now)
            .field("running", &self.running)
            .field("current_rate", &self.current_rate)
            .field("c_lo", &self.c_lo)
            .field("c_hi", &self.c_hi)
            .finish_non_exhaustive()
    }
}

impl<'a> SimContext<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        now: Time,
        jobs: &'a JobSet,
        remaining: &'a [f64],
        running: Option<JobId>,
        current_rate: f64,
        c_lo: f64,
        c_hi: f64,
        timer_requests: &'a mut Vec<TimerRequest>,
        abandon_notices: &'a mut Vec<JobId>,
        tracer: &'a mut dyn Tracer,
    ) -> Self {
        debug_assert!(timer_requests.is_empty() && abandon_notices.is_empty());
        SimContext {
            now,
            jobs,
            remaining,
            running,
            current_rate,
            c_lo,
            c_hi,
            timer_requests,
            abandon_notices,
            tracer,
        }
    }

    /// Current simulation time (the paper's `now()`).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Parameters of a released job.
    #[inline]
    pub fn job(&self, id: JobId) -> &Job {
        self.jobs.get(id)
    }

    /// Remaining workload `p_r(T_i)` of a job.
    #[inline]
    pub fn remaining(&self, id: JobId) -> f64 {
        self.remaining[id.index()]
    }

    /// The currently executing job, if any. During a handler this reflects
    /// the state *at interrupt delivery* (e.g. in `on_completion` the
    /// completed job is already off the processor).
    #[inline]
    pub fn running(&self) -> Option<JobId> {
        self.running
    }

    /// Capacity right now — `c(t)` is observable up to the present.
    #[inline]
    pub fn current_rate(&self) -> f64 {
        self.current_rate
    }

    /// Declared lower capacity bound `c_lo` of the input class: the
    /// conservative future-capacity estimate available to V-Dover.
    #[inline]
    pub fn c_lo(&self) -> f64 {
        self.c_lo
    }

    /// Declared upper capacity bound `c_hi`.
    #[inline]
    pub fn c_hi(&self) -> f64 {
        self.c_hi
    }

    /// Conservative remaining processing-time estimate `t_c(T, c_lo)`
    /// (paper notation: remaining workload divided by the worst-case rate).
    #[inline]
    pub fn conservative_remaining_time(&self, id: JobId) -> Duration {
        Duration::new(self.remaining(id) / self.c_lo)
    }

    /// Conservative laxity (Definition 5):
    /// `claxity(T) = d - now - p_r(T)/c_lo`.
    #[inline]
    pub fn conservative_laxity(&self, id: JobId) -> Duration {
        self.job(id)
            .laxity_with(self.now, self.remaining(id), self.c_lo)
    }

    /// Laxity under an arbitrary assumed constant future rate (used by the
    /// Dover baseline with its capacity estimate `ĉ`).
    #[inline]
    pub fn laxity_with_rate(&self, id: JobId, rate: f64) -> Duration {
        self.job(id).laxity_with(self.now, self.remaining(id), rate)
    }

    /// Requests a timer interrupt at `at` concerning `job`; `token` is echoed
    /// back so the scheduler can detect stale timers. Timers in the past are
    /// delivered immediately after the current handler returns.
    pub fn set_timer(&mut self, at: Time, job: JobId, token: u64) {
        let at = at.max(self.now);
        self.timer_requests.push(TimerRequest { at, job, token });
    }

    /// Whether a live tracer is attached. Handlers should skip constructing
    /// trace events entirely when this is `false`.
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Records a scheduler-level trace event (supplement-queue activity,
    /// conservative-laxity flips, queue depths, …) into the run's tracer.
    /// No-op under the default `NoopTracer`.
    #[inline]
    pub fn trace(&mut self, event: TraceEvent) {
        if self.tracer.enabled() {
            self.tracer.record(&event);
        }
    }

    /// Whether the attached sink opted into decision-provenance events.
    /// Provenance stamps (and the laxity/density arithmetic feeding them)
    /// should be skipped entirely when this is `false`, which keeps default
    /// trace streams byte-identical.
    #[inline]
    pub fn provenance_enabled(&self) -> bool {
        self.tracer.enabled() && self.tracer.wants_provenance()
    }

    /// Emits a [`TraceEvent::Decision`] provenance stamp for `job`, filling
    /// in the conservative laxity under `rate` (the estimate the caller's
    /// decision actually used) and the job's value density. No-op unless the
    /// sink opted in via [`SimContext::provenance_enabled`].
    pub fn trace_decision(
        &mut self,
        action: DecisionAction,
        job: JobId,
        rate: f64,
        rank: usize,
        flip: bool,
    ) {
        if !self.provenance_enabled() {
            return;
        }
        let j = self.job(job);
        let laxity = j.laxity_with(self.now, self.remaining(job), rate).as_f64();
        let density = j.value_density();
        let ev = TraceEvent::Decision {
            t: self.now,
            job,
            action,
            laxity,
            density,
            rank,
            flip,
        };
        self.tracer.record(&ev);
    }

    /// Declares that the scheduler has permanently given up on `job` before
    /// its deadline (Dover's procedure D without a supplement queue). The
    /// kernel books the job as *abandoned* rather than *expired* when its
    /// deadline fires, and an `Abandon` trace event is emitted here.
    pub fn abandon(&mut self, job: JobId) {
        if self.tracer.enabled() {
            let ev = TraceEvent::Abandon {
                t: self.now,
                job,
                remaining: self.remaining(job),
                value: self.job(job).value,
            };
            self.tracer.record(&ev);
            // Abandonment happens on the losing side of a zero-laxity
            // arbitration, so the flip state is stamped as already flipped.
            self.trace_decision(DecisionAction::Abandon, job, self.c_lo, 0, true);
        }
        self.abandon_notices.push(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_obs::{NoopTracer, RingTracer};

    fn jobs() -> JobSet {
        JobSet::from_tuples(&[(0.0, 10.0, 4.0, 1.0), (1.0, 6.0, 2.0, 5.0)]).unwrap()
    }

    #[test]
    fn accessors() {
        let js = jobs();
        let remaining = [4.0, 1.0];
        let mut tracer = NoopTracer;
        let (mut timers, mut abandons) = (Vec::new(), Vec::new());
        let ctx = SimContext::new(
            Time::new(2.0),
            &js,
            &remaining,
            Some(JobId(0)),
            3.0,
            1.0,
            4.0,
            &mut timers,
            &mut abandons,
            &mut tracer,
        );
        assert!(!ctx.tracing_enabled());
        assert_eq!(ctx.now(), Time::new(2.0));
        assert_eq!(ctx.job(JobId(1)).value, 5.0);
        assert_eq!(ctx.remaining(JobId(1)), 1.0);
        assert_eq!(ctx.running(), Some(JobId(0)));
        assert_eq!(ctx.current_rate(), 3.0);
        assert_eq!(ctx.c_lo(), 1.0);
        assert_eq!(ctx.c_hi(), 4.0);
    }

    #[test]
    fn conservative_laxity_matches_definition_5() {
        let js = jobs();
        let remaining = [4.0, 1.0];
        let mut tracer = NoopTracer;
        let (mut timers, mut abandons) = (Vec::new(), Vec::new());
        let ctx = SimContext::new(
            Time::new(2.0),
            &js,
            &remaining,
            None,
            1.0,
            2.0,
            4.0,
            &mut timers,
            &mut abandons,
            &mut tracer,
        );
        // Job 0: d=10, now=2, p_r=4, c_lo=2 => 10-2-2 = 6.
        assert_eq!(ctx.conservative_laxity(JobId(0)).as_f64(), 6.0);
        assert_eq!(ctx.conservative_remaining_time(JobId(0)).as_f64(), 2.0);
        // With an optimistic rate estimate laxity grows.
        assert_eq!(ctx.laxity_with_rate(JobId(0), 4.0).as_f64(), 7.0);
    }

    #[test]
    fn timers_clamp_to_now_and_land_in_the_scratch_buffer() {
        let js = jobs();
        let remaining = [4.0, 1.0];
        let mut tracer = NoopTracer;
        let (mut timers, mut abandons) = (Vec::new(), Vec::new());
        let mut ctx = SimContext::new(
            Time::new(5.0),
            &js,
            &remaining,
            None,
            1.0,
            1.0,
            1.0,
            &mut timers,
            &mut abandons,
            &mut tracer,
        );
        ctx.set_timer(Time::new(3.0), JobId(0), 7); // in the past -> clamped
        ctx.set_timer(Time::new(8.0), JobId(1), 9);
        drop(ctx);
        assert_eq!(timers.len(), 2);
        assert_eq!(timers[0].at, Time::new(5.0));
        assert_eq!(timers[0].token, 7);
        assert_eq!(timers[1].at, Time::new(8.0));
        assert!(abandons.is_empty());
    }

    #[test]
    fn abandon_emits_event_and_notice() {
        let js = jobs();
        let remaining = [4.0, 1.5];
        let mut ring = RingTracer::new(8);
        let (mut timers, mut abandons) = (Vec::new(), Vec::new());
        let mut ctx = SimContext::new(
            Time::new(3.0),
            &js,
            &remaining,
            None,
            1.0,
            1.0,
            1.0,
            &mut timers,
            &mut abandons,
            &mut ring,
        );
        assert!(ctx.tracing_enabled());
        ctx.abandon(JobId(1));
        drop(ctx);
        assert_eq!(abandons, vec![JobId(1)]);
        assert!(timers.is_empty());
        let evs: Vec<_> = ring.take();
        assert_eq!(evs.len(), 1);
        match evs[0] {
            TraceEvent::Abandon {
                job,
                remaining,
                value,
                ..
            } => {
                assert_eq!(job, JobId(1));
                assert!((remaining - 1.5).abs() < 1e-12);
                assert!((value - 5.0).abs() < 1e-12);
            }
            ref other => panic!("expected abandon, got {other:?}"),
        }
    }

    #[test]
    fn trace_decision_is_gated_on_provenance_opt_in() {
        use cloudsched_obs::WithProvenance;
        let js = jobs();
        let remaining = [4.0, 1.0];
        let (mut timers, mut abandons) = (Vec::new(), Vec::new());
        // A live but non-opted-in sink records nothing.
        let mut plain = RingTracer::new(8);
        let mut ctx = SimContext::new(
            Time::new(2.0),
            &js,
            &remaining,
            None,
            1.0,
            2.0,
            4.0,
            &mut timers,
            &mut abandons,
            &mut plain,
        );
        assert!(!ctx.provenance_enabled());
        ctx.trace_decision(DecisionAction::Admit, JobId(0), 2.0, 0, false);
        drop(ctx);
        assert!(plain.is_empty());
        // An opted-in sink gets the stamp with laxity/density filled in.
        let mut wrapped = WithProvenance(RingTracer::new(8));
        let mut ctx = SimContext::new(
            Time::new(2.0),
            &js,
            &remaining,
            None,
            1.0,
            2.0,
            4.0,
            &mut timers,
            &mut abandons,
            &mut wrapped,
        );
        assert!(ctx.provenance_enabled());
        ctx.trace_decision(DecisionAction::Reject, JobId(0), 2.0, 3, true);
        drop(ctx);
        let evs = wrapped.0.take();
        assert_eq!(evs.len(), 1);
        match evs[0] {
            TraceEvent::Decision {
                job,
                action,
                laxity,
                density,
                rank,
                flip,
                ..
            } => {
                assert_eq!(job, JobId(0));
                assert_eq!(action, DecisionAction::Reject);
                // d=10, now=2, p_r=4, rate=2 => laxity 6; density 1/4.
                assert!((laxity - 6.0).abs() < 1e-12);
                assert!((density - 0.25).abs() < 1e-12);
                assert_eq!(rank, 3);
                assert!(flip);
            }
            ref other => panic!("expected decision, got {other:?}"),
        }
    }

    #[test]
    fn trace_is_silent_under_noop() {
        let js = jobs();
        let remaining = [4.0, 1.0];
        let mut tracer = NoopTracer;
        let (mut timers, mut abandons) = (Vec::new(), Vec::new());
        let mut ctx = SimContext::new(
            Time::new(1.0),
            &js,
            &remaining,
            None,
            1.0,
            1.0,
            1.0,
            &mut timers,
            &mut abandons,
            &mut tracer,
        );
        ctx.trace(TraceEvent::ClaxityZero {
            t: Time::new(1.0),
            job: JobId(0),
        });
        // Abandon notices still flow even when tracing is off: the kernel's
        // expired/abandoned split must not depend on observability.
        ctx.abandon(JobId(0));
        drop(ctx);
        assert_eq!(abandons, vec![JobId(0)]);
    }
}
