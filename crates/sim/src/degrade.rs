//! Graceful degradation: watchdog, policies and the degraded entry point.
//!
//! Every guarantee in the paper leans on assumptions the cloud can break:
//! conservative laxity (Definition 5) is only safe while `c(t) ≥ c_lo`
//! actually holds, and Theorem 3's competitive ratio evaporates when jobs
//! are not individually admissible (Definition 4, §III-D). This module
//! keeps the engine running — deterministically and observably — when those
//! assumptions fail, instead of silently violating the theorems.
//!
//! Three moving parts:
//!
//! * a [`RateOracle`] — the *monitoring plane*. Job progress always
//!   integrates the physical capacity (the kernel cannot mis-execute), but
//!   the watchdog sees capacity only through the oracle, which may add
//!   noise, lag behind, or go dark entirely (`cloudsched-faults` provides a
//!   seeded faulty implementation);
//! * a [`Watchdog`] that re-checks the paper's preconditions online: the
//!   Definition 4 admissibility predicate on every release (the same check
//!   [`crate::audit::certify_admissibility`] certifies post-hoc), duplicate
//!   releases, value spikes breaking the assumed importance ratio `k`, and
//!   the capacity SLA `c(t) ≥ c_lo` on every observed segment;
//! * a [`DegradationPolicy`] deciding what a detected fault does to the
//!   run: `Strict` aborts with a typed [`CoreError`], `Degrade` quarantines
//!   offending jobs and re-estimates a running `c_lo` (conservative
//!   laxities recompute automatically because schedulers read `c_lo` from
//!   the live [`crate::SimContext`]), `BestEffort` logs and continues.
//!
//! Under `Degrade`, quarantined jobs are re-admitted when the observed
//! capacity recovers to the declared `c_lo`; V-Dover then parks any
//! zero-conservative-laxity re-admissions in its supplement queue, which is
//! exactly the paper's mechanism for jobs that became feasible late.
//!
//! Determinism contract: every decision here is a pure function of the
//! event sequence and the oracle's (seeded) readings — same seed and fault
//! configuration, byte-identical trace.

use crate::report::RunReport;
use cloudsched_core::{CoreError, Job, Time};
use cloudsched_obs::FaultKind;
use std::collections::HashMap;

/// What the engine does when the watchdog detects a broken assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradationPolicy {
    /// Abort the run with a typed [`CoreError`] on the first fault.
    Strict,
    /// Quarantine offending jobs, re-estimate a running `c_lo` on SLA dips
    /// and re-admit quarantined work when capacity recovers.
    #[default]
    Degrade,
    /// Record the fault in the trace and metrics, change nothing else.
    BestEffort,
}

impl DegradationPolicy {
    /// Stable command-line name.
    pub fn as_str(self) -> &'static str {
        match self {
            DegradationPolicy::Strict => "strict",
            DegradationPolicy::Degrade => "degrade",
            DegradationPolicy::BestEffort => "best-effort",
        }
    }

    /// Parses a command-line name.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "strict" => DegradationPolicy::Strict,
            "degrade" => DegradationPolicy::Degrade,
            "best-effort" | "besteffort" => DegradationPolicy::BestEffort,
            _ => return None,
        })
    }
}

/// One capacity measurement as seen through the monitoring plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OracleReading {
    /// A (possibly noisy or stale) rate measurement.
    Rate(f64),
    /// No reading: the oracle is dark for this probe.
    Down,
}

/// The capacity-measurement channel between the physical profile and the
/// watchdog. Implementations may distort `true_rate` (noise, staleness) or
/// withhold it entirely ([`OracleReading::Down`]).
///
/// Probes happen at deterministic instants (t = 0 and every capacity
/// segment boundary), so a seeded implementation yields a replayable fault
/// sequence.
pub trait RateOracle {
    /// Observes the capacity at `t`, where `true_rate` is the physical rate.
    fn read(&mut self, t: Time, true_rate: f64) -> OracleReading;
}

/// The transparent oracle: reports the physical rate unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrueOracle;

impl RateOracle for TrueOracle {
    fn read(&mut self, _t: Time, true_rate: f64) -> OracleReading {
        OracleReading::Rate(true_rate)
    }
}

/// Tunables for the [`Watchdog`].
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Consecutive dark probes tolerated (retry budget) before the oracle
    /// is declared dead.
    pub max_retries: u32,
    /// Importance-ratio bound `k` for value-spike detection; `None`
    /// disables the check.
    pub k_limit: Option<f64>,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            max_retries: 3,
            k_limit: None,
        }
    }
}

/// Counters describing what the degradation layer saw and did in one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationStats {
    /// Job-stream faults detected at release time.
    pub faults_detected: usize,
    /// Observed capacity readings below the declared `c_lo`.
    pub sla_violations: usize,
    /// Times the running `c_lo` estimate was lowered.
    pub clo_reestimates: usize,
    /// Jobs quarantined (never more than once each).
    pub quarantined: usize,
    /// Quarantined jobs re-admitted after capacity recovery.
    pub readmitted: usize,
    /// Times the oracle was declared dead.
    pub oracle_dropouts: usize,
    /// Outages that ended with a reading (dead or not).
    pub oracle_recoveries: usize,
    /// Smallest rate the oracle ever reported (`+∞` if it never reported).
    pub min_observed_rate: f64,
    /// Final effective `c_lo` (equals the declared bound unless `Degrade`
    /// re-estimated it downward).
    pub effective_c_lo: f64,
}

/// A job-stream fault: the broken assumption plus its typed error.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamFault {
    /// Which assumption the job violates.
    pub kind: FaultKind,
    /// The typed error `Strict` aborts with.
    pub error: CoreError,
}

/// Everything [`Watchdog::observe_rate`] concluded from one probe. The
/// kernel turns these into trace events, metrics and policy actions.
#[derive(Debug, Clone, Copy, Default)]
pub struct RateAssessment {
    /// The oracle produced a reading after being dark for this long.
    pub recovered_after: Option<f64>,
    /// The oracle exhausted its retry budget on this probe; the payload is
    /// the number of consecutive failed readings.
    pub declared_dead: Option<u32>,
    /// The observed rate undercuts the declared `c_lo` (payload: the rate).
    pub sla_violation: Option<f64>,
    /// `Degrade` lowered the effective `c_lo` (payload: `(from, to)`).
    pub reestimate: Option<(f64, f64)>,
    /// The reading is present and at/above the declared `c_lo` — the
    /// trigger for re-admitting quarantined jobs.
    pub capacity_ok: bool,
}

/// Online checker of the paper's preconditions, with the running `c_lo`
/// estimate and the oracle-liveness bookkeeping.
#[derive(Debug)]
pub struct Watchdog {
    policy: DegradationPolicy,
    declared_lo: f64,
    declared_hi: f64,
    cfg: WatchdogConfig,
    effective_c_lo: f64,
    /// Smallest positive value density seen on clean jobs; spike detection
    /// compares against `k_limit ×` this.
    min_density: f64,
    /// Exact parameter bits of every clean release → first job id.
    seen: HashMap<[u64; 4], u64>,
    consecutive_down: u32,
    down_since: Option<Time>,
    dead: bool,
    pending_quarantine: usize,
    stats: DegradationStats,
}

impl Watchdog {
    /// Creates a watchdog for a run declared to be in class `C(c_lo, c_hi)`.
    pub fn new(policy: DegradationPolicy, c_lo: f64, c_hi: f64, cfg: WatchdogConfig) -> Self {
        Watchdog {
            policy,
            declared_lo: c_lo,
            declared_hi: c_hi,
            cfg,
            effective_c_lo: c_lo,
            min_density: f64::INFINITY,
            seen: HashMap::new(),
            consecutive_down: 0,
            down_since: None,
            dead: false,
            pending_quarantine: 0,
            stats: DegradationStats {
                faults_detected: 0,
                sla_violations: 0,
                clo_reestimates: 0,
                quarantined: 0,
                readmitted: 0,
                oracle_dropouts: 0,
                oracle_recoveries: 0,
                min_observed_rate: f64::INFINITY,
                effective_c_lo: c_lo,
            },
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> DegradationPolicy {
        self.policy
    }

    /// The current running lower capacity estimate: the declared `c_lo`
    /// until an observed SLA dip lowers it (under `Degrade` only).
    pub fn effective_c_lo(&self) -> f64 {
        self.effective_c_lo
    }

    /// The declared lower class bound (the input contract's `c_lo`).
    pub fn declared_lo(&self) -> f64 {
        self.declared_lo
    }

    /// The declared upper class bound (unchanged by degradation).
    pub fn declared_hi(&self) -> f64 {
        self.declared_hi
    }

    /// Whether the oracle is currently considered dead.
    pub fn oracle_dead(&self) -> bool {
        self.dead
    }

    /// Quarantined jobs not yet re-admitted.
    pub fn quarantine_pending(&self) -> usize {
        self.pending_quarantine
    }

    /// A copy of the counters (finalised with the current effective `c_lo`).
    pub fn stats(&self) -> DegradationStats {
        let mut s = self.stats;
        s.effective_c_lo = self.effective_c_lo;
        s
    }

    /// Checks one released job against the paper's input-stream assumptions:
    /// duplicate parameters, Definition 4 admissibility (against the
    /// *declared* `c_lo` — the class the input contract names), and value
    /// spikes exceeding the assumed importance ratio.
    ///
    /// Clean jobs update the duplicate and density books; faulty jobs do
    /// not, so one bad job cannot mask the next.
    pub fn inspect_release(&mut self, job: &Job) -> Option<StreamFault> {
        let key = [
            job.release.as_f64().to_bits(),
            job.deadline.as_f64().to_bits(),
            job.workload.to_bits(),
            job.value.to_bits(),
        ];
        if let Some(&of) = self.seen.get(&key) {
            self.stats.faults_detected += 1;
            return Some(StreamFault {
                kind: FaultKind::Duplicate,
                error: CoreError::DuplicateRelease { id: job.id.0, of },
            });
        }
        if !job.individually_admissible(self.declared_lo) {
            self.stats.faults_detected += 1;
            return Some(StreamFault {
                kind: FaultKind::Inadmissible,
                error: CoreError::InadmissibleJob {
                    id: job.id.0,
                    window: (job.deadline - job.release).as_f64(),
                    min_time: job.workload / self.declared_lo,
                },
            });
        }
        let density = job.value / job.workload;
        if let Some(k) = self.cfg.k_limit {
            if density.is_finite() && density > 0.0 && self.min_density.is_finite() {
                let limit = k * self.min_density;
                if density > limit && !cloudsched_core::approx_le(density, limit) {
                    self.stats.faults_detected += 1;
                    return Some(StreamFault {
                        kind: FaultKind::ValueSpike,
                        error: CoreError::ValueSpike {
                            id: job.id.0,
                            density,
                            limit,
                        },
                    });
                }
            }
        }
        self.seen.insert(key, job.id.0);
        if density.is_finite() && density > 0.0 {
            self.min_density = self.min_density.min(density);
        }
        None
    }

    /// Folds one oracle probe into the liveness and SLA bookkeeping.
    pub fn observe_rate(&mut self, t: Time, reading: OracleReading) -> RateAssessment {
        let mut out = RateAssessment::default();
        match reading {
            OracleReading::Down => {
                if self.consecutive_down == 0 {
                    self.down_since = Some(t);
                }
                self.consecutive_down += 1;
                if !self.dead && self.consecutive_down > self.cfg.max_retries {
                    self.dead = true;
                    self.stats.oracle_dropouts += 1;
                    out.declared_dead = Some(self.consecutive_down);
                }
            }
            OracleReading::Rate(rate) => {
                if self.consecutive_down > 0 {
                    let since = self.down_since.take().unwrap_or(t);
                    out.recovered_after = Some((t - since).as_f64());
                    self.consecutive_down = 0;
                    self.dead = false;
                    self.stats.oracle_recoveries += 1;
                }
                self.stats.min_observed_rate = self.stats.min_observed_rate.min(rate);
                if rate < self.declared_lo && !cloudsched_core::approx_eq(rate, self.declared_lo) {
                    self.stats.sla_violations += 1;
                    out.sla_violation = Some(rate);
                    if self.policy == DegradationPolicy::Degrade && rate < self.effective_c_lo {
                        let from = self.effective_c_lo;
                        self.effective_c_lo = rate;
                        self.stats.clo_reestimates += 1;
                        out.reestimate = Some((from, rate));
                    }
                } else {
                    out.capacity_ok = true;
                }
            }
        }
        out
    }

    /// Records that the kernel quarantined a job.
    pub fn note_quarantine(&mut self) {
        self.stats.quarantined += 1;
        self.pending_quarantine += 1;
    }

    /// Records that the kernel re-admitted a quarantined job.
    pub fn note_readmit(&mut self) {
        self.stats.readmitted += 1;
        self.pending_quarantine = self.pending_quarantine.saturating_sub(1);
    }

    /// Records that a quarantined job reached its deadline without ever
    /// being re-admitted (it is no longer pending).
    pub fn note_quarantine_expired(&mut self) {
        self.pending_quarantine = self.pending_quarantine.saturating_sub(1);
    }
}

/// The result of a degraded run: the usual report (partial when `Strict`
/// aborted), the abort cause if any, the degradation counters, and the
/// post-run audit findings.
#[derive(Debug, Clone)]
pub struct DegradedOutcome {
    /// The simulation report. On a `Strict` abort this covers the prefix of
    /// the run up to the abort instant (value accrued so far, outcomes of
    /// resolved jobs), so abort costs are measurable against `Degrade`.
    pub report: RunReport,
    /// `Some` when the run was aborted by the `Strict` policy.
    pub aborted: Option<CoreError>,
    /// What the watchdog saw and did.
    pub stats: DegradationStats,
    /// Findings of [`crate::audit::audit_report`] over the recorded
    /// schedule (empty when clean; also empty when no schedule was
    /// recorded or the run aborted).
    pub audit_errors: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_core::JobSet;

    fn watchdog(policy: DegradationPolicy, k: Option<f64>) -> Watchdog {
        Watchdog::new(
            policy,
            1.0,
            4.0,
            WatchdogConfig {
                max_retries: 2,
                k_limit: k,
            },
        )
    }

    #[test]
    fn policy_names_round_trip() {
        for p in [
            DegradationPolicy::Strict,
            DegradationPolicy::Degrade,
            DegradationPolicy::BestEffort,
        ] {
            assert_eq!(DegradationPolicy::parse(p.as_str()), Some(p));
        }
        assert_eq!(DegradationPolicy::parse("yolo"), None);
    }

    #[test]
    fn inspect_flags_inadmissible_and_duplicates() {
        let jobs = JobSet::from_tuples(&[
            (0.0, 4.0, 2.0, 1.0), // clean: window 4 >= 2/1
            (0.0, 1.0, 5.0, 1.0), // inadmissible: 1 < 5
            (0.0, 4.0, 2.0, 1.0), // duplicate of job 0
        ])
        .unwrap();
        let mut w = watchdog(DegradationPolicy::Degrade, None);
        assert!(w
            .inspect_release(jobs.get(cloudsched_core::JobId(0)))
            .is_none());
        let f = w
            .inspect_release(jobs.get(cloudsched_core::JobId(1)))
            .expect("inadmissible");
        assert_eq!(f.kind, FaultKind::Inadmissible);
        let f = w
            .inspect_release(jobs.get(cloudsched_core::JobId(2)))
            .expect("duplicate");
        assert_eq!(f.kind, FaultKind::Duplicate);
        match f.error {
            CoreError::DuplicateRelease { id, of } => {
                assert_eq!((id, of), (2, 0));
            }
            other => panic!("expected DuplicateRelease, got {other}"),
        }
        assert_eq!(w.stats().faults_detected, 2);
    }

    #[test]
    fn inspect_flags_value_spikes_against_k() {
        let jobs = JobSet::from_tuples(&[
            (0.0, 10.0, 1.0, 1.0), // density 1 — sets the floor
            (0.0, 10.0, 1.0, 7.0), // density 7 = k·1: admissible at k = 7
            (0.0, 10.0, 1.0, 7.5), // density 7.5 > 7: spike
        ])
        .unwrap();
        let mut w = watchdog(DegradationPolicy::Strict, Some(7.0));
        assert!(w
            .inspect_release(jobs.get(cloudsched_core::JobId(0)))
            .is_none());
        assert!(w
            .inspect_release(jobs.get(cloudsched_core::JobId(1)))
            .is_none());
        let f = w
            .inspect_release(jobs.get(cloudsched_core::JobId(2)))
            .expect("spike");
        assert_eq!(f.kind, FaultKind::ValueSpike);
    }

    #[test]
    fn faulty_jobs_do_not_update_the_books() {
        // An inadmissible job must not change the density floor.
        let jobs = JobSet::from_tuples(&[
            (0.0, 0.5, 5.0, 500.0), // inadmissible AND density 100
            (0.0, 10.0, 1.0, 1.0),  // clean, density 1
            (0.0, 10.0, 1.0, 6.0),  // density 6 < 7·1: clean
        ])
        .unwrap();
        let mut w = watchdog(DegradationPolicy::Degrade, Some(7.0));
        assert!(w
            .inspect_release(jobs.get(cloudsched_core::JobId(0)))
            .is_some());
        assert!(w
            .inspect_release(jobs.get(cloudsched_core::JobId(1)))
            .is_none());
        assert!(w
            .inspect_release(jobs.get(cloudsched_core::JobId(2)))
            .is_none());
    }

    #[test]
    fn oracle_death_respects_retry_budget() {
        let mut w = watchdog(DegradationPolicy::Degrade, None);
        let t = Time::new(1.0);
        assert!(w
            .observe_rate(t, OracleReading::Down)
            .declared_dead
            .is_none());
        assert!(w
            .observe_rate(Time::new(2.0), OracleReading::Down)
            .declared_dead
            .is_none());
        let a = w.observe_rate(Time::new(3.0), OracleReading::Down);
        assert_eq!(a.declared_dead, Some(3));
        assert!(w.oracle_dead());
        // Recovery reports the outage length since the first dark probe.
        let a = w.observe_rate(Time::new(5.0), OracleReading::Rate(2.0));
        assert!(!w.oracle_dead());
        let down_for = a.recovered_after.expect("recovered");
        assert!(cloudsched_core::approx_eq(down_for, 4.0));
        assert_eq!(w.stats().oracle_dropouts, 1);
        assert_eq!(w.stats().oracle_recoveries, 1);
    }

    #[test]
    fn sla_dip_reestimates_only_under_degrade() {
        let t = Time::new(1.0);
        let mut strict = watchdog(DegradationPolicy::Strict, None);
        let a = strict.observe_rate(t, OracleReading::Rate(0.5));
        assert_eq!(a.sla_violation, Some(0.5));
        assert!(a.reestimate.is_none());
        assert!(cloudsched_core::approx_eq(strict.effective_c_lo(), 1.0));

        let mut degrade = watchdog(DegradationPolicy::Degrade, None);
        let a = degrade.observe_rate(t, OracleReading::Rate(0.5));
        assert_eq!(a.reestimate, Some((1.0, 0.5)));
        assert!(cloudsched_core::approx_eq(degrade.effective_c_lo(), 0.5));
        // A second, shallower dip violates the SLA but does not raise the
        // estimate back up.
        let a = degrade.observe_rate(Time::new(2.0), OracleReading::Rate(0.8));
        assert_eq!(a.sla_violation, Some(0.8));
        assert!(a.reestimate.is_none());
        assert!(cloudsched_core::approx_eq(degrade.effective_c_lo(), 0.5));
        // Recovery to the declared bound flips capacity_ok.
        let a = degrade.observe_rate(Time::new(3.0), OracleReading::Rate(1.5));
        assert!(a.capacity_ok);
        assert_eq!(degrade.stats().sla_violations, 2);
        assert_eq!(degrade.stats().clo_reestimates, 1);
    }

    #[test]
    fn quarantine_bookkeeping() {
        let mut w = watchdog(DegradationPolicy::Degrade, None);
        w.note_quarantine();
        w.note_quarantine();
        assert_eq!(w.quarantine_pending(), 2);
        w.note_readmit();
        assert_eq!(w.quarantine_pending(), 1);
        let s = w.stats();
        assert_eq!((s.quarantined, s.readmitted), (2, 1));
    }

    #[test]
    fn true_oracle_is_transparent() {
        let mut o = TrueOracle;
        assert_eq!(o.read(Time::new(1.0), 2.5), OracleReading::Rate(2.5));
    }
}
