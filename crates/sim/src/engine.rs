//! The event-driven simulation kernel.

use crate::context::{Decision, SimContext};
use crate::degrade::{
    DegradationPolicy, DegradationStats, DegradedOutcome, OracleReading, RateOracle, Watchdog,
    WatchdogConfig,
};
use crate::event::{Event, EventKind};
use crate::report::{RunReport, TrajectoryPoint};
use crate::scheduler::Scheduler;
use crate::workspace::{flag, SimWorkspace};
use cloudsched_capacity::CapacityProfile;
use cloudsched_core::{CoreError, Job, JobId, JobOutcome, JobSet, Schedule, Time};
use cloudsched_obs::{
    DecisionAction, FaultKind, MetricsRegistry, NoopTracer, Profiler, TraceEvent, Tracer,
};

/// Knobs for a single run.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Record the full execution schedule (needed by the audit layer).
    pub record_schedule: bool,
    /// Record the cumulative value-vs-time curve (the paper's Fig. 1).
    pub record_trajectory: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            record_schedule: true,
            record_trajectory: false,
        }
    }
}

impl RunOptions {
    /// Cheapest configuration for large Monte-Carlo sweeps.
    pub fn lean() -> Self {
        RunOptions {
            record_schedule: false,
            record_trajectory: false,
        }
    }

    /// Record everything.
    pub fn full() -> Self {
        RunOptions {
            record_schedule: true,
            record_trajectory: true,
        }
    }
}

/// Workload tolerance below which a job counts as finished: absolute dust
/// plus a relative component of its total workload.
#[inline]
pub(crate) fn completion_tolerance(workload: f64) -> f64 {
    1e-9 + 1e-12 * workload
}

/// The mutable run-state of a [`Kernel`], separated from its borrows so a
/// streaming service can suspend a run between arrivals (dropping the kernel
/// view and its borrows) and resume it later — or serialize it into a
/// crash-recovery snapshot ([`crate::snapshot`]).
///
/// Batch runs never see this type: [`Kernel::new`] builds a fresh state and
/// [`Kernel::run`] consumes it. The field semantics are those the kernel
/// documents inline.
#[derive(Debug, Clone)]
pub(crate) struct KernelState {
    pub(crate) now: Time,
    pub(crate) running: Option<JobId>,
    /// Incremented on every dispatch; stale completion events are detected by
    /// epoch mismatch.
    pub(crate) epoch: u64,
    pub(crate) slice_start: Time,
    pub(crate) value: f64,
    pub(crate) preemptions: usize,
    pub(crate) dispatches: usize,
    pub(crate) events_processed: usize,
    pub(crate) expired: usize,
    pub(crate) expired_value: f64,
    pub(crate) abandoned_count: usize,
    pub(crate) abandoned_value: f64,
    /// 0-based index of the capacity segment currently in force (only
    /// maintained while tracing).
    pub(crate) capacity_segment: usize,
    /// Last instant of interest; capacity-segment markers stop here. Grows
    /// when streaming admission seeds a job with a later deadline.
    pub(crate) horizon: Time,
    /// Whether a capacity-segment marker event is pending in the queue. The
    /// marker chain stops when the next boundary lies past the horizon;
    /// seeding a job that extends the horizon re-arms it.
    pub(crate) capacity_armed: bool,
    pub(crate) c_lo: f64,
    pub(crate) c_hi: f64,
    pub(crate) schedule: Option<Schedule>,
    pub(crate) trajectory: Option<Vec<TrajectoryPoint>>,
    /// Set when the `Strict` policy aborts the run.
    pub(crate) aborted: Option<CoreError>,
}

impl KernelState {
    /// A fresh pre-run state for a streaming kernel that starts empty:
    /// time at the origin, nothing running, horizon zero, marker chain
    /// unarmed (seeding the first job arms it).
    pub(crate) fn streaming(options: RunOptions, c_lo: f64, c_hi: f64) -> Self {
        KernelState {
            now: Time::ZERO,
            running: None,
            epoch: 0,
            slice_start: Time::ZERO,
            value: 0.0,
            preemptions: 0,
            dispatches: 0,
            events_processed: 0,
            expired: 0,
            expired_value: 0.0,
            abandoned_count: 0,
            abandoned_value: 0.0,
            capacity_segment: 0,
            horizon: Time::ZERO,
            capacity_armed: false,
            c_lo,
            c_hi,
            schedule: options.record_schedule.then(Schedule::new),
            trajectory: options.record_trajectory.then(|| {
                vec![TrajectoryPoint {
                    time: 0.0,
                    cumulative_value: 0.0,
                }]
            }),
            aborted: None,
        }
    }
}

pub(crate) struct Kernel<'a, P: CapacityProfile, T: Tracer> {
    jobs: &'a JobSet,
    capacity: &'a P,
    /// Every per-run buffer lives here: the event queue, the per-job
    /// remaining/released/resolved/started/abandoned/quarantined tables,
    /// the outcome table and the handler scratch vectors. Borrowing them
    /// from a caller-owned arena is what lets Monte-Carlo sweeps run
    /// allocation-free after warm-up; field semantics are documented on
    /// [`SimWorkspace`].
    ws: &'a mut SimWorkspace,
    st: KernelState,
    tracer: &'a mut T,
    profiler: Option<&'a Profiler>,
    /// Online precondition checker; `None` for plain (non-degraded) runs.
    watchdog: Option<Watchdog>,
    /// Monitoring-plane channel for capacity measurements. Job progress
    /// always integrates the physical profile; only the watchdog sees the
    /// oracle's (possibly faulty) view.
    oracle: Option<&'a mut dyn RateOracle>,
}

impl<'a, P: CapacityProfile, T: Tracer> Kernel<'a, P, T> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        ws: &'a mut SimWorkspace,
        jobs: &'a JobSet,
        capacity: &'a P,
        options: RunOptions,
        tracer: &'a mut T,
        profiler: Option<&'a Profiler>,
        watchdog: Option<Watchdog>,
        oracle: Option<&'a mut dyn RateOracle>,
    ) -> Self {
        let n = jobs.len();
        ws.begin(n);
        ws.remaining.extend(jobs.iter().map(|j| j.workload));
        for job in jobs.iter() {
            ws.queue
                .push(job.release, EventKind::Release { job: job.id });
            ws.queue
                .push(job.deadline, EventKind::Deadline { job: job.id });
        }
        let horizon = if n > 0 {
            jobs.last_deadline()
        } else {
            Time::ZERO
        };
        let mut capacity_armed = false;
        if (tracer.enabled() || watchdog.is_some()) && n > 0 {
            // Chain capacity-segment markers through the queue (see the
            // CapacityChange arm): the tracer wants them stamped, and the
            // watchdog probes the oracle at every segment boundary. The
            // initial segment is stamped here; the watchdog's t = 0 probe
            // happens at the top of `run`.
            if tracer.enabled() {
                tracer.record(&TraceEvent::CapacityChange {
                    t: Time::ZERO,
                    rate: capacity.rate_at(Time::ZERO),
                    segment: 0,
                });
            }
            let next = capacity.next_change_after(Time::ZERO);
            if next <= horizon {
                ws.queue.push(next, EventKind::CapacityChange);
                capacity_armed = true;
            }
        }
        let (c_lo, c_hi) = capacity.bounds();
        let mut st = KernelState::streaming(options, c_lo, c_hi);
        st.horizon = horizon;
        st.capacity_armed = capacity_armed;
        Kernel {
            jobs,
            capacity,
            ws,
            st,
            tracer,
            profiler,
            watchdog,
            oracle,
        }
    }

    /// Re-attaches a kernel view over a suspended run: the workspace carries
    /// the live event queue and per-job tables exactly as [`Kernel::suspend`]
    /// (or a snapshot restore) left them, `st` the scalar run-state. No
    /// buffer is reset and nothing is seeded — the streaming service drives
    /// seeding explicitly through [`Kernel::admit_job`].
    pub(crate) fn resume(
        ws: &'a mut SimWorkspace,
        jobs: &'a JobSet,
        capacity: &'a P,
        tracer: &'a mut T,
        st: KernelState,
    ) -> Self {
        Kernel {
            jobs,
            capacity,
            ws,
            st,
            tracer,
            profiler: None,
            watchdog: None,
            oracle: None,
        }
    }

    /// Detaches the kernel view, returning the scalar run-state. The borrowed
    /// workspace keeps the event queue and tables; `resume` re-attaches.
    pub(crate) fn suspend(self) -> KernelState {
        self.st
    }

    /// Grows the per-job tables by one slot for `job` without scheduling any
    /// events — rejected arrivals occupy an id slot (keeping table indexes
    /// aligned with the growing job set) but never release.
    pub(crate) fn register_job(&mut self, job: &Job) {
        debug_assert_eq!(
            job.id.index(),
            self.ws.remaining.len(),
            "streaming jobs must seed in id order"
        );
        self.ws.grow_one(job.workload);
    }

    /// Admits a streaming arrival into the run: grows the tables, schedules
    /// its release and deadline events, extends the horizon and re-arms the
    /// capacity-marker chain if it had run out.
    pub(crate) fn admit_job(&mut self, job: &Job) {
        self.register_job(job);
        self.ws
            .queue
            .push(job.release, EventKind::Release { job: job.id });
        self.ws
            .queue
            .push(job.deadline, EventKind::Deadline { job: job.id });
        if job.deadline > self.st.horizon {
            self.st.horizon = job.deadline;
        }
        if self.tracer.enabled() && !self.st.capacity_armed {
            let next = self.capacity.next_change_after(self.st.now);
            if next > self.st.now && next <= self.st.horizon {
                self.ws.queue.push(next, EventKind::CapacityChange);
                self.st.capacity_armed = true;
            }
        }
    }

    /// Integrates the running job's progress from the last visited instant.
    fn advance_to(&mut self, t: Time) {
        debug_assert!(t >= self.st.now, "kernel time went backwards");
        if let Some(j) = self.st.running {
            let done = self.capacity.integrate(self.st.now, t);
            debug_assert!(
                done.is_finite() && done >= 0.0,
                "capacity integral over [{}, {t}] is {done}",
                self.st.now
            );
            let r = &mut self.ws.remaining[j.index()];
            *r = (*r - done).max(0.0);
            debug_assert!(
                r.is_finite() && *r >= 0.0,
                "remaining workload of {j} went to {r}"
            );
        }
        self.st.now = t;
    }

    /// Removes the running job from the processor, recording its slice.
    fn vacate(&mut self) {
        if let Some(j) = self.st.running.take() {
            if self.st.now > self.st.slice_start {
                if let Some(s) = self.st.schedule.as_mut() {
                    s.push(j, self.st.slice_start, self.st.now).expect(
                        "invariant: slice_start <= now, so kernel slices stay time-ordered",
                    );
                }
            }
            self.st.epoch += 1;
        }
    }

    /// Marks `job` completed at the current instant and accrues its value.
    fn complete(&mut self, job: JobId) {
        debug_assert!(!self.ws.resolved(job.index()));
        debug_assert!(
            self.ws.remaining[job.index()] <= completion_tolerance(self.jobs.get(job).workload),
            "{job} declared complete with {} workload left",
            self.ws.remaining[job.index()]
        );
        self.ws.remaining[job.index()] = 0.0;
        self.ws.set_flag(job.index(), flag::RESOLVED, true);
        self.ws
            .outcome
            .set(job, JobOutcome::Completed { at: self.st.now });
        self.st.value += self.jobs.get(job).value;
        if self.tracer.enabled() {
            self.tracer.record(&TraceEvent::Complete {
                t: self.st.now,
                job,
                value: self.jobs.get(job).value,
            });
        }
        if let Some(traj) = self.st.trajectory.as_mut() {
            traj.push(TrajectoryPoint {
                time: self.st.now.as_f64(),
                cumulative_value: self.st.value,
            });
        }
    }

    fn dispatch_handler<S, F>(&mut self, scheduler: &mut S, f: F)
    where
        S: Scheduler + ?Sized,
        F: FnOnce(&mut S, &mut SimContext<'_>) -> Decision,
    {
        // The context borrows disjoint workspace fields: the remaining
        // table read-only, the two scratch vectors mutably. Draining the
        // scratch in place (instead of mem::take into fresh vectors) is
        // what keeps the handler path allocation-free in the steady state.
        let ws = &mut *self.ws;
        let mut ctx = SimContext::new(
            self.st.now,
            self.jobs,
            &ws.remaining,
            self.st.running,
            self.capacity.rate_at(self.st.now),
            self.st.c_lo,
            self.st.c_hi,
            &mut ws.timer_scratch,
            &mut ws.abandon_scratch,
            &mut *self.tracer,
        );
        let decision = {
            let _span = self.profiler.map(|p| p.span("kernel.dispatch"));
            f(scheduler, &mut ctx)
        };
        drop(ctx);
        for i in 0..ws.timer_scratch.len() {
            let t = ws.timer_scratch[i];
            ws.queue.push(
                t.at,
                EventKind::Timer {
                    job: t.job,
                    token: t.token,
                },
            );
        }
        ws.timer_scratch.clear();
        for i in 0..ws.abandon_scratch.len() {
            let j = ws.abandon_scratch[i];
            ws.set_flag(j.index(), flag::ABANDONED, true);
        }
        ws.abandon_scratch.clear();
        self.apply(decision);
    }

    /// Stamps a preemption trace event for the currently running job.
    fn trace_preempt(&mut self) {
        if self.tracer.enabled() {
            if let Some(cur) = self.st.running {
                self.tracer.record(&TraceEvent::Preempt {
                    t: self.st.now,
                    job: cur,
                    remaining: self.ws.remaining[cur.index()],
                });
                self.trace_provenance(DecisionAction::Preempt, cur, 0);
            }
        }
    }

    /// Stamps a kernel-side decision-provenance event, filling in the
    /// conservative laxity (Definition 5, against the effective `c_lo`) and
    /// value density at the decision instant. Emitted only when the attached
    /// sink opted in via `Tracer::wants_provenance`, so default trace
    /// streams stay byte-identical.
    fn trace_provenance(&mut self, action: DecisionAction, job: JobId, rank: usize) {
        if !(self.tracer.enabled() && self.tracer.wants_provenance()) {
            return;
        }
        let j = self.jobs.get(job);
        let laxity = j
            .laxity_with(self.st.now, self.ws.remaining[job.index()], self.st.c_lo)
            .as_f64();
        self.tracer.record(&TraceEvent::Decision {
            t: self.st.now,
            job,
            action,
            laxity,
            density: j.value_density(),
            rank,
            flip: laxity < 0.0,
        });
    }

    /// Records a `Strict`-policy abort: stamps the trace and arms the main
    /// loop's stop condition.
    fn abort(&mut self, fault: FaultKind, err: CoreError) {
        if self.tracer.enabled() {
            self.tracer.record(&TraceEvent::PolicyAbort {
                t: self.st.now,
                fault,
            });
        }
        self.st.aborted = Some(err);
    }

    /// Probes the capacity oracle and folds the reading into the watchdog:
    /// oracle liveness, the `c(t) >= c_lo` SLA, `c_lo` re-estimation under
    /// `Degrade`, and re-admission of quarantined jobs once the observed
    /// capacity is back at the declared bound. Called at t = 0 and at every
    /// capacity-segment boundary; a no-op for plain (non-degraded) runs.
    fn watch_capacity<S: Scheduler + ?Sized>(&mut self, scheduler: &mut S) {
        if self.watchdog.is_none() {
            return;
        }
        let true_rate = self.capacity.rate_at(self.st.now);
        let reading = match self.oracle.as_deref_mut() {
            Some(o) => o.read(self.st.now, true_rate),
            None => OracleReading::Rate(true_rate),
        };
        let (assessment, policy, declared_lo) = match self.watchdog.as_mut() {
            Some(w) => (
                w.observe_rate(self.st.now, reading),
                w.policy(),
                w.declared_lo(),
            ),
            None => return,
        };
        if let Some(down_for) = assessment.recovered_after {
            if self.tracer.enabled() {
                self.tracer.record(&TraceEvent::OracleRecover {
                    t: self.st.now,
                    down_for,
                });
            }
        }
        if let Some(misses) = assessment.declared_dead {
            if self.tracer.enabled() {
                self.tracer.record(&TraceEvent::OracleDropout {
                    t: self.st.now,
                    misses: misses as usize,
                });
            }
            if policy == DegradationPolicy::Strict {
                self.abort(
                    FaultKind::OracleDown,
                    CoreError::OracleDown {
                        at: self.st.now.as_f64(),
                        retries: misses,
                    },
                );
                return;
            }
        }
        if let Some(rate) = assessment.sla_violation {
            if self.tracer.enabled() {
                self.tracer.record(&TraceEvent::SlaViolation {
                    t: self.st.now,
                    rate,
                    c_lo: declared_lo,
                });
            }
            if policy == DegradationPolicy::Strict {
                self.abort(
                    FaultKind::SlaDip,
                    CoreError::CapacitySlaViolation {
                        at: self.st.now.as_f64(),
                        rate,
                        c_lo: declared_lo,
                    },
                );
                return;
            }
        }
        if let Some((from, to)) = assessment.reestimate {
            if self.tracer.enabled() {
                self.tracer.record(&TraceEvent::CloReestimate {
                    t: self.st.now,
                    from,
                    to,
                });
            }
            // Schedulers read `c_lo` live from the SimContext, so V-Dover's
            // conservative laxities (Definition 5) recompute against the
            // re-estimated bound from the next dispatch on.
            self.st.c_lo = to;
        }
        let pending = self.watchdog.as_ref().map_or(0, |w| w.quarantine_pending());
        if assessment.capacity_ok && pending > 0 {
            // Capacity is back at the declared bound: re-admit quarantined
            // jobs (in id order) that are still live. V-Dover parks any
            // zero-conservative-laxity re-admissions in its supplement
            // queue, the paper's mechanism for late-feasible jobs. The
            // pending index iterates ascending, matching the full scan it
            // replaced; the snapshot is taken up front because re-admission
            // dispatches into the scheduler.
            let ready: Vec<usize> = self.ws.quarantine_pending.iter().copied().collect();
            for i in ready {
                self.ws.quarantine_pending.remove(&i);
                if !self.ws.quarantined(i) || self.ws.resolved(i) {
                    continue;
                }
                let job = JobId(i as u64);
                self.ws.set_flag(i, flag::QUARANTINED, false);
                if let Some(w) = self.watchdog.as_mut() {
                    w.note_readmit();
                }
                if self.tracer.enabled() {
                    self.tracer.record(&TraceEvent::Readmit {
                        t: self.st.now,
                        job,
                    });
                }
                self.dispatch_handler(scheduler, |s, ctx| s.on_release(ctx, job));
            }
        }
    }

    fn apply(&mut self, decision: Decision) {
        match decision {
            Decision::Continue => {}
            Decision::Idle => {
                if self.st.running.is_some() {
                    self.st.preemptions += 1;
                    self.trace_preempt();
                    self.vacate();
                }
            }
            Decision::Run(j) => {
                if self.st.running == Some(j) {
                    return;
                }
                let i = j.index();
                assert!(self.ws.released(i), "scheduler dispatched unreleased {j}");
                assert!(!self.ws.resolved(i), "scheduler dispatched resolved {j}");
                if self.st.running.is_some() {
                    self.st.preemptions += 1;
                    self.trace_preempt();
                    self.vacate();
                }
                if self.tracer.enabled() {
                    let ev = if self.ws.started(i) {
                        TraceEvent::Resume {
                            t: self.st.now,
                            job: j,
                        }
                    } else {
                        TraceEvent::Admit {
                            t: self.st.now,
                            job: j,
                        }
                    };
                    self.tracer.record(&ev);
                    self.trace_provenance(DecisionAction::Admit, j, 0);
                }
                self.ws.set_flag(i, flag::STARTED, true);
                self.st.running = Some(j);
                self.st.epoch += 1;
                self.st.slice_start = self.st.now;
                self.st.dispatches += 1;
                let done_at = self
                    .capacity
                    .time_to_complete(self.st.now, self.ws.remaining[i]);
                self.ws.queue.push(
                    done_at,
                    EventKind::Completion {
                        job: j,
                        epoch: self.st.epoch,
                    },
                );
            }
        }
    }

    /// The monitoring plane's first oracle probe, at the origin before any
    /// job event (a no-op without a watchdog). Batch runs call this once at
    /// the top of [`Kernel::run`].
    fn prime<S: Scheduler + ?Sized>(&mut self, scheduler: &mut S) {
        self.watch_capacity(scheduler);
    }

    /// Processes one popped event: advances the clock, counts it, and
    /// executes its arm. The single code path behind both the batch drain
    /// and the streaming service's bounded pumps — which is what makes an
    /// interleaved (pump/seed/pump) run produce the same event sequence as a
    /// batch run over the same admitted job set.
    fn step<S: Scheduler + ?Sized>(&mut self, scheduler: &mut S, ev: Event) {
        self.advance_to(ev.time);
        // Capacity-segment markers are trace bookkeeping, not kernel
        // events: the processed-event count stays identical whether or
        // not a tracer is attached.
        if !matches!(ev.kind, EventKind::CapacityChange) {
            self.st.events_processed += 1;
        }
        match ev.kind {
            EventKind::CapacityChange => {
                self.st.capacity_segment += 1;
                if self.tracer.enabled() {
                    self.tracer.record(&TraceEvent::CapacityChange {
                        t: self.st.now,
                        rate: self.capacity.rate_at(self.st.now),
                        segment: self.st.capacity_segment,
                    });
                }
                self.st.capacity_armed = false;
                let next = self.capacity.next_change_after(self.st.now);
                if next > self.st.now && next <= self.st.horizon {
                    self.ws.queue.push(next, EventKind::CapacityChange);
                    self.st.capacity_armed = true;
                }
                self.watch_capacity(scheduler);
            }
            EventKind::Completion { job, epoch } => {
                if self.st.running != Some(job) || epoch != self.st.epoch {
                    return; // stale: the job was preempted since
                }
                self.vacate();
                self.complete(job);
                self.dispatch_handler(scheduler, |s, ctx| s.on_completion(ctx, job));
            }
            EventKind::Timer { job, token } => {
                if self.ws.resolved(job.index()) || !self.ws.released(job.index()) {
                    return;
                }
                self.dispatch_handler(scheduler, |s, ctx| s.on_timer(ctx, job, token));
            }
            EventKind::Release { job } => {
                self.ws.set_flag(job.index(), flag::RELEASED, true);
                if self.tracer.enabled() {
                    let j = self.jobs.get(job);
                    self.tracer.record(&TraceEvent::Arrival {
                        t: self.st.now,
                        job,
                        laxity: j
                            .laxity_with(self.st.now, self.ws.remaining[job.index()], self.st.c_lo)
                            .as_f64(),
                    });
                }
                // The watchdog vets the release against the paper's
                // input-stream assumptions before the scheduler sees it.
                let fault = match self.watchdog.as_mut() {
                    Some(w) => w.inspect_release(self.jobs.get(job)),
                    None => None,
                };
                match fault {
                    None => {
                        self.dispatch_handler(scheduler, |s, ctx| s.on_release(ctx, job));
                    }
                    Some(f) => {
                        if self.tracer.enabled() {
                            self.tracer.record(&TraceEvent::FaultDetected {
                                t: self.st.now,
                                job,
                                fault: f.kind,
                            });
                        }
                        let policy = self
                            .watchdog
                            .as_ref()
                            .map_or(DegradationPolicy::BestEffort, |w| w.policy());
                        match policy {
                            DegradationPolicy::Strict => {
                                self.abort(f.kind, f.error);
                            }
                            DegradationPolicy::Degrade => {
                                // Quarantine: the scheduler never sees
                                // this job unless capacity recovery
                                // re-admits it.
                                self.ws.set_flag(job.index(), flag::QUARANTINED, true);
                                self.ws.quarantine_pending.insert(job.index());
                                if let Some(w) = self.watchdog.as_mut() {
                                    w.note_quarantine();
                                }
                                if self.tracer.enabled() {
                                    self.tracer.record(&TraceEvent::Quarantine {
                                        t: self.st.now,
                                        job,
                                        fault: f.kind,
                                    });
                                }
                            }
                            DegradationPolicy::BestEffort => {
                                self.dispatch_handler(scheduler, |s, ctx| s.on_release(ctx, job));
                            }
                        }
                    }
                }
            }
            EventKind::Deadline { job } => {
                if self.ws.resolved(job.index()) {
                    return;
                }
                let was_running = self.st.running == Some(job);
                if was_running {
                    self.vacate();
                }
                let i = job.index();
                // A still-quarantined job is invisible to the scheduler
                // (it never saw on_release), so its resolution must not
                // reach the scheduler's handlers either.
                let hidden = self.ws.quarantined(i);
                if hidden {
                    self.ws.quarantine_pending.remove(&i);
                    if let Some(w) = self.watchdog.as_mut() {
                        w.note_quarantine_expired();
                    }
                }
                if self.ws.remaining[i] <= completion_tolerance(self.jobs.get(job).workload) {
                    // Finished exactly at the deadline (within rounding):
                    // "completing a job by its deadline" succeeds.
                    self.complete(job);
                    if !hidden {
                        self.dispatch_handler(scheduler, |s, ctx| s.on_completion(ctx, job));
                    }
                } else {
                    self.ws.set_flag(i, flag::RESOLVED, true);
                    self.ws.outcome.set(
                        job,
                        JobOutcome::Missed {
                            remaining_workload: self.ws.remaining[i],
                        },
                    );
                    let value = self.jobs.get(job).value;
                    if self.ws.abandoned(i) {
                        // The scheduler already gave this job up (and
                        // its Abandon trace event was emitted then):
                        // book it separately from passive expiry.
                        self.st.abandoned_count += 1;
                        self.st.abandoned_value += value;
                    } else {
                        self.st.expired += 1;
                        self.st.expired_value += value;
                        if self.tracer.enabled() {
                            self.tracer.record(&TraceEvent::Expire {
                                t: self.st.now,
                                job,
                                remaining: self.ws.remaining[i],
                                value,
                            });
                            self.trace_provenance(DecisionAction::Expire, job, 0);
                        }
                    }
                    if !hidden {
                        self.dispatch_handler(scheduler, |s, ctx| s.on_deadline_miss(ctx, job));
                    }
                }
            }
        }
    }

    /// Processes every event strictly before `until`, plus co-timed events
    /// that batch ordering places before a release at `until` (capacity
    /// markers, completions and timers — see `EventKind::priority`). This is
    /// the streaming service's pump boundary: seeding an arrival after
    /// `pump_ready(release)` reproduces the exact event order a batch run
    /// (all jobs known upfront) would process.
    pub(crate) fn pump_ready<S: Scheduler + ?Sized>(&mut self, scheduler: &mut S, until: Time) {
        while self.st.aborted.is_none() {
            let ready = match self.ws.queue.peek() {
                None => false,
                Some(ev) => {
                    ev.time < until
                        || (ev.time == until
                            && matches!(
                                ev.kind,
                                EventKind::CapacityChange
                                    | EventKind::Completion { .. }
                                    | EventKind::Timer { .. }
                            ))
                }
            };
            if !ready {
                break;
            }
            let ev = self.ws.queue.pop().expect("invariant: peek saw an event");
            self.step(scheduler, ev);
        }
    }

    /// Runs the event loop to completion (or abort).
    fn drain<S: Scheduler + ?Sized>(&mut self, scheduler: &mut S) {
        while self.st.aborted.is_none() {
            let Some(ev) = self.ws.queue.pop() else { break };
            self.step(scheduler, ev);
        }
    }

    /// Drains all remaining events and builds the final report.
    pub(crate) fn finish<S: Scheduler + ?Sized>(
        mut self,
        scheduler: &mut S,
    ) -> (RunReport, Option<CoreError>, Option<DegradationStats>) {
        self.drain(scheduler);
        // Close any open slice (cannot happen: the running job's deadline
        // event always fires, vacating the processor — but stay defensive).
        self.vacate();
        let total_value = self.jobs.total_value();
        // The outcome table moves into the report; the workspace's slot is
        // left empty until the caller hands the report to
        // `SimWorkspace::recycle` (sweeps that want full reuse do).
        let outcome = std::mem::take(&mut self.ws.outcome);
        let missed = outcome.missed().count();
        debug_assert_eq!(
            missed,
            self.st.expired + self.st.abandoned_count,
            "every miss is booked as exactly one of expired / abandoned"
        );
        let report = RunReport {
            scheduler: scheduler.name(),
            value: self.st.value,
            value_fraction: if total_value > 0.0 {
                self.st.value / total_value
            } else {
                0.0
            },
            completed: outcome.completed_count(),
            missed,
            expired: self.st.expired,
            expired_value: self.st.expired_value,
            abandoned: self.st.abandoned_count,
            abandoned_value: self.st.abandoned_value,
            preemptions: self.st.preemptions,
            dispatches: self.st.dispatches,
            events: self.st.events_processed,
            outcome,
            schedule: self.st.schedule,
            trajectory: self.st.trajectory,
            metrics: None,
        };
        let stats = self.watchdog.as_ref().map(|w| w.stats());
        (report, self.st.aborted, stats)
    }

    fn run<S: Scheduler + ?Sized>(
        mut self,
        scheduler: &mut S,
    ) -> (RunReport, Option<CoreError>, Option<DegradationStats>) {
        self.prime(scheduler);
        self.finish(scheduler)
    }
}

/// Runs `scheduler` on `jobs` under `capacity` and reports the results.
///
/// The kernel delivers release, completion-or-failure and timer interrupts in
/// deterministic order (time, then kind, then FIFO) and integrates job
/// progress exactly over the piecewise capacity profile.
///
/// Untraced: instrumentation is compiled out behind [`NoopTracer`]. Use
/// [`simulate_traced`] / [`simulate_observed`] / [`simulate_with_metrics`]
/// for observability. For Monte-Carlo sweeps, [`simulate_into`] reuses a
/// caller-owned [`SimWorkspace`] instead of allocating per run; this
/// function is the single-run convenience wrapper over it.
pub fn simulate<P, S>(
    jobs: &JobSet,
    capacity: &P,
    scheduler: &mut S,
    options: RunOptions,
) -> RunReport
where
    P: CapacityProfile,
    S: Scheduler + ?Sized,
{
    simulate_into(&mut SimWorkspace::new(), jobs, capacity, scheduler, options)
}

/// [`simulate`] into a reusable workspace: all per-run buffers come from
/// `ws`, so a sweep that calls this in a loop allocates only until the
/// buffers reach the campaign's high-water size. Results are byte-identical
/// to [`simulate`] — `SimWorkspace::begin` resets every piece of run state,
/// including the event queue's FIFO tie-break counter.
pub fn simulate_into<P, S>(
    ws: &mut SimWorkspace,
    jobs: &JobSet,
    capacity: &P,
    scheduler: &mut S,
    options: RunOptions,
) -> RunReport
where
    P: CapacityProfile,
    S: Scheduler + ?Sized,
{
    let mut tracer = NoopTracer;
    Kernel::new(ws, jobs, capacity, options, &mut tracer, None, None, None)
        .run(scheduler)
        .0
}

/// [`simulate`] with a caller-supplied trace sink. Every kernel- and
/// scheduler-level [`TraceEvent`] of the run flows into `tracer` in
/// deterministic order; the report is identical to an untraced run.
pub fn simulate_traced<P, S, T>(
    jobs: &JobSet,
    capacity: &P,
    scheduler: &mut S,
    options: RunOptions,
    tracer: &mut T,
) -> RunReport
where
    P: CapacityProfile,
    S: Scheduler + ?Sized,
    T: Tracer,
{
    simulate_into_traced(
        &mut SimWorkspace::new(),
        jobs,
        capacity,
        scheduler,
        options,
        tracer,
    )
}

/// [`simulate_traced`] into a reusable workspace; trace bytes are identical
/// to a fresh-workspace run.
pub fn simulate_into_traced<P, S, T>(
    ws: &mut SimWorkspace,
    jobs: &JobSet,
    capacity: &P,
    scheduler: &mut S,
    options: RunOptions,
    tracer: &mut T,
) -> RunReport
where
    P: CapacityProfile,
    S: Scheduler + ?Sized,
    T: Tracer,
{
    Kernel::new(ws, jobs, capacity, options, tracer, None, None, None)
        .run(scheduler)
        .0
}

/// Fully-instrumented entry point: a trace sink plus an optional profiler
/// whose `kernel.dispatch` span brackets every scheduler handler call.
pub fn simulate_observed<P, S, T>(
    jobs: &JobSet,
    capacity: &P,
    scheduler: &mut S,
    options: RunOptions,
    tracer: &mut T,
    profiler: Option<&Profiler>,
) -> RunReport
where
    P: CapacityProfile,
    S: Scheduler + ?Sized,
    T: Tracer,
{
    let mut ws = SimWorkspace::new();
    Kernel::new(
        &mut ws, jobs, capacity, options, tracer, profiler, None, None,
    )
    .run(scheduler)
    .0
}

/// [`simulate`] with the standard simulation metrics attached: runs with a
/// [`MetricsRegistry`] as the trace sink and embeds its snapshot in
/// [`RunReport::metrics`].
pub fn simulate_with_metrics<P, S>(
    jobs: &JobSet,
    capacity: &P,
    scheduler: &mut S,
    options: RunOptions,
) -> RunReport
where
    P: CapacityProfile,
    S: Scheduler + ?Sized,
{
    let mut registry = MetricsRegistry::for_sim();
    let mut report = simulate_traced(jobs, capacity, scheduler, options, &mut registry);
    report.metrics = Some(registry.snapshot());
    report
}

/// Runs `scheduler` under a degradation policy: a [`Watchdog`] re-checks the
/// paper's preconditions online (Definition 4 admissibility, duplicate
/// releases, value spikes, the `c(t) >= c_lo` capacity SLA), an optional
/// [`RateOracle`] mediates every capacity measurement the watchdog makes,
/// and `policy` decides whether a detected fault aborts the run (`Strict`),
/// quarantines the offender and degrades conservatively (`Degrade`), or is
/// merely recorded (`BestEffort`). See [`crate::degrade`] for the model.
///
/// Job progress always integrates the *physical* capacity profile — a faulty
/// oracle distorts what the watchdog believes, never what the processor does.
///
/// When the run completes (not aborted) with a recorded schedule, the
/// post-hoc auditor ([`crate::audit::audit_report`]) runs over the result and
/// its findings land in [`DegradedOutcome::audit_errors`].
#[allow(clippy::too_many_arguments)]
pub fn simulate_degraded<'a, P, S, T>(
    jobs: &'a JobSet,
    capacity: &'a P,
    scheduler: &mut S,
    options: RunOptions,
    tracer: &'a mut T,
    policy: DegradationPolicy,
    cfg: WatchdogConfig,
    oracle: Option<&'a mut dyn RateOracle>,
) -> DegradedOutcome
where
    P: CapacityProfile,
    S: Scheduler + ?Sized,
    T: Tracer,
{
    let (c_lo, c_hi) = capacity.bounds();
    let watchdog = Watchdog::new(policy, c_lo, c_hi, cfg);
    let mut ws = SimWorkspace::new();
    // Reborrow the oracle so the kernel's lifetime can be the local one of
    // `ws` rather than the caller's `'a`.
    let oracle: Option<&mut dyn RateOracle> = match oracle {
        Some(o) => Some(&mut *o),
        None => None,
    };
    let kernel = Kernel::new(
        &mut ws,
        jobs,
        capacity,
        options,
        tracer,
        None,
        Some(watchdog),
        oracle,
    );
    let (report, aborted, stats) = kernel.run(scheduler);
    let stats = stats.expect("invariant: a run with a watchdog returns degradation stats");
    let mut audit_errors = Vec::new();
    if aborted.is_none() && report.schedule.is_some() {
        if let Err(errors) = crate::audit::audit_report(jobs, capacity, &report) {
            audit_errors = errors;
        }
    }
    DegradedOutcome {
        report,
        aborted,
        stats,
        audit_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_capacity::{Constant, PiecewiseConstant};
    use cloudsched_core::approx_eq;

    /// Minimal work-conserving FIFO used to exercise the kernel: runs the
    /// earliest-released ready job, never preempts voluntarily.
    struct TestFifo {
        ready: Vec<JobId>,
    }
    impl TestFifo {
        fn new() -> Self {
            TestFifo { ready: Vec::new() }
        }
        fn next_decision(&mut self, ctx: &SimContext<'_>) -> Decision {
            if ctx.running().is_some() {
                return Decision::Continue;
            }
            match self.ready.first().copied() {
                Some(j) => {
                    self.ready.remove(0);
                    Decision::Run(j)
                }
                None => Decision::Idle,
            }
        }
    }
    impl Scheduler for TestFifo {
        fn name(&self) -> String {
            "test-fifo".into()
        }
        fn on_release(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
            self.ready.push(job);
            self.next_decision(ctx)
        }
        fn on_completion(&mut self, ctx: &mut SimContext<'_>, _job: JobId) -> Decision {
            self.next_decision(ctx)
        }
        fn on_deadline_miss(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
            self.ready.retain(|&j| j != job);
            self.next_decision(ctx)
        }
    }

    /// Always runs the most recently released job (forces preemptions).
    struct TestLifoPreempt;
    impl Scheduler for TestLifoPreempt {
        fn name(&self) -> String {
            "test-lifo".into()
        }
        fn on_release(&mut self, _ctx: &mut SimContext<'_>, job: JobId) -> Decision {
            Decision::Run(job)
        }
        fn on_completion(&mut self, _ctx: &mut SimContext<'_>, _job: JobId) -> Decision {
            Decision::Continue
        }
        fn on_deadline_miss(&mut self, _ctx: &mut SimContext<'_>, _job: JobId) -> Decision {
            Decision::Continue
        }
    }

    #[test]
    fn single_job_completes_with_exact_value() {
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 4.0, 7.0)]).unwrap();
        let cap = Constant::new(2.0).unwrap();
        let r = simulate(&jobs, &cap, &mut TestFifo::new(), RunOptions::full());
        assert_eq!(r.completed, 1);
        assert_eq!(r.missed, 0);
        assert_eq!(r.value, 7.0);
        assert_eq!(r.value_fraction, 1.0);
        match r.outcome.get(JobId(0)) {
            JobOutcome::Completed { at } => assert!(at.approx_eq(Time::new(2.0))),
            other => panic!("expected completion, got {other:?}"),
        }
        let sched = r.schedule.unwrap();
        assert_eq!(sched.len(), 1);
        assert!(approx_eq(sched.busy_time(), 2.0));
    }

    #[test]
    fn job_misses_when_capacity_too_low() {
        let jobs = JobSet::from_tuples(&[(0.0, 2.0, 10.0, 5.0)]).unwrap();
        let cap = Constant::unit();
        let r = simulate(&jobs, &cap, &mut TestFifo::new(), RunOptions::default());
        assert_eq!(r.completed, 0);
        assert_eq!(r.missed, 1);
        assert_eq!(r.value, 0.0);
        match r.outcome.get(JobId(0)) {
            JobOutcome::Missed { remaining_workload } => {
                assert!(approx_eq(remaining_workload, 8.0))
            }
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn zero_laxity_job_completes_exactly_at_deadline() {
        // d - r = p / c exactly: must count as completed (tolerance path).
        let jobs = JobSet::from_tuples(&[(0.0, 3.0, 3.0, 1.0)]).unwrap();
        let cap = Constant::unit();
        let r = simulate(&jobs, &cap, &mut TestFifo::new(), RunOptions::default());
        assert_eq!(r.completed, 1, "zero-laxity job must complete at deadline");
    }

    #[test]
    fn progress_integrates_across_capacity_changes() {
        // rate 1 on [0,2), rate 3 on [2,∞). Job p=5 from t=0: 2 + 3*1 = 5 at t=3.
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 5.0, 1.0)]).unwrap();
        let cap = PiecewiseConstant::from_durations(&[(2.0, 1.0), (1.0, 3.0)]).unwrap();
        let r = simulate(&jobs, &cap, &mut TestFifo::new(), RunOptions::default());
        match r.outcome.get(JobId(0)) {
            JobOutcome::Completed { at } => assert!(at.approx_eq(Time::new(3.0))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn preemption_produces_stale_completion_and_correct_resume() {
        // Job 0 (p=4) starts at 0; job 1 (p=1) released at 1 preempts (LIFO);
        // job 0 is NOT resumed by this scheduler, so it misses; job 1 done at 2.
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 4.0, 1.0), (1.0, 10.0, 1.0, 2.0)]).unwrap();
        let cap = Constant::unit();
        let r = simulate(&jobs, &cap, &mut TestLifoPreempt, RunOptions::full());
        assert_eq!(r.preemptions, 1);
        assert!(r.outcome.get(JobId(1)).is_completed());
        match r.outcome.get(JobId(0)) {
            JobOutcome::Missed { remaining_workload } => {
                // Ran [0,1): 3 units left.
                assert!(approx_eq(remaining_workload, 3.0));
            }
            other => panic!("{other:?}"),
        }
        // Schedule: job0 [0,1), job1 [1,2).
        let slices = r.schedule.unwrap();
        assert_eq!(slices.slices()[0].job, JobId(0));
        assert_eq!(slices.slices()[1].job, JobId(1));
        assert!(slices.slices()[1].end.approx_eq(Time::new(2.0)));
    }

    /// Scheduler that resumes the preempted job on completion.
    struct TestLifoResume {
        stack: Vec<JobId>,
    }
    impl Scheduler for TestLifoResume {
        fn name(&self) -> String {
            "test-lifo-resume".into()
        }
        fn on_release(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
            if let Some(cur) = ctx.running() {
                self.stack.push(cur);
            }
            Decision::Run(job)
        }
        fn on_completion(&mut self, _ctx: &mut SimContext<'_>, _job: JobId) -> Decision {
            match self.stack.pop() {
                Some(j) => Decision::Run(j),
                None => Decision::Idle,
            }
        }
        fn on_deadline_miss(&mut self, _ctx: &mut SimContext<'_>, job: JobId) -> Decision {
            self.stack.retain(|&j| j != job);
            Decision::Continue
        }
    }

    #[test]
    fn preempted_job_resumes_from_point_of_preemption() {
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 4.0, 1.0), (1.0, 10.0, 1.0, 2.0)]).unwrap();
        let cap = Constant::unit();
        let mut s = TestLifoResume { stack: vec![] };
        let r = simulate(&jobs, &cap, &mut s, RunOptions::full());
        assert_eq!(r.completed, 2);
        // Job 0: [0,1) then [2,5): completes at 5.
        match r.outcome.get(JobId(0)) {
            JobOutcome::Completed { at } => assert!(at.approx_eq(Time::new(5.0))),
            other => panic!("{other:?}"),
        }
        assert_eq!(r.dispatches, 3); // job0, job1, job0 again
        let sched = r.schedule.unwrap();
        assert!(approx_eq(sched.wall_time_of(JobId(0)), 4.0));
    }

    /// Scheduler that registers a timer at release and runs the job only when
    /// the timer fires.
    struct TimerStart;
    impl Scheduler for TimerStart {
        fn name(&self) -> String {
            "test-timer".into()
        }
        fn on_release(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
            ctx.set_timer(Time::new(2.0), job, 42);
            Decision::Continue
        }
        fn on_completion(&mut self, _ctx: &mut SimContext<'_>, _job: JobId) -> Decision {
            Decision::Continue
        }
        fn on_deadline_miss(&mut self, _ctx: &mut SimContext<'_>, _job: JobId) -> Decision {
            Decision::Continue
        }
        fn on_timer(&mut self, _ctx: &mut SimContext<'_>, job: JobId, token: u64) -> Decision {
            assert_eq!(token, 42);
            Decision::Run(job)
        }
    }

    #[test]
    fn timers_fire_and_tokens_echo() {
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 1.0, 1.0)]).unwrap();
        let cap = Constant::unit();
        let r = simulate(&jobs, &cap, &mut TimerStart, RunOptions::full());
        match r.outcome.get(JobId(0)) {
            JobOutcome::Completed { at } => assert!(at.approx_eq(Time::new(3.0))),
            other => panic!("{other:?}"),
        }
        let sched = r.schedule.unwrap();
        assert!(sched.slices()[0].start.approx_eq(Time::new(2.0)));
    }

    #[test]
    fn timer_for_resolved_job_is_dropped() {
        struct LateTimer;
        impl Scheduler for LateTimer {
            fn name(&self) -> String {
                "late-timer".into()
            }
            fn on_release(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
                ctx.set_timer(Time::new(100.0), job, 1);
                Decision::Run(job)
            }
            fn on_completion(&mut self, _c: &mut SimContext<'_>, _j: JobId) -> Decision {
                Decision::Continue
            }
            fn on_deadline_miss(&mut self, _c: &mut SimContext<'_>, _j: JobId) -> Decision {
                Decision::Continue
            }
            fn on_timer(&mut self, _c: &mut SimContext<'_>, _j: JobId, _t: u64) -> Decision {
                panic!("timer for a resolved job must not be delivered");
            }
        }
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 1.0, 1.0)]).unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut LateTimer,
            RunOptions::default(),
        );
        assert_eq!(r.completed, 1);
    }

    #[test]
    fn trajectory_records_completions() {
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 1.0, 5.0), (0.0, 10.0, 1.0, 3.0)]).unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut TestFifo::new(),
            RunOptions::full(),
        );
        let traj = r.trajectory.unwrap();
        assert_eq!(traj.len(), 3); // origin + 2 completions
        assert_eq!(traj[0].cumulative_value, 0.0);
        assert!(approx_eq(traj[1].cumulative_value, 5.0));
        assert!(approx_eq(traj[2].cumulative_value, 8.0));
        assert!(approx_eq(traj[2].time, 2.0));
    }

    #[test]
    fn simultaneous_releases_processed_in_id_order() {
        let jobs = JobSet::from_tuples(&[
            (1.0, 10.0, 1.0, 1.0),
            (1.0, 10.0, 1.0, 1.0),
            (1.0, 10.0, 1.0, 1.0),
        ])
        .unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut TestFifo::new(),
            RunOptions::full(),
        );
        assert_eq!(r.completed, 3);
        let order: Vec<JobId> = r.schedule.unwrap().slices().iter().map(|s| s.job).collect();
        assert_eq!(order, vec![JobId(0), JobId(1), JobId(2)]);
    }

    #[test]
    fn idle_gaps_are_respected() {
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 1.0, 1.0), (5.0, 10.0, 1.0, 1.0)]).unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut TestFifo::new(),
            RunOptions::full(),
        );
        let sched = r.schedule.unwrap();
        assert!(approx_eq(sched.busy_time(), 2.0));
        assert!(sched.slices()[1].start.approx_eq(Time::new(5.0)));
        assert_eq!(r.events, 4 + 2); // 2 releases + 2 deadlines + 2 completions
    }

    #[test]
    fn empty_instance_runs_trivially() {
        let jobs = JobSet::new(vec![]).unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut TestFifo::new(),
            RunOptions::default(),
        );
        assert_eq!(r.completed + r.missed, 0);
        assert_eq!(r.value_fraction, 0.0);
        assert_eq!(r.events, 0);
    }

    #[test]
    #[should_panic(expected = "unreleased")]
    fn dispatching_unreleased_job_panics() {
        struct Evil;
        impl Scheduler for Evil {
            fn name(&self) -> String {
                "evil".into()
            }
            fn on_release(&mut self, _c: &mut SimContext<'_>, _j: JobId) -> Decision {
                Decision::Run(JobId(1)) // not released yet
            }
            fn on_completion(&mut self, _c: &mut SimContext<'_>, _j: JobId) -> Decision {
                Decision::Continue
            }
            fn on_deadline_miss(&mut self, _c: &mut SimContext<'_>, _j: JobId) -> Decision {
                Decision::Continue
            }
        }
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 1.0, 1.0), (5.0, 10.0, 1.0, 1.0)]).unwrap();
        simulate(&jobs, &Constant::unit(), &mut Evil, RunOptions::default());
    }

    #[test]
    fn traced_run_emits_lifecycle_events_in_order() {
        use cloudsched_obs::RingTracer;
        // LIFO preempt: job0 admitted at 0, preempted at 1 by job1 (done at
        // 2); job0 never resumed -> expires at its deadline.
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 4.0, 1.0), (1.0, 10.0, 1.0, 2.0)]).unwrap();
        let cap = Constant::unit();
        let mut ring = RingTracer::new(64);
        let traced = simulate_traced(
            &jobs,
            &cap,
            &mut TestLifoPreempt,
            RunOptions::full(),
            &mut ring,
        );
        let kinds: Vec<&str> = ring.events().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "capacity", // initial segment stamp at t=0
                "arrival",  // T0
                "admit",    // T0
                "arrival",  // T1
                "preempt",  // T0 displaced
                "admit",    // T1
                "complete", // T1
                "expire",   // T0 at its deadline
            ]
        );
        assert_eq!(traced.expired, 1);
        assert!(approx_eq(traced.expired_value, 1.0));
        assert_eq!(traced.abandoned, 0);
        // Tracing must not perturb the simulation: the untraced report is
        // identical field-for-field.
        let plain = simulate(&jobs, &cap, &mut TestLifoPreempt, RunOptions::full());
        assert_eq!(plain.events, traced.events);
        assert_eq!(plain.preemptions, traced.preemptions);
        assert_eq!(plain.value, traced.value);
        assert_eq!(plain.completed, traced.completed);
    }

    #[test]
    fn traced_run_stamps_capacity_segments() {
        use cloudsched_obs::{RingTracer, TraceEvent};
        // rate 1 on [0,2), rate 3 afterwards: segments 0 and 1.
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 5.0, 1.0)]).unwrap();
        let cap = PiecewiseConstant::from_durations(&[(2.0, 1.0), (1.0, 3.0)]).unwrap();
        let mut ring = RingTracer::new(64);
        simulate_traced(
            &jobs,
            &cap,
            &mut TestFifo::new(),
            RunOptions::default(),
            &mut ring,
        );
        let segments: Vec<(f64, f64, usize)> = ring
            .events()
            .filter_map(|e| match *e {
                TraceEvent::CapacityChange { t, rate, segment } => {
                    Some((t.as_f64(), rate, segment))
                }
                _ => None,
            })
            .collect();
        assert_eq!(segments.len(), 2);
        assert_eq!(segments[0].2, 0);
        assert!(approx_eq(segments[0].1, 1.0));
        assert_eq!(segments[1].2, 1);
        assert!(approx_eq(segments[1].0, 2.0));
        assert!(approx_eq(segments[1].1, 3.0));
    }

    #[test]
    fn metrics_run_embeds_snapshot() {
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 1.0, 5.0), (0.0, 10.0, 1.0, 3.0)]).unwrap();
        let r = simulate_with_metrics(
            &jobs,
            &Constant::unit(),
            &mut TestFifo::new(),
            RunOptions::default(),
        );
        let m = r.metrics.expect("metrics snapshot attached");
        assert_eq!(m.counter("jobs.arrived"), 2);
        assert_eq!(m.counter("jobs.completed"), 2);
        assert!(approx_eq(m.meter("value.completed"), 8.0));
        let hist = m.histogram("laxity.at_release").expect("laxity histogram");
        assert_eq!(hist.total, 2);
    }

    #[test]
    fn abandoned_jobs_are_booked_separately_from_expired() {
        // Scheduler that explicitly gives up on every release and never runs
        // anything: all misses must be abandonments, none passive expiries.
        struct Quitter;
        impl Scheduler for Quitter {
            fn name(&self) -> String {
                "quitter".into()
            }
            fn on_release(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
                ctx.abandon(job);
                Decision::Continue
            }
            fn on_completion(&mut self, _c: &mut SimContext<'_>, _j: JobId) -> Decision {
                Decision::Continue
            }
            fn on_deadline_miss(&mut self, _c: &mut SimContext<'_>, _j: JobId) -> Decision {
                Decision::Continue
            }
        }
        let jobs = JobSet::from_tuples(&[(0.0, 2.0, 1.0, 4.0), (0.0, 3.0, 1.0, 6.0)]).unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut Quitter,
            RunOptions::default(),
        );
        assert_eq!(r.missed, 2);
        assert_eq!(r.abandoned, 2);
        assert_eq!(r.expired, 0);
        assert!(approx_eq(r.abandoned_value, 10.0));
        assert!(approx_eq(r.expired_value, 0.0));
    }

    #[test]
    fn run_decision_for_already_running_job_is_noop() {
        struct Redispatch;
        impl Scheduler for Redispatch {
            fn name(&self) -> String {
                "redispatch".into()
            }
            fn on_release(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
                match ctx.running() {
                    Some(cur) => Decision::Run(cur), // re-dispatch current
                    None => Decision::Run(job),
                }
            }
            fn on_completion(&mut self, _c: &mut SimContext<'_>, _j: JobId) -> Decision {
                Decision::Continue
            }
            fn on_deadline_miss(&mut self, _c: &mut SimContext<'_>, _j: JobId) -> Decision {
                Decision::Continue
            }
        }
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 2.0, 1.0), (1.0, 10.0, 1.0, 1.0)]).unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut Redispatch,
            RunOptions::full(),
        );
        // Job 0 keeps running uninterrupted despite the redundant Run(cur):
        // exactly one slice, no preemptions.
        assert_eq!(r.preemptions, 0);
        assert_eq!(r.dispatches, 1);
        assert!(r.outcome.get(JobId(0)).is_completed());
    }

    #[test]
    fn interleaved_pump_and_seed_matches_batch_run() {
        use cloudsched_obs::RingTracer;
        // Feed the same jobs one release at a time through the streaming
        // seam (pump to each release, then admit) and compare against the
        // batch run: traces and reports must be byte-identical. Includes a
        // capacity change and co-timed releases to exercise the pump
        // boundary's priority handling.
        let tuples: &[(f64, f64, f64, f64)] = &[
            (0.0, 6.0, 3.0, 4.0),
            (1.0, 4.0, 2.0, 9.0),
            (1.0, 7.0, 1.0, 2.0),
            (3.0, 9.0, 4.0, 5.0),
        ];
        let jobs = JobSet::from_tuples(tuples).unwrap();
        let cap = PiecewiseConstant::from_durations(&[(2.0, 1.0), (10.0, 2.0)]).unwrap();

        let mut batch_ring = RingTracer::new(256);
        let mut batch_sched = TestLifoResume { stack: vec![] };
        let batch = simulate_traced(
            &jobs,
            &cap,
            &mut batch_sched,
            RunOptions::lean(),
            &mut batch_ring,
        );

        let mut stream_ring = RingTracer::new(256);
        let mut stream_sched = TestLifoResume { stack: vec![] };
        let mut ws = SimWorkspace::new();
        ws.begin(0);
        let mut st = {
            let (c_lo, c_hi) = cap.bounds();
            KernelState::streaming(RunOptions::lean(), c_lo, c_hi)
        };
        // The batch kernel stamps segment 0 up front; the streaming caller
        // owns that stamp (its job table starts empty).
        stream_ring.record(&TraceEvent::CapacityChange {
            t: Time::ZERO,
            rate: cap.rate_at(Time::ZERO),
            segment: 0,
        });
        for job in jobs.iter() {
            let mut k = Kernel::resume(&mut ws, &jobs, &cap, &mut stream_ring, st);
            k.pump_ready(&mut stream_sched, job.release);
            k.admit_job(job);
            st = k.suspend();
        }
        let k = Kernel::resume(&mut ws, &jobs, &cap, &mut stream_ring, st);
        let (stream, aborted, _) = k.finish(&mut stream_sched);
        assert!(aborted.is_none());

        let batch_events: Vec<String> = batch_ring.events().map(|e| e.to_jsonl()).collect();
        let stream_events: Vec<String> = stream_ring.events().map(|e| e.to_jsonl()).collect();
        assert_eq!(batch_events, stream_events, "trace streams must match");
        assert_eq!(batch.value, stream.value);
        assert_eq!(batch.events, stream.events);
        assert_eq!(batch.preemptions, stream.preemptions);
        assert_eq!(batch.dispatches, stream.dispatches);
        for j in jobs.iter() {
            assert_eq!(batch.outcome.get(j.id), stream.outcome.get(j.id));
        }
    }
}
