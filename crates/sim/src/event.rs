//! Kernel events and the deterministic event queue.
//!
//! The queue is a *calendar queue* (a bucketed timing wheel with a heap
//! fallback), not a plain binary heap: near-future events live in an array
//! of time buckets scanned by a cursor, far-future and non-finite events
//! wait in an overflow heap. Pops stay byte-identical to a `BinaryHeap`
//! with the same `(time, kind-priority, seq)` total order — the bucket
//! boundaries are a pure function of event *time*, so co-timed events can
//! never straddle a bucket edge and ties always resolve inside one bucket
//! by the full [`Ord`] on [`Event`]. A reference heap backend is kept for
//! the `flat-vs-heap` benchmark rows and the property tests.

use cloudsched_core::{JobId, Time};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The currently running job (as of epoch `epoch`) finishes its workload.
    Completion {
        /// The job that completes.
        job: JobId,
        /// Dispatch epoch; a mismatch with the kernel's current epoch marks
        /// the event stale (the job was preempted in between).
        epoch: u64,
    },
    /// A scheduler-requested timer (e.g. a zero-conservative-laxity
    /// interrupt) fires for `job`.
    Timer {
        /// The job the timer concerns.
        job: JobId,
        /// Opaque token chosen by the scheduler at registration.
        token: u64,
    },
    /// `job` is released and becomes known to the scheduler.
    Release {
        /// The released job.
        job: JobId,
    },
    /// `job`'s firm deadline passes.
    Deadline {
        /// The job whose deadline expires.
        job: JobId,
    },
    /// The capacity profile enters a new constant-rate segment. Only
    /// scheduled when tracing is live — it exists to stamp
    /// capacity-segment trace events, never to invoke the scheduler.
    CapacityChange,
}

impl EventKind {
    /// Processing priority at equal timestamps. Capacity-segment markers go
    /// first so the trace shows the new rate before any co-timed activity;
    /// completions are handled before deadlines so that a job finishing
    /// *exactly at* its deadline counts as completed ("completing a job
    /// **by** its deadline"), and before releases so queues are in a
    /// settled state when new work arrives.
    fn priority(&self) -> u8 {
        match self {
            EventKind::CapacityChange => 0,
            EventKind::Completion { .. } => 1,
            EventKind::Timer { .. } => 2,
            EventKind::Release { .. } => 3,
            EventKind::Deadline { .. } => 4,
        }
    }
}

/// A scheduled event. Ordering: time, then kind priority, then insertion
/// sequence — fully deterministic.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// When the event fires.
    pub time: Time,
    /// What fires.
    pub kind: EventKind,
    seq: u64,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then(self.kind.priority().cmp(&other.kind.priority()))
            .then(self.seq.cmp(&other.seq))
    }
}

/// Smallest bucket count the calendar ever uses.
const MIN_BUCKETS: usize = 64;
/// A single bucket longer than this triggers a re-spread (window re-fit).
const SPILL_LIMIT: usize = 128;
/// Average per-bucket occupancy a re-spread aims for.
const TARGET_OCCUPANCY: usize = 8;
/// Global average occupancy that triggers a re-spread on push.
const MAX_AVG_OCCUPANCY: usize = 32;
/// How many calendar windows past the dense span still go into buckets;
/// events beyond `origin + FAR_WINDOWS × span` fall back to the heap.
const FAR_WINDOWS: f64 = 4.0;

/// Backing store of an [`EventQueue`].
#[derive(Debug)]
enum Backend {
    /// The calendar: time buckets + cursor + overflow heap.
    Calendar(Calendar),
    /// A plain binary min-heap — the pre-flattening reference, kept for
    /// the `flat-vs-heap` benchmark comparison and the equivalence
    /// property tests.
    Heap(BinaryHeap<std::cmp::Reverse<Event>>),
}

/// Deterministic event queue: calendar buckets by default, with a
/// reference binary-heap backend selectable for benchmarks and tests.
/// Both backends pop the exact same `(time, kind-priority, seq)` order.
#[derive(Debug)]
pub struct EventQueue {
    backend: Backend,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// The calendar proper. Invariants:
///
/// * every bucketed event has a finite time `< limit`; every overflow
///   event has a non-finite time or a time `>= limit` — so the earliest
///   bucketed event always precedes every overflow event, and co-timed
///   events are always classified the same way;
/// * bucket assignment is monotone in time (`slot`), so bucket `i` holds
///   strictly earlier times than bucket `j > i`;
/// * no non-empty bucket lies before `cursor`;
/// * when `sorted` is set, `buckets[cursor]` is sorted descending, so the
///   minimum is at the back.
#[derive(Debug, Default)]
struct Calendar {
    buckets: Vec<Vec<Event>>,
    /// Index of the first possibly non-empty bucket.
    cursor: usize,
    /// Whether `buckets[cursor]` is currently sorted (descending).
    sorted: bool,
    /// Time at the start of bucket 0.
    origin: f64,
    /// Bucket width in time units (always positive and finite).
    width: f64,
    /// Times `>= limit` (or non-finite) go to the overflow heap.
    limit: f64,
    /// Events currently held in buckets (not counting overflow).
    in_buckets: usize,
    /// Re-spreads are deferred until the population doubles past this
    /// mark, so degenerate inputs (e.g. thousands of co-timed events the
    /// window cannot split) cost `O(n log n)` total, not `O(n²)`.
    respread_floor: usize,
    overflow: BinaryHeap<std::cmp::Reverse<Event>>,
    /// Scratch buffer reused by re-spreads.
    scratch: Vec<Event>,
}

impl Calendar {
    fn new() -> Self {
        Calendar {
            buckets: Vec::new(),
            cursor: 0,
            sorted: false,
            origin: 0.0,
            width: 1.0,
            limit: f64::INFINITY,
            in_buckets: 0,
            respread_floor: 0,
            overflow: BinaryHeap::new(),
            scratch: Vec::new(),
        }
    }

    /// Bucket index for a time accepted by the window (`t < limit`,
    /// finite). Monotone in `t`; times past the geometric end of the
    /// window clamp into the last bucket, times before the origin into the
    /// first — both keep the assignment monotone, which is all ordering
    /// needs.
    #[inline]
    fn slot(&self, t: f64) -> usize {
        // `as usize` saturates at 0 for negative values, which is exactly
        // the clamp we want for t < origin.
        let idx = ((t - self.origin) / self.width) as usize;
        idx.min(self.buckets.len() - 1)
    }

    #[inline]
    fn len(&self) -> usize {
        self.in_buckets + self.overflow.len()
    }

    fn insert(&mut self, ev: Event) {
        let t = ev.time.as_f64();
        if !t.is_finite() || t >= self.limit {
            self.overflow.push(std::cmp::Reverse(ev));
            return;
        }
        if self.buckets.is_empty() {
            self.buckets.resize_with(MIN_BUCKETS, Vec::new);
        }
        let idx = self.slot(t);
        if idx < self.cursor {
            self.cursor = idx;
            self.sorted = false;
        }
        if idx == self.cursor && self.sorted {
            // Keep the current bucket's descending order so pops stay O(1).
            let b = &mut self.buckets[idx];
            let pos = b.partition_point(|e| *e > ev);
            b.insert(pos, ev);
        } else {
            self.buckets[idx].push(ev);
        }
        self.in_buckets += 1;
        let spilled = self.buckets[idx].len() >= SPILL_LIMIT
            || self.in_buckets > self.buckets.len() * MAX_AVG_OCCUPANCY;
        if spilled && self.in_buckets >= self.respread_floor {
            self.respread();
        }
    }

    /// Re-fits the window to the current population: gathers every event
    /// (buckets *and* overflow), re-derives origin/width/limit from the
    /// dense span, and redistributes. Order is untouched — bucketing is a
    /// pure monotone function of time.
    fn respread(&mut self) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        for b in &mut self.buckets {
            scratch.append(b);
        }
        scratch.extend(self.overflow.drain().map(|r| r.0));
        self.in_buckets = 0;
        self.respread_floor = (scratch.len() * 2).max(2 * SPILL_LIMIT);

        // Dense span over the finite times; non-finite events go straight
        // back to the overflow heap below.
        let mut tmin = f64::INFINITY;
        let mut tmax = f64::NEG_INFINITY;
        for ev in &scratch {
            let t = ev.time.as_f64();
            if t.is_finite() {
                tmin = tmin.min(t);
                tmax = tmax.max(t);
            }
        }
        if tmin.is_finite() {
            // Every bucket was drained into `scratch` above, so the vector
            // can be resized in either direction: grow for a population
            // spike, shrink back when the live population collapses (a
            // spike would otherwise pin the bucket count — and the cost of
            // every cursor sweep — at its high-water mark forever).
            let want = (scratch.len() / TARGET_OCCUPANCY).max(MIN_BUCKETS);
            if want > self.buckets.len() {
                self.buckets.resize_with(want, Vec::new);
            } else if want < self.buckets.len() {
                self.buckets.truncate(want);
            }
            let nb = self.buckets.len();
            let span = tmax - tmin;
            self.origin = tmin;
            self.width = if span > 0.0 && (span / (nb - 1) as f64) > 0.0 {
                span / (nb - 1) as f64
            } else {
                1.0
            };
            // Heap fallback for the far future: anything beyond a few
            // window spans of the dense region waits in the overflow heap
            // instead of piling into the last bucket.
            self.limit = self.origin + (self.width * nb as f64) * FAR_WINDOWS;
        }
        self.cursor = 0;
        self.sorted = false;
        for ev in scratch.drain(..) {
            let t = ev.time.as_f64();
            if !t.is_finite() || t >= self.limit {
                self.overflow.push(std::cmp::Reverse(ev));
            } else {
                let idx = self.slot(t);
                self.buckets[idx].push(ev);
                self.in_buckets += 1;
            }
        }
        self.scratch = scratch;
    }

    /// Advances `cursor` to the first non-empty bucket, if any.
    #[inline]
    fn settle_cursor(&mut self) -> bool {
        while self.cursor < self.buckets.len() {
            if !self.buckets[self.cursor].is_empty() {
                return true;
            }
            self.cursor += 1;
            self.sorted = false;
        }
        false
    }

    fn pop(&mut self) -> Option<Event> {
        loop {
            if self.settle_cursor() {
                if !self.sorted {
                    self.buckets[self.cursor].sort_unstable_by(|a, b| b.cmp(a));
                    self.sorted = true;
                }
                self.in_buckets -= 1;
                return self.buckets[self.cursor].pop();
            }
            // Window drained: refill from the overflow heap.
            match self.overflow.peek() {
                None => return None,
                Some(r) if !r.0.time.as_f64().is_finite() => {
                    // Only non-finite times remain (the heap minimum is
                    // non-finite): pop straight from the heap.
                    return self.overflow.pop().map(|r| r.0);
                }
                Some(_) => {
                    // Re-anchor the window at the overflow's dense span;
                    // at least its earliest event lands in bucket 0, so
                    // the next iteration pops.
                    self.limit = f64::INFINITY;
                    self.respread();
                }
            }
        }
    }

    fn peek(&self) -> Option<&Event> {
        for b in &self.buckets[self.cursor.min(self.buckets.len())..] {
            if b.is_empty() {
                continue;
            }
            // The bucket invariant puts every bucketed event before every
            // overflow event, so the bucket minimum is the queue minimum.
            return if self.sorted && std::ptr::eq(b, &self.buckets[self.cursor]) {
                b.last()
            } else {
                b.iter().min()
            };
        }
        self.overflow.peek().map(|r| &r.0)
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.overflow.clear();
        self.cursor = 0;
        self.sorted = false;
        self.origin = 0.0;
        self.limit = f64::INFINITY;
        self.in_buckets = 0;
        self.respread_floor = 0;
        // width and bucket count are kept: they only shape *where* events
        // land, never the pop order, and a recycled run of similar scale
        // re-uses the fitted geometry.
    }

    fn capacity(&self) -> usize {
        self.buckets.iter().map(Vec::capacity).sum::<usize>() + self.overflow.capacity()
    }
}

impl EventQueue {
    /// Creates an empty queue on the calendar backend.
    pub fn new() -> Self {
        EventQueue {
            backend: Backend::Calendar(Calendar::new()),
            next_seq: 0,
        }
    }

    /// Creates an empty queue on the reference binary-heap backend. Pops
    /// are byte-identical to the calendar's; this exists so benchmarks can
    /// measure the flat-vs-heap gap and property tests can cross-check the
    /// two implementations.
    pub fn reference_heap() -> Self {
        EventQueue {
            backend: Backend::Heap(BinaryHeap::new()),
            next_seq: 0,
        }
    }

    /// Schedules `kind` at `time`.
    pub fn push(&mut self, time: Time, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let ev = Event { time, kind, seq };
        match &mut self.backend {
            Backend::Calendar(c) => c.insert(ev),
            Backend::Heap(h) => h.push(std::cmp::Reverse(ev)),
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        match &mut self.backend {
            Backend::Calendar(c) => c.pop(),
            Backend::Heap(h) => h.pop().map(|r| r.0),
        }
    }

    /// The earliest pending event without removing it — the streaming
    /// service peeks to decide whether the next event precedes the next
    /// arrival.
    pub fn peek(&self) -> Option<&Event> {
        match &self.backend {
            Backend::Calendar(c) => c.peek(),
            Backend::Heap(h) => h.peek().map(|r| &r.0),
        }
    }

    /// All pending events in pop order plus the live sequence counter — the
    /// snapshot image of the queue. The total `(time, priority, seq)` order
    /// makes the pop sequence a pure function of the event multiset, so
    /// restoring this image reproduces the exact future of the run —
    /// regardless of which backend held the events or how the calendar
    /// happened to bucket them.
    pub(crate) fn snapshot(&self) -> (Vec<(Time, EventKind, u64)>, u64) {
        let mut events: Vec<Event> = match &self.backend {
            Backend::Calendar(c) => {
                let mut v: Vec<Event> = c.buckets.iter().flatten().copied().collect();
                v.extend(c.overflow.iter().map(|r| r.0));
                v
            }
            Backend::Heap(h) => h.iter().map(|r| r.0).collect(),
        };
        events.sort();
        (
            events
                .into_iter()
                .map(|e| (e.time, e.kind, e.seq))
                .collect(),
            self.next_seq,
        )
    }

    /// Rebuilds the queue from a snapshot image. Counterpart of
    /// [`EventQueue::snapshot`]; pops after a restore are byte-identical to
    /// pops of the original queue.
    pub(crate) fn restore(&mut self, events: Vec<(Time, EventKind, u64)>, next_seq: u64) {
        self.clear();
        for (time, kind, seq) in events {
            let ev = Event { time, kind, seq };
            match &mut self.backend {
                Backend::Calendar(c) => c.insert(ev),
                Backend::Heap(h) => h.push(std::cmp::Reverse(ev)),
            }
        }
        self.next_seq = next_seq;
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Calendar(c) => c.len(),
            Backend::Heap(h) => h.len(),
        }
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties the queue for reuse, keeping the backing allocations.
    ///
    /// The insertion-sequence counter restarts at 0: seq numbers only
    /// break ties *within* one run, and resetting them is what makes a
    /// recycled queue's tie-breaking byte-identical to a fresh one's.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Calendar(c) => c.clear(),
            Backend::Heap(h) => h.clear(),
        }
        self.next_seq = 0;
    }

    /// Number of events the queue can hold without reallocating (summed
    /// over the calendar's buckets and overflow heap).
    pub fn capacity(&self) -> usize {
        match &self.backend {
            Backend::Calendar(c) => c.capacity(),
            Backend::Heap(h) => h.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> Time {
        Time::new(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), EventKind::Release { job: JobId(0) });
        q.push(t(1.0), EventKind::Release { job: JobId(1) });
        q.push(t(2.0), EventKind::Release { job: JobId(2) });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_f64())
            .collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn equal_time_orders_by_kind_priority() {
        let mut q = EventQueue::new();
        q.push(t(5.0), EventKind::Deadline { job: JobId(0) });
        q.push(t(5.0), EventKind::Release { job: JobId(1) });
        q.push(
            t(5.0),
            EventKind::Completion {
                job: JobId(2),
                epoch: 0,
            },
        );
        q.push(
            t(5.0),
            EventKind::Timer {
                job: JobId(3),
                token: 0,
            },
        );
        q.push(t(5.0), EventKind::CapacityChange);
        let kinds: Vec<u8> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::CapacityChange => 0,
                EventKind::Completion { .. } => 1,
                EventKind::Timer { .. } => 2,
                EventKind::Release { .. } => 3,
                EventKind::Deadline { .. } => 4,
            })
            .collect();
        assert_eq!(kinds, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn equal_time_and_kind_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(t(1.0), EventKind::Release { job: JobId(i) });
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Release { job } => job.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clear_restarts_the_fifo_sequence() {
        let mut q = EventQueue::new();
        q.push(t(1.0), EventKind::Release { job: JobId(9) });
        q.push(t(1.0), EventKind::Release { job: JobId(8) });
        q.clear();
        assert!(q.is_empty());
        // After clear, ties must resolve exactly as in a fresh queue:
        // insertion order, counted from zero again.
        for i in 0..3 {
            q.push(t(2.0), EventKind::Release { job: JobId(i) });
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Release { job } => job.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn snapshot_restore_preserves_pop_order_and_fifo_counter() {
        let mut q = EventQueue::new();
        q.push(t(2.0), EventKind::Deadline { job: JobId(0) });
        q.push(t(1.0), EventKind::Release { job: JobId(1) });
        q.push(t(1.0), EventKind::Release { job: JobId(2) });
        q.push(
            t(1.0),
            EventKind::Completion {
                job: JobId(3),
                epoch: 4,
            },
        );
        let (image, next_seq) = q.snapshot();
        assert_eq!(next_seq, 4);
        let mut restored = EventQueue::new();
        restored.restore(image, next_seq);
        // Identical pop sequence...
        let a: Vec<Event> = std::iter::from_fn(|| q.pop()).collect();
        let b: Vec<Event> = std::iter::from_fn(|| restored.pop()).collect();
        assert_eq!(a, b);
        // ...and pushes after the restore continue the original seq stream.
        restored.push(t(9.0), EventKind::CapacityChange);
        let (image, next_seq) = restored.snapshot();
        assert_eq!(next_seq, 5);
        assert_eq!(image[0].2, 4, "new event got the continued seq");
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(t(1.0), EventKind::Release { job: JobId(7) });
        assert_eq!(q.peek().unwrap().time, t(1.0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.peek().is_none());
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(t(0.0), EventKind::Release { job: JobId(0) });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    /// Deterministic xorshift, so the fuzz cases below need no RNG dep.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    fn arbitrary_kind(r: u64) -> EventKind {
        match r % 5 {
            0 => EventKind::CapacityChange,
            1 => EventKind::Completion {
                job: JobId(r % 11),
                epoch: r % 3,
            },
            2 => EventKind::Timer {
                job: JobId(r % 11),
                token: r % 7,
            },
            3 => EventKind::Release { job: JobId(r % 11) },
            _ => EventKind::Deadline { job: JobId(r % 11) },
        }
    }

    /// The cross-backend contract: any interleaving of pushes and pops —
    /// including heavy time ties, far-future outliers and non-finite
    /// times — pops identically from the calendar and the reference heap.
    #[test]
    fn calendar_matches_reference_heap_under_fuzz() {
        for seed in 1..=20u64 {
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut cal = EventQueue::new();
            let mut heap = EventQueue::reference_heap();
            for step in 0..600 {
                let r = xorshift(&mut state);
                if r % 4 == 0 && !cal.is_empty() {
                    assert_eq!(cal.peek().copied(), heap.peek().copied());
                    assert_eq!(cal.pop(), heap.pop(), "seed {seed} step {step}");
                } else {
                    let raw = xorshift(&mut state);
                    // Cluster times on a coarse grid for ties; sprinkle
                    // far-future outliers and a few NEVERs.
                    let time = match raw % 16 {
                        0 => Time::NEVER,
                        1 => Time::new(1.0e9 + (raw % 100) as f64),
                        _ => Time::new(((raw >> 8) % 64) as f64 * 0.25),
                    };
                    let kind = arbitrary_kind(xorshift(&mut state));
                    cal.push(time, kind);
                    heap.push(time, kind);
                }
                assert_eq!(cal.len(), heap.len());
            }
            let a: Vec<Event> = std::iter::from_fn(|| cal.pop()).collect();
            let b: Vec<Event> = std::iter::from_fn(|| heap.pop()).collect();
            assert_eq!(a, b, "drain order diverged for seed {seed}");
        }
    }

    /// Re-spreads must trigger (and stay cheap) when volume concentrates
    /// in one bucket — including the degenerate all-co-timed case.
    #[test]
    fn heavy_single_bucket_load_stays_ordered() {
        let mut q = EventQueue::new();
        for i in 0..2_000u64 {
            q.push(t(5.0), EventKind::Release { job: JobId(i) });
        }
        for want in 0..2_000u64 {
            match q.pop().unwrap().kind {
                EventKind::Release { job } => assert_eq!(job.0, want),
                _ => unreachable!(),
            }
        }
        assert!(q.is_empty());
    }

    /// Far-future events must come back out of the overflow heap in exact
    /// order once the near window drains.
    #[test]
    fn overflow_refill_preserves_order() {
        let mut q = EventQueue::new();
        // Dense near cluster to shape the window...
        for i in 0..512u64 {
            q.push(t(i as f64 * 0.01), EventKind::Release { job: JobId(i) });
        }
        // ...then far-future stragglers and a NEVER deadline.
        q.push(t(1.0e7), EventKind::Deadline { job: JobId(1) });
        q.push(t(1.0e7), EventKind::Release { job: JobId(2) });
        q.push(Time::NEVER, EventKind::Deadline { job: JobId(3) });
        let drained: Vec<Event> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained.len(), 515);
        let mut sorted = drained.clone();
        sorted.sort();
        assert_eq!(drained, sorted, "pop order is the total order");
        assert_eq!(drained[514].time, Time::NEVER);
    }

    fn bucket_count(q: &EventQueue) -> usize {
        match &q.backend {
            Backend::Calendar(c) => c.buckets.len(),
            Backend::Heap(_) => unreachable!("bucket_count is a calendar-only probe"),
        }
    }

    /// A population spike must not pin the bucket count at its high-water
    /// mark: after the spike drains, the next re-spread (here the
    /// overflow-refill path) re-fits the bucket vector *down* to the small
    /// surviving population — and the pop order still matches the
    /// reference heap exactly.
    #[test]
    fn respread_shrinks_buckets_after_population_collapse() {
        let mut q = EventQueue::new();
        let mut heap = EventQueue::reference_heap();
        let push = |q: &mut EventQueue, heap: &mut EventQueue, time: Time, kind: EventKind| {
            q.push(time, kind);
            heap.push(time, kind);
        };
        // Phase 1 — grow: 20k spread events force occupancy re-spreads
        // well past MIN_BUCKETS.
        for i in 0..20_000u64 {
            push(
                &mut q,
                &mut heap,
                t(i as f64 * 0.005),
                EventKind::Release { job: JobId(i) },
            );
        }
        let grown = bucket_count(&q);
        assert!(
            grown > MIN_BUCKETS,
            "spike must grow the calendar, got {grown} buckets"
        );
        for _ in 0..20_000 {
            assert_eq!(q.pop(), heap.pop(), "drain order diverged while grown");
        }
        assert!(q.is_empty());
        assert_eq!(
            bucket_count(&q),
            grown,
            "draining alone must not resize (shrink happens at re-spread)"
        );
        // Phase 2 — collapse: a small near cluster plus far-future
        // stragglers. Draining the near window forces an overflow-refill
        // re-spread over the tiny surviving population, which must shrink
        // the bucket vector back down.
        for i in 0..100u64 {
            push(
                &mut q,
                &mut heap,
                t(i as f64 * 0.01),
                EventKind::Release { job: JobId(i) },
            );
        }
        for i in 0..3u64 {
            push(
                &mut q,
                &mut heap,
                t(1.0e9 + i as f64),
                EventKind::Deadline { job: JobId(i) },
            );
        }
        loop {
            let (a, b) = (q.pop(), heap.pop());
            assert_eq!(a, b, "drain order diverged across the shrink");
            if a.is_none() {
                break;
            }
        }
        assert_eq!(
            bucket_count(&q),
            MIN_BUCKETS,
            "re-spread over the collapsed population must shrink the calendar"
        );
    }
}
