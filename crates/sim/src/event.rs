//! Kernel events and the deterministic event queue.

use cloudsched_core::{JobId, Time};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The currently running job (as of epoch `epoch`) finishes its workload.
    Completion {
        /// The job that completes.
        job: JobId,
        /// Dispatch epoch; a mismatch with the kernel's current epoch marks
        /// the event stale (the job was preempted in between).
        epoch: u64,
    },
    /// A scheduler-requested timer (e.g. a zero-conservative-laxity
    /// interrupt) fires for `job`.
    Timer {
        /// The job the timer concerns.
        job: JobId,
        /// Opaque token chosen by the scheduler at registration.
        token: u64,
    },
    /// `job` is released and becomes known to the scheduler.
    Release {
        /// The released job.
        job: JobId,
    },
    /// `job`'s firm deadline passes.
    Deadline {
        /// The job whose deadline expires.
        job: JobId,
    },
    /// The capacity profile enters a new constant-rate segment. Only
    /// scheduled when tracing is live — it exists to stamp
    /// capacity-segment trace events, never to invoke the scheduler.
    CapacityChange,
}

impl EventKind {
    /// Processing priority at equal timestamps. Capacity-segment markers go
    /// first so the trace shows the new rate before any co-timed activity;
    /// completions are handled before deadlines so that a job finishing
    /// *exactly at* its deadline counts as completed ("completing a job
    /// **by** its deadline"), and before releases so queues are in a
    /// settled state when new work arrives.
    fn priority(&self) -> u8 {
        match self {
            EventKind::CapacityChange => 0,
            EventKind::Completion { .. } => 1,
            EventKind::Timer { .. } => 2,
            EventKind::Release { .. } => 3,
            EventKind::Deadline { .. } => 4,
        }
    }
}

/// A scheduled event. Ordering: time, then kind priority, then insertion
/// sequence — fully deterministic.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// When the event fires.
    pub time: Time,
    /// What fires.
    pub kind: EventKind,
    seq: u64,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then(self.kind.priority().cmp(&other.kind.priority()))
            .then(self.seq.cmp(&other.seq))
    }
}

/// Min-heap of events with deterministic tie-breaking.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<std::cmp::Reverse<Event>>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` at `time`.
    pub fn push(&mut self, time: Time, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(std::cmp::Reverse(Event { time, kind, seq }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|r| r.0)
    }

    /// The earliest pending event without removing it — the streaming
    /// service peeks to decide whether the next event precedes the next
    /// arrival.
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek().map(|r| &r.0)
    }

    /// All pending events in pop order plus the live sequence counter — the
    /// snapshot image of the queue. The total `(time, priority, seq)` order
    /// makes the pop sequence a pure function of the event multiset, so
    /// restoring this image reproduces the exact future of the run.
    pub(crate) fn snapshot(&self) -> (Vec<(Time, EventKind, u64)>, u64) {
        let mut events: Vec<Event> = self.heap.iter().map(|r| r.0).collect();
        events.sort();
        (
            events
                .into_iter()
                .map(|e| (e.time, e.kind, e.seq))
                .collect(),
            self.next_seq,
        )
    }

    /// Rebuilds the queue from a snapshot image. Counterpart of
    /// [`EventQueue::snapshot`]; pops after a restore are byte-identical to
    /// pops of the original queue.
    pub(crate) fn restore(&mut self, events: Vec<(Time, EventKind, u64)>, next_seq: u64) {
        self.heap.clear();
        for (time, kind, seq) in events {
            self.heap.push(std::cmp::Reverse(Event { time, kind, seq }));
        }
        self.next_seq = next_seq;
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Empties the queue for reuse, keeping the heap allocation.
    ///
    /// The insertion-sequence counter restarts at 0: seq numbers only
    /// break ties *within* one run, and resetting them is what makes a
    /// recycled queue's tie-breaking byte-identical to a fresh one's.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> Time {
        Time::new(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(3.0), EventKind::Release { job: JobId(0) });
        q.push(t(1.0), EventKind::Release { job: JobId(1) });
        q.push(t(2.0), EventKind::Release { job: JobId(2) });
        let order: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_f64())
            .collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn equal_time_orders_by_kind_priority() {
        let mut q = EventQueue::new();
        q.push(t(5.0), EventKind::Deadline { job: JobId(0) });
        q.push(t(5.0), EventKind::Release { job: JobId(1) });
        q.push(
            t(5.0),
            EventKind::Completion {
                job: JobId(2),
                epoch: 0,
            },
        );
        q.push(
            t(5.0),
            EventKind::Timer {
                job: JobId(3),
                token: 0,
            },
        );
        q.push(t(5.0), EventKind::CapacityChange);
        let kinds: Vec<u8> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::CapacityChange => 0,
                EventKind::Completion { .. } => 1,
                EventKind::Timer { .. } => 2,
                EventKind::Release { .. } => 3,
                EventKind::Deadline { .. } => 4,
            })
            .collect();
        assert_eq!(kinds, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn equal_time_and_kind_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push(t(1.0), EventKind::Release { job: JobId(i) });
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Release { job } => job.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clear_restarts_the_fifo_sequence() {
        let mut q = EventQueue::new();
        q.push(t(1.0), EventKind::Release { job: JobId(9) });
        q.push(t(1.0), EventKind::Release { job: JobId(8) });
        q.clear();
        assert!(q.is_empty());
        // After clear, ties must resolve exactly as in a fresh queue:
        // insertion order, counted from zero again.
        for i in 0..3 {
            q.push(t(2.0), EventKind::Release { job: JobId(i) });
        }
        let ids: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Release { job } => job.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn snapshot_restore_preserves_pop_order_and_fifo_counter() {
        let mut q = EventQueue::new();
        q.push(t(2.0), EventKind::Deadline { job: JobId(0) });
        q.push(t(1.0), EventKind::Release { job: JobId(1) });
        q.push(t(1.0), EventKind::Release { job: JobId(2) });
        q.push(
            t(1.0),
            EventKind::Completion {
                job: JobId(3),
                epoch: 4,
            },
        );
        let (image, next_seq) = q.snapshot();
        assert_eq!(next_seq, 4);
        let mut restored = EventQueue::new();
        restored.restore(image, next_seq);
        // Identical pop sequence...
        let a: Vec<Event> = std::iter::from_fn(|| q.pop()).collect();
        let b: Vec<Event> = std::iter::from_fn(|| restored.pop()).collect();
        assert_eq!(a, b);
        // ...and pushes after the restore continue the original seq stream.
        restored.push(t(9.0), EventKind::CapacityChange);
        let (image, next_seq) = restored.snapshot();
        assert_eq!(next_seq, 5);
        assert_eq!(image[0].2, 4, "new event got the continued seq");
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(t(1.0), EventKind::Release { job: JobId(7) });
        assert_eq!(q.peek().unwrap().time, t(1.0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.peek().is_none());
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(t(0.0), EventKind::Release { job: JobId(0) });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
