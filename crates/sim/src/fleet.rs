//! Multi-machine fleet engine (`DESIGN.md` §16).
//!
//! The paper's model is a single processor with time-varying capacity; the
//! fleet engine shards it into `M` capacitated machines, each running its
//! *own* per-machine kernel — its own calendar [`crate::event::EventQueue`],
//! its own [`SimWorkspace`] arena, its own scheduler instance from the
//! caller's factory, its own capacity trace — behind one deterministic
//! dispatch layer. The result is the workload
//! [`cloudsched_core::par::parallel_map`] was built for: `M` independent
//! event loops with an index-ordered join.
//!
//! Determinism contract: [`run_fleet`]'s output is a pure function of
//! `(jobs, machine traces, dispatcher, scheduler factory)` — in particular
//! it is byte-identical at every `threads` value, because
//!
//! 1. the **dispatch phase is serial**: jobs are walked in release order
//!    (ties by job id) through a single [`Dispatch`] policy, against
//!    conservative per-machine backlog estimates aged by each machine's
//!    *observed past* capacity — everything an online dispatcher may know;
//! 2. **steals resolve in a fixed barrier order**: capacity-recovery points
//!    (instants where a machine's rate steps *up*) are processed in
//!    ascending `(time, machine index)` order, and at each point the
//!    quarantine list is scanned in quarantine (release) order — no part of
//!    the order depends on simulation timing;
//! 3. the **simulation phase is embarrassingly parallel**: per-machine job
//!    subsets and traces are frozen before the fan-out, machines run under
//!    [`parallel_map_with`] (one reusable workspace per worker), and the
//!    join is index-ordered, so aggregate sums fold in machine order.
//!
//! A job whose chosen machine cannot conservatively meet its deadline
//! (negative fit laxity at release) is *quarantined*: it stays owned by
//! that machine but becomes steal-eligible. At every capacity-recovery
//! point the recovering machine scans the quarantine list and claims any
//! job it can now finish in time under its recovered rate (a persistence
//! heuristic — documented, not conservative). Unstolen quarantined jobs
//! still simulate on their owner; every job runs on exactly one machine,
//! so fleet value accounting is a per-machine partition.

use crate::engine::{simulate_into, RunOptions};
use crate::report::RunReport;
use crate::scheduler::Scheduler;
use crate::workspace::SimWorkspace;
use cloudsched_capacity::{CapacityProfile, PiecewiseConstant};
use cloudsched_core::numeric::approx_ge;
use cloudsched_core::par::parallel_map_with;
use cloudsched_core::{Job, JobId, JobSet, Time};
use std::cmp::Ordering;

/// What a dispatch policy may observe when placing one job: the
/// conservative backlog estimate and declared class floor of every
/// machine, all aged to the job's release instant.
///
/// The view is strictly *online*: backlogs drain at each machine's
/// observed past capacity, and feasibility below is computed against the
/// declared `c_lo` — the future of any trace is unreachable from here.
#[derive(Debug)]
pub struct FleetLoads<'a> {
    now: f64,
    backlog: &'a [f64],
    c_lo: &'a [f64],
}

impl FleetLoads<'_> {
    /// Number of machines in the fleet.
    pub fn machines(&self) -> usize {
        self.backlog.len()
    }

    /// The dispatch instant (the job's release time).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Conservative unfinished-workload estimate queued on machine `m`,
    /// in capacity-seconds.
    pub fn backlog(&self, m: usize) -> f64 {
        self.backlog[m]
    }

    /// Declared capacity floor of machine `m`.
    pub fn c_lo(&self, m: usize) -> f64 {
        self.c_lo[m]
    }

    /// Conservative fit laxity of `job` on machine `m`: time to the
    /// deadline minus the worst-case drain time of the machine's backlog
    /// plus this job at the declared floor `c_lo`. Negative means the
    /// machine cannot guarantee the deadline.
    pub fn fit_laxity(&self, m: usize, job: &Job) -> f64 {
        job.deadline.as_f64() - self.now - (self.backlog[m] + job.workload) / self.c_lo[m]
    }
}

/// A deterministic dispatch policy: places each released job on a machine.
///
/// Implementations must be pure functions of their own state and the given
/// view — any hidden clock, map-iteration order, or ambient randomness
/// breaks the fleet's thread-count invariance (the lint scope enforces
/// this for the in-tree policies in `sched::dispatch`).
pub trait Dispatch {
    /// Stable display name (lands in [`FleetReport::dispatcher`]).
    fn name(&self) -> &str;

    /// Chooses the machine for `job`. Must return an index
    /// `< loads.machines()`.
    fn choose(&mut self, job: &Job, loads: &FleetLoads<'_>) -> usize;
}

/// One machine's slice of a fleet run.
#[derive(Debug, Clone)]
pub struct MachineReport {
    /// Machine index.
    pub machine: usize,
    /// Jobs that ended up assigned (and simulated) here.
    pub jobs: usize,
    /// Quarantined jobs this machine claimed from other machines at its
    /// capacity-recovery points.
    pub steals_in: usize,
    /// The per-machine kernel's full report (dense job ids local to this
    /// machine's subset, in fleet-assignment order).
    pub report: RunReport,
}

/// Aggregate + per-machine outcome of one fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Name of the dispatch policy that placed the jobs.
    pub dispatcher: String,
    /// Fleet size `M`.
    pub machines: usize,
    /// Per-machine reports, in machine-index order.
    pub per_machine: Vec<MachineReport>,
    /// Final machine of every job, indexed by job id.
    pub assignment: Vec<usize>,
    /// Jobs whose chosen machine could not conservatively meet their
    /// deadline at release (steal-eligible).
    pub quarantined: usize,
    /// Quarantined jobs claimed by a *different* machine at one of its
    /// capacity-recovery points.
    pub steals: usize,
    /// Quarantined jobs re-claimed by their own machine after its capacity
    /// recovered.
    pub readmitted: usize,
    /// Quarantined jobs no recovery point could rescue; they simulate on
    /// their owner anyway (and mostly expire there).
    pub unreclaimed: usize,
    /// Total value earned across the fleet (per-machine values summed in
    /// machine-index order).
    pub value: f64,
    /// `value / total arrived value`.
    pub value_fraction: f64,
    /// Completed jobs across the fleet.
    pub completed: usize,
    /// Deadline misses across the fleet.
    pub missed: usize,
    /// Preemptions across the fleet.
    pub preemptions: usize,
    /// Dispatches (context switches) across the fleet.
    pub dispatches: usize,
    /// Kernel events processed across the fleet.
    pub events: usize,
}

/// One entry of the serial dispatch timeline, processed in ascending
/// `(time, kind, index)` order. At equal times a recovery point resolves
/// *before* a release — the barrier order that makes steals deterministic:
/// capacity recovered at `t` is visible to a job released at `t`.
enum Tick<'a> {
    /// Machine `m`'s rate stepped up at this instant.
    Recovery { machine: usize },
    /// A job enters the fleet.
    Release { job: &'a Job },
}

/// Runs one fleet: serial deterministic dispatch, then `M` per-machine
/// kernels fanned out over up to `threads` workers with an index-ordered
/// join. `make_scheduler(m)` is called once per machine (possibly from a
/// worker thread) and must hand out independent instances.
///
/// # Panics
/// If `machines` is empty, or the dispatcher returns an out-of-range
/// machine index.
pub fn run_fleet(
    jobs: &JobSet,
    machines: &[PiecewiseConstant],
    dispatch: &mut dyn Dispatch,
    make_scheduler: &(dyn Fn(usize) -> Box<dyn Scheduler> + Sync),
    options: RunOptions,
    threads: usize,
) -> FleetReport {
    assert!(!machines.is_empty(), "fleet requires at least one machine");
    let m_count = machines.len();
    let slice = jobs.as_slice();
    let n = slice.len();

    // --- dispatch phase (serial) -----------------------------------------
    // Timeline: releases in (release, id) order merged with capacity-
    // recovery points in (time, machine) order; recoveries win ties.
    let mut release_order: Vec<usize> = (0..n).collect();
    release_order.sort_by(|&a, &b| {
        slice[a]
            .release
            .as_f64()
            .total_cmp(&slice[b].release.as_f64())
            .then(slice[a].id.cmp(&slice[b].id))
    });
    let mut recoveries: Vec<(f64, usize)> = Vec::new();
    for (m, cap) in machines.iter().enumerate() {
        let mut prev = f64::INFINITY;
        for (i, seg) in cap.segments().enumerate() {
            if i > 0 && seg.rate.total_cmp(&prev) == Ordering::Greater {
                recoveries.push((seg.start.as_f64(), m));
            }
            prev = seg.rate;
        }
    }
    recoveries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let c_lo: Vec<f64> = machines.iter().map(|c| c.bounds().0).collect();
    let mut backlog = vec![0.0f64; m_count];
    let mut backlog_asof = vec![0.0f64; m_count];
    let mut assignment = vec![usize::MAX; n];
    // Quarantine list in quarantine (release) order; `rescued` marks
    // entries a recovery point already claimed.
    let mut quarantine: Vec<usize> = Vec::new();
    let mut rescued: Vec<bool> = Vec::new();
    let mut steals_in = vec![0usize; m_count];
    let mut steals = 0usize;
    let mut readmitted = 0usize;

    let age_all = |backlog: &mut [f64], asof: &mut [f64], now: f64| {
        for m in 0..m_count {
            let drained = machines[m].integrate(Time::new(asof[m]), Time::new(now));
            backlog[m] = (backlog[m] - drained).max(0.0);
            asof[m] = now;
        }
    };

    let mut rel_iter = release_order.iter().peekable();
    let mut rec_iter = recoveries.iter().peekable();
    loop {
        // Pick the next tick; recoveries go first on equal times.
        let tick: (f64, Tick<'_>) = match (rel_iter.peek(), rec_iter.peek()) {
            (None, None) => break,
            (Some(&&j), None) => {
                rel_iter.next();
                (slice[j].release.as_f64(), Tick::Release { job: &slice[j] })
            }
            (None, Some(&&(t, m))) => {
                rec_iter.next();
                (t, Tick::Recovery { machine: m })
            }
            (Some(&&j), Some(&&(t, m))) => {
                let r = slice[j].release.as_f64();
                if t.total_cmp(&r) != Ordering::Greater {
                    rec_iter.next();
                    (t, Tick::Recovery { machine: m })
                } else {
                    rel_iter.next();
                    (r, Tick::Release { job: &slice[j] })
                }
            }
        };
        let now = tick.0;
        age_all(&mut backlog, &mut backlog_asof, now);
        match tick.1 {
            Tick::Release { job } => {
                let loads = FleetLoads {
                    now,
                    backlog: &backlog,
                    c_lo: &c_lo,
                };
                let choice = dispatch.choose(job, &loads);
                assert!(
                    choice < m_count,
                    "dispatcher `{}` chose machine {choice} of a {m_count}-machine fleet",
                    dispatch.name()
                );
                let infeasible = !approx_ge(loads.fit_laxity(choice, job), 0.0);
                let pos = position_of(slice, job.id);
                assignment[pos] = choice;
                backlog[choice] += job.workload;
                if infeasible {
                    quarantine.push(pos);
                    rescued.push(false);
                }
            }
            Tick::Recovery { machine } => {
                let rate_now = machines[machine].rate_at(Time::new(now));
                for (qi, &pos) in quarantine.iter().enumerate() {
                    if rescued[qi] {
                        continue;
                    }
                    let job = &slice[pos];
                    // Claim iff the recovered rate, persisting, would
                    // finish the machine's backlog plus this job in time.
                    let steal_laxity =
                        job.deadline.as_f64() - now - (backlog[machine] + job.workload) / rate_now;
                    if approx_ge(steal_laxity, 0.0) {
                        let owner = assignment[pos];
                        if owner != machine {
                            backlog[owner] = (backlog[owner] - job.workload).max(0.0);
                            backlog[machine] += job.workload;
                            assignment[pos] = machine;
                            steals += 1;
                            steals_in[machine] += 1;
                        } else {
                            readmitted += 1;
                        }
                        rescued[qi] = true;
                    }
                }
            }
        }
    }
    let unreclaimed = rescued.iter().filter(|r| !**r).count();

    // --- simulation phase (parallel fan-out, index-ordered join) ----------
    // Freeze per-machine subsets (job-id order within a machine) with dense
    // re-ids, as the per-machine kernel requires.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); m_count];
    for (pos, &m) in assignment.iter().enumerate() {
        members[m].push(pos);
    }
    let subsets: Vec<JobSet> = members
        .iter()
        .map(|idxs| {
            let subset: Vec<Job> = idxs
                .iter()
                .enumerate()
                .map(|(new_id, &pos)| {
                    let j = &slice[pos];
                    Job {
                        id: JobId(new_id as u64),
                        ..j.clone()
                    }
                })
                .collect();
            JobSet::new(subset).expect("invariant: re-indexing preserves per-job validity")
        })
        .collect();

    let reports: Vec<RunReport> =
        parallel_map_with(m_count, threads, SimWorkspace::new, |ws, m| {
            let mut scheduler = make_scheduler(m);
            simulate_into(ws, &subsets[m], &machines[m], scheduler.as_mut(), options)
        });

    // --- accounting (serial, machine-index order) -------------------------
    let mut value = 0.0f64;
    let (mut completed, mut missed) = (0usize, 0usize);
    let (mut preemptions, mut dispatches, mut events) = (0usize, 0usize, 0usize);
    let per_machine: Vec<MachineReport> = reports
        .into_iter()
        .enumerate()
        .map(|(m, report)| {
            value += report.value;
            completed += report.completed;
            missed += report.missed;
            preemptions += report.preemptions;
            dispatches += report.dispatches;
            events += report.events;
            MachineReport {
                machine: m,
                jobs: subsets[m].len(),
                steals_in: steals_in[m],
                report,
            }
        })
        .collect();
    let total = jobs.total_value();
    // lint: allow(L001) — exact zero guard before division
    let value_fraction = if total == 0.0 { 0.0 } else { value / total };

    FleetReport {
        dispatcher: dispatch.name().to_string(),
        machines: m_count,
        per_machine,
        assignment,
        quarantined: quarantine.len(),
        steals,
        readmitted,
        unreclaimed,
        value,
        value_fraction,
        completed,
        missed,
        preemptions,
        dispatches,
        events,
    }
}

/// Index of `id` in the id-sorted job slice. Job sets keep dense ids in
/// practice, but the engine only assumes sortedness.
fn position_of(slice: &[Job], id: JobId) -> usize {
    slice
        .binary_search_by(|j| j.id.cmp(&id))
        .expect("invariant: every dispatched job comes from the fleet's job set")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_core::JobId;

    /// Minimal deterministic test policy: fixed rotation.
    struct TestRoundRobin {
        next: usize,
    }
    impl Dispatch for TestRoundRobin {
        fn name(&self) -> &str {
            "test-rr"
        }
        fn choose(&mut self, _job: &Job, loads: &FleetLoads<'_>) -> usize {
            let m = self.next % loads.machines();
            self.next += 1;
            m
        }
    }

    /// Greedy best-fit: the machine with the largest conservative laxity.
    struct TestBestFit;
    impl Dispatch for TestBestFit {
        fn name(&self) -> &str {
            "test-best-fit"
        }
        fn choose(&mut self, job: &Job, loads: &FleetLoads<'_>) -> usize {
            let mut best = 0usize;
            for m in 1..loads.machines() {
                let better = loads
                    .fit_laxity(m, job)
                    .total_cmp(&loads.fit_laxity(best, job))
                    == Ordering::Greater;
                if better {
                    best = m;
                }
            }
            best
        }
    }

    /// FIFO test scheduler (mirrors the engine's own test scheduler).
    struct TestFifo {
        ready: Vec<JobId>,
    }
    impl TestFifo {
        fn next_decision(&mut self, ctx: &mut crate::SimContext<'_>) -> crate::Decision {
            if ctx.running().is_some() {
                return crate::Decision::Continue;
            }
            match self.ready.first().copied() {
                Some(j) => {
                    self.ready.remove(0);
                    crate::Decision::Run(j)
                }
                None => crate::Decision::Idle,
            }
        }
    }
    impl Scheduler for TestFifo {
        fn name(&self) -> String {
            "test-fifo".into()
        }
        fn on_release(&mut self, ctx: &mut crate::SimContext<'_>, job: JobId) -> crate::Decision {
            self.ready.push(job);
            self.next_decision(ctx)
        }
        fn on_completion(
            &mut self,
            ctx: &mut crate::SimContext<'_>,
            _job: JobId,
        ) -> crate::Decision {
            self.next_decision(ctx)
        }
        fn on_deadline_miss(
            &mut self,
            ctx: &mut crate::SimContext<'_>,
            job: JobId,
        ) -> crate::Decision {
            self.ready.retain(|&j| j != job);
            self.next_decision(ctx)
        }
    }

    fn factory() -> &'static (dyn Fn(usize) -> Box<dyn Scheduler> + Sync) {
        &|_m| Box::new(TestFifo { ready: Vec::new() })
    }

    fn jobs(tuples: &[(f64, f64, f64, f64)]) -> JobSet {
        JobSet::from_tuples(tuples).expect("invariant: test tuples are valid jobs")
    }

    fn flat(rate: f64) -> PiecewiseConstant {
        PiecewiseConstant::constant(rate).expect("invariant: positive test rate")
    }

    /// Rate 1 until `t`, then rate `hi` forever — one recovery point at `t`.
    fn step_up(t: f64, hi: f64) -> PiecewiseConstant {
        PiecewiseConstant::from_durations(&[(t, 1.0), (1.0, hi)])
            .expect("invariant: valid test profile")
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn empty_fleet_panics() {
        let js = jobs(&[(0.0, 1.0, 1.0, 1.0)]);
        let mut d = TestRoundRobin { next: 0 };
        run_fleet(&js, &[], &mut d, factory(), RunOptions::lean(), 1);
    }

    #[test]
    fn round_robin_cycles_and_every_job_is_assigned_once() {
        // (release, deadline, workload, value) tuples, generous deadlines.
        let js = jobs(&[
            (0.0, 10.0, 1.0, 1.0),
            (0.1, 10.0, 1.0, 1.0),
            (0.2, 10.0, 1.0, 1.0),
            (0.3, 10.0, 1.0, 1.0),
            (0.4, 10.0, 1.0, 1.0),
            (0.5, 10.0, 1.0, 1.0),
        ]);
        let machines = vec![flat(2.0), flat(2.0), flat(2.0)];
        let mut d = TestRoundRobin { next: 0 };
        let report = run_fleet(&js, &machines, &mut d, factory(), RunOptions::lean(), 1);
        assert_eq!(report.assignment, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(report.machines, 3);
        let per: Vec<usize> = report.per_machine.iter().map(|m| m.jobs).collect();
        assert_eq!(per, vec![2, 2, 2]);
        assert_eq!(report.completed, 6);
        assert!(approx_ge(report.value_fraction, 1.0));
    }

    #[test]
    fn fleet_value_is_the_sum_of_machine_values() {
        let js = jobs(&[
            (0.0, 2.0, 1.0, 3.0),
            (0.0, 2.0, 1.0, 5.0),
            (0.5, 4.0, 2.0, 7.0),
            (1.0, 1.5, 0.4, 2.0),
        ]);
        let machines = vec![flat(1.0), flat(1.0)];
        let mut d = TestBestFit;
        let report = run_fleet(&js, &machines, &mut d, factory(), RunOptions::lean(), 1);
        let sum: f64 = report.per_machine.iter().map(|m| m.report.value).sum();
        assert_eq!(report.value.to_bits(), sum.to_bits(), "exact partition");
        let completed: usize = report.per_machine.iter().map(|m| m.report.completed).sum();
        assert_eq!(report.completed, completed);
    }

    #[test]
    fn infeasible_placement_quarantines_and_recovery_steals() {
        // Machine 0 is busy (job 0 fills it); machine 1 is slow now but
        // steps up to rate 10 at t = 1 — job 1's only hope. The dispatcher
        // is forced to place job 1 on the saturated machine 0, where its
        // conservative laxity is negative -> quarantine; machine 1's
        // recovery point at t = 1 claims it (a cross-machine steal).
        let js = jobs(&[
            (0.0, 6.0, 5.0, 1.0), // pins machine 0 until t = 5 (feasible)
            (0.0, 2.5, 4.0, 9.0), // infeasible behind job 0 at release
        ]);
        struct PinToZero;
        impl Dispatch for PinToZero {
            fn name(&self) -> &str {
                "pin-0"
            }
            fn choose(&mut self, _job: &Job, _loads: &FleetLoads<'_>) -> usize {
                0
            }
        }
        let machines = vec![flat(1.0), step_up(1.0, 10.0)];
        let mut d = PinToZero;
        let report = run_fleet(&js, &machines, &mut d, factory(), RunOptions::lean(), 1);
        assert_eq!(
            report.quarantined, 1,
            "only job 1's placement is infeasible"
        );
        assert_eq!(report.steals, 1, "machine 1's recovery claims job 1");
        assert_eq!(
            report.assignment[1], 1,
            "job 1 moved to the recovering machine"
        );
        assert_eq!(report.per_machine[1].steals_in, 1);
        // Stolen onto machine 1 (rate 1, then 10 from t = 1): job 1's 4
        // units finish at t = 1.3 < its deadline 2.5.
        assert_eq!(report.per_machine[1].report.completed, 1);
        assert_eq!(report.unreclaimed, 0);
    }

    #[test]
    fn output_is_identical_at_every_thread_count() {
        let tuples: Vec<(f64, f64, f64, f64)> = (0..40)
            .map(|i| {
                let r = i as f64 * 0.25;
                (
                    r,
                    r + 1.5 + (i % 3) as f64,
                    0.8 + (i % 5) as f64 * 0.3,
                    1.0 + (i % 7) as f64,
                )
            })
            .collect();
        let js = jobs(&tuples);
        let machines = vec![step_up(2.0, 8.0), flat(1.0), step_up(4.0, 6.0), flat(3.0)];
        let reference = {
            let mut d = TestBestFit;
            run_fleet(&js, &machines, &mut d, factory(), RunOptions::lean(), 1)
        };
        for threads in [2, 3, 8] {
            let mut d = TestBestFit;
            let got = run_fleet(
                &js,
                &machines,
                &mut d,
                factory(),
                RunOptions::lean(),
                threads,
            );
            assert_eq!(
                format!("{got:?}"),
                format!("{reference:?}"),
                "fleet output diverged at threads={threads}"
            );
        }
    }
}
