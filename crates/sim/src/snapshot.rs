//! Snapshot codec for the streaming admission service.
//!
//! A snapshot is a byte-deterministic, ASCII-only image of everything the
//! kernel needs to resume a streaming run at a *quiescent point* (between
//! arrivals, with the scratch buffers drained): the scalar
//! [`KernelState`], the per-job workspace tables, the pending event queue
//! (including its FIFO tie-break counter) and the scheduler's own opaque
//! state blob. Jobs, admission decisions and the admission book are *not*
//! in the image — recovery rebuilds them by folding the journal's service
//! records, which the WAL discipline guarantees are durable up to the
//! snapshot.
//!
//! Format: sections joined by `;` — a character that never occurs inside
//! any section (floats are hex bit patterns, the scheduler blob's grammar
//! uses only `|`, `,`, `:` and alphanumerics). The scheduler blob is the
//! final section so it is recovered with a bounded `splitn`, keeping the
//! codec robust to future scheduler-blob grammars. All `f64` values are
//! encoded as the 16-hex-digit big-endian bit pattern (`{:016x}` of
//! `to_bits`), so restore is bit-exact and replay after restore is
//! byte-identical to an uninterrupted run.
//!
//! Every malformed input maps to [`CoreError::CorruptJournal`] with the
//! journal line carrying the snapshot — never a panic: journals cross a
//! crash boundary and must be treated as untrusted input.

use crate::engine::KernelState;
use crate::event::EventKind;
use crate::workspace::{flag as wsflag, SimWorkspace};
use cloudsched_core::{CoreError, JobId, JobOutcome, Time};

/// Magic tag of snapshot format v1.
const MAGIC: &str = "csnap1";
/// Number of `;`-separated sections (scheduler blob last).
const SECTIONS: usize = 9;
/// Scalar fields in the kernel-state section.
const KERNEL_FIELDS: usize = 17;

fn hx(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// A decoded snapshot, ready to be applied onto a workspace.
#[derive(Debug, Clone)]
pub(crate) struct SnapshotImage {
    st: KernelState,
    queue: Vec<(Time, EventKind, u64)>,
    next_seq: u64,
    remaining: Vec<f64>,
    flags: [Vec<bool>; 5],
    quarantine_pending: Vec<usize>,
    outcome: Vec<JobOutcome>,
    /// The scheduler's own state blob, to hand to
    /// [`crate::Scheduler::restore_state`].
    pub(crate) sched_blob: String,
}

impl SnapshotImage {
    /// Number of job slots in the image.
    pub(crate) fn jobs(&self) -> usize {
        self.remaining.len()
    }

    /// Writes the image into `ws` (replacing its contents) and returns the
    /// kernel state to resume from.
    pub(crate) fn apply(self, ws: &mut SimWorkspace) -> KernelState {
        ws.begin(0);
        ws.remaining.extend_from_slice(&self.remaining);
        let [rel, res, sta, aba, qua] = &self.flags;
        ws.load_flag_columns([rel, res, sta, aba, qua]);
        for i in self.quarantine_pending {
            ws.quarantine_pending.insert(i);
        }
        ws.outcome.reset(self.remaining.len());
        for (i, o) in self.outcome.iter().enumerate() {
            ws.outcome.set(JobId(i as u64), *o);
        }
        ws.queue.restore(self.queue, self.next_seq);
        self.st
    }
}

/// Serialises a quiescent streaming kernel into the snapshot blob.
///
/// The caller (the service) guarantees quiescence: lean options (no
/// schedule / trajectory recording), no pending abort, scratch buffers
/// drained.
pub(crate) fn encode(st: &KernelState, ws: &SimWorkspace, sched_blob: &str) -> String {
    debug_assert!(
        st.schedule.is_none() && st.trajectory.is_none() && st.aborted.is_none(),
        "snapshots are only taken at quiescent points of lean streaming runs"
    );
    debug_assert!(
        !sched_blob.contains(';'),
        "scheduler blobs must stay out of the section separator's alphabet"
    );
    let kernel = [
        hx(st.now.as_f64()),
        st.running.map_or("-".into(), |j| j.0.to_string()),
        st.epoch.to_string(),
        hx(st.slice_start.as_f64()),
        hx(st.value),
        st.preemptions.to_string(),
        st.dispatches.to_string(),
        st.events_processed.to_string(),
        st.expired.to_string(),
        hx(st.expired_value),
        st.abandoned_count.to_string(),
        hx(st.abandoned_value),
        st.capacity_segment.to_string(),
        hx(st.horizon.as_f64()),
        if st.capacity_armed { "1" } else { "0" }.to_string(),
        hx(st.c_lo),
        hx(st.c_hi),
    ]
    .join(",");

    let (events, next_seq) = ws.queue.snapshot();
    let queue = events
        .iter()
        .map(|(t, kind, seq)| {
            let (code, a, b) = match *kind {
                EventKind::Completion { job, epoch } => ('C', job.0, epoch),
                EventKind::Timer { job, token } => ('T', job.0, token),
                EventKind::Release { job } => ('R', job.0, 0),
                EventKind::Deadline { job } => ('D', job.0, 0),
                EventKind::CapacityChange => ('X', 0, 0),
            };
            format!("{}:{code}:{a}:{b}:{seq}", hx(t.as_f64()))
        })
        .collect::<Vec<_>>()
        .join(",");

    let remaining = ws
        .remaining
        .iter()
        .map(|r| hx(*r))
        .collect::<Vec<_>>()
        .join(",");

    // The packed flag byte unpacks into the same five bit-string columns
    // format v1 has always used, so the blob bytes are unchanged.
    let bits = |mask: u8| -> String {
        ws.flag_column(mask)
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect()
    };
    let flags = [
        bits(wsflag::RELEASED),
        bits(wsflag::RESOLVED),
        bits(wsflag::STARTED),
        bits(wsflag::ABANDONED),
        bits(wsflag::QUARANTINED),
    ]
    .join(",");

    let pending = ws
        .quarantine_pending
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(":");

    let outcome = (0..ws.remaining.len())
        .map(|i| match ws.outcome.get(JobId(i as u64)) {
            JobOutcome::NotReleased => "N".to_string(),
            JobOutcome::Completed { at } => format!("C{}", hx(at.as_f64())),
            JobOutcome::Missed { remaining_workload } => format!("M{}", hx(remaining_workload)),
        })
        .collect::<Vec<_>>()
        .join(",");

    [
        MAGIC.to_string(),
        kernel,
        queue,
        next_seq.to_string(),
        remaining,
        flags,
        pending,
        outcome,
        sched_blob.to_string(),
    ]
    .join(";")
}

fn corrupt(line: usize, reason: impl Into<String>) -> CoreError {
    CoreError::CorruptJournal {
        line,
        reason: reason.into(),
    }
}

fn parse_f64(s: &str, what: &str, line: usize) -> Result<f64, CoreError> {
    let bits = u64::from_str_radix(s, 16)
        .map_err(|_| corrupt(line, format!("snapshot {what} is not a 16-hex bit pattern")))?;
    if s.len() != 16 {
        return Err(corrupt(
            line,
            format!("snapshot {what} must be 16 hex digits"),
        ));
    }
    let v = f64::from_bits(bits);
    if v.is_nan() {
        return Err(corrupt(line, format!("snapshot {what} decodes to NaN")));
    }
    Ok(v)
}

fn parse_time(s: &str, what: &str, line: usize) -> Result<Time, CoreError> {
    let v = parse_f64(s, what, line)?;
    // lint: allow(L001) — exact sentinel check, -inf is Time::NEG_INFINITY's bit pattern
    if v == f64::NEG_INFINITY {
        return Err(corrupt(line, format!("snapshot {what} is -infinity")));
    }
    Ok(Time::new(v))
}

fn parse_uint<T: std::str::FromStr>(s: &str, what: &str, line: usize) -> Result<T, CoreError> {
    s.parse::<T>()
        .map_err(|_| corrupt(line, format!("snapshot {what} is not an unsigned integer")))
}

/// Decodes a snapshot blob; `line` is the 1-based journal line of the
/// snapshot record, used to contextualise [`CoreError::CorruptJournal`].
pub(crate) fn decode(blob: &str, line: usize) -> Result<SnapshotImage, CoreError> {
    let sections: Vec<&str> = blob.splitn(SECTIONS, ';').collect();
    if sections.len() != SECTIONS {
        return Err(corrupt(
            line,
            format!(
                "snapshot has {} sections, expected {SECTIONS}",
                sections.len()
            ),
        ));
    }
    if sections[0] != MAGIC {
        return Err(corrupt(
            line,
            format!("snapshot magic is {:?}, expected {MAGIC:?}", sections[0]),
        ));
    }

    let k: Vec<&str> = sections[1].split(',').collect();
    if k.len() != KERNEL_FIELDS {
        return Err(corrupt(
            line,
            format!(
                "snapshot kernel section has {} fields, expected {KERNEL_FIELDS}",
                k.len()
            ),
        ));
    }
    let running = if k[1] == "-" {
        None
    } else {
        Some(JobId(parse_uint::<u64>(k[1], "running job id", line)?))
    };
    let capacity_armed = match k[14] {
        "0" => false,
        "1" => true,
        other => {
            return Err(corrupt(
                line,
                format!("snapshot capacity_armed is {other:?}, expected 0 or 1"),
            ))
        }
    };
    let st = KernelState {
        now: parse_time(k[0], "now", line)?,
        running,
        epoch: parse_uint(k[2], "epoch", line)?,
        slice_start: parse_time(k[3], "slice_start", line)?,
        value: parse_f64(k[4], "value", line)?,
        preemptions: parse_uint(k[5], "preemptions", line)?,
        dispatches: parse_uint(k[6], "dispatches", line)?,
        events_processed: parse_uint(k[7], "events_processed", line)?,
        expired: parse_uint(k[8], "expired", line)?,
        expired_value: parse_f64(k[9], "expired_value", line)?,
        abandoned_count: parse_uint(k[10], "abandoned_count", line)?,
        abandoned_value: parse_f64(k[11], "abandoned_value", line)?,
        capacity_segment: parse_uint(k[12], "capacity_segment", line)?,
        horizon: parse_time(k[13], "horizon", line)?,
        capacity_armed,
        c_lo: parse_f64(k[15], "c_lo", line)?,
        c_hi: parse_f64(k[16], "c_hi", line)?,
        schedule: None,
        trajectory: None,
        aborted: None,
    };

    let mut queue = Vec::new();
    if !sections[2].is_empty() {
        for item in sections[2].split(',') {
            let f: Vec<&str> = item.split(':').collect();
            if f.len() != 5 {
                return Err(corrupt(
                    line,
                    format!(
                        "snapshot queue item {item:?} has {} fields, expected 5",
                        f.len()
                    ),
                ));
            }
            let t = parse_time(f[0], "event time", line)?;
            let a: u64 = parse_uint(f[2], "event field", line)?;
            let b: u64 = parse_uint(f[3], "event field", line)?;
            let seq: u64 = parse_uint(f[4], "event seq", line)?;
            let kind = match f[1] {
                "C" => EventKind::Completion {
                    job: JobId(a),
                    epoch: b,
                },
                "T" => EventKind::Timer {
                    job: JobId(a),
                    token: b,
                },
                "R" => EventKind::Release { job: JobId(a) },
                "D" => EventKind::Deadline { job: JobId(a) },
                "X" => EventKind::CapacityChange,
                other => {
                    return Err(corrupt(
                        line,
                        format!("snapshot queue item has unknown kind code {other:?}"),
                    ))
                }
            };
            queue.push((t, kind, seq));
        }
    }
    let next_seq: u64 = parse_uint(sections[3], "next_seq", line)?;

    let mut remaining = Vec::new();
    if !sections[4].is_empty() {
        for r in sections[4].split(',') {
            remaining.push(parse_f64(r, "remaining workload", line)?);
        }
    }
    let n = remaining.len();

    let flag_strs: Vec<&str> = sections[5].split(',').collect();
    if flag_strs.len() != 5 {
        return Err(corrupt(
            line,
            format!("snapshot has {} flag tables, expected 5", flag_strs.len()),
        ));
    }
    let mut flags: [Vec<bool>; 5] = Default::default();
    for (out, s) in flags.iter_mut().zip(&flag_strs) {
        if s.len() != n {
            return Err(corrupt(
                line,
                format!("snapshot flag table has {} entries, expected {n}", s.len()),
            ));
        }
        for c in s.chars() {
            out.push(match c {
                '0' => false,
                '1' => true,
                other => {
                    return Err(corrupt(
                        line,
                        format!("snapshot flag bit is {other:?}, expected 0 or 1"),
                    ))
                }
            });
        }
    }

    let mut quarantine_pending = Vec::new();
    if !sections[6].is_empty() {
        for s in sections[6].split(':') {
            let i: usize = parse_uint(s, "quarantine index", line)?;
            if i >= n {
                return Err(corrupt(
                    line,
                    format!("snapshot quarantine index {i} out of range (jobs: {n})"),
                ));
            }
            quarantine_pending.push(i);
        }
    }

    let mut outcome = Vec::new();
    if !sections[7].is_empty() {
        for s in sections[7].split(',') {
            outcome.push(match s.as_bytes().first() {
                Some(b'N') if s.len() == 1 => JobOutcome::NotReleased,
                Some(b'C') => JobOutcome::Completed {
                    at: parse_time(&s[1..], "completion time", line)?,
                },
                Some(b'M') => JobOutcome::Missed {
                    remaining_workload: parse_f64(&s[1..], "missed workload", line)?,
                },
                _ => {
                    return Err(corrupt(
                        line,
                        format!("snapshot outcome entry {s:?} is not N/C<bits>/M<bits>"),
                    ))
                }
            });
        }
    }
    if outcome.len() != n {
        return Err(corrupt(
            line,
            format!(
                "snapshot outcome table has {} entries, expected {n}",
                outcome.len()
            ),
        ));
    }
    if let Some(j) = st.running {
        if j.index() >= n {
            return Err(corrupt(
                line,
                format!("snapshot running job {} out of range (jobs: {n})", j.0),
            ));
        }
    }

    Ok(SnapshotImage {
        st,
        queue,
        next_seq,
        remaining,
        flags,
        quarantine_pending,
        outcome,
        sched_blob: sections[8].to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> (KernelState, SimWorkspace) {
        let mut ws = SimWorkspace::new();
        ws.begin(0);
        for (i, p) in [3.0, 2.5, 4.0].iter().enumerate() {
            ws.grow_one(*p);
            ws.queue.push(
                Time::new(i as f64 + 1.0),
                EventKind::Deadline {
                    job: JobId(i as u64),
                },
            );
        }
        ws.queue.push(
            Time::new(1.5),
            EventKind::Completion {
                job: JobId(1),
                epoch: 7,
            },
        );
        ws.queue.push(
            Time::new(1.5),
            EventKind::Timer {
                job: JobId(0),
                token: 42,
            },
        );
        ws.queue.push(Time::new(2.0), EventKind::CapacityChange);
        ws.set_flag(0, wsflag::RELEASED, true);
        ws.set_flag(1, wsflag::RELEASED, true);
        ws.set_flag(0, wsflag::RESOLVED, true);
        ws.set_flag(1, wsflag::STARTED, true);
        ws.set_flag(0, wsflag::ABANDONED, true);
        ws.set_flag(2, wsflag::QUARANTINED, true);
        ws.quarantine_pending.insert(2);
        ws.outcome.set(
            JobId(0),
            JobOutcome::Missed {
                remaining_workload: 1.25,
            },
        );
        let mut st = crate::engine::KernelState::streaming(crate::RunOptions::lean(), 1.0, 2.0);
        st.now = Time::new(1.25);
        st.running = Some(JobId(1));
        st.epoch = 7;
        st.slice_start = Time::new(1.0);
        st.value = 12.5;
        st.preemptions = 3;
        st.dispatches = 5;
        st.events_processed = 11;
        st.expired = 1;
        st.expired_value = 4.0;
        st.capacity_segment = 1;
        st.horizon = Time::new(9.0);
        st.capacity_armed = true;
        (st, ws)
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let (st, ws) = populated();
        let blob = encode(&st, &ws, "dover1|I|3ff0000000000000|||");
        let image = decode(&blob, 1).expect("fresh blob must decode");
        assert_eq!(image.jobs(), 3);
        assert_eq!(image.sched_blob, "dover1|I|3ff0000000000000|||");
        let mut ws2 = SimWorkspace::new();
        let st2 = image.apply(&mut ws2);
        let blob2 = encode(&st2, &ws2, "dover1|I|3ff0000000000000|||");
        assert_eq!(blob, blob2, "encode∘apply∘decode must be the identity");
        // Spot-check the queue restore preserved pop order and FIFO counter.
        let (q1, s1) = ws.queue.snapshot();
        let (q2, s2) = ws2.queue.snapshot();
        assert_eq!(q1, q2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn empty_run_round_trips() {
        let mut ws = SimWorkspace::new();
        ws.begin(0);
        let st = crate::engine::KernelState::streaming(crate::RunOptions::lean(), 2.0, 2.0);
        let blob = encode(&st, &ws, "");
        let mut ws2 = SimWorkspace::new();
        let st2 = decode(&blob, 3).unwrap().apply(&mut ws2);
        assert_eq!(encode(&st2, &ws2, ""), blob);
        assert_eq!(st2.now, Time::ZERO);
        assert!(ws2.queue.is_empty());
    }

    #[test]
    fn corrupt_blobs_yield_typed_errors() {
        let (st, ws) = populated();
        let blob = encode(&st, &ws, "sched");
        let cases = [
            "garbage".to_string(),
            blob.replacen("csnap1", "csnap9", 1),
            blob.replacen(":D:", ":Z:", 1), // unknown event kind code
            {
                // truncate the kernel section to 3 fields
                let mut s: Vec<&str> = blob.split(';').collect();
                let short = s[1].split(',').take(3).collect::<Vec<_>>().join(",");
                s[1] = &short;
                s.join(";")
            },
        ];
        for bad in &cases {
            match decode(bad, 7) {
                Err(CoreError::CorruptJournal { line, .. }) => assert_eq!(line, 7),
                other => panic!("expected CorruptJournal for {bad:?}, got {other:?}"),
            }
        }
        // Flipping one hex digit of a float still decodes (bits are bits) —
        // but a NaN pattern must be rejected.
        let nan = blob.replacen(
            &format!("{:016x}", st.value.to_bits()),
            "7ff8000000000001",
            1,
        );
        assert!(matches!(
            decode(&nan, 2),
            Err(CoreError::CorruptJournal { line: 2, .. })
        ));
    }
}
