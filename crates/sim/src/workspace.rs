//! Reusable per-run buffer arena for Monte-Carlo sweeps.
//!
//! A single simulation allocates roughly a dozen buffers (the event
//! calendar, per-job workload/flag tables, the outcome table, scheduler
//! scratch) and throws them away when the run ends. A Table I campaign does
//! this 28,000 times over instances of nearly identical size — the paper's
//! §IV grid is 7 λ-values × 5 algorithms × 800 runs — so the sweep layer
//! keeps one [`SimWorkspace`] per worker thread and routes every run
//! through [`crate::simulate_into`]. After the first run warms the buffers
//! to the campaign's high-water size, subsequent runs perform **zero heap
//! allocation** in the kernel: every buffer is cleared and reused in place.
//!
//! Per-job state is laid out structure-of-arrays, indexed by `JobId`: the
//! remaining-workload table is one dense `Vec<f64>`, and the five
//! lifecycle flags (released, resolved, started, abandoned, quarantined)
//! are packed into a single byte per job instead of five parallel
//! `Vec<bool>`s — one cache line covers 64 jobs' entire lifecycle state,
//! and the kernel's per-event flag checks touch exactly one table.
//!
//! Reuse never changes results: [`SimWorkspace::begin`] resets all run
//! state, including the event queue's FIFO tie-break counter, so a recycled
//! workspace is observationally identical to a fresh one — decisions,
//! traces and [`crate::RunReport`]s stay byte-for-byte the same. The
//! batch-runner property tests in `tests/sweep.rs` pin this.

use crate::context::TimerRequest;
use crate::event::EventQueue;
use cloudsched_core::{JobId, Outcome};
use std::collections::BTreeSet;

/// Bit masks of the packed per-job lifecycle byte. Kept `pub(crate)` so
/// the snapshot codec can unpack columns without five separate tables.
pub(crate) mod flag {
    /// Release event processed; the scheduler knows the job.
    pub const RELEASED: u8 = 1 << 0;
    /// Lifecycle settled: completed, expired or abandoned.
    pub const RESOLVED: u8 = 1 << 1;
    /// Dispatched at least once (distinguishes Start from Resume traces).
    pub const STARTED: u8 = 1 << 2;
    /// Scheduler surrendered the job before its deadline.
    pub const ABANDONED: u8 = 1 << 3;
    /// Hidden from the scheduler by the degradation layer.
    pub const QUARANTINED: u8 = 1 << 4;
}

/// Arena of every per-run buffer the simulation kernel needs.
///
/// Create one (per worker thread), then pass it to [`crate::simulate_into`]
/// for each run of a sweep. Return each run's [`crate::RunReport`] to
/// [`SimWorkspace::recycle`] once its numbers have been extracted to also
/// reuse the outcome table's allocation — without it, the outcome buffer
/// (moved into the report) is the one allocation left per run.
#[derive(Debug, Default)]
pub struct SimWorkspace {
    pub(crate) queue: EventQueue,
    pub(crate) remaining: Vec<f64>,
    /// Packed lifecycle flags, one byte per job (see [`flag`]).
    pub(crate) flags: Vec<u8>,
    pub(crate) quarantine_pending: BTreeSet<usize>,
    pub(crate) outcome: Outcome,
    /// Timer registrations drained by the kernel after each handler call.
    pub(crate) timer_scratch: Vec<TimerRequest>,
    /// Abandon notices drained alongside the timers.
    pub(crate) abandon_scratch: Vec<JobId>,
    runs: u64,
    reuse_hits: u64,
}

impl SimWorkspace {
    /// Creates an empty workspace; the first run warms the buffers.
    pub fn new() -> Self {
        SimWorkspace::default()
    }

    /// Creates a workspace whose event queue runs on the reference
    /// binary-heap backend instead of the calendar. Results are
    /// byte-identical; this exists for the `flat-vs-heap` benchmark rows
    /// and the backend-equivalence property tests.
    pub fn with_reference_queue() -> Self {
        SimWorkspace {
            queue: EventQueue::reference_heap(),
            ..SimWorkspace::default()
        }
    }

    /// Number of runs started in this workspace.
    #[inline]
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Number of runs that started without any buffer growth — every arena
    /// buffer already had sufficient capacity at [`SimWorkspace::begin`].
    /// `runs() - reuse_hits()` is the count of warm-up (allocating) runs;
    /// in a steady-state sweep it stays at the handful of runs that raised
    /// the high-water mark.
    ///
    /// This is the *physical* per-arena count: it depends on the exact run
    /// sequence this workspace saw. Sweep reports use the canonical
    /// run-order accounting in `cloudsched-bench` instead, which is
    /// invariant in the thread count.
    #[inline]
    pub fn reuse_hits(&self) -> u64 {
        self.reuse_hits
    }

    #[inline]
    pub(crate) fn released(&self, i: usize) -> bool {
        self.flags[i] & flag::RELEASED != 0
    }

    #[inline]
    pub(crate) fn resolved(&self, i: usize) -> bool {
        self.flags[i] & flag::RESOLVED != 0
    }

    #[inline]
    pub(crate) fn started(&self, i: usize) -> bool {
        self.flags[i] & flag::STARTED != 0
    }

    #[inline]
    pub(crate) fn abandoned(&self, i: usize) -> bool {
        self.flags[i] & flag::ABANDONED != 0
    }

    #[inline]
    pub(crate) fn quarantined(&self, i: usize) -> bool {
        self.flags[i] & flag::QUARANTINED != 0
    }

    #[inline]
    pub(crate) fn set_flag(&mut self, i: usize, mask: u8, on: bool) {
        if on {
            self.flags[i] |= mask;
        } else {
            self.flags[i] &= !mask;
        }
    }

    /// One lifecycle column as booleans, for the snapshot codec.
    pub(crate) fn flag_column(&self, mask: u8) -> Vec<bool> {
        self.flags.iter().map(|&f| f & mask != 0).collect()
    }

    /// Rebuilds the packed table from five equal-length columns
    /// (released, resolved, started, abandoned, quarantined) — the
    /// snapshot codec's restore path.
    pub(crate) fn load_flag_columns(&mut self, cols: [&[bool]; 5]) {
        let n = cols[0].len();
        debug_assert!(cols.iter().all(|c| c.len() == n));
        self.flags.clear();
        self.flags.resize(n, 0);
        const MASKS: [u8; 5] = [
            flag::RELEASED,
            flag::RESOLVED,
            flag::STARTED,
            flag::ABANDONED,
            flag::QUARANTINED,
        ];
        for (col, mask) in cols.iter().zip(MASKS) {
            for (i, &on) in col.iter().enumerate() {
                if on {
                    self.flags[i] |= mask;
                }
            }
        }
    }

    /// Resets all run state for an `n`-job instance, keeping allocations.
    pub(crate) fn begin(&mut self, n: usize) {
        // A hit means this reset allocates nothing: every per-job buffer
        // can hold n entries and the calendar can hold the 2n seed events
        // (release + deadline per job). Mid-run growth (completion events,
        // timers) also reuses capacity once the high-water mark is reached,
        // since buffers are never shrunk.
        let hit = self.remaining.capacity() >= n
            && self.flags.capacity() >= n
            && self.outcome.capacity() >= n
            && self.queue.capacity() >= 2 * n;
        self.runs += 1;
        if hit {
            self.reuse_hits += 1;
        }
        self.queue.clear();
        self.remaining.clear();
        self.flags.clear();
        self.flags.resize(n, 0);
        self.quarantine_pending.clear();
        self.outcome.reset(n);
        self.timer_scratch.clear();
        self.abandon_scratch.clear();
    }

    /// Grows every per-job table by one slot for a streaming arrival:
    /// workload `p` in the remaining table, all flags clear, outcome
    /// `NotReleased`. The streaming service calls this (through the kernel's
    /// seeding methods) once per arrival, in job-id order.
    pub(crate) fn grow_one(&mut self, workload: f64) {
        self.remaining.push(workload);
        let n = self.remaining.len();
        self.flags.resize(n, 0);
        self.outcome.grow(n);
    }

    /// Reclaims the outcome table of a finished run's report, closing the
    /// last per-run allocation. Call after extracting whatever the sweep
    /// records (value fraction, counters, …); the report is consumed.
    pub fn recycle(&mut self, report: crate::RunReport) {
        self.outcome = report.outcome;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mirrors the kernel: every run fills the workload table and seeds 2n
    /// events (release + deadline per job) right after `begin` — that
    /// warm-up is what gives the buffers their capacity.
    fn begin_and_seed(ws: &mut SimWorkspace, n: usize) {
        ws.begin(n);
        ws.remaining.extend((0..n).map(|i| i as f64 + 1.0));
        for i in 0..2 * n {
            ws.queue.push(
                cloudsched_core::Time::new(i as f64),
                crate::event::EventKind::Release {
                    job: JobId(i as u64),
                },
            );
        }
    }

    #[test]
    fn begin_counts_hits_only_when_no_buffer_grows() {
        let mut ws = SimWorkspace::new();
        begin_and_seed(&mut ws, 4);
        assert_eq!(ws.runs(), 1);
        assert_eq!(ws.reuse_hits(), 0, "cold buffers cannot hit");
        begin_and_seed(&mut ws, 4);
        assert_eq!(ws.reuse_hits(), 1, "same size reuses everything");
        begin_and_seed(&mut ws, 2);
        assert_eq!(ws.reuse_hits(), 2, "smaller instances fit a fortiori");
        begin_and_seed(&mut ws, 1024);
        assert_eq!(ws.reuse_hits(), 2, "growth is a miss");
        begin_and_seed(&mut ws, 1024);
        assert_eq!(ws.reuse_hits(), 3);
        assert_eq!(ws.runs(), 5);
    }

    #[test]
    fn packed_flags_round_trip_through_columns() {
        let mut ws = SimWorkspace::new();
        ws.begin(4);
        ws.set_flag(0, flag::RELEASED, true);
        ws.set_flag(1, flag::RESOLVED, true);
        ws.set_flag(1, flag::STARTED, true);
        ws.set_flag(2, flag::ABANDONED, true);
        ws.set_flag(3, flag::QUARANTINED, true);
        ws.set_flag(3, flag::QUARANTINED, false);
        assert!(ws.released(0) && !ws.released(1));
        assert!(ws.resolved(1) && ws.started(1));
        assert!(ws.abandoned(2) && !ws.quarantined(3));
        let cols = [
            ws.flag_column(flag::RELEASED),
            ws.flag_column(flag::RESOLVED),
            ws.flag_column(flag::STARTED),
            ws.flag_column(flag::ABANDONED),
            ws.flag_column(flag::QUARANTINED),
        ];
        assert_eq!(cols[0], vec![true, false, false, false]);
        let mut other = SimWorkspace::new();
        other.begin(0);
        other.load_flag_columns([&cols[0], &cols[1], &cols[2], &cols[3], &cols[4]]);
        assert_eq!(other.flags, ws.flags);
    }

    /// Minimal work-conserving FIFO, just enough to drive `simulate_into`
    /// through the real kernel for the recycle-accounting tests below.
    struct Fifo {
        ready: Vec<JobId>,
    }
    impl Fifo {
        fn next(&mut self, ctx: &crate::SimContext<'_>) -> crate::Decision {
            if ctx.running().is_some() {
                return crate::Decision::Continue;
            }
            match self.ready.first().copied() {
                Some(j) => {
                    self.ready.remove(0);
                    crate::Decision::Run(j)
                }
                None => crate::Decision::Idle,
            }
        }
    }
    impl crate::Scheduler for Fifo {
        fn name(&self) -> String {
            "ws-fifo".into()
        }
        fn on_release(&mut self, ctx: &mut crate::SimContext<'_>, job: JobId) -> crate::Decision {
            self.ready.push(job);
            self.next(ctx)
        }
        fn on_completion(
            &mut self,
            ctx: &mut crate::SimContext<'_>,
            _job: JobId,
        ) -> crate::Decision {
            self.next(ctx)
        }
        fn on_deadline_miss(
            &mut self,
            ctx: &mut crate::SimContext<'_>,
            job: JobId,
        ) -> crate::Decision {
            self.ready.retain(|&j| j != job);
            self.next(ctx)
        }
    }

    /// A spread-out instance with `n` jobs: unit workloads, generous
    /// deadlines, so every job completes under any work-conserving policy.
    fn instance(n: usize) -> cloudsched_core::JobSet {
        let tuples: Vec<(f64, f64, f64, f64)> = (0..n)
            .map(|i| (i as f64, i as f64 + 4.0, 1.0, 1.0))
            .collect();
        cloudsched_core::JobSet::from_tuples(&tuples).unwrap()
    }

    fn run(ws: &mut SimWorkspace, n: usize) -> crate::RunReport {
        let cap = cloudsched_capacity::Constant::new(1.0).unwrap();
        crate::simulate_into(
            ws,
            &instance(n),
            &cap,
            &mut Fifo { ready: Vec::new() },
            crate::RunOptions::lean(),
        )
    }

    /// The sweep-layer contract: once buffers are warm, shrinking runs hit —
    /// but only if each report is recycled, since the outcome table leaves
    /// the workspace inside the report and `begin` counts its absence as
    /// growth.
    #[test]
    fn recycle_keeps_shrinking_runs_on_the_reuse_path() {
        let mut ws = SimWorkspace::new();
        let warm = run(&mut ws, 8);
        assert_eq!((ws.runs(), ws.reuse_hits()), (1, 0), "first run warms up");
        ws.recycle(warm);

        for (i, n) in [8, 5, 3, 1].into_iter().enumerate() {
            let report = run(&mut ws, n);
            assert_eq!(report.completed, n, "all jobs finish in the {n}-job run");
            assert_eq!(
                (ws.runs(), ws.reuse_hits()),
                (i as u64 + 2, i as u64 + 1),
                "recycled shrinking run #{i} must reuse every buffer"
            );
            ws.recycle(report);
        }
    }

    /// Dropping a report instead of recycling it forfeits the outcome
    /// buffer, so even a smaller follow-up run is a (correct) miss.
    #[test]
    fn unrecycled_reports_break_the_reuse_streak() {
        let mut ws = SimWorkspace::new();
        let report = run(&mut ws, 6);
        drop(report);
        run(&mut ws, 2);
        assert_eq!(ws.runs(), 2);
        assert_eq!(
            ws.reuse_hits(),
            0,
            "outcome table left with the dropped report, so begin reallocates"
        );
    }

    /// `recycle` only restores capacity — it must not leak the previous
    /// run's outcomes into the next report.
    #[test]
    fn recycled_outcome_state_does_not_leak_between_runs() {
        let mut ws = SimWorkspace::new();
        let first = run(&mut ws, 5);
        let first_outcomes: Vec<_> = (0..5).map(|i| first.outcome.get(JobId(i))).collect();
        ws.recycle(first);
        let second = run(&mut ws, 5);
        assert_eq!(ws.reuse_hits(), 1);
        let second_outcomes: Vec<_> = (0..5).map(|i| second.outcome.get(JobId(i))).collect();
        assert_eq!(
            first_outcomes, second_outcomes,
            "identical instance, identical outcomes"
        );
        assert_eq!(second.outcome.len(), 5);
    }

    /// The heap-backed reference workspace must produce reports identical
    /// to the calendar-backed default.
    #[test]
    fn reference_queue_workspace_matches_default() {
        let mut flat = SimWorkspace::new();
        let mut heap = SimWorkspace::with_reference_queue();
        for n in [6, 3, 8] {
            let a = run(&mut flat, n);
            let b = run(&mut heap, n);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            flat.recycle(a);
            heap.recycle(b);
        }
    }

    #[test]
    fn begin_resets_all_run_state() {
        let mut ws = SimWorkspace::new();
        ws.begin(3);
        ws.remaining.extend([1.0, 2.0, 3.0]);
        ws.set_flag(1, flag::RELEASED, true);
        ws.quarantine_pending.insert(2);
        ws.abandon_scratch.push(JobId(0));
        ws.begin(3);
        assert!(ws.remaining.is_empty());
        assert!(!(0..3).any(|i| ws.released(i)));
        assert!(ws.quarantine_pending.is_empty());
        assert!(ws.abandon_scratch.is_empty());
        assert_eq!(ws.outcome.len(), 3);
    }
}
