//! Reusable per-run buffer arena for Monte-Carlo sweeps.
//!
//! A single simulation allocates roughly a dozen buffers (the event heap,
//! per-job workload/flag tables, the outcome table, scheduler scratch) and
//! throws them away when the run ends. A Table I campaign does this 28,000
//! times over instances of nearly identical size — the paper's §IV grid is
//! 7 λ-values × 5 algorithms × 800 runs — so the sweep layer keeps one
//! [`SimWorkspace`] per worker thread and routes every run through
//! [`crate::simulate_into`]. After the first run warms the buffers to the
//! campaign's high-water size, subsequent runs perform **zero heap
//! allocation** in the kernel: every buffer is cleared and reused in place.
//!
//! Reuse never changes results: [`SimWorkspace::begin`] resets all run
//! state, including the event queue's FIFO tie-break counter, so a recycled
//! workspace is observationally identical to a fresh one — decisions,
//! traces and [`crate::RunReport`]s stay byte-for-byte the same. The
//! batch-runner property tests in `tests/sweep.rs` pin this.

use crate::context::TimerRequest;
use crate::event::EventQueue;
use cloudsched_core::{JobId, Outcome};
use std::collections::BTreeSet;

/// Arena of every per-run buffer the simulation kernel needs.
///
/// Create one (per worker thread), then pass it to [`crate::simulate_into`]
/// for each run of a sweep. Return each run's [`crate::RunReport`] to
/// [`SimWorkspace::recycle`] once its numbers have been extracted to also
/// reuse the outcome table's allocation — without it, the outcome buffer
/// (moved into the report) is the one allocation left per run.
#[derive(Debug, Default)]
pub struct SimWorkspace {
    pub(crate) queue: EventQueue,
    pub(crate) remaining: Vec<f64>,
    pub(crate) released: Vec<bool>,
    pub(crate) resolved: Vec<bool>,
    pub(crate) started: Vec<bool>,
    pub(crate) abandoned: Vec<bool>,
    pub(crate) quarantined: Vec<bool>,
    pub(crate) quarantine_pending: BTreeSet<usize>,
    pub(crate) outcome: Outcome,
    /// Timer registrations drained by the kernel after each handler call.
    pub(crate) timer_scratch: Vec<TimerRequest>,
    /// Abandon notices drained alongside the timers.
    pub(crate) abandon_scratch: Vec<JobId>,
    runs: u64,
    reuse_hits: u64,
}

impl SimWorkspace {
    /// Creates an empty workspace; the first run warms the buffers.
    pub fn new() -> Self {
        SimWorkspace::default()
    }

    /// Number of runs started in this workspace.
    #[inline]
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Number of runs that started without any buffer growth — every arena
    /// buffer already had sufficient capacity at [`SimWorkspace::begin`].
    /// `runs() - reuse_hits()` is the count of warm-up (allocating) runs;
    /// in a steady-state sweep it stays at the handful of runs that raised
    /// the high-water mark.
    #[inline]
    pub fn reuse_hits(&self) -> u64 {
        self.reuse_hits
    }

    /// Resets all run state for an `n`-job instance, keeping allocations.
    pub(crate) fn begin(&mut self, n: usize) {
        // A hit means this reset allocates nothing: every per-job buffer
        // can hold n entries and the heap can hold the 2n seed events
        // (release + deadline per job). Mid-run growth (completion events,
        // timers) also reuses capacity once the high-water mark is reached,
        // since buffers are never shrunk.
        let hit = self.remaining.capacity() >= n
            && self.released.capacity() >= n
            && self.resolved.capacity() >= n
            && self.started.capacity() >= n
            && self.abandoned.capacity() >= n
            && self.quarantined.capacity() >= n
            && self.outcome.capacity() >= n
            && self.queue.capacity() >= 2 * n;
        self.runs += 1;
        if hit {
            self.reuse_hits += 1;
        }
        self.queue.clear();
        self.remaining.clear();
        for flags in [
            &mut self.released,
            &mut self.resolved,
            &mut self.started,
            &mut self.abandoned,
            &mut self.quarantined,
        ] {
            flags.clear();
            flags.resize(n, false);
        }
        self.quarantine_pending.clear();
        self.outcome.reset(n);
        self.timer_scratch.clear();
        self.abandon_scratch.clear();
    }

    /// Grows every per-job table by one slot for a streaming arrival:
    /// workload `p` in the remaining table, all flags clear, outcome
    /// `NotReleased`. The streaming service calls this (through the kernel's
    /// seeding methods) once per arrival, in job-id order.
    pub(crate) fn grow_one(&mut self, workload: f64) {
        self.remaining.push(workload);
        let n = self.remaining.len();
        for flags in [
            &mut self.released,
            &mut self.resolved,
            &mut self.started,
            &mut self.abandoned,
            &mut self.quarantined,
        ] {
            flags.resize(n, false);
        }
        self.outcome.grow(n);
    }

    /// Reclaims the outcome table of a finished run's report, closing the
    /// last per-run allocation. Call after extracting whatever the sweep
    /// records (value fraction, counters, …); the report is consumed.
    pub fn recycle(&mut self, report: crate::RunReport) {
        self.outcome = report.outcome;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Mirrors the kernel: every run fills the workload table and seeds 2n
    /// events (release + deadline per job) right after `begin` — that
    /// warm-up is what gives the buffers their capacity.
    fn begin_and_seed(ws: &mut SimWorkspace, n: usize) {
        ws.begin(n);
        ws.remaining.extend((0..n).map(|i| i as f64 + 1.0));
        for i in 0..2 * n {
            ws.queue.push(
                cloudsched_core::Time::new(i as f64),
                crate::event::EventKind::Release {
                    job: JobId(i as u64),
                },
            );
        }
    }

    #[test]
    fn begin_counts_hits_only_when_no_buffer_grows() {
        let mut ws = SimWorkspace::new();
        begin_and_seed(&mut ws, 4);
        assert_eq!(ws.runs(), 1);
        assert_eq!(ws.reuse_hits(), 0, "cold buffers cannot hit");
        begin_and_seed(&mut ws, 4);
        assert_eq!(ws.reuse_hits(), 1, "same size reuses everything");
        begin_and_seed(&mut ws, 2);
        assert_eq!(ws.reuse_hits(), 2, "smaller instances fit a fortiori");
        begin_and_seed(&mut ws, 1024);
        assert_eq!(ws.reuse_hits(), 2, "growth is a miss");
        begin_and_seed(&mut ws, 1024);
        assert_eq!(ws.reuse_hits(), 3);
        assert_eq!(ws.runs(), 5);
    }

    /// Minimal work-conserving FIFO, just enough to drive `simulate_into`
    /// through the real kernel for the recycle-accounting tests below.
    struct Fifo {
        ready: Vec<JobId>,
    }
    impl Fifo {
        fn next(&mut self, ctx: &crate::SimContext<'_>) -> crate::Decision {
            if ctx.running().is_some() {
                return crate::Decision::Continue;
            }
            match self.ready.first().copied() {
                Some(j) => {
                    self.ready.remove(0);
                    crate::Decision::Run(j)
                }
                None => crate::Decision::Idle,
            }
        }
    }
    impl crate::Scheduler for Fifo {
        fn name(&self) -> String {
            "ws-fifo".into()
        }
        fn on_release(&mut self, ctx: &mut crate::SimContext<'_>, job: JobId) -> crate::Decision {
            self.ready.push(job);
            self.next(ctx)
        }
        fn on_completion(
            &mut self,
            ctx: &mut crate::SimContext<'_>,
            _job: JobId,
        ) -> crate::Decision {
            self.next(ctx)
        }
        fn on_deadline_miss(
            &mut self,
            ctx: &mut crate::SimContext<'_>,
            job: JobId,
        ) -> crate::Decision {
            self.ready.retain(|&j| j != job);
            self.next(ctx)
        }
    }

    /// A spread-out instance with `n` jobs: unit workloads, generous
    /// deadlines, so every job completes under any work-conserving policy.
    fn instance(n: usize) -> cloudsched_core::JobSet {
        let tuples: Vec<(f64, f64, f64, f64)> = (0..n)
            .map(|i| (i as f64, i as f64 + 4.0, 1.0, 1.0))
            .collect();
        cloudsched_core::JobSet::from_tuples(&tuples).unwrap()
    }

    fn run(ws: &mut SimWorkspace, n: usize) -> crate::RunReport {
        let cap = cloudsched_capacity::Constant::new(1.0).unwrap();
        crate::simulate_into(
            ws,
            &instance(n),
            &cap,
            &mut Fifo { ready: Vec::new() },
            crate::RunOptions::lean(),
        )
    }

    /// The sweep-layer contract: once buffers are warm, shrinking runs hit —
    /// but only if each report is recycled, since the outcome table leaves
    /// the workspace inside the report and `begin` counts its absence as
    /// growth.
    #[test]
    fn recycle_keeps_shrinking_runs_on_the_reuse_path() {
        let mut ws = SimWorkspace::new();
        let warm = run(&mut ws, 8);
        assert_eq!((ws.runs(), ws.reuse_hits()), (1, 0), "first run warms up");
        ws.recycle(warm);

        for (i, n) in [8, 5, 3, 1].into_iter().enumerate() {
            let report = run(&mut ws, n);
            assert_eq!(report.completed, n, "all jobs finish in the {n}-job run");
            assert_eq!(
                (ws.runs(), ws.reuse_hits()),
                (i as u64 + 2, i as u64 + 1),
                "recycled shrinking run #{i} must reuse every buffer"
            );
            ws.recycle(report);
        }
    }

    /// Dropping a report instead of recycling it forfeits the outcome
    /// buffer, so even a smaller follow-up run is a (correct) miss.
    #[test]
    fn unrecycled_reports_break_the_reuse_streak() {
        let mut ws = SimWorkspace::new();
        let report = run(&mut ws, 6);
        drop(report);
        run(&mut ws, 2);
        assert_eq!(ws.runs(), 2);
        assert_eq!(
            ws.reuse_hits(),
            0,
            "outcome table left with the dropped report, so begin reallocates"
        );
    }

    /// `recycle` only restores capacity — it must not leak the previous
    /// run's outcomes into the next report.
    #[test]
    fn recycled_outcome_state_does_not_leak_between_runs() {
        let mut ws = SimWorkspace::new();
        let first = run(&mut ws, 5);
        let first_outcomes: Vec<_> = (0..5).map(|i| first.outcome.get(JobId(i))).collect();
        ws.recycle(first);
        let second = run(&mut ws, 5);
        assert_eq!(ws.reuse_hits(), 1);
        let second_outcomes: Vec<_> = (0..5).map(|i| second.outcome.get(JobId(i))).collect();
        assert_eq!(
            first_outcomes, second_outcomes,
            "identical instance, identical outcomes"
        );
        assert_eq!(second.outcome.len(), 5);
    }

    #[test]
    fn begin_resets_all_run_state() {
        let mut ws = SimWorkspace::new();
        ws.begin(3);
        ws.remaining.extend([1.0, 2.0, 3.0]);
        ws.released[1] = true;
        ws.quarantine_pending.insert(2);
        ws.abandon_scratch.push(JobId(0));
        ws.begin(3);
        assert!(ws.remaining.is_empty());
        assert!(!ws.released.iter().any(|&b| b));
        assert!(ws.quarantine_pending.is_empty());
        assert!(ws.abandon_scratch.is_empty());
        assert_eq!(ws.outcome.len(), 3);
    }
}
