//! Post-run verification of model invariants.
//!
//! Given a recorded schedule and outcome, the audit re-derives everything from
//! first principles (§II-A) and checks:
//!
//! 1. slices are time-ordered and non-overlapping — one job at a time;
//! 2. no job executes outside its `[release, deadline]` window;
//! 3. executed workload per job (exact capacity integral over its slices)
//!    equals its total workload for completed jobs, and is strictly less for
//!    missed jobs;
//! 4. completion instants respect deadlines;
//! 5. the reported value equals the sum of completed jobs' values.
//!
//! The audit is independent of the kernel's internal bookkeeping: it uses
//! only the schedule, the job set and the capacity profile, so a kernel bug
//! that corrupted progress accounting would be caught here.

use crate::report::RunReport;
use cloudsched_capacity::CapacityProfile;
use cloudsched_core::{approx_eq, JobOutcome, JobSet};

/// A list of human-readable invariant violations (empty = clean).
pub type AuditErrors = Vec<String>;

/// Audits a run report against the model. Requires the report to carry a
/// recorded schedule ([`crate::RunOptions::record_schedule`]).
pub fn audit_report<P: CapacityProfile>(
    jobs: &JobSet,
    capacity: &P,
    report: &RunReport,
) -> Result<(), AuditErrors> {
    let mut errors = AuditErrors::new();
    let schedule = match &report.schedule {
        Some(s) => s,
        None => {
            return Err(vec![
                "audit requires a recorded schedule (RunOptions::record_schedule)".into(),
            ])
        }
    };

    // 1. Ordering / disjointness.
    let slices = schedule.slices();
    for w in slices.windows(2) {
        if w[1].start < w[0].end && !w[1].start.approx_eq(w[0].end) {
            errors.push(format!(
                "slices overlap: {} ends {} but {} starts {}",
                w[0].job, w[0].end, w[1].job, w[1].start
            ));
        }
    }

    // 2. Execution windows.
    for s in slices {
        let job = jobs.get(s.job);
        if s.start < job.release && !s.start.approx_eq(job.release) {
            errors.push(format!(
                "{} executes at {} before release {}",
                s.job, s.start, job.release
            ));
        }
        if s.end > job.deadline && !s.end.approx_eq(job.deadline) {
            errors.push(format!(
                "{} executes until {} after deadline {}",
                s.job, s.end, job.deadline
            ));
        }
    }

    // 3. Workload accounting per job, via exact integration.
    for job in jobs.iter() {
        let executed: f64 = schedule
            .slices_of(job.id)
            .map(|s| capacity.integrate(s.start, s.end))
            .sum();
        match report.outcome.get(job.id) {
            JobOutcome::Completed { at } => {
                if !approx_eq(executed, job.workload) {
                    errors.push(format!(
                        "{} completed but executed {executed} of workload {}",
                        job.id, job.workload
                    ));
                }
                if at > job.deadline && !at.approx_eq(job.deadline) {
                    errors.push(format!(
                        "{} reported completed at {} after deadline {}",
                        job.id, at, job.deadline
                    ));
                }
            }
            JobOutcome::Missed { remaining_workload } => {
                if executed >= job.workload && !approx_eq(executed, job.workload) {
                    errors.push(format!(
                        "{} missed but executed {executed} >= workload {}",
                        job.id, job.workload
                    ));
                }
                if !approx_eq(executed + remaining_workload, job.workload) {
                    errors.push(format!(
                        "{} missed: executed {executed} + remaining {remaining_workload} != workload {}",
                        job.id, job.workload
                    ));
                }
            }
            JobOutcome::NotReleased => {
                if executed > 0.0 {
                    errors.push(format!("{} never released but executed {executed}", job.id));
                }
            }
        }
    }

    // 5. Value consistency.
    let expected_value: f64 = report
        .outcome
        .completed()
        .map(|id| jobs.get(id).value)
        .sum();
    if !approx_eq(expected_value, report.value) {
        errors.push(format!(
            "reported value {} != sum of completed values {expected_value}",
            report.value
        ));
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Decision, SimContext};
    use crate::engine::{simulate, RunOptions};
    use crate::scheduler::Scheduler;
    use cloudsched_capacity::{Constant, PiecewiseConstant};
    use cloudsched_core::{JobId, Outcome, Schedule, Time};

    struct Fifo {
        ready: Vec<JobId>,
    }
    impl Scheduler for Fifo {
        fn name(&self) -> String {
            "fifo".into()
        }
        fn on_release(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
            self.ready.push(job);
            if ctx.running().is_none() {
                Decision::Run(self.ready.remove(0))
            } else {
                Decision::Continue
            }
        }
        fn on_completion(&mut self, _ctx: &mut SimContext<'_>, _job: JobId) -> Decision {
            if self.ready.is_empty() {
                Decision::Idle
            } else {
                Decision::Run(self.ready.remove(0))
            }
        }
        fn on_deadline_miss(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
            self.ready.retain(|&j| j != job);
            if ctx.running().is_none() && !self.ready.is_empty() {
                Decision::Run(self.ready.remove(0))
            } else {
                Decision::Continue
            }
        }
    }

    #[test]
    fn clean_run_passes_audit() {
        let jobs = JobSet::from_tuples(&[
            (0.0, 4.0, 2.0, 1.0),
            (1.0, 8.0, 3.0, 2.0),
            (2.0, 3.0, 5.0, 9.0), // will miss
        ])
        .unwrap();
        let cap = PiecewiseConstant::from_durations(&[(2.0, 1.0), (2.0, 3.0)]).unwrap();
        let r = simulate(&jobs, &cap, &mut Fifo { ready: vec![] }, RunOptions::full());
        audit_report(&jobs, &cap, &r).expect("audit should pass");
    }

    #[test]
    fn audit_requires_schedule() {
        let jobs = JobSet::from_tuples(&[(0.0, 4.0, 2.0, 1.0)]).unwrap();
        let cap = Constant::unit();
        let r = simulate(&jobs, &cap, &mut Fifo { ready: vec![] }, RunOptions::lean());
        let err = audit_report(&jobs, &cap, &r).unwrap_err();
        assert!(err[0].contains("record_schedule"));
    }

    #[test]
    fn audit_detects_fabricated_value() {
        let jobs = JobSet::from_tuples(&[(0.0, 4.0, 2.0, 1.0)]).unwrap();
        let cap = Constant::unit();
        let mut r = simulate(&jobs, &cap, &mut Fifo { ready: vec![] }, RunOptions::full());
        r.value += 1.0;
        let errs = audit_report(&jobs, &cap, &r).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("reported value")));
    }

    #[test]
    fn audit_detects_out_of_window_execution() {
        let jobs = JobSet::from_tuples(&[(1.0, 2.0, 1.0, 1.0)]).unwrap();
        let cap = Constant::unit();
        // Forged schedule: executes before release.
        let mut sched = Schedule::new();
        sched
            .push(JobId(0), Time::new(0.0), Time::new(1.0))
            .unwrap();
        let mut outcome = Outcome::new(1);
        outcome.set(
            JobId(0),
            cloudsched_core::JobOutcome::Completed { at: Time::new(1.0) },
        );
        let r = RunReport {
            scheduler: "forged".into(),
            outcome,
            value: 1.0,
            value_fraction: 1.0,
            completed: 1,
            missed: 0,
            preemptions: 0,
            dispatches: 1,
            events: 0,
            schedule: Some(sched),
            trajectory: None,
        };
        let errs = audit_report(&jobs, &cap, &r).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("before release")));
    }

    #[test]
    fn audit_detects_incomplete_execution_of_completed_job() {
        let jobs = JobSet::from_tuples(&[(0.0, 4.0, 2.0, 1.0)]).unwrap();
        let cap = Constant::unit();
        let mut sched = Schedule::new();
        // Only one of the two workload units executed.
        sched
            .push(JobId(0), Time::new(0.0), Time::new(1.0))
            .unwrap();
        let mut outcome = Outcome::new(1);
        outcome.set(
            JobId(0),
            cloudsched_core::JobOutcome::Completed { at: Time::new(1.0) },
        );
        let r = RunReport {
            scheduler: "forged".into(),
            outcome,
            value: 1.0,
            value_fraction: 1.0,
            completed: 1,
            missed: 0,
            preemptions: 0,
            dispatches: 1,
            events: 0,
            schedule: Some(sched),
            trajectory: None,
        };
        let errs = audit_report(&jobs, &cap, &r).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("executed")));
    }
}
