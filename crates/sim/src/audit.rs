//! Post-run verification of model invariants.
//!
//! Given a recorded schedule and outcome, the audit re-derives everything from
//! first principles (§II-A) and checks:
//!
//! 1. slices are time-ordered and non-overlapping — one job at a time;
//! 2. no job executes outside its `[release, deadline]` window;
//! 3. executed workload per job (exact capacity integral over its slices)
//!    equals its total workload for completed jobs, and is strictly less for
//!    missed jobs;
//! 4. completion instants respect deadlines;
//! 5. the reported value equals the sum of completed jobs' values.
//!
//! The audit is independent of the kernel's internal bookkeeping: it uses
//! only the schedule, the job set and the capacity profile, so a kernel bug
//! that corrupted progress accounting would be caught here.

use crate::context::{Decision, SimContext};
use crate::engine::{simulate, RunOptions};
use crate::report::RunReport;
use crate::scheduler::Scheduler;
use cloudsched_capacity::{CapacityProfile, PiecewiseConstant, StretchMap};
use cloudsched_core::{approx_eq, approx_le, JobId, JobOutcome, JobSet, Time};

/// A list of human-readable invariant violations (empty = clean).
pub type AuditErrors = Vec<String>;

/// Audits a run report against the model. Requires the report to carry a
/// recorded schedule ([`crate::RunOptions::record_schedule`]).
pub fn audit_report<P: CapacityProfile>(
    jobs: &JobSet,
    capacity: &P,
    report: &RunReport,
) -> Result<(), AuditErrors> {
    let mut errors = AuditErrors::new();
    let schedule = match &report.schedule {
        Some(s) => s,
        None => {
            return Err(vec![
                "audit requires a recorded schedule (RunOptions::record_schedule)".into(),
            ])
        }
    };

    // 1. Ordering / disjointness.
    let slices = schedule.slices();
    for w in slices.windows(2) {
        if w[1].start < w[0].end && !w[1].start.approx_eq(w[0].end) {
            errors.push(format!(
                "slices overlap: {} ends {} but {} starts {}",
                w[0].job, w[0].end, w[1].job, w[1].start
            ));
        }
    }

    // 2. Execution windows.
    for s in slices {
        let job = jobs.get(s.job);
        if s.start < job.release && !s.start.approx_eq(job.release) {
            errors.push(format!(
                "{} executes at {} before release {}",
                s.job, s.start, job.release
            ));
        }
        if s.end > job.deadline && !s.end.approx_eq(job.deadline) {
            errors.push(format!(
                "{} executes until {} after deadline {}",
                s.job, s.end, job.deadline
            ));
        }
    }

    // 3. Workload accounting per job, via exact integration.
    for job in jobs.iter() {
        let executed: f64 = schedule
            .slices_of(job.id)
            .map(|s| capacity.integrate(s.start, s.end))
            .sum();
        match report.outcome.get(job.id) {
            JobOutcome::Completed { at } => {
                if !approx_eq(executed, job.workload) {
                    errors.push(format!(
                        "{} completed but executed {executed} of workload {}",
                        job.id, job.workload
                    ));
                }
                if at > job.deadline && !at.approx_eq(job.deadline) {
                    errors.push(format!(
                        "{} reported completed at {} after deadline {}",
                        job.id, at, job.deadline
                    ));
                }
            }
            JobOutcome::Missed { remaining_workload } => {
                if executed >= job.workload && !approx_eq(executed, job.workload) {
                    errors.push(format!(
                        "{} missed but executed {executed} >= workload {}",
                        job.id, job.workload
                    ));
                }
                if !approx_eq(executed + remaining_workload, job.workload) {
                    errors.push(format!(
                        "{} missed: executed {executed} + remaining {remaining_workload} != workload {}",
                        job.id, job.workload
                    ));
                }
            }
            JobOutcome::NotReleased => {
                if executed > 0.0 {
                    errors.push(format!("{} never released but executed {executed}", job.id));
                }
            }
        }
    }

    // 5. Value consistency.
    let expected_value: f64 = report
        .outcome
        .completed()
        .map(|id| jobs.get(id).value)
        .sum();
    if !approx_eq(expected_value, report.value) {
        errors.push(format!(
            "reported value {} != sum of completed values {expected_value}",
            report.value
        ));
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

// ---------------------------------------------------------------------------
// Theorem-level certification
// ---------------------------------------------------------------------------

/// Outcome of checking one of the paper's theorems against a concrete
/// instance.
///
/// Distinguishing [`Certificate::Inapplicable`] from
/// [`Certificate::Violated`] matters: a theorem whose hypothesis fails tells
/// you nothing, while a hypothesis that holds with a failed conclusion is a
/// genuine bug in the implementation (or a counterexample to the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// The hypothesis holds and the conclusion was verified.
    Certified {
        /// What was established, in human-readable form.
        detail: String,
    },
    /// The instance does not satisfy the theorem's hypothesis.
    Inapplicable {
        /// Which precondition failed and where.
        reason: String,
    },
    /// The hypothesis holds but the conclusion failed.
    Violated {
        /// The concrete violations.
        errors: Vec<String>,
    },
}

impl Certificate {
    /// Did the conclusion verify?
    pub fn is_certified(&self) -> bool {
        matches!(self, Certificate::Certified { .. })
    }

    /// Did the conclusion fail despite the hypothesis holding?
    pub fn is_violated(&self) -> bool {
        matches!(self, Certificate::Violated { .. })
    }
}

impl std::fmt::Display for Certificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Certificate::Certified { detail } => write!(f, "certified: {detail}"),
            Certificate::Inapplicable { reason } => write!(f, "inapplicable: {reason}"),
            Certificate::Violated { errors } => {
                // Cap the rendering: a violated certificate over a large
                // instance can carry thousands of per-job errors.
                const SHOWN: usize = 8;
                writeln!(f, "VIOLATED ({} error(s)):", errors.len())?;
                for e in errors.iter().take(SHOWN) {
                    writeln!(f, "  - {e}")?;
                }
                if errors.len() > SHOWN {
                    writeln!(f, "  … and {} more", errors.len() - SHOWN)?;
                }
                Ok(())
            }
        }
    }
}

/// A minimal preemptive EDF used internally by the certifier.
///
/// `cloudsched-sched` depends on this crate, so the certifier cannot use its
/// `Edf`; this private copy keeps the dependency graph acyclic and doubles
/// as an independent implementation — a bug common to both is less likely.
struct CertEdf {
    ready: Vec<(Time, JobId)>,
}

impl CertEdf {
    fn new() -> Self {
        CertEdf { ready: Vec::new() }
    }

    fn pop_earliest(&mut self) -> Decision {
        if self.ready.is_empty() {
            return Decision::Idle;
        }
        let mut best = 0;
        for i in 1..self.ready.len() {
            if self.ready[i] < self.ready[best] {
                best = i;
            }
        }
        Decision::Run(self.ready.swap_remove(best).1)
    }
}

impl Scheduler for CertEdf {
    fn name(&self) -> String {
        "certifier-EDF".into()
    }

    fn on_release(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        let d_new = ctx.job(job).deadline;
        match ctx.running() {
            None => Decision::Run(job),
            Some(cur) => {
                let d_cur = ctx.job(cur).deadline;
                if (d_new, job) < (d_cur, cur) {
                    self.ready.push((d_cur, cur));
                    Decision::Run(job)
                } else {
                    self.ready.push((d_new, job));
                    Decision::Continue
                }
            }
        }
    }

    fn on_completion(&mut self, ctx: &mut SimContext<'_>, _job: JobId) -> Decision {
        if ctx.running().is_some() {
            return Decision::Continue;
        }
        self.pop_earliest()
    }

    fn on_deadline_miss(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        self.ready.retain(|&(_, j)| j != job);
        if ctx.running().is_some() {
            Decision::Continue
        } else {
            self.pop_earliest()
        }
    }
}

/// Certifies Theorem 2: *on an underloaded system, EDF completes every job*.
///
/// The hypothesis ("underloaded", Definition 3: some schedule completes all
/// jobs) is checked by the demand-bound criterion, which is exact on a
/// single preemptive processor: for every release `r_i` and deadline `d_j`,
/// the total workload of jobs whose whole window lies inside `[r_i, d_j]`
/// must not exceed `∫_{r_i}^{d_j} c`. This is independent of any EDF
/// simulation, so the conclusion check (simulate EDF, demand zero misses,
/// audit the schedule) is not circular.
pub fn certify_underloaded_edf<P: CapacityProfile>(jobs: &JobSet, capacity: &P) -> Certificate {
    if jobs.is_empty() {
        return Certificate::Certified {
            detail: "vacuously underloaded: no jobs".into(),
        };
    }
    // Hypothesis: demand ≤ supply on every release–deadline window.
    let releases: Vec<Time> = jobs.iter().map(|j| j.release).collect();
    let deadlines: Vec<Time> = jobs.iter().map(|j| j.deadline).collect();
    let mut windows = 0usize;
    for &r in &releases {
        for &d in &deadlines {
            if d <= r {
                continue;
            }
            windows += 1;
            let demand: f64 = jobs
                .iter()
                .filter(|j| j.release >= r && j.deadline <= d)
                .map(|j| j.workload)
                .sum();
            let supply = capacity.integrate(r, d);
            if !approx_le(demand, supply) {
                return Certificate::Inapplicable {
                    reason: format!(
                        "not underloaded: window [{r}, {d}] demands {demand} \
                         but supplies {supply}"
                    ),
                };
            }
        }
    }
    // Conclusion: EDF completes everything, with an audit-clean schedule.
    let report = simulate(jobs, capacity, &mut CertEdf::new(), RunOptions::default());
    let mut errors = Vec::new();
    for job in jobs.iter() {
        if let JobOutcome::Missed { remaining_workload } = report.outcome.get(job.id) {
            errors.push(format!(
                "{} missed its deadline {} with {remaining_workload} workload left \
                 on an underloaded instance",
                job.id, job.deadline
            ));
        }
    }
    if let Err(audit) = audit_report(jobs, capacity, &report) {
        errors.extend(audit);
    }
    if errors.is_empty() {
        Certificate::Certified {
            detail: format!(
                "demand ≤ supply on all {windows} release–deadline windows and \
                 EDF completed {}/{} jobs with an audit-clean schedule",
                report.completed,
                jobs.len()
            ),
        }
    } else {
        Certificate::Violated { errors }
    }
}

/// Certifies the §III-D admissibility precondition (Definition 4): every
/// job satisfies `d − r ≥ p / c_lo`, i.e. it could finish if run alone from
/// release at the guaranteed minimum capacity.
///
/// Theorem 3's competitive bound for V-Dover assumes this of every job, so
/// the CLI surfaces it as a certifiable input property.
pub fn certify_admissibility(jobs: &JobSet, c_lo: f64) -> Certificate {
    if !(c_lo > 0.0) || !c_lo.is_finite() {
        return Certificate::Inapplicable {
            reason: format!("admissibility needs a positive finite c_lo, got {c_lo}"),
        };
    }
    let errors: Vec<String> = jobs
        .iter()
        .filter(|j| !j.individually_admissible(c_lo))
        .map(|j| {
            format!(
                "{} is inadmissible: window {} < workload {} / c_lo {c_lo}",
                j.id,
                (j.deadline - j.release).as_f64(),
                j.workload
            )
        })
        .collect();
    if errors.is_empty() {
        Certificate::Certified {
            detail: format!(
                "all {} jobs satisfy d − r ≥ p/c_lo at c_lo = {c_lo}",
                jobs.len()
            ),
        }
    } else {
        Certificate::Violated { errors }
    }
}

/// Certifies the §III-A stretch bijection on a concrete profile: with
/// `T(t) = (1/c_ref) ∫_0^t c`, the map must be strictly increasing, satisfy
/// its defining integral identity, and round-trip through its inverse at
/// every probe instant.
///
/// Hypothesis: the profile's rate is bounded away from zero (otherwise `T`
/// has flat spots and is not injective).
pub fn certify_stretch_roundtrip(profile: &PiecewiseConstant, probes: &[Time]) -> Certificate {
    let (min_rate, _) = profile.observed_bounds();
    if !(min_rate > 0.0) {
        return Certificate::Inapplicable {
            reason: format!(
                "stretch bijection needs rates bounded away from zero, \
                 observed minimum {min_rate}"
            ),
        };
    }
    let map = StretchMap::new(profile.clone());
    let mut errors = Vec::new();
    let mut sorted: Vec<Time> = probes
        .iter()
        .copied()
        .filter(|t| *t >= Time::ZERO)
        .collect();
    sorted.sort_by(|a, b| a.as_f64().total_cmp(&b.as_f64()));
    for w in sorted.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a < b && map.forward(a) >= map.forward(b) && !a.approx_eq(b) {
            errors.push(format!(
                "T not strictly increasing: T({a}) = {} ≥ T({b}) = {}",
                map.forward(a),
                map.forward(b)
            ));
        }
    }
    for &t in &sorted {
        let fwd = map.forward(t);
        let ident = map.c_ref() * fwd.as_f64();
        let integral = profile.integral_to(t);
        if !approx_eq(ident, integral) {
            errors.push(format!(
                "integral identity fails at {t}: c_ref·T(t) = {ident} \
                 but ∫_0^t c = {integral}"
            ));
        }
        let back = map.inverse(fwd);
        if !back.approx_eq(t) {
            errors.push(format!("round-trip fails: T⁻¹(T({t})) = {back}"));
        }
    }
    if errors.is_empty() {
        Certificate::Certified {
            detail: format!(
                "stretch map with c_ref = {} is a bijection on all {} probes",
                map.c_ref(),
                sorted.len()
            ),
        }
    } else {
        Certificate::Violated { errors }
    }
}

pub mod commitments {
    //! The admission-commitment gate of the streaming service.
    //!
    //! An admission journaled by the service is a *commitment*: the run
    //! promises the job a resolution. This audit proves, from the
    //! decisions and the trace alone, that no commitment was reneged —
    //! every admitted, uncorrupted job reaches a terminal event
    //! (complete, expire or abandon), and no rejected job was ever
    //! secretly scheduled. Corrupt admissions (`BestEffort` letting a
    //! flagged arrival through) are exempt: the contract covers clean
    //! work only. A `Strict` abort legitimately strands admitted jobs —
    //! such runs are *expected* to flag here, which is exactly the signal
    //! the gate exists to raise.

    use crate::service::ServiceDecision;
    use cloudsched_core::JobId;
    use cloudsched_obs::TraceEvent;
    use std::collections::BTreeSet;

    /// The gate's verdict.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct CommitmentReport {
        /// Clean admissions under audit.
        pub admitted: usize,
        /// Rejected arrivals (faults and sheds).
        pub rejected: usize,
        /// Corrupt admissions exempt from the contract (`BestEffort`).
        pub exempt: usize,
        /// Admitted, uncorrupted jobs with no terminal event: broken
        /// promises.
        pub reneged: Vec<JobId>,
        /// Rejected jobs the trace shows being scheduled anyway, and any
        /// other contract violations.
        pub violations: Vec<String>,
    }

    impl CommitmentReport {
        /// `true` when every commitment was honoured.
        pub fn ok(&self) -> bool {
            self.reneged.is_empty() && self.violations.is_empty()
        }

        /// Deterministic, fixed-format summary.
        pub fn render(&self) -> String {
            let mut out = String::from("commitment audit\n");
            out.push_str(&format!(
                "  admitted {}  rejected {}  exempt-corrupt {}\n",
                self.admitted, self.rejected, self.exempt
            ));
            if self.ok() {
                out.push_str("  verdict OK: no commitment reneged\n");
            } else {
                out.push_str(&format!(
                    "  verdict FLAGGED: {} reneged, {} violations\n",
                    self.reneged.len(),
                    self.violations.len()
                ));
                for j in &self.reneged {
                    out.push_str(&format!("  - {j}: admitted but never resolved\n"));
                }
                for v in &self.violations {
                    out.push_str(&format!("  - {v}\n"));
                }
            }
            out
        }
    }

    /// Checks every journaled admission decision against the trace.
    pub fn audit_commitments(
        decisions: &[ServiceDecision],
        events: &[TraceEvent],
    ) -> CommitmentReport {
        let mut terminal: BTreeSet<JobId> = BTreeSet::new();
        let mut scheduled: BTreeSet<JobId> = BTreeSet::new();
        for ev in events {
            match *ev {
                TraceEvent::Complete { job, .. }
                | TraceEvent::Expire { job, .. }
                | TraceEvent::Abandon { job, .. } => {
                    terminal.insert(job);
                }
                TraceEvent::Admit { job, .. }
                | TraceEvent::Resume { job, .. }
                | TraceEvent::Preempt { job, .. } => {
                    scheduled.insert(job);
                }
                _ => {}
            }
        }
        let mut report = CommitmentReport {
            admitted: 0,
            rejected: 0,
            exempt: 0,
            reneged: Vec::new(),
            violations: Vec::new(),
        };
        for d in decisions {
            if d.is_corrupt_admission() {
                report.exempt += 1;
                continue;
            }
            if d.admitted {
                report.admitted += 1;
                if !terminal.contains(&d.job) {
                    report.reneged.push(d.job);
                }
            } else {
                report.rejected += 1;
                if scheduled.contains(&d.job) {
                    report.violations.push(format!(
                        "{} was rejected ({}) but the trace shows it scheduled",
                        d.job,
                        d.reason.as_str()
                    ));
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::{Decision, SimContext};
    use crate::engine::{simulate, RunOptions};
    use crate::scheduler::Scheduler;
    use cloudsched_capacity::{Constant, PiecewiseConstant};
    use cloudsched_core::{JobId, Outcome, Schedule, Time};

    struct Fifo {
        ready: Vec<JobId>,
    }
    impl Scheduler for Fifo {
        fn name(&self) -> String {
            "fifo".into()
        }
        fn on_release(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
            self.ready.push(job);
            if ctx.running().is_none() {
                Decision::Run(self.ready.remove(0))
            } else {
                Decision::Continue
            }
        }
        fn on_completion(&mut self, _ctx: &mut SimContext<'_>, _job: JobId) -> Decision {
            if self.ready.is_empty() {
                Decision::Idle
            } else {
                Decision::Run(self.ready.remove(0))
            }
        }
        fn on_deadline_miss(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
            self.ready.retain(|&j| j != job);
            if ctx.running().is_none() && !self.ready.is_empty() {
                Decision::Run(self.ready.remove(0))
            } else {
                Decision::Continue
            }
        }
    }

    #[test]
    fn clean_run_passes_audit() {
        let jobs = JobSet::from_tuples(&[
            (0.0, 4.0, 2.0, 1.0),
            (1.0, 8.0, 3.0, 2.0),
            (2.0, 3.0, 5.0, 9.0), // will miss
        ])
        .unwrap();
        let cap = PiecewiseConstant::from_durations(&[(2.0, 1.0), (2.0, 3.0)]).unwrap();
        let r = simulate(&jobs, &cap, &mut Fifo { ready: vec![] }, RunOptions::full());
        audit_report(&jobs, &cap, &r).expect("audit should pass");
    }

    #[test]
    fn audit_requires_schedule() {
        let jobs = JobSet::from_tuples(&[(0.0, 4.0, 2.0, 1.0)]).unwrap();
        let cap = Constant::unit();
        let r = simulate(&jobs, &cap, &mut Fifo { ready: vec![] }, RunOptions::lean());
        let err = audit_report(&jobs, &cap, &r).unwrap_err();
        assert!(err[0].contains("record_schedule"));
    }

    #[test]
    fn audit_detects_fabricated_value() {
        let jobs = JobSet::from_tuples(&[(0.0, 4.0, 2.0, 1.0)]).unwrap();
        let cap = Constant::unit();
        let mut r = simulate(&jobs, &cap, &mut Fifo { ready: vec![] }, RunOptions::full());
        r.value += 1.0;
        let errs = audit_report(&jobs, &cap, &r).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("reported value")));
    }

    #[test]
    fn audit_detects_out_of_window_execution() {
        let jobs = JobSet::from_tuples(&[(1.0, 2.0, 1.0, 1.0)]).unwrap();
        let cap = Constant::unit();
        // Forged schedule: executes before release.
        let mut sched = Schedule::new();
        sched
            .push(JobId(0), Time::new(0.0), Time::new(1.0))
            .unwrap();
        let mut outcome = Outcome::new(1);
        outcome.set(
            JobId(0),
            cloudsched_core::JobOutcome::Completed { at: Time::new(1.0) },
        );
        let r = RunReport {
            scheduler: "forged".into(),
            outcome,
            value: 1.0,
            value_fraction: 1.0,
            completed: 1,
            missed: 0,
            expired: 0,
            expired_value: 0.0,
            abandoned: 0,
            abandoned_value: 0.0,
            preemptions: 0,
            dispatches: 1,
            events: 0,
            schedule: Some(sched),
            trajectory: None,
            metrics: None,
        };
        let errs = audit_report(&jobs, &cap, &r).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("before release")));
    }

    #[test]
    fn certify_underloaded_instance() {
        // Plenty of slack everywhere: EDF must complete all three.
        let jobs = JobSet::from_tuples(&[
            (0.0, 10.0, 2.0, 1.0),
            (1.0, 12.0, 3.0, 2.0),
            (2.0, 20.0, 1.0, 1.0),
        ])
        .unwrap();
        let cap = PiecewiseConstant::from_durations(&[(5.0, 1.0), (5.0, 2.0)]).unwrap();
        let cert = certify_underloaded_edf(&jobs, &cap);
        assert!(cert.is_certified(), "{cert}");
    }

    #[test]
    fn certify_rejects_overloaded_instance() {
        // Window [0, 2] demands 4 units but supplies 2: hypothesis fails.
        let jobs = JobSet::from_tuples(&[(0.0, 2.0, 2.0, 1.0), (0.0, 2.0, 2.0, 1.0)]).unwrap();
        let cap = Constant::unit();
        match certify_underloaded_edf(&jobs, &cap) {
            Certificate::Inapplicable { reason } => {
                assert!(reason.contains("not underloaded"), "{reason}")
            }
            other => panic!("expected Inapplicable, got {other}"),
        }
    }

    #[test]
    fn certify_empty_jobset_is_vacuous() {
        let jobs = JobSet::new(vec![]).unwrap_or_else(|_| JobSet::from_tuples(&[]).unwrap());
        let cap = Constant::unit();
        assert!(certify_underloaded_edf(&jobs, &cap).is_certified());
    }

    #[test]
    fn certify_admissibility_splits_on_c_lo() {
        // d − r = 4, p = 2: admissible iff c_lo ≥ 0.5.
        let jobs = JobSet::from_tuples(&[(0.0, 4.0, 2.0, 1.0)]).unwrap();
        assert!(certify_admissibility(&jobs, 1.0).is_certified());
        assert!(certify_admissibility(&jobs, 0.5).is_certified());
        assert!(certify_admissibility(&jobs, 0.4).is_violated());
        match certify_admissibility(&jobs, 0.0) {
            Certificate::Inapplicable { reason } => assert!(reason.contains("c_lo")),
            other => panic!("expected Inapplicable, got {other}"),
        }
    }

    #[test]
    fn certify_stretch_roundtrip_on_varying_profile() {
        let cap = PiecewiseConstant::from_durations(&[(1.0, 0.5), (2.0, 3.0), (1.0, 1.0)]).unwrap();
        let probes: Vec<Time> = (0..50).map(|i| Time::new(i as f64 * 0.17)).collect();
        let cert = certify_stretch_roundtrip(&cap, &probes);
        assert!(cert.is_certified(), "{cert}");
    }

    #[test]
    fn audit_detects_incomplete_execution_of_completed_job() {
        let jobs = JobSet::from_tuples(&[(0.0, 4.0, 2.0, 1.0)]).unwrap();
        let cap = Constant::unit();
        let mut sched = Schedule::new();
        // Only one of the two workload units executed.
        sched
            .push(JobId(0), Time::new(0.0), Time::new(1.0))
            .unwrap();
        let mut outcome = Outcome::new(1);
        outcome.set(
            JobId(0),
            cloudsched_core::JobOutcome::Completed { at: Time::new(1.0) },
        );
        let r = RunReport {
            scheduler: "forged".into(),
            outcome,
            value: 1.0,
            value_fraction: 1.0,
            completed: 1,
            missed: 0,
            expired: 0,
            expired_value: 0.0,
            abandoned: 0,
            abandoned_value: 0.0,
            preemptions: 0,
            dispatches: 1,
            events: 0,
            schedule: Some(sched),
            trajectory: None,
            metrics: None,
        };
        let errs = audit_report(&jobs, &cap, &r).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("executed")));
    }
}
