//! The online-scheduler interface.

use crate::context::{Decision, SimContext};
use cloudsched_core::{CoreError, JobId};

/// An online scheduling algorithm driven by kernel interrupts.
///
/// This mirrors the paper's procedure A skeleton: the scheduler "waits for
/// interrupts in a loop and calls the interrupt handlers upon interrupts".
/// The kernel delivers exactly the paper's three interrupt types — release,
/// completion-or-failure, and timers (for zero-conservative-laxity and
/// similar scheduler-defined alarms) — and applies the returned [`Decision`].
///
/// Handlers may inspect the context freely and may register timers; they must
/// not assume anything about future capacity beyond the declared class bounds
/// (the context does not expose it, so this is enforced by construction).
pub trait Scheduler {
    /// Human-readable name used in reports and tables.
    fn name(&self) -> String;

    /// A new job was released (paper procedure B).
    fn on_release(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision;

    /// The running job completed successfully (paper procedure C, success
    /// path). `job` has already been removed from the processor.
    fn on_completion(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision;

    /// A job reached its deadline unfinished (paper procedure C, failure
    /// path). If it was running it has been removed from the processor.
    fn on_deadline_miss(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision;

    /// A timer registered via [`SimContext::set_timer`] fired (used for the
    /// zero-conservative-laxity interrupt, paper procedure D). Default: no-op.
    fn on_timer(&mut self, ctx: &mut SimContext<'_>, job: JobId, token: u64) -> Decision {
        let _ = (ctx, job, token);
        Decision::Continue
    }

    /// Serializes the scheduler's internal queues and bookkeeping into an
    /// opaque, byte-stable string for crash-recovery snapshots. Returns
    /// `None` (the default) for schedulers without snapshot support — the
    /// streaming service refuses to snapshot over those.
    ///
    /// Contract: feeding the returned string to [`Scheduler::restore_state`]
    /// on a freshly constructed instance of the same configuration must
    /// yield a scheduler whose future decisions are byte-identical to the
    /// original's.
    fn snapshot_state(&self) -> Option<String> {
        None
    }

    /// Restores internal state captured by [`Scheduler::snapshot_state`].
    /// The default (for schedulers without snapshot support) rejects the
    /// blob, surfacing a corrupt/mismatched journal during recovery.
    fn restore_state(&mut self, state: &str) -> Result<(), CoreError> {
        let _ = state;
        Err(CoreError::CorruptJournal {
            line: 0,
            reason: format!("scheduler `{}` does not support state restore", self.name()),
        })
    }
}

/// Blanket impl so `&mut S` is itself a scheduler (handy for harnesses that
/// keep schedulers in collections).
impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn name(&self) -> String {
        (**self).name()
    }
    fn on_release(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        (**self).on_release(ctx, job)
    }
    fn on_completion(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        (**self).on_completion(ctx, job)
    }
    fn on_deadline_miss(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        (**self).on_deadline_miss(ctx, job)
    }
    fn on_timer(&mut self, ctx: &mut SimContext<'_>, job: JobId, token: u64) -> Decision {
        (**self).on_timer(ctx, job, token)
    }
    fn snapshot_state(&self) -> Option<String> {
        (**self).snapshot_state()
    }
    fn restore_state(&mut self, state: &str) -> Result<(), CoreError> {
        (**self).restore_state(state)
    }
}
