//! Workspace file discovery and classification.

use std::io;
use std::path::{Path, PathBuf};

/// What kind of compilation target a file belongs to. Rules scope on this:
/// library code carries the model's correctness story; bins, benches,
/// examples and integration tests are applications of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Part of a crate's library (`src/**`, minus `src/bin`).
    Lib,
    /// A binary root or part of one (`src/main.rs`, `src/bin/**`).
    Bin,
    /// A bench target (`benches/**`).
    Bench,
    /// An example (`examples/**`).
    Example,
    /// An integration test (`tests/**`).
    Test,
}

/// One source file queued for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Owning crate name (directory under `crates/`, or the workspace-root
    /// package name for top-level `src`/`tests`/`examples`).
    pub crate_name: String,
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Target classification.
    pub kind: FileKind,
    /// Is this file the root module of a compilation unit (lib.rs, main.rs,
    /// a `src/bin` entry, a bench or example)?
    pub is_crate_root: bool,
    /// Full file contents.
    pub text: String,
}

/// Discovers every workspace `.rs` file under `root`.
///
/// Layout assumptions match this repository: member crates in `crates/*`,
/// plus the root package's `src/`, `tests/` and `examples/`. The `target/`
/// directory and hidden directories are skipped.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    // Root package.
    for (dir, kind) in [
        ("src", FileKind::Lib),
        ("tests", FileKind::Test),
        ("examples", FileKind::Example),
    ] {
        collect(root, &root.join(dir), "cloudsched", kind, &mut files)?;
    }
    // Member crates.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for krate in entries {
            let name = krate
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            collect(root, &krate.join("src"), &name, FileKind::Lib, &mut files)?;
            collect(
                root,
                &krate.join("benches"),
                &name,
                FileKind::Bench,
                &mut files,
            )?;
            collect(
                root,
                &krate.join("tests"),
                &name,
                FileKind::Test,
                &mut files,
            )?;
            collect(
                root,
                &krate.join("examples"),
                &name,
                FileKind::Example,
                &mut files,
            )?;
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

/// Recursively collects `.rs` files under `dir` into `out`.
fn collect(
    root: &Path,
    dir: &Path,
    crate_name: &str,
    kind: FileKind,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect(root, &path, crate_name, kind, out)?;
            continue;
        }
        if path.extension().and_then(|e| e.to_str()) != Some("rs") {
            continue;
        }
        let rel_path = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let in_bin_dir = rel_path.contains("/src/bin/");
        let kind = if kind == FileKind::Lib && (in_bin_dir || name == "main.rs") {
            FileKind::Bin
        } else {
            kind
        };
        let is_crate_root = match kind {
            FileKind::Lib => name == "lib.rs",
            FileKind::Bin => name == "main.rs" || in_bin_dir,
            FileKind::Bench | FileKind::Example | FileKind::Test => {
                // Top-level files in benches/examples/tests are roots;
                // files in nested subdirectories are shared modules.
                rel_path
                    .rsplit_once('/')
                    .map(|(dir, _)| {
                        dir.ends_with("benches")
                            || dir.ends_with("examples")
                            || dir.ends_with("tests")
                    })
                    .unwrap_or(true)
            }
        };
        let text = std::fs::read_to_string(&path)?;
        out.push(SourceFile {
            crate_name: crate_name.to_string(),
            rel_path,
            kind,
            is_crate_root,
            text,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_and_classifies_this_workspace() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = discover(&root).expect("discover");
        assert!(files.len() > 50, "only {} files found", files.len());
        let find = |suffix: &str| {
            files
                .iter()
                .find(|f| f.rel_path.ends_with(suffix))
                .unwrap_or_else(|| panic!("{suffix} not discovered"))
        };
        let core_lib = find("crates/core/src/lib.rs");
        assert_eq!(core_lib.crate_name, "core");
        assert_eq!(core_lib.kind, FileKind::Lib);
        assert!(core_lib.is_crate_root);

        let engine = find("crates/sim/src/engine.rs");
        assert_eq!(engine.kind, FileKind::Lib);
        assert!(!engine.is_crate_root);

        let cli = find("crates/cli/src/main.rs");
        assert_eq!(cli.kind, FileKind::Bin);
        assert!(cli.is_crate_root);

        let bench = find("crates/bench/benches/kernel.rs");
        assert_eq!(bench.kind, FileKind::Bench);

        let example = find("examples/quickstart.rs");
        assert_eq!(example.kind, FileKind::Example);
        assert_eq!(example.crate_name, "cloudsched");

        let test = find("tests/properties.rs");
        assert_eq!(test.kind, FileKind::Test);

        let bin = find("crates/bench/src/bin/table1.rs");
        assert_eq!(bin.kind, FileKind::Bin);
        assert!(bin.is_crate_root);
    }
}
