//! A lightweight Rust tokenizer.
//!
//! The first generation of this crate matched rules against *masked lines*
//! (comments and string interiors blanked). That was enough for purely
//! lexical rules but produced known false-positive classes — vocabulary
//! words inside longer identifiers, operators inside generics, float-looking
//! text in integer clauses — and could not support symbol-level rules at
//! all (`use`-path resolution, receiver typing, cross-file checks).
//!
//! This module replaces the masked text with a real token stream:
//!
//! * comments (line and nested block), string literals (plain, raw, byte),
//!   char literals and lifetimes are lexed *correctly*, not approximated;
//! * every token carries its 1-based line and the brace-nesting depth at
//!   which it appears, so item spans and line mapping are exact;
//! * comments are kept (with their line and trailing/standalone position)
//!   so `// lint: allow(Lxxx)` escape directives survive tokenization.
//!
//! The lexer is byte-oriented: multi-byte UTF-8 only appears inside
//! comments and string literals, whose contents are carried opaquely.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `fn`, `as`, `for`, …).
    Ident,
    /// Lifetime (`'a`) — the text excludes the quote.
    Lifetime,
    /// Integer literal, any base, underscores and suffix included.
    Int,
    /// Float literal (decimal point, exponent, or `f32`/`f64` suffix).
    Float,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`); the text is
    /// the complete literal including delimiters.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`), delimiters included.
    Char,
    /// Punctuation / operator, multi-character operators joined (`::`,
    /// `=>`, `<=`, `<<=`, …).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token classification.
    pub kind: TokenKind,
    /// Exact source text of the token.
    pub text: String,
    /// 1-based source line of the token's first byte.
    pub line: usize,
    /// `{`-nesting depth at the token (the `{` itself is at the outer
    /// depth; the matching `}` is back at it).
    pub depth: u32,
}

impl Token {
    /// Is this token the punct `p`?
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }

    /// Is this token the identifier/keyword `name`?
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// One comment, kept out-of-band of the token stream.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment's first byte.
    pub line: usize,
    /// Comment body (delimiters stripped, block comments joined).
    pub text: String,
    /// Whether code tokens precede the comment on its starting line (a
    /// *trailing* comment) — `lint: allow` directives in trailing comments
    /// apply to their own line, standalone ones to the next line.
    pub trailing: bool,
}

/// The result of tokenizing one source file.
#[derive(Debug, Default)]
pub struct TokenStream {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

impl TokenStream {
    /// Tokens as a slice (convenience).
    pub fn toks(&self) -> &[Token] {
        &self.tokens
    }
}

/// Multi-character operators, longest first so maximal munch works by
/// scanning the table in order.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "...", "..=", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Tokenizes `source` into a [`TokenStream`].
pub fn tokenize(source: &str) -> TokenStream {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    i: usize,
    line: usize,
    depth: u32,
    /// Has a code token been emitted on the current line yet?
    code_on_line: bool,
    out: TokenStream,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            bytes: source.as_bytes(),
            i: 0,
            line: 1,
            depth: 0,
            code_on_line: false,
            out: TokenStream::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.i + ahead).copied()
    }

    fn bump_lines(&mut self, from: usize, to: usize) {
        self.line += self.bytes[from..to].iter().filter(|&&b| b == b'\n').count();
        if self.bytes[from..to].contains(&b'\n') {
            self.code_on_line = false;
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize, end: usize, line: usize) {
        let text = String::from_utf8_lossy(&self.bytes[start..end]).into_owned();
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            depth: self.depth,
        });
        self.code_on_line = true;
    }

    fn run(mut self) -> TokenStream {
        while self.i < self.bytes.len() {
            let b = self.bytes[self.i];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.code_on_line = false;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(0, false),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident_or_prefixed_literal(),
                _ if b >= 0x80 => {
                    // Non-ASCII outside strings/comments: skip the byte (the
                    // workspace is ASCII-only in code position).
                    self.i += 1;
                }
                _ => self.punct(),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start = self.i + 2;
        let mut end = start;
        while end < self.bytes.len() && self.bytes[end] != b'\n' {
            end += 1;
        }
        self.out.comments.push(Comment {
            line: self.line,
            text: String::from_utf8_lossy(&self.bytes[start..end]).into_owned(),
            trailing: self.code_on_line,
        });
        self.i = end;
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let trailing = self.code_on_line;
        let start = self.i + 2;
        let mut depth = 1u32;
        let mut j = start;
        while j < self.bytes.len() {
            if self.bytes[j] == b'/' && self.bytes.get(j + 1) == Some(&b'*') {
                depth += 1;
                j += 2;
            } else if self.bytes[j] == b'*' && self.bytes.get(j + 1) == Some(&b'/') {
                depth -= 1;
                j += 2;
                if depth == 0 {
                    break;
                }
            } else {
                j += 1;
            }
        }
        let body_end = j.saturating_sub(2).max(start);
        self.out.comments.push(Comment {
            line,
            text: String::from_utf8_lossy(&self.bytes[start..body_end]).into_owned(),
            trailing,
        });
        self.bump_lines(self.i, j);
        self.i = j;
    }

    /// Lexes a string starting at the current `"` with `hashes` raw-string
    /// hashes (`raw == true` disables escape processing).
    fn string(&mut self, hashes: u32, raw: bool) {
        let start = self.i;
        let line = self.line;
        let mut j = self.i + 1;
        while j < self.bytes.len() {
            match self.bytes[j] {
                b'\\' if !raw => j += 2,
                b'"' => {
                    if hashes == 0 {
                        j += 1;
                        break;
                    }
                    let h = hashes as usize;
                    let tail = &self.bytes[j + 1..];
                    if tail.len() >= h && tail[..h].iter().all(|&b| b == b'#') {
                        j += 1 + h;
                        break;
                    }
                    j += 1;
                }
                _ => j += 1,
            }
        }
        let j = j.min(self.bytes.len());
        self.push(TokenKind::Str, start, j, line);
        self.bump_lines(start, j);
        self.i = j;
    }

    fn char_or_lifetime(&mut self) {
        let start = self.i;
        // Char literal if the quote closes within the next few bytes or an
        // escape follows; otherwise a lifetime.
        let is_char = match self.peek(1) {
            Some(b'\\') => true,
            Some(_) => self.peek(2) == Some(b'\''),
            None => false,
        };
        if is_char {
            let mut j = self.i + 1;
            if self.bytes[j] == b'\\' {
                j += 2;
                // Escapes like \u{1F600} or \x7f: scan to the closing quote.
                while j < self.bytes.len() && self.bytes[j] != b'\'' {
                    j += 1;
                }
            } else {
                j += 1;
            }
            let j = (j + 1).min(self.bytes.len());
            self.push(TokenKind::Char, start, j, self.line);
            self.i = j;
        } else {
            let mut j = self.i + 1;
            while j < self.bytes.len()
                && (self.bytes[j].is_ascii_alphanumeric() || self.bytes[j] == b'_')
            {
                j += 1;
            }
            let line = self.line;
            let text = String::from_utf8_lossy(&self.bytes[start + 1..j]).into_owned();
            self.out.tokens.push(Token {
                kind: TokenKind::Lifetime,
                text,
                line,
                depth: self.depth,
            });
            self.code_on_line = true;
            self.i = j;
        }
    }

    fn number(&mut self) {
        let start = self.i;
        let mut j = self.i;
        let mut float = false;
        // Hex/octal/binary prefix: no float forms.
        if self.bytes[j] == b'0'
            && matches!(
                self.bytes.get(j + 1),
                Some(b'x') | Some(b'X') | Some(b'o') | Some(b'b')
            )
        {
            j += 2;
            while j < self.bytes.len()
                && (self.bytes[j].is_ascii_alphanumeric() || self.bytes[j] == b'_')
            {
                j += 1;
            }
        } else {
            while j < self.bytes.len() && (self.bytes[j].is_ascii_digit() || self.bytes[j] == b'_')
            {
                j += 1;
            }
            // Decimal point: only if followed by a digit (so `1..10` and
            // `1.max(2)` stay integers) or at end-of-expression (`1.`).
            if self.bytes.get(j) == Some(&b'.')
                && self
                    .bytes
                    .get(j + 1)
                    .is_some_and(|b| b.is_ascii_digit() || b == &b'_')
            {
                float = true;
                j += 1;
                while j < self.bytes.len()
                    && (self.bytes[j].is_ascii_digit() || self.bytes[j] == b'_')
                {
                    j += 1;
                }
            }
            // Exponent: `1e9`, `1.5e-12`, `5E+3`.
            if matches!(self.bytes.get(j), Some(b'e') | Some(b'E')) {
                let sign = matches!(self.bytes.get(j + 1), Some(b'+') | Some(b'-'));
                let digit_at = if sign { j + 2 } else { j + 1 };
                if self.bytes.get(digit_at).is_some_and(|b| b.is_ascii_digit()) {
                    float = true;
                    j = digit_at;
                    while j < self.bytes.len()
                        && (self.bytes[j].is_ascii_digit() || self.bytes[j] == b'_')
                    {
                        j += 1;
                    }
                }
            }
            // Suffix (`u64`, `f64`, `usize`, …).
            let suffix_start = j;
            while j < self.bytes.len()
                && (self.bytes[j].is_ascii_alphanumeric() || self.bytes[j] == b'_')
            {
                j += 1;
            }
            let suffix = &self.bytes[suffix_start..j];
            if suffix == b"f32" || suffix == b"f64" {
                float = true;
            }
        }
        let kind = if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, start, j, self.line);
        self.i = j;
    }

    fn ident_or_prefixed_literal(&mut self) {
        let start = self.i;
        let mut j = self.i;
        while j < self.bytes.len()
            && (self.bytes[j].is_ascii_alphanumeric() || self.bytes[j] == b'_')
        {
            j += 1;
        }
        let ident = &self.bytes[start..j];
        // String/char literal prefixes: `b"…"`, `r"…"`, `r#"…"#`, `br#"…"#`,
        // `b'x'`. Raw identifiers `r#name` are lexed as plain identifiers.
        if matches!(ident, b"b" | b"r" | b"br" | b"rb") {
            let mut k = j;
            let mut hashes = 0u32;
            while self.bytes.get(k) == Some(&b'#') {
                hashes += 1;
                k += 1;
            }
            let raw = ident != b"b";
            if self.bytes.get(k) == Some(&b'"') && (hashes == 0 || raw) {
                // Lex from the quote, then splice the prefix (`r#`, `b`, …)
                // back into the token text.
                self.i = k;
                let line = self.line;
                self.string(hashes, raw);
                if let Some(last) = self.out.tokens.last_mut() {
                    let prefix = String::from_utf8_lossy(
                        &self.bytes[start..start + ident.len() + hashes as usize],
                    );
                    last.text = format!("{prefix}{}", last.text);
                    last.line = line;
                }
                return;
            }
            if ident == b"r" && hashes == 1 && self.bytes.get(k).is_some_and(is_ident_start) {
                // Raw identifier `r#foo`: lex the identifier proper.
                let id_start = k;
                let mut m = k;
                while m < self.bytes.len()
                    && (self.bytes[m].is_ascii_alphanumeric() || self.bytes[m] == b'_')
                {
                    m += 1;
                }
                self.push(TokenKind::Ident, id_start, m, self.line);
                self.i = m;
                return;
            }
            if ident == b"b" && self.bytes.get(j) == Some(&b'\'') {
                // Byte char `b'x'`.
                self.i = j;
                let line = self.line;
                self.char_or_lifetime();
                if let Some(last) = self.out.tokens.last_mut() {
                    last.text = format!("b{}", last.text);
                    last.line = line;
                }
                return;
            }
        }
        self.push(TokenKind::Ident, start, j, self.line);
        self.i = j;
    }

    fn punct(&mut self) {
        let rest = &self.bytes[self.i..];
        for op in MULTI_PUNCT {
            if rest.starts_with(op.as_bytes()) {
                let start = self.i;
                let end = self.i + op.len();
                self.push(TokenKind::Punct, start, end, self.line);
                self.i = end;
                return;
            }
        }
        let b = self.bytes[self.i];
        if b == b'}' {
            self.depth = self.depth.saturating_sub(1);
        }
        self.push(TokenKind::Punct, self.i, self.i + 1, self.line);
        if b == b'{' {
            self.depth += 1;
        }
        self.i += 1;
    }
}

fn is_ident_start(b: &u8) -> bool {
    b.is_ascii_alphabetic() || *b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_literals() {
        assert_eq!(
            texts("let x = a.b::<f64>() + 1;"),
            ["let", "x", "=", "a", ".", "b", "::", "<", "f64", ">", "(", ")", "+", "1", ";"]
        );
    }

    #[test]
    fn multi_char_operators_are_joined() {
        assert_eq!(
            texts("a <= b >= c == d != e && f || g << h >>= i ..= j"),
            [
                "a", "<=", "b", ">=", "c", "==", "d", "!=", "e", "&&", "f", "||", "g", "<<", "h",
                ">>=", "i", "..=", "j"
            ]
        );
    }

    #[test]
    fn float_vs_int_literals() {
        let ts = tokenize("1.0 1e-9 5E+3 1_000.5 2f64 7 0x5EED 1..10 3.max(4)");
        let kinds: Vec<(TokenKind, &str)> = ts
            .tokens
            .iter()
            .map(|t| (t.kind, t.text.as_str()))
            .collect();
        assert_eq!(kinds[0], (TokenKind::Float, "1.0"));
        assert_eq!(kinds[1], (TokenKind::Float, "1e-9"));
        assert_eq!(kinds[2], (TokenKind::Float, "5E+3"));
        assert_eq!(kinds[3], (TokenKind::Float, "1_000.5"));
        assert_eq!(kinds[4], (TokenKind::Float, "2f64"));
        assert_eq!(kinds[5], (TokenKind::Int, "7"));
        assert_eq!(kinds[6], (TokenKind::Int, "0x5EED"));
        // `1..10` is int, range, int.
        assert_eq!(kinds[7], (TokenKind::Int, "1"));
        assert_eq!(kinds[8], (TokenKind::Punct, ".."));
        assert_eq!(kinds[9], (TokenKind::Int, "10"));
        // `3.max(4)` is int, dot, ident.
        assert_eq!(kinds[10], (TokenKind::Int, "3"));
        assert_eq!(kinds[11], (TokenKind::Punct, "."));
        assert_eq!(kinds[12], (TokenKind::Ident, "max"));
    }

    #[test]
    fn comments_do_not_produce_tokens() {
        let ts = tokenize("a // x.unwrap()\n/* b /* nested */ still */ c");
        let texts: Vec<&str> = ts.tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["a", "c"]);
        assert_eq!(ts.comments.len(), 2);
        assert!(ts.comments[0].trailing);
        assert_eq!(ts.comments[0].text, " x.unwrap()");
        assert!(ts.comments[1].text.contains("nested"));
    }

    #[test]
    fn strings_chars_and_lifetimes() {
        let ts = tokenize(r#"let s = "a == b"; let c = '"'; fn f<'a>(x: &'a str) {}"#);
        let strs: Vec<&Token> = ts
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "\"a == b\"");
        assert!(ts.tokens.iter().any(|t| t.kind == TokenKind::Char));
        assert_eq!(
            ts.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        let ts = tokenize("let s = r#\"inner \"quote\" .unwrap()\"#; y.unwrap();");
        let s = ts
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .expect("string token");
        assert!(s.text.contains("inner"));
        assert!(s.text.starts_with("r#\""));
        assert!(s.text.ends_with("\"#"));
        // The unwrap *outside* the string is still a real token.
        assert!(ts.tokens.iter().any(|t| t.is_ident("unwrap")));
        // Only one unwrap ident — the one inside the raw string is opaque.
        assert_eq!(ts.tokens.iter().filter(|t| t.is_ident("unwrap")).count(), 1);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let ts = tokenize(r##"let a = b"bytes"; let c = b'\n'; let r = br#"raw"#;"##);
        assert_eq!(
            ts.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Str)
                .count(),
            2
        );
        assert!(ts.tokens.iter().any(|t| t.kind == TokenKind::Char));
    }

    #[test]
    fn line_numbers_are_exact() {
        let ts = tokenize("a\n/* two\nlines */ b\n\"s\ntr\" c\n");
        let tok = |name: &str| ts.tokens.iter().find(|t| t.text == name).expect("token");
        assert_eq!(tok("a").line, 1);
        assert_eq!(tok("b").line, 3);
        assert_eq!(tok("c").line, 5);
    }

    #[test]
    fn brace_depth_tracks_nesting() {
        let ts = tokenize("fn f() { let x = { 1 }; } const Y: u8 = 0;");
        let tok = |name: &str| ts.tokens.iter().find(|t| t.text == name).expect("token");
        assert_eq!(tok("fn").depth, 0);
        assert_eq!(tok("x").depth, 1);
        assert_eq!(tok("1").depth, 2);
        assert_eq!(tok("const").depth, 0);
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let ts = tokenize(r#"let s = "ends with \" quote"; z.unwrap();"#);
        assert!(ts.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(
            ts.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Str)
                .count(),
            1
        );
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let ts = tokenize("let r#fn = 1;");
        assert!(ts.tokens.iter().any(|t| t.is_ident("fn")));
    }
}
