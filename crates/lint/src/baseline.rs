//! Grandfathered-finding baseline.
//!
//! The baseline is a checked-in text file (`lint.baseline` at the workspace
//! root) listing findings that predate the lint pass. Each line is
//!
//! ```text
//! RULE|workspace/relative/path.rs|trimmed offending line text
//! ```
//!
//! Matching is content-based, not line-number-based, so unrelated edits do
//! not invalidate the baseline; moving or fixing the offending line does.
//! Every baseline entry must match a current finding — stale entries fail
//! the run, keeping the debt ledger honest. Regenerate with
//! `cloudsched-lint --write-baseline` after deliberate changes.

use crate::rules::Finding;
use std::collections::HashMap;
use std::path::Path;

/// A parsed baseline: entry → allowed occurrence count.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: HashMap<String, usize>,
}

impl Baseline {
    /// Loads the baseline from `path`; a missing file is an empty baseline.
    pub fn load(path: &Path) -> std::io::Result<Baseline> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(Self::parse(&text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(e),
        }
    }

    /// Parses baseline text (one entry per line; `#` comments and blank
    /// lines ignored).
    pub fn parse(text: &str) -> Baseline {
        let mut entries: HashMap<String, usize> = HashMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            *entries.entry(line.to_string()).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// The canonical baseline key of a finding.
    pub fn key(finding: &Finding) -> String {
        format!("{}|{}|{}", finding.rule, finding.path, finding.excerpt)
    }

    /// Splits `findings` into (new, grandfathered) and reports stale
    /// entries (baseline lines matching no current finding).
    pub fn apply(&self, findings: Vec<Finding>) -> BaselineResult {
        let mut remaining = self.entries.clone();
        let mut new = Vec::new();
        let mut grandfathered = Vec::new();
        for f in findings {
            let key = Self::key(&f);
            match remaining.get_mut(&key) {
                Some(count) if *count > 0 => {
                    *count -= 1;
                    grandfathered.push(f);
                }
                _ => new.push(f),
            }
        }
        let mut stale: Vec<String> = remaining
            .into_iter()
            .filter(|(_, count)| *count > 0)
            .map(|(key, count)| {
                if count > 1 {
                    format!("{key} (×{count})")
                } else {
                    key
                }
            })
            .collect();
        stale.sort();
        BaselineResult {
            new,
            grandfathered,
            stale,
        }
    }

    /// Serializes findings as baseline text.
    pub fn render(findings: &[Finding]) -> String {
        let mut lines: Vec<String> = findings.iter().map(Self::key).collect();
        lines.sort();
        let mut out = String::from(
            "# cloudsched-lint baseline — grandfathered findings.\n\
             # Format: RULE|path|trimmed offending line. Regenerate with\n\
             # `cargo run -p cloudsched-lint -- --write-baseline`.\n",
        );
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
        out
    }
}

/// Outcome of filtering findings through a baseline.
#[derive(Debug)]
pub struct BaselineResult {
    /// Findings not covered by the baseline: these fail the run.
    pub new: Vec<Finding>,
    /// Findings matched by baseline entries: reported but tolerated.
    pub grandfathered: Vec<Finding>,
    /// Baseline entries with no matching finding: the debt was paid off —
    /// the entry must be removed. These also fail the run.
    pub stale: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, excerpt: &str) -> Finding {
        Finding {
            rule,
            severity: crate::rules::Severity::Error,
            path: path.into(),
            line: 1,
            message: "m".into(),
            excerpt: excerpt.into(),
        }
    }

    #[test]
    fn baseline_splits_new_and_grandfathered() {
        let b = Baseline::parse("L002|a.rs|x.unwrap()\n");
        let r = b.apply(vec![
            finding("L002", "a.rs", "x.unwrap()"),
            finding("L002", "b.rs", "y.unwrap()"),
        ]);
        assert_eq!(r.grandfathered.len(), 1);
        assert_eq!(r.new.len(), 1);
        assert_eq!(r.new[0].path, "b.rs");
        assert!(r.stale.is_empty());
    }

    #[test]
    fn duplicate_entries_count() {
        let b = Baseline::parse("L002|a.rs|x.unwrap()\nL002|a.rs|x.unwrap()\n");
        let r = b.apply(vec![
            finding("L002", "a.rs", "x.unwrap()"),
            finding("L002", "a.rs", "x.unwrap()"),
            finding("L002", "a.rs", "x.unwrap()"),
        ]);
        assert_eq!(r.grandfathered.len(), 2);
        assert_eq!(r.new.len(), 1);
    }

    #[test]
    fn stale_entries_are_reported() {
        let b = Baseline::parse("# comment\nL003|gone.rs|panic!(\"x\")\n\n");
        let r = b.apply(vec![]);
        assert_eq!(r.stale.len(), 1);
        assert!(r.stale[0].contains("gone.rs"));
    }

    #[test]
    fn render_round_trips() {
        let fs = vec![
            finding("L002", "a.rs", "x.unwrap()"),
            finding("L001", "b.rs", "a == 1.0"),
        ];
        let text = Baseline::render(&fs);
        let b = Baseline::parse(&text);
        let r = b.apply(fs);
        assert!(r.new.is_empty());
        assert!(r.stale.is_empty());
        assert_eq!(r.grandfathered.len(), 2);
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(Path::new("/definitely/not/here.baseline")).expect("load");
        let r = b.apply(vec![finding("L005", "c.rs", "Instant::now()")]);
        assert_eq!(r.new.len(), 1);
    }
}
