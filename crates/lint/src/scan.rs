//! Comment- and string-aware source scanning.
//!
//! The rules in this crate are lexical, not syntactic: no external parser is
//! available offline, and the properties we enforce (no raw float
//! comparisons, no `.unwrap()`, no wall clock) are visible at the token
//! level. What *does* need care is not matching inside comments, doc tests,
//! string literals or char literals — this module handles exactly that.
//!
//! [`scan`] produces:
//!
//! * a **masked** copy of the source, byte-for-byte the same length, where
//!   the interior of every comment and every string/char literal is replaced
//!   with spaces (newlines preserved, so line/column arithmetic holds);
//! * the set of `// lint: allow(Lxxx)` escape directives found in comments;
//! * the byte ranges of `#[cfg(test)]`-gated items (test modules and test
//!   functions), so rules can skip test code.

use std::collections::HashMap;
use std::ops::Range;

/// Result of scanning one source file.
#[derive(Debug)]
pub struct Scan {
    /// Source with comment/string interiors blanked (same length as input).
    pub masked: String,
    /// For each *line number* (1-based): rules allowed on that line. A
    /// directive on its own comment line applies to the following line; a
    /// trailing directive applies to its own line.
    pub allows: HashMap<usize, Vec<String>>,
    /// Byte ranges covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<Range<usize>>,
}

impl Scan {
    /// Is byte offset `pos` inside `#[cfg(test)]` code?
    pub fn in_test_code(&self, pos: usize) -> bool {
        self.test_ranges.iter().any(|r| r.contains(&pos))
    }

    /// Is `rule` allowed (escaped) on 1-based `line`?
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }
}

/// Lexer state while walking the raw source.
#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the payload is the nesting depth.
    BlockComment(u32),
    Str,
    /// Raw string with `n` hashes: terminated by `"` followed by `n` `#`s.
    RawStr(u32),
    Char,
}

/// Scans `source`, producing the masked text, allow directives and test
/// ranges. Operates on bytes; multi-byte UTF-8 content only ever appears
/// inside comments/strings, which are masked wholesale.
pub fn scan(source: &str) -> Scan {
    let bytes = source.as_bytes();
    let mut masked: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut comments: Vec<(usize, String)> = Vec::new(); // (line, text)
    let mut state = State::Code;
    let mut line = 1usize;
    let mut comment_buf = String::new();
    let mut comment_line = 1usize;
    let mut i = 0usize;

    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match b {
                b'/' if next == Some(b'/') => {
                    state = State::LineComment;
                    comment_buf.clear();
                    comment_line = line;
                    masked.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                b'/' if next == Some(b'*') => {
                    state = State::BlockComment(1);
                    comment_buf.clear();
                    comment_line = line;
                    masked.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                b'"' => {
                    // Raw strings: r"..." / r#"..."# / br#"..."# — detect the
                    // prefix we already emitted.
                    let hashes = raw_string_hashes(&masked);
                    match hashes {
                        Some(n) => state = State::RawStr(n),
                        None => state = State::Str,
                    }
                    masked.push(b'"');
                }
                b'\'' => {
                    // Distinguish char literal from lifetime: a lifetime is
                    // `'ident` NOT followed by a closing quote.
                    if is_char_literal(bytes, i) {
                        state = State::Char;
                    }
                    masked.push(b'\'');
                }
                _ => masked.push(b),
            },
            State::LineComment => {
                if b == b'\n' {
                    comments.push((comment_line, std::mem::take(&mut comment_buf)));
                    state = State::Code;
                    masked.push(b'\n');
                } else {
                    comment_buf.push(b as char);
                    masked.push(if b.is_ascii() { b' ' } else { b' ' });
                }
            }
            State::BlockComment(depth) => {
                if b == b'*' && next == Some(b'/') {
                    if depth == 1 {
                        comments.push((comment_line, std::mem::take(&mut comment_buf)));
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    masked.extend_from_slice(b"  ");
                    i += 2;
                    if b == b'\n' {
                        line += 1;
                    }
                    continue;
                }
                if b == b'/' && next == Some(b'*') {
                    state = State::BlockComment(depth + 1);
                    masked.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                if b == b'\n' {
                    comment_buf.push('\n');
                    masked.push(b'\n');
                } else {
                    comment_buf.push(b as char);
                    masked.push(b' ');
                }
            }
            State::Str => match b {
                b'\\' => {
                    masked.extend_from_slice(b"  ");
                    i += 2;
                    if next == Some(b'\n') {
                        line += 1;
                        *masked.last_mut().expect("just pushed") = b'\n';
                    }
                    continue;
                }
                b'"' => {
                    state = State::Code;
                    masked.push(b'"');
                }
                b'\n' => masked.push(b'\n'),
                _ => masked.push(b' '),
            },
            State::RawStr(n) => {
                if b == b'"' && raw_string_closes(bytes, i, n) {
                    state = State::Code;
                    masked.push(b'"');
                    // Mask the trailing hashes as code (they are delimiters).
                    for _ in 0..n {
                        masked.push(b'#');
                    }
                    i += 1 + n as usize;
                    continue;
                }
                masked.push(if b == b'\n' { b'\n' } else { b' ' });
            }
            State::Char => match b {
                b'\\' => {
                    masked.extend_from_slice(b"  ");
                    i += 2;
                    continue;
                }
                b'\'' => {
                    state = State::Code;
                    masked.push(b'\'');
                }
                _ => masked.push(b' '),
            },
        }
        if b == b'\n' {
            line += 1;
        }
        i += 1;
    }
    if !comment_buf.is_empty() {
        comments.push((comment_line, comment_buf));
    }

    let masked = String::from_utf8_lossy(&masked).into_owned();
    let allows = collect_allows(source, &comments);
    let test_ranges = find_test_ranges(&masked);
    Scan {
        masked,
        allows,
        test_ranges,
    }
}

/// After emitting the masked prefix, decides whether the `"` starting at the
/// current position begins a raw string, and with how many hashes.
fn raw_string_hashes(masked_prefix: &[u8]) -> Option<u32> {
    let mut n = 0u32;
    let mut idx = masked_prefix.len();
    while idx > 0 && masked_prefix[idx - 1] == b'#' {
        n += 1;
        idx -= 1;
    }
    if idx == 0 {
        return None;
    }
    let c = masked_prefix[idx - 1];
    let prev = if idx >= 2 {
        masked_prefix[idx - 2]
    } else {
        b' '
    };
    if c == b'r' && !prev.is_ascii_alphanumeric() && prev != b'_' {
        return Some(n);
    }
    if c == b'r' && prev == b'b' {
        let prev2 = if idx >= 3 {
            masked_prefix[idx - 3]
        } else {
            b' '
        };
        if !prev2.is_ascii_alphanumeric() && prev2 != b'_' {
            return Some(n);
        }
    }
    None
}

/// Does the `"` at `bytes[i]` close a raw string with `n` hashes?
fn raw_string_closes(bytes: &[u8], i: usize, n: u32) -> bool {
    let n = n as usize;
    if i + n >= bytes.len() + 1 && n > 0 {
        return false;
    }
    bytes[i + 1..].len() >= n && bytes[i + 1..i + 1 + n].iter().all(|&b| b == b'#')
}

/// Is the `'` at `bytes[i]` the start of a char literal (vs a lifetime)?
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    // 'x' or '\x...' — a closing quote within a few bytes. Lifetimes are
    // 'ident with no closing quote.
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&b'\''),
        None => false,
    }
}

/// Extracts `lint: allow(Lxxx[, Lyyy…])` directives from collected comments.
///
/// A directive in a trailing comment applies to its own line; a directive in
/// a comment that is alone on its line applies to the next line.
fn collect_allows(source: &str, comments: &[(usize, String)]) -> HashMap<usize, Vec<String>> {
    let lines: Vec<&str> = source.lines().collect();
    let mut allows: HashMap<usize, Vec<String>> = HashMap::new();
    for (line_no, text) in comments {
        let Some(rules) = parse_allow(text) else {
            continue;
        };
        // Trailing comment (code before the `//` on the same line) → same
        // line; otherwise → next line.
        let own_line = lines
            .get(line_no - 1)
            .map(|l| {
                let before = l.split("//").next().unwrap_or("");
                !before.trim().is_empty()
            })
            .unwrap_or(false);
        let target = if own_line { *line_no } else { line_no + 1 };
        allows.entry(target).or_default().extend(rules);
    }
    allows
}

/// Parses the rule list out of one comment body, if it is an allow directive.
fn parse_allow(comment: &str) -> Option<Vec<String>> {
    let idx = comment.find("lint: allow(")?;
    let rest = &comment[idx + "lint: allow(".len()..];
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| {
            r.len() == 4 && r.starts_with('L') && r[1..].chars().all(|c| c.is_ascii_digit())
        })
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

/// Finds the byte ranges of `#[cfg(test)]`-gated items in masked source by
/// brace matching from the attribute.
fn find_test_ranges(masked: &str) -> Vec<Range<usize>> {
    let mut ranges = Vec::new();
    let needle = "#[cfg(test)]";
    let bytes = masked.as_bytes();
    let mut from = 0usize;
    while let Some(rel) = masked[from..].find(needle) {
        let attr_at = from + rel;
        // Find the opening brace of the gated item.
        let mut depth = 0i64;
        let mut start = None;
        let mut end = attr_at + needle.len();
        for (off, &b) in bytes[attr_at..].iter().enumerate() {
            match b {
                b'{' => {
                    if start.is_none() {
                        start = Some(attr_at + off);
                    }
                    depth += 1;
                }
                b'}' => {
                    depth -= 1;
                    if depth == 0 && start.is_some() {
                        end = attr_at + off + 1;
                        break;
                    }
                }
                // A `;` before any `{` ends the item (e.g. a gated `use`).
                b';' if start.is_none() => {
                    end = attr_at + off + 1;
                    break;
                }
                _ => {}
            }
        }
        ranges.push(attr_at..end.max(attr_at + needle.len()));
        from = end.max(attr_at + needle.len());
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let s = scan("let x = 1; // unwrap() here\n/* .unwrap() */ let y = 2;\n");
        assert!(!s.masked.contains("unwrap"));
        assert!(s.masked.contains("let x = 1;"));
        assert!(s.masked.contains("let y = 2;"));
        assert_eq!(
            s.masked.len(),
            "let x = 1; // unwrap() here\n/* .unwrap() */ let y = 2;\n".len()
        );
    }

    #[test]
    fn masks_nested_block_comments() {
        let s = scan("a /* outer /* inner */ still comment */ b");
        assert!(s.masked.starts_with('a'));
        assert!(s.masked.ends_with('b'));
        assert!(!s.masked.contains("inner"));
        assert!(!s.masked.contains("still"));
    }

    #[test]
    fn masks_strings_and_chars_but_not_code() {
        let s = scan(r#"let s = "a == b .unwrap()"; let c = '"'; x.unwrap();"#);
        assert!(!s.masked.contains("a == b"));
        assert!(s.masked.contains("x.unwrap();"), "{}", s.masked);
    }

    #[test]
    fn masks_raw_strings() {
        let src = "let s = r#\"inner .unwrap() \"quote\" \"#; y.unwrap();";
        let s = scan(src);
        assert!(!s.masked.contains("inner"));
        assert!(s.masked.contains("y.unwrap();"), "{}", s.masked);
    }

    #[test]
    fn lifetimes_do_not_open_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> &'a str { x } y.unwrap();");
        assert!(s.masked.contains("y.unwrap();"));
    }

    #[test]
    fn escaped_quote_in_string() {
        let s = scan(r#"let s = "ends with backslash \" quote"; z.unwrap();"#);
        assert!(s.masked.contains("z.unwrap();"), "{}", s.masked);
    }

    #[test]
    fn allow_directive_trailing_applies_to_same_line() {
        let s = scan("let a = x.unwrap(); // lint: allow(L002)\n");
        assert!(s.is_allowed("L002", 1));
        assert!(!s.is_allowed("L001", 1));
    }

    #[test]
    fn allow_directive_standalone_applies_to_next_line() {
        let s = scan("// lint: allow(L001, L003)\nlet b = y == z;\n");
        assert!(s.is_allowed("L001", 2));
        assert!(s.is_allowed("L003", 2));
        assert!(!s.is_allowed("L001", 1));
    }

    #[test]
    fn cfg_test_ranges_cover_test_modules() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let s = scan(src);
        let unwrap_pos = src.find("x.unwrap").expect("present");
        assert!(s.in_test_code(unwrap_pos));
        let lib2 = src.find("lib2").expect("present");
        assert!(!s.in_test_code(lib2));
    }

    #[test]
    fn newlines_survive_masking_for_line_math() {
        let src = "/* a\nb\nc */\nlet x = 1;\n";
        let s = scan(src);
        assert_eq!(s.masked.matches('\n').count(), src.matches('\n').count());
        // `let x` is still on line 4.
        let line_of =
            |hay: &str, pat: &str| hay[..hay.find(pat).expect("present")].matches('\n').count() + 1;
        assert_eq!(line_of(&s.masked, "let x"), 4);
    }
}
