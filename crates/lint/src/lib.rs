//! # cloudsched-lint
//!
//! A std-only static-analysis pass for this workspace. The paper's
//! guarantees (Thm 2's EDF 1-competitiveness, Thm 3's V-Dover bound) hold
//! only if the simulator respects the model *exactly*, and the workspace's
//! correctness story rests on tolerance-disciplined `f64` arithmetic
//! (`cloudsched_core::numeric::approx_*`), panic-free library code and a
//! deterministic event clock. Nothing in stock `rustc`/`clippy` enforces
//! those project policies, and the sandbox has no network to fetch a real
//! parser — so this crate tokenizes every workspace `.rs` file itself
//! (comment/string-aware, see [`scan`]) and enforces the six rules listed
//! in [`rules`].
//!
//! The pass runs three ways:
//!
//! * `cargo run -p cloudsched-lint` — the standalone binary;
//! * `cloudsched lint` — through the workspace CLI;
//! * `cargo test -q` — the tier-1 test in `tests/workspace.rs` fails the
//!   suite on any unbaselined finding.
//!
//! Escapes: `// lint: allow(Lxxx)` on (or immediately above) a line, or the
//! checked-in `lint.baseline` ledger for grandfathered sites (see
//! [`baseline`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod rules;
pub mod scan;
pub mod source;

pub use baseline::{Baseline, BaselineResult};
pub use rules::{check_file, Finding};
pub use source::{discover, FileKind, SourceFile};

use std::path::{Path, PathBuf};

/// Result of a full workspace pass.
#[derive(Debug)]
pub struct LintReport {
    /// Findings not covered by the baseline (fail the run).
    pub new: Vec<Finding>,
    /// Baseline-tolerated findings.
    pub grandfathered: Vec<Finding>,
    /// Baseline entries whose finding no longer exists (fail the run).
    pub stale: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// A run is clean when nothing new fired and no baseline entry is stale.
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.new {
            out.push_str(&format!("{f}\n"));
        }
        for s in &self.stale {
            out.push_str(&format!(
                "stale baseline entry (fix was landed — remove the line): {s}\n"
            ));
        }
        out.push_str(&format!(
            "cloudsched-lint: {} files, {} new finding(s), {} grandfathered, {} stale baseline entr{}\n",
            self.files_scanned,
            self.new.len(),
            self.grandfathered.len(),
            self.stale.len(),
            if self.stale.len() == 1 { "y" } else { "ies" },
        ));
        out
    }
}

/// The canonical baseline location for a workspace root.
pub fn baseline_path(root: &Path) -> PathBuf {
    root.join("lint.baseline")
}

/// Lints every workspace file under `root`, applying the baseline at
/// [`baseline_path`].
pub fn run_workspace(root: &Path) -> std::io::Result<LintReport> {
    if !root.join("Cargo.toml").is_file() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("{} is not a workspace root (no Cargo.toml)", root.display()),
        ));
    }
    let files = discover(root)?;
    let mut findings = Vec::new();
    for file in &files {
        let scanned = scan::scan(&file.text);
        findings.extend(check_file(file, &scanned));
    }
    let baseline = Baseline::load(&baseline_path(root))?;
    let BaselineResult {
        new,
        grandfathered,
        stale,
    } = baseline.apply(findings);
    Ok(LintReport {
        new,
        grandfathered,
        stale,
        files_scanned: files.len(),
    })
}

/// Lints the workspace and rewrites the baseline to cover every current
/// finding. Returns the number of entries written.
pub fn write_baseline(root: &Path) -> std::io::Result<usize> {
    let files = discover(root)?;
    let mut findings = Vec::new();
    for file in &files {
        let scanned = scan::scan(&file.text);
        findings.extend(check_file(file, &scanned));
    }
    std::fs::write(baseline_path(root), Baseline::render(&findings))?;
    Ok(findings.len())
}

/// Walks upward from `start` to the first directory containing a
/// `Cargo.toml` that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates/lint/Cargo.toml").exists());
    }

    #[test]
    fn report_rendering_counts() {
        let r = LintReport {
            new: vec![],
            grandfathered: vec![],
            stale: vec!["L001|x.rs|a == 1.0".into()],
            files_scanned: 3,
        };
        assert!(!r.is_clean());
        let text = r.render();
        assert!(text.contains("stale"));
        assert!(text.contains("3 files"));
    }
}
