//! # cloudsched-lint
//!
//! A std-only static-analysis pass for this workspace. The paper's
//! guarantees (Thm 2's EDF 1-competitiveness, Thm 3's V-Dover bound) hold
//! only if the simulator respects the model *exactly*, and the workspace's
//! correctness story rests on tolerance-disciplined `f64` arithmetic
//! (`cloudsched_core::numeric::approx_*`), panic-free library code, a
//! deterministic event clock, and — since the PR 5 sweep machinery — on
//! three structural determinism invariants: all parallelism through
//! `core::par::parallel_map`, all seeds through `core::rng::derive_seed`,
//! and no hash-order iteration anywhere goldens can see. Nothing in stock
//! `rustc`/`clippy` enforces those project policies, and the sandbox has no
//! network to fetch a real parser — so this crate lexes every workspace
//! `.rs` file itself ([`tokens`]), builds a per-file symbol model
//! ([`model`]), and enforces the eleven rules listed in [`rules`].
//!
//! The pass is **two-phase**: phase 1 tokenizes every file and assembles a
//! [`WorkspaceIndex`] — per-file token streams and models plus the
//! sanctioned helper surfaces (what `core::numeric`, `core::par` and
//! `core::rng` actually export). Phase 2 runs the rules with the index in
//! scope, so a rule can point its message at the real replacement helper
//! and cross-check names against the file that defines them.
//!
//! The pass runs three ways:
//!
//! * `cargo run -p cloudsched-lint` — the standalone binary (`--json` for
//!   machine output, `--explain Lxxx` for the rule text);
//! * `cloudsched lint` — through the workspace CLI;
//! * `cargo test -q` — the tier-1 test in `tests/workspace.rs` fails the
//!   suite on any unbaselined finding.
//!
//! Escapes: `// lint: allow(Lxxx) — reason` on (or immediately above) a
//! line, or the checked-in `lint.baseline` ledger for grandfathered sites
//! (see [`baseline`]). The baseline is kept empty; a non-empty one renders
//! a warning so CI can annotate the debt.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod error;
pub mod model;
pub mod rules;
pub mod source;
pub mod tokens;

pub use baseline::{Baseline, BaselineResult};
pub use error::LintError;
pub use rules::{explain, rule_info, Finding, RuleInfo, Severity, RULES};
pub use source::{discover, FileKind, SourceFile};

use model::FileModel;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use tokens::TokenStream;

/// One indexed file: source + tokens + symbol model.
#[derive(Debug)]
pub struct FileEntry {
    /// The discovered source file.
    pub file: SourceFile,
    /// Its token stream.
    pub tokens: TokenStream,
    /// Its symbol model.
    pub model: FileModel,
}

/// Phase-1 product: every file tokenized and modelled, plus the sanctioned
/// helper surfaces rules reference in their messages and checks.
#[derive(Debug)]
pub struct WorkspaceIndex {
    /// Every workspace file, sorted by path.
    pub files: Vec<FileEntry>,
    /// Public fns exported by `core/src/numeric.rs` (checked conversions,
    /// `approx_*`). L010 names these in its fix hint.
    pub numeric_helpers: BTreeSet<String>,
    /// Public fns exported by `core/src/par.rs` (`parallel_map`, …). L008
    /// names these in its fix hint.
    pub par_fns: BTreeSet<String>,
    /// Public consts exported by `core/src/rng.rs` (`SEED_STREAM_*`). L009
    /// names these in its fix hint.
    pub rng_consts: BTreeSet<String>,
}

/// Tokenizes and models `files` into a [`WorkspaceIndex`] (phase 1).
pub fn build_index(files: Vec<SourceFile>) -> WorkspaceIndex {
    let mut entries = Vec::with_capacity(files.len());
    for file in files {
        let tokens = tokens::tokenize(&file.text);
        let model = model::build_model(&tokens);
        entries.push(FileEntry {
            file,
            tokens,
            model,
        });
    }
    let exported = |suffix: &str, pick: fn(&FileEntry) -> &[String]| -> BTreeSet<String> {
        entries
            .iter()
            .filter(|e| e.file.rel_path.ends_with(suffix))
            .flat_map(|e| pick(e).iter().cloned())
            .collect()
    };
    let pub_fn_names = |e: &FileEntry| -> Vec<String> {
        e.model
            .fns
            .iter()
            .filter(|f| f.is_pub)
            .map(|f| f.name.clone())
            .collect()
    };
    let numeric_helpers = entries
        .iter()
        .filter(|e| e.file.rel_path.ends_with("core/src/numeric.rs"))
        .flat_map(|e| pub_fn_names(e))
        .collect();
    let par_fns = entries
        .iter()
        .filter(|e| e.file.rel_path.ends_with("core/src/par.rs"))
        .flat_map(|e| pub_fn_names(e))
        .collect();
    let rng_consts = exported("core/src/rng.rs", |e| &e.model.pub_consts);
    WorkspaceIndex {
        files: entries,
        numeric_helpers,
        par_fns,
        rng_consts,
    }
}

/// Runs every rule over every indexed file (phase 2). Findings are sorted
/// by (path, line, rule).
pub fn check_index(index: &WorkspaceIndex) -> Vec<Finding> {
    let mut findings = Vec::new();
    for entry in &index.files {
        let ctx = rules::FileCtx {
            file: &entry.file,
            toks: entry.tokens.toks(),
            model: &entry.model,
            index,
        };
        findings.extend(rules::check_file_ctx(&ctx));
    }
    findings.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
    findings
}

/// Lints an in-memory file set (both phases, no baseline). This is the
/// entry point fixture tests use.
pub fn check_files(files: Vec<SourceFile>) -> Vec<Finding> {
    check_index(&build_index(files))
}

/// Result of a full workspace pass.
#[derive(Debug)]
pub struct LintReport {
    /// Findings not covered by the baseline (fail the run).
    pub new: Vec<Finding>,
    /// Baseline-tolerated findings.
    pub grandfathered: Vec<Finding>,
    /// Baseline entries whose finding no longer exists (fail the run).
    pub stale: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// A run is clean when nothing new fired and no baseline entry is stale.
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.new {
            out.push_str(&format!("{f}\n"));
        }
        for s in &self.stale {
            out.push_str(&format!(
                "stale baseline entry (fix was landed — remove the line): {s}\n"
            ));
        }
        if !self.grandfathered.is_empty() {
            out.push_str(&format!(
                "warning: {} grandfathered finding(s) remain in lint.baseline — \
                 the ledger should be burned down to empty\n",
                self.grandfathered.len()
            ));
        }
        out.push_str(&format!(
            "cloudsched-lint: {} files, {} new finding(s), {} grandfathered, {} stale baseline entr{}\n",
            self.files_scanned,
            self.new.len(),
            self.grandfathered.len(),
            self.stale.len(),
            if self.stale.len() == 1 { "y" } else { "ies" },
        ));
        out
    }

    /// Machine-readable JSON rendering (hand-rolled; the workspace is
    /// dependency-free). Shape:
    ///
    /// ```json
    /// {"files_scanned":N,"clean":bool,
    ///  "new":[{"rule":"L001","severity":"error","path":"…","line":N,
    ///          "message":"…","excerpt":"…"}],
    ///  "grandfathered":[…],"stale":["…"]}
    /// ```
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        fn finding_json(f: &Finding) -> String {
            format!(
                "{{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\
                 \"message\":\"{}\",\"excerpt\":\"{}\"}}",
                f.rule,
                f.severity.name(),
                esc(&f.path),
                f.line,
                esc(&f.message),
                esc(&f.excerpt)
            )
        }
        let list = |fs: &[Finding]| -> String {
            fs.iter().map(finding_json).collect::<Vec<_>>().join(",")
        };
        let stale = self
            .stale
            .iter()
            .map(|s| format!("\"{}\"", esc(s)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"files_scanned\":{},\"clean\":{},\"new\":[{}],\
             \"grandfathered\":[{}],\"stale\":[{}]}}",
            self.files_scanned,
            self.is_clean(),
            list(&self.new),
            list(&self.grandfathered),
            stale
        )
    }
}

/// The canonical baseline location for a workspace root.
pub fn baseline_path(root: &Path) -> PathBuf {
    root.join("lint.baseline")
}

/// Lints every workspace file under `root`, applying the baseline at
/// [`baseline_path`].
pub fn run_workspace(root: &Path) -> std::io::Result<LintReport> {
    if !root.join("Cargo.toml").is_file() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotFound,
            format!("{} is not a workspace root (no Cargo.toml)", root.display()),
        ));
    }
    let files = discover(root)?;
    let files_scanned = files.len();
    let findings = check_files(files);
    let baseline = Baseline::load(&baseline_path(root))?;
    let BaselineResult {
        new,
        grandfathered,
        stale,
    } = baseline.apply(findings);
    Ok(LintReport {
        new,
        grandfathered,
        stale,
        files_scanned,
    })
}

/// Lints the workspace and rewrites the baseline to cover every current
/// finding. Returns the number of entries written.
pub fn write_baseline(root: &Path) -> std::io::Result<usize> {
    let files = discover(root)?;
    let findings = check_files(files);
    std::fs::write(baseline_path(root), Baseline::render(&findings))?;
    Ok(findings.len())
}

/// Walks upward from `start` to the first directory containing a
/// `Cargo.toml` that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("crates/lint/Cargo.toml").exists());
    }

    #[test]
    fn report_rendering_counts() {
        let r = LintReport {
            new: vec![],
            grandfathered: vec![],
            stale: vec!["L001|x.rs|a == 1.0".into()],
            files_scanned: 3,
        };
        assert!(!r.is_clean());
        let text = r.render();
        assert!(text.contains("stale"));
        assert!(text.contains("3 files"));
    }

    #[test]
    fn json_rendering_escapes_and_counts() {
        let r = LintReport {
            new: vec![Finding {
                rule: "L002",
                severity: Severity::Error,
                path: "a.rs".into(),
                line: 7,
                message: "`.unwrap()` with \"quotes\"".into(),
                excerpt: "x.unwrap()".into(),
            }],
            grandfathered: vec![],
            stale: vec![],
            files_scanned: 1,
        };
        let json = r.to_json();
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"line\":7"));
        assert!(json.contains("\"severity\":\"error\""));
    }

    #[test]
    fn index_captures_sanctioned_surfaces() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let index = build_index(discover(&root).expect("discover"));
        assert!(
            index.par_fns.contains("parallel_map"),
            "core::par exports not indexed: {:?}",
            index.par_fns
        );
        assert!(
            index.numeric_helpers.contains("approx_eq"),
            "core::numeric exports not indexed: {:?}",
            index.numeric_helpers
        );
        assert!(
            index
                .rng_consts
                .iter()
                .any(|c| c.starts_with("SEED_STREAM_")),
            "core::rng seed streams not indexed: {:?}",
            index.rng_consts
        );
    }
}
