//! `cloudsched-lint` — run the workspace static-analysis pass.
//!
//! ```text
//! cloudsched-lint [--root DIR] [--write-baseline]
//! ```
//!
//! Exit status 0 when clean (no unbaselined findings, no stale baseline
//! entries), 1 otherwise.

#![forbid(unsafe_code)]

use cloudsched_lint::{find_workspace_root, run_workspace, write_baseline};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut rewrite = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--write-baseline" => rewrite = true,
            "--help" | "-h" => {
                println!("usage: cloudsched-lint [--root DIR] [--write-baseline]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        find_workspace_root(&cwd)
    });
    let Some(root) = root else {
        eprintln!("could not locate the workspace root (pass --root DIR)");
        return ExitCode::FAILURE;
    };
    if rewrite {
        return match write_baseline(&root) {
            Ok(n) => {
                eprintln!(
                    "wrote {n} baseline entr{} to lint.baseline",
                    if n == 1 { "y" } else { "ies" }
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match run_workspace(&root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
