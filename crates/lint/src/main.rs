//! `cloudsched-lint` — run the workspace static-analysis pass.
//!
//! ```text
//! cloudsched-lint [--root DIR] [--json] [--explain Lxxx] [--write-baseline]
//! ```
//!
//! Exit status: 0 clean (no unbaselined findings, no stale baseline
//! entries), 1 findings, 2 usage error. Unknown flags are rejected with a
//! typed `InvalidArgument` — same convention as the workspace CLI.

#![forbid(unsafe_code)]

use cloudsched_lint::{explain, find_workspace_root, run_workspace, write_baseline, LintError};
use std::path::PathBuf;
use std::process::ExitCode;

const EXIT_FINDINGS: u8 = 1;
const EXIT_USAGE: u8 = 2;

const USAGE: &str =
    "usage: cloudsched-lint [--root DIR] [--json] [--explain Lxxx] [--write-baseline]";

/// Parsed command line.
struct Args {
    root: Option<PathBuf>,
    json: bool,
    explain: Option<String>,
    write_baseline: bool,
    help: bool,
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, LintError> {
    let mut args = Args {
        root: None,
        json: false,
        explain: None,
        write_baseline: false,
        help: false,
    };
    let mut argv = argv.peekable();
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--root" => {
                if args.root.is_some() {
                    return Err(dup("--root"));
                }
                match argv.next() {
                    Some(dir) if !dir.starts_with("--") => args.root = Some(PathBuf::from(dir)),
                    _ => {
                        return Err(LintError::InvalidArgument {
                            flag: "--root".into(),
                            reason: "needs a directory".into(),
                        })
                    }
                }
            }
            "--explain" => {
                if args.explain.is_some() {
                    return Err(dup("--explain"));
                }
                match argv.next() {
                    Some(id) if !id.starts_with("--") => args.explain = Some(id),
                    _ => {
                        return Err(LintError::InvalidArgument {
                            flag: "--explain".into(),
                            reason: "needs a rule id (e.g. L007)".into(),
                        })
                    }
                }
            }
            "--json" => args.json = true,
            "--write-baseline" => args.write_baseline = true,
            "--help" | "-h" => args.help = true,
            other => {
                return Err(LintError::InvalidArgument {
                    flag: other.to_string(),
                    reason: "unknown flag".into(),
                })
            }
        }
    }
    Ok(args)
}

fn dup(flag: &str) -> LintError {
    LintError::InvalidArgument {
        flag: flag.into(),
        reason: "given more than once".into(),
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if args.help {
        println!("{USAGE}");
        println!("  --root DIR         lint the workspace at DIR (default: walk up from cwd)");
        println!("  --json             machine-readable report on stdout");
        println!("  --explain Lxxx     print a rule's summary/scope/rationale/fix and exit");
        println!("  --write-baseline   rewrite lint.baseline to cover current findings");
        return ExitCode::SUCCESS;
    }
    if let Some(id) = &args.explain {
        return match explain(id) {
            Some(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("error: {}", LintError::UnknownRule { id: id.clone() });
                ExitCode::from(EXIT_USAGE)
            }
        };
    }
    let root = args.root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        find_workspace_root(&cwd)
    });
    let Some(root) = root else {
        eprintln!("error: could not locate the workspace root (pass --root DIR)");
        return ExitCode::from(EXIT_USAGE);
    };
    if args.write_baseline {
        return match write_baseline(&root) {
            Ok(n) => {
                eprintln!(
                    "wrote {n} baseline entr{} to lint.baseline",
                    if n == 1 { "y" } else { "ies" }
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(EXIT_USAGE)
            }
        };
    }
    match run_workspace(&root) {
        Ok(report) => {
            if args.json {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.render());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(EXIT_FINDINGS)
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(EXIT_USAGE)
        }
    }
}
