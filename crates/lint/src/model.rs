//! Per-file symbol model built from the token stream.
//!
//! The rules in this crate need more than raw tokens: they scope on
//! `#[cfg(test)]` regions, resolve imported names to full paths (so `HashMap`
//! is known to be `std::collections::HashMap` and not a local type), type
//! local bindings well enough to answer "is this receiver a hash
//! collection?", and locate `fn`/`const` items so a workspace index can list
//! what `core::numeric` or `core::par` actually export. This module derives
//! all of that from the [`crate::tokens`] stream — brace-tracked, so strings
//! and comments can never confuse the spans.

use crate::tokens::{Comment, Token, TokenStream};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// A function item located in the file.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Whether the item is `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// Token-index range covering `fn … { … }` (signature through body).
    pub tokens: Range<usize>,
    /// 1-based line range of the item.
    pub lines: Range<usize>,
}

/// Per-file symbol model.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Resolved `use` imports: local name → full path
    /// (`HashMap` → `std::collections::HashMap`, `c` → `a::b` for
    /// `use a::b as c`).
    pub uses: BTreeMap<String, String>,
    /// Token-index ranges gated by `#[cfg(test)]`.
    pub test_spans: Vec<Range<usize>>,
    /// `fn` items (name, visibility, token and line span).
    pub fns: Vec<FnSpan>,
    /// Names of `pub const` items.
    pub pub_consts: Vec<String>,
    /// Local names whose declared (or constructed) type is `HashMap` /
    /// `HashSet`: struct fields, `let` bindings and fn parameters.
    pub hash_bindings: BTreeSet<String>,
    /// 1-based line → rules allowed (escaped) on that line, from
    /// `// lint: allow(Lxxx)` directives.
    pub allows: BTreeMap<usize, Vec<String>>,
}

impl FileModel {
    /// Is token index `idx` inside `#[cfg(test)]` code?
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|r| r.contains(&idx))
    }

    /// Is `rule` allowed (escaped) on 1-based `line`?
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|rules| rules.iter().any(|r| r == rule))
    }

    /// Does `name` (as used in this file) resolve to a path ending in
    /// `suffix`? Unresolved names resolve to themselves, so fully-qualified
    /// uses still match.
    pub fn resolves_to(&self, name: &str, suffix: &str) -> bool {
        match self.uses.get(name) {
            Some(full) => {
                full == suffix || full.ends_with(&format!("::{suffix}")) || {
                    // `use std::collections::HashMap` → suffix `collections::HashMap`.
                    full.ends_with(suffix)
                }
            }
            None => name == suffix,
        }
    }
}

/// Builds the [`FileModel`] for one token stream.
pub fn build_model(ts: &TokenStream) -> FileModel {
    let toks = ts.toks();
    let mut model = FileModel {
        allows: collect_allows(&ts.comments),
        ..FileModel::default()
    };
    collect_uses(toks, &mut model.uses);
    model.test_spans = find_test_spans(toks);
    collect_fns(toks, &mut model);
    model.hash_bindings = collect_hash_bindings(toks, &model.uses);
    model
}

/// Extracts `lint: allow(Lxxx[, Lyyy…])` directives: a trailing comment
/// applies to its own line, a standalone one to the next line.
fn collect_allows(comments: &[Comment]) -> BTreeMap<usize, Vec<String>> {
    let mut allows: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for c in comments {
        let Some(rules) = parse_allow(&c.text) else {
            continue;
        };
        let target = if c.trailing { c.line } else { c.line + 1 };
        allows.entry(target).or_default().extend(rules);
    }
    allows
}

/// Parses the rule list out of one comment body, if it is an allow directive.
fn parse_allow(comment: &str) -> Option<Vec<String>> {
    let idx = comment.find("lint: allow(")?;
    let rest = &comment[idx + "lint: allow(".len()..];
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| {
            r.len() == 4 && r.starts_with('L') && r[1..].chars().all(|c| c.is_ascii_digit())
        })
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

/// Parses `use` items into local-name → full-path entries. Handles plain
/// paths, `as` renames, nested `{…}` groups (recursively) and `*` globs
/// (recorded under the name `*` with the prefix as the path).
fn collect_uses(toks: &[Token], out: &mut BTreeMap<String, String>) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("use") && (i == 0 || !toks[i - 1].is_punct(".")) {
            let start = i + 1;
            let mut end = start;
            while end < toks.len() && !toks[end].is_punct(";") {
                end += 1;
            }
            parse_use_tree(&toks[start..end], "", out);
            i = end;
        }
        i += 1;
    }
}

/// Parses one use-tree (the tokens between `use` and `;`) with `prefix`
/// already joined by `::`.
fn parse_use_tree(toks: &[Token], prefix: &str, out: &mut BTreeMap<String, String>) {
    // Split off a leading path `a::b::c`, then either a group `{…}`, a
    // rename `as x`, a glob `*`, or the end.
    let mut path: Vec<String> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("::") {
            i += 1;
            continue;
        }
        if t.is_punct("{") {
            // Group: split the interior on top-level commas, recurse.
            let joined = join_path(prefix, &path);
            let mut depth = 0i32;
            let mut item_start = i + 1;
            for j in i + 1..toks.len() {
                if toks[j].is_punct("{") {
                    depth += 1;
                } else if toks[j].is_punct("}") {
                    if depth == 0 {
                        if j > item_start {
                            parse_use_tree(&toks[item_start..j], &joined, out);
                        }
                        break;
                    }
                    depth -= 1;
                } else if toks[j].is_punct(",") && depth == 0 {
                    if j > item_start {
                        parse_use_tree(&toks[item_start..j], &joined, out);
                    }
                    item_start = j + 1;
                }
            }
            return;
        }
        if t.is_punct("*") {
            out.insert("*".to_string(), join_path(prefix, &path));
            return;
        }
        if t.is_ident("as") {
            if let Some(rename) = toks.get(i + 1) {
                out.insert(rename.text.clone(), join_path(prefix, &path));
            }
            return;
        }
        if t.is_punct(",") {
            // Top-level comma inside a group slice: handled by the caller.
            break;
        }
        path.push(t.text.clone());
        i += 1;
    }
    if let Some(last) = path.last() {
        out.insert(last.clone(), join_path(prefix, &path));
    }
}

fn join_path(prefix: &str, segs: &[String]) -> String {
    let tail = segs.join("::");
    if prefix.is_empty() {
        tail
    } else if tail.is_empty() {
        prefix.to_string()
    } else {
        format!("{prefix}::{tail}")
    }
}

/// Finds token-index ranges gated by `#[cfg(test)]`: from the attribute
/// through the gated item's closing `}` (or `;` for braceless items).
fn find_test_spans(toks: &[Token]) -> Vec<Range<usize>> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].is_punct("#")
            && toks[i + 1].is_punct("[")
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct("(")
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(")")
            && toks[i + 6].is_punct("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let mut depth = 0i64;
        let mut end = i + 7;
        let mut opened = false;
        for (j, t) in toks.iter().enumerate().skip(i + 7) {
            if t.is_punct("{") {
                depth += 1;
                opened = true;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth == 0 && opened {
                    end = j + 1;
                    break;
                }
            } else if t.is_punct(";") && !opened {
                end = j + 1;
                break;
            }
            end = j + 1;
        }
        spans.push(i..end);
        i = end;
    }
    spans
}

/// Locates `fn` items and `pub const` items.
fn collect_fns(toks: &[Token], model: &mut FileModel) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") && i + 1 < toks.len() {
            let name = toks[i + 1].text.clone();
            // Visibility: a `pub` within the few tokens before `fn`
            // (covers `pub`, `pub(crate) unsafe extern "C"` and friends).
            let lo = i.saturating_sub(6);
            let is_pub = toks[lo..i].iter().any(|t| t.is_ident("pub"));
            // Body: brace-match from the first `{`; a `;` first means a
            // trait/extern declaration with no body.
            let mut depth = 0i64;
            let mut end = i + 2;
            let mut opened = false;
            for (j, t) in toks.iter().enumerate().skip(i + 2) {
                if t.is_punct("{") {
                    depth += 1;
                    opened = true;
                } else if t.is_punct("}") {
                    depth -= 1;
                    if depth == 0 && opened {
                        end = j + 1;
                        break;
                    }
                } else if t.is_punct(";") && !opened && depth == 0 {
                    end = j + 1;
                    break;
                }
                end = j + 1;
            }
            let lines = toks[i].line..toks[end.min(toks.len()) - 1].line + 1;
            model.fns.push(FnSpan {
                name,
                is_pub,
                tokens: i..end,
                lines,
            });
            // Continue *inside* the fn too (nested fns are rare but legal):
            // advance past the name only.
            i += 2;
            continue;
        }
        if toks[i].is_ident("pub") && toks.get(i + 1).is_some_and(|t| t.is_ident("const")) {
            if let Some(name) = toks.get(i + 2) {
                model.pub_consts.push(name.text.clone());
            }
        }
        i += 1;
    }
}

/// Records local names declared (or initialized) as hash collections:
/// `name: HashMap<…>` / `name: HashSet<…>` (fields, params, lets) and
/// `let name = HashMap::new()` / `HashSet::with_capacity(…)`.
fn collect_hash_bindings(toks: &[Token], uses: &BTreeMap<String, String>) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    // `HashMap`/`HashSet` count as the std hash collections unless an
    // import explicitly binds the name elsewhere; an unimported mention is
    // either a fully-qualified `std::collections::…` path or dead code.
    let is_hash_type = |t: &Token| {
        (t.is_ident("HashMap") || t.is_ident("HashSet"))
            && match uses.get(&t.text) {
                Some(path) => *path == format!("std::collections::{}", t.text),
                None => true,
            }
    };
    for i in 0..toks.len() {
        if !is_hash_type(&toks[i]) {
            continue;
        }
        // Walk back over a fully-qualified path prefix (`std::collections::`).
        let mut j = i;
        while j >= 2 && toks[j - 1].is_punct("::") {
            j -= 2;
        }
        // `name : [std::collections::] HashMap`
        if j >= 2 && toks[j - 1].is_punct(":") {
            out.insert(toks[j - 2].text.clone());
            continue;
        }
        // `let name = HashMap::new(…)` / `= HashSet::with_capacity(…)`
        if j >= 2 && toks[j - 1].is_punct("=") {
            out.insert(toks[j - 2].text.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::tokenize;

    fn model_of(src: &str) -> FileModel {
        build_model(&tokenize(src))
    }

    #[test]
    fn resolves_plain_and_grouped_uses() {
        let m = model_of(
            "use std::collections::HashMap;\n\
             use std::collections::{BTreeMap, HashSet};\n\
             use a::b as c;\n\
             use x::y::*;\n",
        );
        assert_eq!(
            m.uses.get("HashMap").map(String::as_str),
            Some("std::collections::HashMap")
        );
        assert_eq!(
            m.uses.get("HashSet").map(String::as_str),
            Some("std::collections::HashSet")
        );
        assert_eq!(
            m.uses.get("BTreeMap").map(String::as_str),
            Some("std::collections::BTreeMap")
        );
        assert_eq!(m.uses.get("c").map(String::as_str), Some("a::b"));
        assert_eq!(m.uses.get("*").map(String::as_str), Some("x::y"));
    }

    #[test]
    fn nested_use_groups() {
        let m = model_of("use std::{collections::{HashMap, HashSet}, time::Instant};\n");
        assert_eq!(
            m.uses.get("HashMap").map(String::as_str),
            Some("std::collections::HashMap")
        );
        assert_eq!(
            m.uses.get("Instant").map(String::as_str),
            Some("std::time::Instant")
        );
    }

    #[test]
    fn cfg_test_spans_cover_modules_and_gated_uses() {
        let src = "fn lib() {}\n\
                   #[cfg(test)]\nuse x::y;\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n\
                   fn lib2() {}\n";
        let ts = tokenize(src);
        let m = build_model(&ts);
        assert_eq!(m.test_spans.len(), 2);
        let unwrap_idx = ts
            .toks()
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .expect("unwrap token");
        assert!(m.in_test(unwrap_idx));
        let lib2 = ts
            .toks()
            .iter()
            .position(|t| t.is_ident("lib2"))
            .expect("lib2 token");
        assert!(!m.in_test(lib2));
    }

    #[test]
    fn cfg_test_span_survives_strings_with_braces() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}\";\n    fn t() {}\n}\nfn after() {}\n";
        let ts = tokenize(src);
        let m = build_model(&ts);
        let after = ts
            .toks()
            .iter()
            .position(|t| t.is_ident("after"))
            .expect("after token");
        assert!(!m.in_test(after), "brace inside string must not end span");
        let t_fn = ts
            .toks()
            .iter()
            .position(|t| t.is_ident("t"))
            .expect("t token");
        assert!(m.in_test(t_fn));
    }

    #[test]
    fn fn_spans_and_visibility() {
        let src = "pub fn alpha(x: u32) -> u32 { x }\nfn beta() {}\npub(crate) fn gamma();\n";
        let m = model_of(src);
        let names: Vec<(&str, bool)> = m.fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(names, [("alpha", true), ("beta", false), ("gamma", true)]);
    }

    #[test]
    fn pub_consts_are_collected() {
        let m = model_of("pub const SEED_STREAM_X: u64 = 1;\nconst PRIVATE: u64 = 2;\n");
        assert_eq!(m.pub_consts, ["SEED_STREAM_X"]);
    }

    #[test]
    fn hash_bindings_from_fields_lets_and_constructors() {
        let m = model_of(
            "use std::collections::{HashMap, HashSet};\n\
             struct S { ready: HashSet<u64>, counts: HashMap<u64, u64>, ok: Vec<u64> }\n\
             fn f() { let seen = HashMap::new(); let fine: std::collections::BTreeSet<u8> = Default::default(); }\n",
        );
        assert!(m.hash_bindings.contains("ready"));
        assert!(m.hash_bindings.contains("counts"));
        assert!(m.hash_bindings.contains("seen"));
        assert!(!m.hash_bindings.contains("ok"));
        assert!(!m.hash_bindings.contains("fine"));
    }

    #[test]
    fn locally_defined_hashmap_is_not_std() {
        // A file that imports its own HashMap must not type bindings as std
        // hash collections.
        let m = model_of("use crate::fast::HashMap;\nstruct S { m: HashMap }\n");
        assert!(!m.hash_bindings.contains("m"));
    }

    #[test]
    fn allow_directives_trailing_and_standalone() {
        let m = model_of(
            "let a = x.unwrap(); // lint: allow(L002)\n// lint: allow(L001, L003)\nlet b = 1;\n",
        );
        assert!(m.is_allowed("L002", 1));
        assert!(!m.is_allowed("L001", 1));
        assert!(m.is_allowed("L001", 3));
        assert!(m.is_allowed("L003", 3));
    }
}
