//! The project-specific rule set.
//!
//! | id | enforces | scope |
//! |----|----------|-------|
//! | L001 | no raw `f64` comparisons (`==`, `!=`, `<=`, `>=`) on model
//!   quantities; route through `core::numeric::approx_*` | library code of
//!   `core` (outside `numeric.rs`), `capacity`, `sim`, `sched`, `offline`,
//!   `analysis` |
//! | L002 | no `.unwrap()`; `.expect(...)` only with an `"invariant: …"`
//!   justification | library code of `sim`, `sched`, `capacity`, `offline` |
//! | L003 | no `panic!` / `todo!` / `unimplemented!` | library code of all
//!   library crates |
//! | L004 | crate roots must declare `#![forbid(unsafe_code)]` | every
//!   `lib.rs` / binary root |
//! | L005 | no wall clock (`Instant::now`, `SystemTime::now`) in
//!   deterministic simulation code | library code of `core`, `capacity`,
//!   `sim`, `sched`, `offline`, `workload`, `obs` |
//! | L006 | no direct `std::time::Instant` / `SystemTime` types anywhere —
//!   timing goes through the `cloudsched_obs::Clock` seam | every crate
//!   except `bench` and the sanctioned seam `obs/src/clock.rs` |
//!
//! All rules are lexical (see [`crate::scan`]) and therefore heuristic:
//! escape hatches are `// lint: allow(Lxxx)` on (or above) the offending
//! line, and the checked-in baseline for grandfathered sites.

use crate::scan::Scan;
use crate::source::{FileKind, SourceFile};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `L002`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Explanation of the violation.
    pub message: String,
    /// Trimmed text of the offending line (used for baseline matching).
    pub excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} {}\n    {}",
            self.path, self.line, self.rule, self.message, self.excerpt
        )
    }
}

/// Crates whose library code must use tolerance-disciplined comparisons.
const L001_CRATES: &[&str] = &["core", "capacity", "sim", "sched", "offline", "analysis"];
/// Crates whose library code must not unwrap.
const L002_CRATES: &[&str] = &["sim", "sched", "capacity", "offline"];
/// Crates that form the deterministic simulation core (no wall clock).
/// `core` includes the work-stealing `par` fan-out and `sim` the reusable
/// `SimWorkspace`: both sit on sweep hot paths and must stay wall-clock
/// free — all sweep timing lives in `bench` (the `kernel` and `sweep`
/// suites), which is the sanctioned L005/L006 wall-clock user.
const L005_CRATES: &[&str] = &[
    "core", "capacity", "sim", "sched", "offline", "workload", "obs", "faults",
];

/// Runs every rule over one scanned file.
pub fn check_file(file: &SourceFile, scan: &Scan) -> Vec<Finding> {
    let mut findings = Vec::new();
    l001_raw_float_comparison(file, scan, &mut findings);
    l002_unwrap_expect(file, scan, &mut findings);
    l003_panic_macros(file, scan, &mut findings);
    l004_forbid_unsafe(file, scan, &mut findings);
    l005_wall_clock(file, scan, &mut findings);
    l006_raw_time_types(file, scan, &mut findings);
    findings
}

/// Is this file's non-test code subject to library rules at all?
fn is_library_code(file: &SourceFile) -> bool {
    matches!(file.kind, FileKind::Lib)
}

fn in_scope(file: &SourceFile, crates: &[&str]) -> bool {
    is_library_code(file) && crates.iter().any(|c| *c == file.crate_name)
}

/// Shared per-line iteration: yields (1-based line number, masked line,
/// byte offset of line start) for non-test, non-allowed lines.
fn active_lines<'a>(
    scan: &'a Scan,
    rule: &'static str,
) -> impl Iterator<Item = (usize, &'a str)> + 'a {
    let mut offset = 0usize;
    scan.masked
        .lines()
        .enumerate()
        .filter_map(move |(idx, text)| {
            let line_no = idx + 1;
            let start = offset;
            offset += text.len() + 1;
            if scan.in_test_code(start) || scan.is_allowed(rule, line_no) {
                None
            } else {
                Some((line_no, text))
            }
        })
}

fn push(
    findings: &mut Vec<Finding>,
    file: &SourceFile,
    rule: &'static str,
    line: usize,
    message: String,
) {
    let excerpt = file
        .text
        .lines()
        .nth(line - 1)
        .unwrap_or("")
        .trim()
        .to_string();
    findings.push(Finding {
        rule,
        path: file.rel_path.clone(),
        line,
        message,
        excerpt,
    });
}

// --- L001 -----------------------------------------------------------------

/// Does `s` look like it denotes an `f64` quantity? Heuristics: float
/// literals (including exponent forms like `1e-9`), explicit `f64`,
/// `.as_f64()` conversions, or the model's float-typed vocabulary.
fn looks_float(s: &str) -> bool {
    const FLOAT_IDENTS: &[&str] = &[
        "workload",
        "value",
        "density",
        "remaining",
        "rate",
        "laxity",
        "c_lo",
        "c_hi",
        "c_ref",
        "executed",
        "integral",
        "fraction",
    ];
    let bytes = s.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'.' && i > 0 && bytes[i - 1].is_ascii_digit() {
            // `1.`, `1.0`, `1.0e-9` — a float literal.
            return true;
        }
        if (b == b'e' || b == b'E')
            && i > 0
            && bytes[i - 1].is_ascii_digit()
            && matches!(bytes.get(i + 1), Some(b'-') | Some(b'+'))
        {
            // `1e-9`, `5E+3` — exponent literals without a dot.
            return true;
        }
    }
    if s.contains("f64") || s.contains("as_f64") || s.contains("EPS_") {
        return true;
    }
    FLOAT_IDENTS.iter().any(|id| s.contains(id))
}

/// The expression text immediately left of a comparison operator at byte
/// `at`: scans backward over balanced `()`/`[]`, stopping at clause
/// boundaries (`,` `;` `{` `}` `&` `|` `=` `<` `>`, an unmatched opening
/// bracket, or a single `:` — `::` paths are crossed).
fn operand_before(text: &str, at: usize) -> &str {
    let bytes = text.as_bytes();
    let mut depth = 0i32;
    let mut i = at;
    while i > 0 {
        match bytes[i - 1] {
            b')' | b']' => depth += 1,
            b'(' | b'[' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            b',' | b';' | b'{' | b'}' | b'&' | b'|' | b'=' | b'<' | b'>' if depth == 0 => break,
            b':' if depth == 0 => {
                if i >= 2 && bytes[i - 2] == b':' {
                    i -= 2;
                    continue;
                }
                break;
            }
            _ => {}
        }
        i -= 1;
    }
    &text[i..at]
}

/// The expression text immediately right of a comparison operator ending at
/// byte `from`; mirror of [`operand_before`].
fn operand_after(text: &str, from: usize) -> &str {
    let bytes = text.as_bytes();
    let mut depth = 0i32;
    let mut i = from;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            b',' | b';' | b'{' | b'}' | b'&' | b'|' | b'<' | b'>' if depth == 0 => break,
            _ => {}
        }
        i += 1;
    }
    &text[from..i]
}

/// Line numbers (1-based) covered by `debug_assert*!(…)` invocations,
/// found by paren-matching in the masked source so multi-line calls are
/// exempted in full.
fn debug_assert_lines(masked: &str) -> std::collections::HashSet<usize> {
    let mut lines = std::collections::HashSet::new();
    let bytes = masked.as_bytes();
    let mut from = 0usize;
    while let Some(rel) = masked[from..].find("debug_assert") {
        let start = from + rel;
        from = start + "debug_assert".len();
        let Some(open_rel) = masked[from..].find('(') else {
            break;
        };
        let open = from + open_rel;
        let mut depth = 0i64;
        let mut end = open;
        for (i, &b) in bytes.iter().enumerate().skip(open) {
            match b {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        end = i;
                        break;
                    }
                }
                _ => {}
            }
        }
        let first = 1 + masked[..start].matches('\n').count();
        let last = 1 + masked[..end].matches('\n').count();
        lines.extend(first..=last);
        from = end.max(from);
    }
    lines
}

/// L001: raw float comparison outside `core::numeric`.
fn l001_raw_float_comparison(file: &SourceFile, scan: &Scan, findings: &mut Vec<Finding>) {
    if !in_scope(file, L001_CRATES) || file.rel_path.ends_with("core/src/numeric.rs") {
        return;
    }
    // debug_assert diagnostics may compare raw floats: they gate
    // development invariants, not model semantics.
    let exempt = debug_assert_lines(&scan.masked);
    for (line_no, text) in active_lines(scan, "L001") {
        // A comparison already guarded by a tolerance helper on the same
        // line is the sanctioned `strict || approx` idiom; comparing against
        // a named `*_tolerance(…)` bound IS the tolerance policy.
        if text.contains("approx_") || text.contains("total_cmp") || text.contains("_tolerance") {
            continue;
        }
        if exempt.contains(&line_no) {
            continue;
        }
        for op in ["==", "!=", "<=", ">="] {
            let mut from = 0usize;
            while let Some(rel) = text[from..].find(op) {
                let at = from + rel;
                from = at + op.len();
                if !is_comparison_operator(text, at, op) {
                    continue;
                }
                let lhs = operand_before(text, at);
                let rhs = operand_after(text, at + op.len());
                if looks_float(lhs) || looks_float(rhs) {
                    push(
                        findings,
                        file,
                        "L001",
                        line_no,
                        format!(
                            "raw float comparison `{op}` — use core::numeric::approx_* \
                             (tolerance policy) instead"
                        ),
                    );
                    break;
                }
            }
        }
    }
}

/// Filters out tokens that merely contain the operator characters:
/// `=>`, `<=` inside `<<=`, `==` inside `===` (not Rust, but cheap), and
/// generic turbofish `>=` as in `Vec<Foo>=`. Also skips attribute/macro
/// lines that commonly embed `=`-ish tokens.
fn is_comparison_operator(text: &str, at: usize, op: &str) -> bool {
    let before = text[..at].chars().next_back();
    let after = text[at + op.len()..].chars().next();
    // `x <<= 1`, `a >>= b`, `=>` arms, `!==`-like runs, `+=`-family.
    if matches!(
        before,
        Some('<')
            | Some('>')
            | Some('=')
            | Some('+')
            | Some('-')
            | Some('*')
            | Some('/')
            | Some('%')
            | Some('&')
            | Some('|')
            | Some('^')
    ) {
        return false;
    }
    if matches!(after, Some('=') | Some('>')) && op != ">=" {
        return false;
    }
    if op == ">=" && matches!(after, Some('=')) {
        return false;
    }
    // `->` return types never carry comparisons on the same heuristic pass.
    true
}

// --- L002 -----------------------------------------------------------------

/// L002: `.unwrap()` / unjustified `.expect(` in library code.
fn l002_unwrap_expect(file: &SourceFile, scan: &Scan, findings: &mut Vec<Finding>) {
    if !in_scope(file, L002_CRATES) {
        return;
    }
    let mut offset = 0usize;
    for (idx, text) in scan.masked.lines().enumerate() {
        let line_no = idx + 1;
        let start = offset;
        offset += text.len() + 1;
        if scan.in_test_code(start) || scan.is_allowed("L002", line_no) {
            continue;
        }
        let mut from = 0usize;
        while let Some(rel) = text[from..].find(".unwrap()") {
            from += rel + ".unwrap()".len();
            push(
                findings,
                file,
                "L002",
                line_no,
                "`.unwrap()` in library code — propagate a CoreError or use \
                 `.expect(\"invariant: …\")` with the justification"
                    .to_string(),
            );
        }
        let mut from = 0usize;
        while let Some(rel) = text[from..].find(".expect(") {
            let at = from + rel;
            from = at + ".expect(".len();
            // Inspect the *original* text (the scan masks string contents)
            // from this call site for the justification prefix.
            let abs = start + at + ".expect(".len();
            if !expect_is_justified(&file.text, abs) {
                push(
                    findings,
                    file,
                    "L002",
                    line_no,
                    "`.expect(…)` without an `\"invariant: …\"` justification \
                     in library code"
                        .to_string(),
                );
            }
        }
    }
}

/// Does the `.expect(` argument starting at byte `abs` of the original
/// source carry an `"invariant: …"` message?
fn expect_is_justified(original: &str, abs: usize) -> bool {
    let rest = original.get(abs..).unwrap_or("");
    let rest = rest.trim_start();
    rest.starts_with("\"invariant:")
}

// --- L003 -----------------------------------------------------------------

/// L003: `panic!` / `todo!` / `unimplemented!` in library code.
fn l003_panic_macros(file: &SourceFile, scan: &Scan, findings: &mut Vec<Finding>) {
    if !is_library_code(file) {
        return;
    }
    for (line_no, text) in active_lines(scan, "L003") {
        for mac in ["panic!", "todo!", "unimplemented!"] {
            let mut from = 0usize;
            while let Some(rel) = text[from..].find(mac) {
                let at = from + rel;
                from = at + mac.len();
                // Must be a free-standing macro call, not `core::panic!` in a
                // path or `.panic!`-like suffix of a longer identifier.
                let before = text[..at].chars().next_back();
                if matches!(before, Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                    continue;
                }
                push(
                    findings,
                    file,
                    "L003",
                    line_no,
                    format!("`{mac}` in library code — return a CoreError instead"),
                );
            }
        }
    }
}

// --- L004 -----------------------------------------------------------------

/// L004: crate roots must forbid unsafe code.
fn l004_forbid_unsafe(file: &SourceFile, scan: &Scan, findings: &mut Vec<Finding>) {
    if !file.is_crate_root {
        return;
    }
    if scan.is_allowed("L004", 1) {
        return;
    }
    if !scan.masked.contains("#![forbid(unsafe_code)]") {
        push(
            findings,
            file,
            "L004",
            1,
            "crate root missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }
}

// --- L005 -----------------------------------------------------------------

/// L005: wall clock in deterministic simulation code.
fn l005_wall_clock(file: &SourceFile, scan: &Scan, findings: &mut Vec<Finding>) {
    if !in_scope(file, L005_CRATES) {
        return;
    }
    for (line_no, text) in active_lines(scan, "L005") {
        for pat in ["Instant::now", "SystemTime::now"] {
            if text.contains(pat) {
                push(
                    findings,
                    file,
                    "L005",
                    line_no,
                    format!(
                        "`{pat}` in deterministic simulation code — simulated \
                         time must come from the event clock"
                    ),
                );
            }
        }
    }
}

// --- L006 -----------------------------------------------------------------

/// Does `text[at..at+len]` sit on identifier boundaries? Rejects matches
/// embedded in longer identifiers, e.g. `Instant` inside `Instantaneous`.
fn on_ident_boundary(text: &str, at: usize, len: usize) -> bool {
    let ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let before = text[..at].chars().next_back();
    let after = text[at + len..].chars().next();
    !matches!(before, Some(c) if ident(c)) && !matches!(after, Some(c) if ident(c))
}

/// L006: the raw time types themselves, not just their `::now` calls.
///
/// Everything — library and binary code alike — must obtain timing through
/// the [`cloudsched_obs::Clock`] seam so profiled runs stay swappable for
/// deterministic ones. The only sanctioned holders of `std::time` types are
/// the seam itself (`obs/src/clock.rs`) and the benchmark harness (the
/// whole `bench` crate: microbench, the `kernel` suite and the `sweep`
/// suite with its `sweep` binary).
fn l006_raw_time_types(file: &SourceFile, scan: &Scan, findings: &mut Vec<Finding>) {
    if file.crate_name == "bench" || file.rel_path.ends_with("obs/src/clock.rs") {
        return;
    }
    for (line_no, text) in active_lines(scan, "L006") {
        for pat in ["Instant", "SystemTime"] {
            let mut from = 0usize;
            while let Some(rel) = text[from..].find(pat) {
                let at = from + rel;
                from = at + pat.len();
                if !on_ident_boundary(text, at, pat.len()) {
                    continue;
                }
                push(
                    findings,
                    file,
                    "L006",
                    line_no,
                    format!(
                        "`{pat}` outside the clock seam — inject a \
                         `cloudsched_obs::Clock` instead"
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan;
    use crate::source::{FileKind, SourceFile};

    fn file(crate_name: &str, kind: FileKind, root: bool, text: &str) -> SourceFile {
        SourceFile {
            crate_name: crate_name.to_string(),
            rel_path: format!("crates/{crate_name}/src/test_input.rs"),
            kind,
            is_crate_root: root,
            text: text.to_string(),
        }
    }

    fn run(crate_name: &str, text: &str) -> Vec<Finding> {
        let f = file(crate_name, FileKind::Lib, false, text);
        check_file(&f, &scan(text))
    }

    #[test]
    fn l001_fires_on_raw_float_equality() {
        let found = run("sim", "fn f(a: f64) -> bool { a as f64 == 1.0 }\n");
        assert!(found.iter().any(|f| f.rule == "L001"), "{found:?}");
        let found = run("sim", "fn g(w: f64) -> bool { workload == w }\n");
        assert!(found.iter().any(|f| f.rule == "L001"), "{found:?}");
    }

    #[test]
    fn l001_inspects_operands_not_the_whole_line() {
        // The float literal lives in a different clause than the integer
        // comparison: must not fire.
        let found = run(
            "sim",
            "fn h(n: usize) -> f64 { if n == 0 { 0.0 } else { 1.0 } }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn l001_exempts_multiline_debug_assert() {
        let src =
            "fn f(r: f64) {\n    debug_assert!(\n        r >= 0.0,\n        \"bad\"\n    );\n}\n";
        let found = run("sim", src);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn l001_exponent_literal_counts_as_float() {
        let found = run("sim", "fn f(slack: f64) -> bool { slack <= 1e-9 }\n");
        assert!(found.iter().any(|f| f.rule == "L001"), "{found:?}");
    }

    #[test]
    fn l001_skips_named_tolerance_comparisons() {
        let found = run(
            "sim",
            "fn f(r: f64, w: f64) -> bool { r <= completion_tolerance(w) }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn l001_fires_on_float_literal_comparison() {
        let found = run("sched", "fn g(x: f64) -> bool { x >= 1.0 }\n");
        assert!(found.iter().any(|f| f.rule == "L001"), "{found:?}");
    }

    #[test]
    fn l001_quiet_when_guarded_by_approx() {
        let found = run(
            "sim",
            "fn f(a: f64, b: f64) -> bool { a >= b || approx_eq(a, b) }\n",
        );
        assert!(found.iter().all(|f| f.rule != "L001"), "{found:?}");
    }

    #[test]
    fn l001_quiet_on_integer_comparison() {
        let found = run("sim", "fn f(a: usize, b: usize) -> bool { a == b }\n");
        assert!(found.iter().all(|f| f.rule != "L001"), "{found:?}");
    }

    #[test]
    fn l001_quiet_outside_scoped_crates() {
        let found = run("workload", "fn f(a: f64) -> bool { a == 1.0 }\n");
        assert!(found.iter().all(|f| f.rule != "L001"), "{found:?}");
    }

    #[test]
    fn l001_ignores_fat_arrow_and_compound_assignment() {
        let found = run(
            "sim",
            "fn f(x: f64) -> f64 { let mut y = 0.0; y += x; match 1 { _ => y } }\n",
        );
        assert!(found.iter().all(|f| f.rule != "L001"), "{found:?}");
    }

    #[test]
    fn l002_fires_on_unwrap_and_bare_expect() {
        let found = run("sim", "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n");
        assert!(found.iter().any(|f| f.rule == "L002"));
        let found = run(
            "sched",
            "fn f(o: Option<u32>) -> u32 { o.expect(\"boom\") }\n",
        );
        assert!(found.iter().any(|f| f.rule == "L002"), "{found:?}");
    }

    #[test]
    fn l002_accepts_justified_expect() {
        let found = run(
            "sim",
            "fn f(o: Option<u32>) -> u32 { o.expect(\"invariant: queue is non-empty here\") }\n",
        );
        assert!(found.iter().all(|f| f.rule != "L002"), "{found:?}");
    }

    #[test]
    fn l002_skips_test_modules_and_out_of_scope_crates() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n";
        let found = run("sim", src);
        assert!(found.iter().all(|f| f.rule != "L002"), "{found:?}");
        let found = run("workload", "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n");
        assert!(found.iter().all(|f| f.rule != "L002"));
    }

    #[test]
    fn l003_fires_on_panic_todo_unimplemented() {
        for mac in ["panic!(\"x\")", "todo!()", "unimplemented!()"] {
            let found = run("workload", &format!("fn f() {{ {mac} }}\n"));
            assert!(found.iter().any(|f| f.rule == "L003"), "{mac}");
        }
    }

    #[test]
    fn l003_quiet_in_bins_and_tests() {
        let text = "fn f() { panic!(\"x\") }\n";
        let f = SourceFile {
            crate_name: "bench".into(),
            rel_path: "crates/bench/src/bin/x.rs".into(),
            kind: FileKind::Bin,
            is_crate_root: true,
            text: text.into(),
        };
        let found = check_file(&f, &scan(text));
        assert!(found.iter().all(|f| f.rule != "L003"));
    }

    #[test]
    fn l004_fires_on_root_without_forbid() {
        let text = "pub fn x() {}\n";
        let f = SourceFile {
            crate_name: "sim".into(),
            rel_path: "crates/sim/src/lib.rs".into(),
            kind: FileKind::Lib,
            is_crate_root: true,
            text: text.into(),
        };
        let found = check_file(&f, &scan(text));
        assert!(found.iter().any(|f| f.rule == "L004"));
        let text2 = "#![forbid(unsafe_code)]\npub fn x() {}\n";
        let f2 = SourceFile {
            text: text2.into(),
            ..f
        };
        assert!(check_file(&f2, &scan(text2)).is_empty());
    }

    #[test]
    fn l005_fires_on_wall_clock_in_sim() {
        let found = run("sim", "fn f() { let _ = std::time::Instant::now(); }\n");
        assert!(found.iter().any(|f| f.rule == "L005"));
        let found = run("core", "fn f() { let _ = std::time::SystemTime::now(); }\n");
        assert!(found.iter().any(|f| f.rule == "L005"));
    }

    #[test]
    fn l005_quiet_in_bench_crate() {
        let f = SourceFile {
            crate_name: "bench".into(),
            rel_path: "crates/bench/src/microbench.rs".into(),
            kind: FileKind::Lib,
            is_crate_root: false,
            text: "fn f() { let _ = std::time::Instant::now(); }\n".into(),
        };
        let found = check_file(&f, &scan(&f.text));
        assert!(found.iter().all(|f| f.rule != "L005"));
    }

    #[test]
    fn l006_fires_on_raw_time_types_even_in_imports() {
        let found = run("cli", "use std::time::Instant;\n");
        assert!(found.iter().any(|f| f.rule == "L006"), "{found:?}");
        let found = run("workload", "fn f() -> std::time::SystemTime { todo!() }\n");
        assert!(found.iter().any(|f| f.rule == "L006"), "{found:?}");
    }

    #[test]
    fn l006_respects_identifier_boundaries() {
        // `Instantaneous` must not match even in live code.
        let found = run("sim", "fn f(x: Instantaneous) {}\n");
        assert!(found.iter().all(|f| f.rule != "L006"), "{found:?}");
    }

    #[test]
    fn l006_exempts_bench_and_the_clock_seam() {
        let text = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
        let bench = SourceFile {
            crate_name: "bench".into(),
            rel_path: "crates/bench/src/microbench.rs".into(),
            kind: FileKind::Lib,
            is_crate_root: false,
            text: text.into(),
        };
        assert!(check_file(&bench, &scan(text))
            .iter()
            .all(|f| f.rule != "L006"));
        let seam = SourceFile {
            crate_name: "obs".into(),
            rel_path: "crates/obs/src/clock.rs".into(),
            kind: FileKind::Lib,
            is_crate_root: false,
            text: text.into(),
        };
        let found = check_file(&seam, &scan(text));
        assert!(found.iter().all(|f| f.rule != "L006"), "{found:?}");
    }

    #[test]
    fn l005_covers_the_obs_crate_outside_the_seam() {
        let f = SourceFile {
            crate_name: "obs".into(),
            rel_path: "crates/obs/src/profile.rs".into(),
            kind: FileKind::Lib,
            is_crate_root: false,
            text: "fn f() { let _ = std::time::Instant::now(); }\n".into(),
        };
        let found = check_file(&f, &scan(&f.text));
        assert!(found.iter().any(|f| f.rule == "L005"), "{found:?}");
        assert!(found.iter().any(|f| f.rule == "L006"), "{found:?}");
    }

    #[test]
    fn allow_escape_suppresses_each_rule() {
        let found = run(
            "sim",
            "fn f(o: Option<u32>) -> u32 { o.unwrap() } // lint: allow(L002)\n",
        );
        assert!(found.iter().all(|f| f.rule != "L002"), "{found:?}");
        let found = run(
            "sim",
            "// lint: allow(L001)\nfn g(a: f64) -> bool { a == 1.0 }\n",
        );
        assert!(found.iter().all(|f| f.rule != "L001"), "{found:?}");
    }

    #[test]
    fn comments_and_strings_never_fire() {
        let found = run(
            "sim",
            "// x.unwrap() and a == 1.0 and panic!\nfn f() -> &'static str { \".unwrap() panic! == 1.0\" }\n",
        );
        assert!(found.is_empty(), "{found:?}");
    }
}
