//! The project-specific rule set, evaluated over the token stream.
//!
//! | id | severity | enforces |
//! |----|----------|----------|
//! | L001 | error | no raw `f64` comparisons on model quantities — route
//!   through `core::numeric::approx_*` |
//! | L002 | error | no `.unwrap()`; `.expect(…)` only with an
//!   `"invariant: …"` justification |
//! | L003 | error | no `panic!` / `todo!` / `unimplemented!` in library code |
//! | L004 | error | crate roots must declare `#![forbid(unsafe_code)]` |
//! | L005 | error | no wall clock (`Instant::now`, `SystemTime::now`) in
//!   deterministic simulation code |
//! | L006 | error | no `std::time::Instant` / `SystemTime` types outside the
//!   `cloudsched_obs::Clock` seam and `bench` |
//! | L007 | error | no `HashMap`/`HashSet` iteration in deterministic crates
//!   — use `BTreeMap`/`BTreeSet` or sort explicitly |
//! | L008 | error | no `std::thread` fan-out outside `core/src/par.rs` —
//!   parallelism goes through `core::par::parallel_map` |
//! | L009 | error | seed discipline: no RNG construction from integer
//!   literals and no seed arithmetic outside `core::rng::derive_seed` |
//! | L010 | error | no lossy `as` casts on model quantities in kernel crates
//!   — route through the checked helpers in `core::numeric` |
//! | L011 | error | no `std::env` / `std::fs` reads in deterministic crates
//!   — config enters through typed constructors |
//!
//! Every rule is evaluated against the [`crate::tokens`] stream and the
//! [`crate::model`] symbol model, under a two-phase runner: phase one builds
//! a [`crate::WorkspaceIndex`] of every file's tokens/model plus the
//! workspace's sanctioned helper surfaces (what `core::numeric`, `core::par`
//! and `core::rng` actually export), phase two runs the rules with that
//! index in scope, so messages can point at the real helpers and rules can
//! reason across files. Escape hatches: `// lint: allow(Lxxx)` on (or above)
//! the offending line, and the checked-in baseline for grandfathered sites.

use crate::model::FileModel;
use crate::source::{FileKind, SourceFile};
use crate::tokens::{Token, TokenKind};
use crate::WorkspaceIndex;

/// Finding severity. Errors fail the run; warnings are reported (and
/// surfaced as CI annotations) but do not gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Gates the tier-1 lint test and the CI lint step.
    Error,
    /// Reported and annotated, never gating.
    Warning,
}

impl Severity {
    /// Lowercase name, as rendered in text and JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `L002`.
    pub rule: &'static str,
    /// Severity of the rule that fired.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// Explanation of the violation.
    pub message: String,
    /// Trimmed text of the offending line (used for baseline matching).
    pub excerpt: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {} [{}] {}\n    {}",
            self.path,
            self.line,
            self.rule,
            self.severity.name(),
            self.message,
            self.excerpt
        )
    }
}

/// Static description of one rule, for `--explain` and the docs table.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Rule id.
    pub id: &'static str,
    /// Severity when it fires.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
    /// Why the rule exists.
    pub rationale: &'static str,
    /// How to fix a finding.
    pub fix: &'static str,
}

/// The rule registry, in id order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "L001",
        severity: Severity::Error,
        summary: "no raw f64 comparisons on model quantities",
        scope: "library code of core (outside numeric.rs), capacity, sim, sched, offline, analysis",
        rationale: "chained f64 sums accumulate ulps; every completion/deadline predicate must \
                    apply the one workspace tolerance policy or schedulers diverge between \
                    platforms and optimization levels",
        fix: "use core::numeric::approx_eq / approx_ge / approx_le (or total_cmp for ordering); \
              exact sentinel/domain checks take `// lint: allow(L001) — reason`",
    },
    RuleInfo {
        id: "L002",
        severity: Severity::Error,
        summary: "no .unwrap(); .expect(…) needs an \"invariant: …\" justification",
        scope: "library code of sim, sched, capacity, offline",
        rationale: "library panics crash sweeps mid-campaign; every residual panic site must \
                    state the invariant that makes it unreachable",
        fix: "propagate a CoreError, or write .expect(\"invariant: …\") naming the invariant",
    },
    RuleInfo {
        id: "L003",
        severity: Severity::Error,
        summary: "no panic!/todo!/unimplemented! in library code",
        scope: "library code of all crates",
        rationale: "same as L002: library code returns typed errors, it does not abort",
        fix: "return a CoreError (InvalidArgument, InvalidParameter, …) instead",
    },
    RuleInfo {
        id: "L004",
        severity: Severity::Error,
        summary: "crate roots must declare #![forbid(unsafe_code)]",
        scope: "every lib.rs / binary root",
        rationale: "the determinism and no-panic stories both assume safe Rust everywhere; \
                    forbid(unsafe_code) makes that structural",
        fix: "add #![forbid(unsafe_code)] at the top of the crate root",
    },
    RuleInfo {
        id: "L005",
        severity: Severity::Error,
        summary: "no wall clock in deterministic simulation code",
        scope: "library code of core, capacity, sim, sched, offline, workload, obs, faults, \
                insight",
        rationale: "simulated time comes from the event clock; a wall-clock read makes runs \
                    irreproducible",
        fix: "take time from the simulation clock, or inject a cloudsched_obs::Clock",
    },
    RuleInfo {
        id: "L006",
        severity: Severity::Error,
        summary: "no std::time::Instant/SystemTime types outside the Clock seam",
        scope: "every crate except bench and obs/src/clock.rs",
        rationale: "holding raw time types invites timing side-channels into deterministic \
                    code; all timing flows through the swappable Clock seam",
        fix: "inject a cloudsched_obs::Clock instead of naming std::time types",
    },
    RuleInfo {
        id: "L007",
        severity: Severity::Error,
        summary: "no HashMap/HashSet iteration in deterministic crates",
        scope: "library code of core, capacity, sim, sched, offline, workload, obs, faults, \
                insight",
        rationale: "hash iteration order is unspecified and changes across std releases and \
                    RandomState seeds; one hash-order loop silently breaks byte-identical \
                    goldens, thread-count invariance and chaos replays",
        fix: "use BTreeMap/BTreeSet, or collect and sort by a total key before iterating; \
              pure lookup (get/insert/contains) stays legal",
    },
    RuleInfo {
        id: "L008",
        severity: Severity::Error,
        summary: "no std::thread fan-out outside core/src/par.rs",
        scope: "all code except core/src/par.rs",
        rationale: "thread-count invariance is a structural property of \
                    core::par::parallel_map's index-ordered join; ad-hoc spawn/scope fan-out \
                    reintroduces scheduling nondeterminism",
        fix: "express the fan-out as core::par::parallel_map / parallel_map_with over an \
              index range",
    },
    RuleInfo {
        id: "L009",
        severity: Severity::Error,
        summary: "seed discipline: construct RNGs from derived seeds only",
        scope: "all non-test code except core/src/rng.rs",
        rationale: "every recorded artifact (Table I, goldens, BENCH_*.json) is pinned to the \
                    frozen derive_seed streams; literal seeds and ad-hoc seed arithmetic \
                    fork the seed universe and collide silently",
        fix: "declare a SEED_STREAM_* constant in core::rng and derive with \
              core::rng::derive_seed(stream, lambda, run)",
    },
    RuleInfo {
        id: "L010",
        severity: Severity::Error,
        summary: "no lossy `as` casts on model quantities in kernel crates",
        scope: "library code of core (outside numeric.rs), capacity, sim, sched, offline",
        rationale: "`f64 as usize/u64` silently truncates and saturates; on model quantities \
                    that is a correctness bug hiding as a cast",
        fix: "route through core::numeric checked conversions (checked_usize_from_f64, \
              checked_u64_from_f64, f64_to_u64_trunc_saturating)",
    },
    RuleInfo {
        id: "L011",
        severity: Severity::Error,
        summary: "no std::env/std::fs reads in deterministic crates",
        scope: "library code of core, capacity, sim, sched, offline, workload, obs (outside \
                journal.rs, the write-ahead-journal seam), faults, insight",
        rationale: "ambient process state (env vars, files) is invisible to the seed and \
                    breaks replay; configuration enters through typed constructors only",
        fix: "move the read to the cli/bench boundary and pass the value in as a typed \
              constructor argument",
    },
];

/// Looks up a rule's registry entry.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Renders the `--explain` text for a rule id.
pub fn explain(id: &str) -> Option<String> {
    let r = rule_info(id)?;
    Some(format!(
        "{} ({})\n  summary:   {}\n  scope:     {}\n  rationale: {}\n  fix:       {}\n",
        r.id,
        r.severity.name(),
        r.summary,
        r.scope,
        r.rationale,
        r.fix
    ))
}

/// Crates whose library code must use tolerance-disciplined comparisons.
const L001_CRATES: &[&str] = &["core", "capacity", "sim", "sched", "offline", "analysis"];
/// Crates whose library code must not unwrap.
const L002_CRATES: &[&str] = &["sim", "sched", "capacity", "offline"];
/// Crates that form the deterministic simulation core: no wall clock (L005),
/// no hash-order iteration (L007), no ambient process state (L011). `core`
/// includes the work-stealing `par` fan-out and `sim` the reusable
/// `SimWorkspace`: both sit on sweep hot paths and must stay wall-clock
/// free — all sweep timing lives in `bench`, the sanctioned L005/L006
/// wall-clock user. `insight` folds traces into ledgers and ratio reports
/// that must reproduce bit-for-bit from a trace file alone, so it inherits
/// the full determinism contract; its file I/O stays at the cli boundary.
/// The fleet layer is fully in scope on both sides of its seam:
/// `sim/src/fleet.rs` (the sharded multi-machine engine — dispatch merge,
/// steal resolution, `parallel_map_with` fan-out) and
/// `sched/src/dispatch.rs` (the rr/llf/p2c policies) promise output that
/// is a pure function of `(seed, M, policy)` at every thread count, so
/// they get no carve-outs from L005/L007/L008/L009/L011: p2c seeds flow
/// through `derive_seed` (L009) and the fan-out rides `core::par`, never
/// raw `std::thread` (L008).
const DETERMINISTIC_CRATES: &[&str] = &[
    "core", "capacity", "sim", "sched", "offline", "workload", "obs", "faults", "insight",
];
/// Kernel crates subject to the lossy-cast rule (L010).
const L010_CRATES: &[&str] = &["core", "capacity", "sim", "sched", "offline"];

/// Shared context for one file's rule evaluation.
pub(crate) struct FileCtx<'a> {
    pub file: &'a SourceFile,
    pub toks: &'a [Token],
    pub model: &'a FileModel,
    pub index: &'a WorkspaceIndex,
}

impl<'a> FileCtx<'a> {
    /// Is the token at `idx` live for `rule` (not test code, not escaped)?
    fn active(&self, rule: &str, idx: usize) -> bool {
        !self.model.in_test(idx) && !self.model.is_allowed(rule, self.toks[idx].line)
    }

    fn push(&self, findings: &mut Vec<Finding>, rule: &'static str, line: usize, message: String) {
        let severity = rule_info(rule)
            .map(|r| r.severity)
            .unwrap_or(Severity::Error);
        let excerpt = self
            .file
            .text
            .lines()
            .nth(line - 1)
            .unwrap_or("")
            .trim()
            .to_string();
        findings.push(Finding {
            rule,
            severity,
            path: self.file.rel_path.clone(),
            line,
            message,
            excerpt,
        });
    }
}

/// Runs every rule over one file (given the workspace index from phase 1).
pub(crate) fn check_file_ctx(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    l001_raw_float_comparison(ctx, &mut findings);
    l002_unwrap_expect(ctx, &mut findings);
    l003_panic_macros(ctx, &mut findings);
    l004_forbid_unsafe(ctx, &mut findings);
    l005_wall_clock(ctx, &mut findings);
    l006_raw_time_types(ctx, &mut findings);
    l007_hash_iteration(ctx, &mut findings);
    l008_thread_fanout(ctx, &mut findings);
    l009_seed_discipline(ctx, &mut findings);
    l010_lossy_casts(ctx, &mut findings);
    l011_ambient_reads(ctx, &mut findings);
    findings
}

/// Is this file's non-test code subject to library rules at all?
fn is_library_code(file: &SourceFile) -> bool {
    matches!(file.kind, FileKind::Lib)
}

fn in_scope(file: &SourceFile, crates: &[&str]) -> bool {
    is_library_code(file) && crates.iter().any(|c| *c == file.crate_name)
}

// --- token-walk helpers ----------------------------------------------------

/// Token indices covered by `debug_assert*!(…)` invocations (the whole
/// balanced argument list), so diagnostics may compare raw floats.
fn debug_assert_spans(toks: &[Token]) -> Vec<std::ops::Range<usize>> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].kind == TokenKind::Ident
            && toks[i].text.starts_with("debug_assert")
            && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
        {
            let mut depth = 0i64;
            let mut end = i + 2;
            for (j, t) in toks.iter().enumerate().skip(i + 2) {
                if t.is_punct("(") {
                    depth += 1;
                } else if t.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                end = j + 1;
            }
            spans.push(i..end);
            i = end;
            continue;
        }
        i += 1;
    }
    spans
}

/// Walks backward from `at` (exclusive) collecting the primary-expression
/// operand: a chain of idents, field/paths (`.`/`::`), `self`, literals and
/// balanced `(…)`/`[…]` groups. Returns the start index of the operand.
fn operand_start(toks: &[Token], at: usize) -> usize {
    let mut i = at;
    let mut depth = 0i32;
    while i > 0 {
        let t = &toks[i - 1];
        if t.is_punct(")") || t.is_punct("]") {
            depth += 1;
            i -= 1;
            continue;
        }
        if t.is_punct("(") || t.is_punct("[") {
            if depth == 0 {
                break;
            }
            depth -= 1;
            i -= 1;
            continue;
        }
        if depth > 0 {
            i -= 1;
            continue;
        }
        match t.kind {
            TokenKind::Ident | TokenKind::Int | TokenKind::Float => i -= 1,
            TokenKind::Punct if t.text == "." || t.text == "::" => i -= 1,
            _ => break,
        }
    }
    i
}

/// Walks forward from `from` collecting the primary-expression operand on
/// the right of a binary operator; returns the end index (exclusive). Stops
/// at clause boundaries at depth 0.
fn operand_end(toks: &[Token], from: usize) -> usize {
    let mut i = from;
    let mut depth = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct(")") || t.is_punct("]") {
            if depth == 0 {
                break;
            }
            depth -= 1;
            i += 1;
            continue;
        }
        if depth > 0 {
            i += 1;
            continue;
        }
        match t.kind {
            TokenKind::Ident | TokenKind::Int | TokenKind::Float => i += 1,
            TokenKind::Punct if t.text == "." || t.text == "::" || t.text == "-" => i += 1,
            _ => break,
        }
    }
    i
}

/// Model vocabulary that denotes `f64` quantities.
const FLOAT_IDENTS: &[&str] = &[
    "workload",
    "value",
    "density",
    "remaining",
    "rate",
    "laxity",
    "c_lo",
    "c_hi",
    "c_ref",
    "executed",
    "integral",
    "fraction",
    "lambda",
];

/// Methods that yield integers regardless of receiver vocabulary.
const INT_YIELDING: &[&str] = &["len", "capacity", "count", "0"];

/// Does the operand token slice denote an `f64` quantity? Float literals,
/// `f64`/`f32` types, `.as_f64()` conversions and the model's float-typed
/// vocabulary count — unless the operand's final call is integer-yielding
/// (`.len()`, `.capacity()`, `.count()`).
fn operand_looks_float(toks: &[Token]) -> bool {
    if toks.is_empty() {
        return false;
    }
    // Integer-yielding tail call: `….len()`, `….capacity()`.
    if toks.len() >= 4 {
        let n = toks.len();
        if toks[n - 1].is_punct(")")
            && toks[n - 2].is_punct("(")
            && toks[n - 3].kind == TokenKind::Ident
            && INT_YIELDING.contains(&toks[n - 3].text.as_str())
            && toks[n - 4].is_punct(".")
        {
            return false;
        }
    }
    toks.iter().any(|t| {
        t.kind == TokenKind::Float
            || (t.kind == TokenKind::Ident
                && (t.text == "f64"
                    || t.text == "f32"
                    || t.text == "as_f64"
                    || t.text.starts_with("EPS_")
                    || FLOAT_IDENTS.contains(&t.text.as_str())))
    })
}

// --- L001 -------------------------------------------------------------------

/// L001: raw float comparison outside `core::numeric`.
fn l001_raw_float_comparison(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !in_scope(ctx.file, L001_CRATES) || ctx.file.rel_path.ends_with("core/src/numeric.rs") {
        return;
    }
    let toks = ctx.toks;
    let exempt = debug_assert_spans(toks);
    // Lines carrying a tolerance guard: `a >= b || approx_eq(a, b)` is the
    // sanctioned strict-or-approx idiom, `x <= completion_tolerance(w)` IS
    // the tolerance policy, `total_cmp` is exact by construction.
    let mut guarded_lines = std::collections::BTreeSet::new();
    for t in toks {
        if t.kind == TokenKind::Ident
            && (t.text.starts_with("approx_")
                || t.text == "total_cmp"
                || t.text.ends_with("_tolerance"))
        {
            guarded_lines.insert(t.line);
        }
    }
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=") || t.is_punct("<=") || t.is_punct(">=")) {
            continue;
        }
        if !ctx.active("L001", i) || guarded_lines.contains(&t.line) {
            continue;
        }
        if exempt.iter().any(|r| r.contains(&i)) {
            continue;
        }
        let lhs = &toks[operand_start(toks, i)..i];
        let rhs = &toks[i + 1..operand_end(toks, i + 1)];
        if operand_looks_float(lhs) || operand_looks_float(rhs) {
            ctx.push(
                findings,
                "L001",
                t.line,
                format!(
                    "raw float comparison `{}` — use core::numeric::approx_* \
                     (tolerance policy) instead",
                    t.text
                ),
            );
        }
    }
}

// --- L002 -------------------------------------------------------------------

/// L002: `.unwrap()` / unjustified `.expect(` in library code.
fn l002_unwrap_expect(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !in_scope(ctx.file, L002_CRATES) {
        return;
    }
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || i == 0 || !toks[i - 1].is_punct(".") {
            continue;
        }
        if !ctx.active("L002", i) {
            continue;
        }
        if t.text == "unwrap" && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            ctx.push(
                findings,
                "L002",
                t.line,
                "`.unwrap()` in library code — propagate a CoreError or use \
                 `.expect(\"invariant: …\")` with the justification"
                    .to_string(),
            );
        }
        if t.text == "expect" && toks.get(i + 1).is_some_and(|n| n.is_punct("(")) {
            let justified = toks.get(i + 2).is_some_and(|arg| {
                arg.kind == TokenKind::Str && arg.text.starts_with("\"invariant:")
            });
            if !justified {
                ctx.push(
                    findings,
                    "L002",
                    t.line,
                    "`.expect(…)` without an `\"invariant: …\"` justification \
                     in library code"
                        .to_string(),
                );
            }
        }
    }
}

// --- L003 -------------------------------------------------------------------

/// L003: `panic!` / `todo!` / `unimplemented!` in library code.
fn l003_panic_macros(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !is_library_code(ctx.file) {
        return;
    }
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || !matches!(t.text.as_str(), "panic" | "todo" | "unimplemented")
            || !toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        {
            continue;
        }
        if !ctx.active("L003", i) {
            continue;
        }
        ctx.push(
            findings,
            "L003",
            t.line,
            format!("`{}!` in library code — return a CoreError instead", t.text),
        );
    }
}

// --- L004 -------------------------------------------------------------------

/// L004: crate roots must forbid unsafe code.
fn l004_forbid_unsafe(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !ctx.file.is_crate_root || ctx.model.is_allowed("L004", 1) {
        return;
    }
    let toks = ctx.toks;
    let has = toks.windows(7).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].is_punct("[")
            && w[3].is_ident("forbid")
            && w[4].is_punct("(")
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(")")
    });
    if !has {
        ctx.push(
            findings,
            "L004",
            1,
            "crate root missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }
}

// --- L005 -------------------------------------------------------------------

/// L005: wall clock in deterministic simulation code.
fn l005_wall_clock(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !in_scope(ctx.file, DETERMINISTIC_CRATES) {
        return;
    }
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        let is_clock_type = t.is_ident("Instant") || t.is_ident("SystemTime");
        if !is_clock_type
            || !toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            || !toks.get(i + 2).is_some_and(|n| n.is_ident("now"))
        {
            continue;
        }
        if !ctx.active("L005", i) {
            continue;
        }
        ctx.push(
            findings,
            "L005",
            t.line,
            format!(
                "`{}::now` in deterministic simulation code — simulated \
                 time must come from the event clock",
                t.text
            ),
        );
    }
}

// --- L006 -------------------------------------------------------------------

/// L006: the raw time types themselves, not just their `::now` calls.
///
/// Everything — library and binary code alike — must obtain timing through
/// the `cloudsched_obs::Clock` seam. The only sanctioned holders of
/// `std::time` types are the seam itself (`obs/src/clock.rs`) and the
/// benchmark harness (the whole `bench` crate).
fn l006_raw_time_types(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if ctx.file.crate_name == "bench" || ctx.file.rel_path.ends_with("obs/src/clock.rs") {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if !(t.is_ident("Instant") || t.is_ident("SystemTime")) {
            continue;
        }
        if !ctx.active("L006", i) {
            continue;
        }
        ctx.push(
            findings,
            "L006",
            t.line,
            format!(
                "`{}` outside the clock seam — inject a \
                 `cloudsched_obs::Clock` instead",
                t.text
            ),
        );
    }
}

// --- L007 -------------------------------------------------------------------

/// Iteration methods whose order reflects the hash function.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// L007: `HashMap`/`HashSet` iteration in deterministic crates.
///
/// Lookup (`get`/`insert`/`contains`/`remove`) is legal — only
/// order-exposing operations fire: iterator methods on a hash-typed
/// binding, and `for … in` loops whose iterated expression is one.
fn l007_hash_iteration(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !in_scope(ctx.file, DETERMINISTIC_CRATES) || ctx.model.hash_bindings.is_empty() {
        return;
    }
    let toks = ctx.toks;
    let is_hash_binding =
        |t: &Token| t.kind == TokenKind::Ident && ctx.model.hash_bindings.contains(t.text.as_str());
    for (i, t) in toks.iter().enumerate() {
        // `binding.iter()` / `self.binding.keys()` / `binding.retain(…)`.
        if is_hash_binding(t)
            && toks.get(i + 1).is_some_and(|n| n.is_punct("."))
            && toks.get(i + 2).is_some_and(|n| {
                n.kind == TokenKind::Ident && HASH_ITER_METHODS.contains(&n.text.as_str())
            })
        {
            if ctx.active("L007", i) {
                ctx.push(
                    findings,
                    "L007",
                    t.line,
                    format!(
                        "hash-order iteration `.{}()` over hash collection `{}` — use \
                         BTreeMap/BTreeSet or sort by a total key first",
                        toks[i + 2].text,
                        t.text
                    ),
                );
            }
            continue;
        }
        // `for k in &self.binding {` / `for k in binding {`.
        if t.is_ident("in") && i > 0 {
            let mut j = i + 1;
            while toks
                .get(j)
                .is_some_and(|n| n.is_punct("&") || n.is_ident("mut"))
            {
                j += 1;
            }
            if toks.get(j).is_some_and(|n| n.is_ident("self"))
                && toks.get(j + 1).is_some_and(|n| n.is_punct("."))
            {
                j += 2;
            }
            let direct_iter = toks.get(j).is_some_and(is_hash_binding)
                && toks.get(j + 1).is_some_and(|n| n.is_punct("{"));
            if direct_iter && ctx.active("L007", j) {
                ctx.push(
                    findings,
                    "L007",
                    toks[j].line,
                    format!(
                        "`for … in` over hash collection `{}` — hash order is \
                         nondeterministic; use BTreeMap/BTreeSet or sort first",
                        toks[j].text
                    ),
                );
            }
        }
    }
}

// --- L008 -------------------------------------------------------------------

/// L008: `std::thread` fan-out outside `core/src/par.rs`.
fn l008_thread_fanout(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if ctx.file.rel_path.ends_with("core/src/par.rs") {
        return;
    }
    let par_hint = if ctx.index.par_fns.contains("parallel_map") {
        "core::par::parallel_map"
    } else {
        "the sanctioned parallel fan-out"
    };
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        // `thread::spawn`, `thread::scope`, `thread::Builder`, and the
        // import that brings them in.
        let thread_path = t.is_ident("thread")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && (i == 0 || !toks[i - 1].is_punct("."));
        if !thread_path {
            continue;
        }
        if !ctx.active("L008", i) {
            continue;
        }
        let target = toks.get(i + 2).map(|n| n.text.as_str()).unwrap_or("");
        ctx.push(
            findings,
            "L008",
            t.line,
            format!(
                "`thread::{target}` outside core/src/par.rs — all fan-out goes \
                 through {par_hint} so thread-count invariance stays structural"
            ),
        );
    }
}

// --- L009 -------------------------------------------------------------------

/// RNG constructors whose argument is a seed.
const SEED_CTORS: &[&str] = &["seed_from_u64", "with_stream"];

/// L009: seed discipline outside `core::rng`. Test code (integration tests
/// and `#[cfg(test)]` regions) is exempt: local test seeds do not flow into
/// recorded artifacts.
fn l009_seed_discipline(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if ctx.file.rel_path.ends_with("core/src/rng.rs") || ctx.file.kind == FileKind::Test {
        return;
    }
    let streams: Vec<&str> = ctx
        .index
        .rng_consts
        .iter()
        .map(String::as_str)
        .filter(|c| c.starts_with("SEED_STREAM_"))
        .collect();
    let hint = if streams.is_empty() {
        "a core::rng SEED_STREAM_* constant".to_string()
    } else {
        format!("one of core::rng::{{{}}}", streams.join(", "))
    };
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        // (a) RNG construction: inspect the first argument of
        // `Pcg32::seed_from_u64(…)` / `SplitMix64::seed_from_u64(…)` /
        // `Pcg32::with_stream(…)`.
        if t.kind == TokenKind::Ident
            && SEED_CTORS.contains(&t.text.as_str())
            && i >= 1
            && toks[i - 1].is_punct("::")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
        {
            if !ctx.active("L009", i) {
                continue;
            }
            let arg = first_argument(toks, i + 1);
            let verdict = seed_argument_verdict(arg);
            match verdict {
                SeedArg::Ok => {}
                SeedArg::Literal => ctx.push(
                    findings,
                    "L009",
                    t.line,
                    format!(
                        "RNG seeded from an integer literal — declare {hint} and derive \
                         with core::rng::derive_seed"
                    ),
                ),
                SeedArg::Arithmetic => ctx.push(
                    findings,
                    "L009",
                    t.line,
                    format!(
                        "ad-hoc seed arithmetic in an RNG constructor — derive the seed \
                         with core::rng::derive_seed({hint}, lambda, run) instead"
                    ),
                ),
            }
            continue;
        }
        // (b) Seed arithmetic anywhere: a binary `+`/`^`/`*`/`<<` whose
        // neighbor is a seed-named identifier.
        if t.kind == TokenKind::Punct && matches!(t.text.as_str(), "+" | "^" | "*" | "<<") {
            let neighbor_is_seed = |tok: Option<&Token>| {
                tok.is_some_and(|n| n.kind == TokenKind::Ident && ident_names_a_seed(&n.text))
            };
            if (neighbor_is_seed(i.checked_sub(1).and_then(|p| toks.get(p)))
                || neighbor_is_seed(toks.get(i + 1)))
                && ctx.active("L009", i)
            {
                ctx.push(
                    findings,
                    "L009",
                    t.line,
                    format!(
                        "seed arithmetic `{}` outside core::rng::derive_seed — all seed \
                         derivation lives in the one frozen formula",
                        t.text
                    ),
                );
            }
        }
    }
}

/// Does an identifier denote a single seed value? (`seed`, `first_seed`,
/// `base_seed` — but not counts like `num_seeds`.)
fn ident_names_a_seed(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.contains("seed") && !lower.contains("seeds")
}

/// The token slice of the first argument after the `(` at `open`.
fn first_argument(toks: &[Token], open: usize) -> &[Token] {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return &toks[open + 1..j];
            }
        } else if t.is_punct(",") && depth == 1 {
            return &toks[open + 1..j];
        }
    }
    &toks[open + 1..toks.len().min(open + 1)]
}

enum SeedArg {
    Ok,
    Literal,
    Arithmetic,
}

/// Classifies an RNG-constructor seed argument: a plain variable/path/field
/// or a `derive_seed(…)` call is fine; an integer literal or in-line
/// arithmetic is not.
fn seed_argument_verdict(arg: &[Token]) -> SeedArg {
    if arg.iter().any(|t| t.is_ident("derive_seed")) {
        return SeedArg::Ok;
    }
    if arg
        .iter()
        .any(|t| t.kind == TokenKind::Punct && matches!(t.text.as_str(), "+" | "^" | "*" | "<<"))
    {
        return SeedArg::Arithmetic;
    }
    if arg.iter().any(|t| t.kind == TokenKind::Int) {
        return SeedArg::Literal;
    }
    SeedArg::Ok
}

// --- L010 -------------------------------------------------------------------

/// Integer target types of a lossy float cast.
const INT_TYPES: &[&str] = &[
    "usize", "u64", "u32", "u16", "u8", "isize", "i64", "i32", "i16", "i8",
];
/// Narrow targets of a lossy integer→integer cast when the operand visibly
/// carries a wider type.
const NARROW_TARGETS: &[&str] = &["u32", "u16", "u8", "i32", "i16", "i8"];
/// Wider-type markers in an operand.
const WIDE_SOURCES: &[&str] = &["u64", "usize", "i64", "isize"];

/// L010: lossy `as` casts on model quantities in kernel crates.
fn l010_lossy_casts(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !in_scope(ctx.file, L010_CRATES) || ctx.file.rel_path.ends_with("core/src/numeric.rs") {
        return;
    }
    let helper_hint = {
        let helpers: Vec<&str> = ctx
            .index
            .numeric_helpers
            .iter()
            .map(String::as_str)
            .filter(|h| h.contains("_from_f64") || h.starts_with("f64_to_"))
            .collect();
        if helpers.is_empty() {
            "a checked conversion helper in core::numeric".to_string()
        } else {
            format!("core::numeric::{{{}}}", helpers.join(", "))
        }
    };
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if target.kind != TokenKind::Ident || !INT_TYPES.contains(&target.text.as_str()) {
            continue;
        }
        if !ctx.active("L010", i) {
            continue;
        }
        let operand = &toks[operand_start(toks, i)..i];
        if operand_looks_float(operand) {
            ctx.push(
                findings,
                "L010",
                t.line,
                format!(
                    "lossy float→{} `as` cast on a model quantity — route through \
                     {helper_hint}",
                    target.text
                ),
            );
            continue;
        }
        if NARROW_TARGETS.contains(&target.text.as_str())
            && operand
                .iter()
                .any(|t| t.kind == TokenKind::Ident && WIDE_SOURCES.contains(&t.text.as_str()))
        {
            ctx.push(
                findings,
                "L010",
                t.line,
                format!(
                    "narrowing integer `as` cast to {} — use try_into or a checked \
                     helper in core::numeric",
                    target.text
                ),
            );
        }
    }
}

// --- L011 -------------------------------------------------------------------

/// L011: ambient process state (`std::env` / `std::fs`) in deterministic
/// crates.
fn l011_ambient_reads(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !in_scope(ctx.file, DETERMINISTIC_CRATES) {
        return;
    }
    // The write-ahead journal is the seam itself: `obs/src/journal.rs` is
    // the single sanctioned `std::fs` site in the deterministic core,
    // mirroring the `obs/src/clock.rs` carve-out for L005/L006. Everything
    // durable flows through its `JournalSink` trait.
    if ctx.file.rel_path.ends_with("obs/src/journal.rs") {
        return;
    }
    let toks = ctx.toks;
    for (i, t) in toks.iter().enumerate() {
        // `std::env` / `std::fs` paths, and module calls through an import
        // (`use std::env; … env::var(…)`).
        let qualified = t.is_ident("std")
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && toks
                .get(i + 2)
                .is_some_and(|n| n.is_ident("env") || n.is_ident("fs"));
        let imported = (t.is_ident("env") || t.is_ident("fs"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
            && (i == 0 || !toks[i - 1].is_punct("::"))
            && ctx
                .model
                .uses
                .get(t.text.as_str())
                .is_some_and(|full| full == &format!("std::{}", t.text));
        if !qualified && !imported {
            continue;
        }
        if !ctx.active("L011", i) {
            continue;
        }
        let module = if qualified {
            toks[i + 2].text.clone()
        } else {
            t.text.clone()
        };
        ctx.push(
            findings,
            "L011",
            t.line,
            format!(
                "`std::{module}` access in a deterministic crate — ambient process \
                 state breaks replay; pass configuration through typed constructors"
            ),
        );
    }
}
