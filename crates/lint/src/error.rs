//! Typed errors for the lint binary, mirroring the workspace's
//! `CoreError` conventions (PR 3): argument problems carry the flag and a
//! reason, and every error renders a single actionable line.

use std::fmt;

/// Error raised by the `cloudsched-lint` binary.
#[derive(Debug)]
pub enum LintError {
    /// A command-line argument was missing, malformed or unknown.
    InvalidArgument {
        /// The flag, including leading dashes (e.g. `--explain`).
        flag: String,
        /// What was wrong with it.
        reason: String,
    },
    /// `--explain` was passed a rule id outside L001–L011.
    UnknownRule {
        /// The id as given.
        id: String,
    },
    /// The workspace could not be read.
    Io(std::io::Error),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::InvalidArgument { flag, reason } => {
                write!(f, "argument {flag}: {reason}")
            }
            LintError::UnknownRule { id } => {
                write!(
                    f,
                    "unknown rule `{id}` — valid ids are L001 through L{:03}",
                    crate::rules::RULES.len()
                )
            }
            LintError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LintError {}

impl From<std::io::Error> for LintError {
    fn from(e: std::io::Error) -> Self {
        LintError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_flag_and_rule() {
        let e = LintError::InvalidArgument {
            flag: "--explain".into(),
            reason: "needs a rule id".into(),
        };
        assert!(e.to_string().contains("--explain"));
        let e = LintError::UnknownRule { id: "L099".into() };
        assert!(e.to_string().contains("L099"));
        assert!(e.to_string().contains("L011"));
    }
}
