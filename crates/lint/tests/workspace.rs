//! Tier-1 gate: the workspace must lint clean.
//!
//! This test makes `cargo test -q` run the full static-analysis pass (both
//! phases: workspace index, then rules L001–L011): any new violation or
//! stale baseline entry fails the suite with the finding list in the
//! assertion message.

#![forbid(unsafe_code)]

use cloudsched_lint::run_workspace;
use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run_workspace(&root).expect("lint pass runs");
    assert!(
        report.files_scanned >= 60,
        "discovery looks broken: only {} files scanned",
        report.files_scanned
    );
    assert!(report.is_clean(), "\n{}", report.render());
}
