//! Fixture-driven rule matrix: every rule L001–L011 exercised on in-memory
//! sources with one positive case (the rule fires), one negative case (the
//! compliant spelling passes), and one allow-directive case (the escape
//! hatch silences it). This is where rules whose violations no longer exist
//! in the workspace (the point of this PR) keep their detection coverage.

#![forbid(unsafe_code)]

use cloudsched_lint::{check_files, FileKind, Finding, SourceFile};

/// A library fixture file in the given crate.
fn lib_file(crate_name: &str, rel_path: &str, text: &str) -> SourceFile {
    SourceFile {
        crate_name: crate_name.into(),
        rel_path: rel_path.into(),
        kind: FileKind::Lib,
        is_crate_root: false,
        text: text.into(),
    }
}

fn lint_one(file: SourceFile) -> Vec<Finding> {
    check_files(vec![file])
}

fn fires(findings: &[Finding], rule: &str) -> bool {
    findings.iter().any(|f| f.rule == rule)
}

/// Asserts `text` (as library code of `crate_name`) triggers `rule`, that
/// `clean_text` does not, and that appending the allow directive to the
/// offending line silences it.
fn matrix(rule: &str, crate_name: &str, rel_path: &str, text: &str, clean_text: &str) {
    let found = lint_one(lib_file(crate_name, rel_path, text));
    assert!(
        fires(&found, rule),
        "{rule} positive case did not fire on:\n{text}\nfindings: {found:#?}"
    );
    let clean = lint_one(lib_file(crate_name, rel_path, clean_text));
    assert!(
        !fires(&clean, rule),
        "{rule} negative case fired on:\n{clean_text}\nfindings: {clean:#?}"
    );
    // Allow-directive case: silence every offending line of the positive
    // fixture with a trailing directive.
    let offending: Vec<usize> = found
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect();
    let allowed_text: String = text
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if offending.contains(&(i + 1)) {
                format!("{l} // lint: allow({rule}) — fixture\n")
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    let allowed = lint_one(lib_file(crate_name, rel_path, &allowed_text));
    assert!(
        !fires(&allowed, rule),
        "{rule} allow directive did not silence:\n{allowed_text}\nfindings: {allowed:#?}"
    );
}

#[test]
fn l001_raw_float_comparison() {
    matrix(
        "L001",
        "sim",
        "crates/sim/src/fixture.rs",
        "pub fn done(remaining: f64, target: f64) -> bool { remaining == target }\n",
        "pub fn done(remaining: f64, target: f64) -> bool { approx_eq(remaining, target) }\n",
    );
}

#[test]
fn l001_integer_yielding_tail_is_not_a_float() {
    // The PR 5 escape class: `remaining` is float vocabulary, but
    // `.capacity()` / `.len()` yield integers — no finding, no allow needed.
    let f = lib_file(
        "sim",
        "crates/sim/src/fixture.rs",
        "pub fn fits(&self, n: usize) -> bool { self.remaining.capacity() >= n }\n",
    );
    let found = lint_one(f);
    assert!(
        !fires(&found, "L001"),
        "capacity comparison flagged: {found:#?}"
    );
}

#[test]
fn l002_unwrap_and_unjustified_expect() {
    matrix(
        "L002",
        "sched",
        "crates/sched/src/fixture.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
        "pub fn f(x: Option<u32>) -> u32 { x.expect(\"invariant: queue is non-empty here\") }\n",
    );
    let bad_expect = lint_one(lib_file(
        "sched",
        "crates/sched/src/fixture.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.expect(\"oops\") }\n",
    ));
    assert!(fires(&bad_expect, "L002"), "unjustified expect passed");
}

#[test]
fn l003_panic_macros() {
    matrix(
        "L003",
        "workload",
        "crates/workload/src/fixture.rs",
        "pub fn f() { panic!(\"boom\"); }\n",
        "pub fn f() -> Result<(), CoreError> { Err(CoreError::Infeasible) }\n",
    );
}

#[test]
fn l004_forbid_unsafe_on_crate_roots() {
    let root = |text: &str| SourceFile {
        crate_name: "sim".into(),
        rel_path: "crates/sim/src/lib.rs".into(),
        kind: FileKind::Lib,
        is_crate_root: true,
        text: text.into(),
    };
    let found = lint_one(root("pub mod engine;\n"));
    assert!(fires(&found, "L004"), "missing forbid passed: {found:#?}");
    let clean = lint_one(root("#![forbid(unsafe_code)]\npub mod engine;\n"));
    assert!(
        !fires(&clean, "L004"),
        "forbidding root flagged: {clean:#?}"
    );
    let allowed = lint_one(root("pub mod engine; // lint: allow(L004) — fixture\n"));
    assert!(
        !fires(&allowed, "L004"),
        "allow directive ignored: {allowed:#?}"
    );
}

#[test]
fn l005_wall_clock() {
    matrix(
        "L005",
        "sim",
        "crates/sim/src/fixture.rs",
        "pub fn f() -> Instant { Instant::now() }\n",
        "pub fn f(ctx: &SimContext<'_>) -> Time { ctx.now() }\n",
    );
}

#[test]
fn l006_raw_time_types() {
    matrix(
        "L006",
        "analysis",
        "crates/analysis/src/fixture.rs",
        "pub struct Timer { started: std::time::Instant }\n",
        "pub struct Timer { clock: Box<dyn Clock> }\n",
    );
    // The bench crate is the sanctioned wall-clock user.
    let bench = lint_one(lib_file(
        "bench",
        "crates/bench/src/fixture.rs",
        "pub struct Timer { started: std::time::Instant }\n",
    ));
    assert!(!fires(&bench, "L006"), "bench exemption broken: {bench:#?}");
}

#[test]
fn l007_hash_iteration() {
    matrix(
        "L007",
        "sim",
        "crates/sim/src/fixture.rs",
        "use std::collections::HashMap;\n\
         pub struct S { m: HashMap<u64, u64> }\n\
         impl S { pub fn sum(&self) -> u64 { self.m.values().sum() } }\n",
        "use std::collections::BTreeMap;\n\
         pub struct S { m: BTreeMap<u64, u64> }\n\
         impl S { pub fn sum(&self) -> u64 { self.m.values().sum() } }\n",
    );
    // Pure lookup on a hash collection stays legal.
    let lookup = lint_one(lib_file(
        "sim",
        "crates/sim/src/fixture.rs",
        "use std::collections::HashMap;\n\
         pub struct S { m: HashMap<u64, u64> }\n\
         impl S { pub fn get(&self, k: u64) -> Option<&u64> { self.m.get(&k) } }\n",
    ));
    assert!(!fires(&lookup, "L007"), "lookup flagged: {lookup:#?}");
    // `for … in` over a hash collection fires too.
    let for_loop = lint_one(lib_file(
        "sim",
        "crates/sim/src/fixture.rs",
        "use std::collections::HashSet;\n\
         pub struct S { seen: HashSet<u64> }\n\
         impl S { pub fn dump(&self) { for v in &self.seen { drop(v); } } }\n",
    ));
    assert!(
        fires(&for_loop, "L007"),
        "for-loop iteration passed: {for_loop:#?}"
    );
}

#[test]
fn l008_thread_fanout() {
    matrix(
        "L008",
        "faults",
        "crates/faults/src/fixture.rs",
        "pub fn f() { std::thread::spawn(|| {}); }\n",
        "pub fn f(n: usize) -> Vec<u64> { parallel_map(n, 4, |i| i as u64) }\n",
    );
    // core/src/par.rs is the sanctioned site.
    let par = lint_one(lib_file(
        "core",
        "crates/core/src/par.rs",
        "pub fn f() { std::thread::scope(|_| {}); }\n",
    ));
    assert!(!fires(&par, "L008"), "par.rs exemption broken: {par:#?}");
}

#[test]
fn l009_seed_discipline() {
    matrix(
        "L009",
        "workload",
        "crates/workload/src/fixture.rs",
        "pub fn f() -> Pcg32 { Pcg32::seed_from_u64(42) }\n",
        "pub fn f(stream: u64, lambda: f64, run: usize) -> Pcg32 {\n\
         \x20   Pcg32::seed_from_u64(derive_seed(stream, lambda, run))\n\
         }\n",
    );
    // Ad-hoc arithmetic in the constructor argument.
    let arith = lint_one(lib_file(
        "workload",
        "crates/workload/src/fixture.rs",
        "pub fn f(seed: u64, i: u64) -> Pcg32 { Pcg32::seed_from_u64(seed + i) }\n",
    ));
    assert!(fires(&arith, "L009"), "seed arithmetic passed: {arith:#?}");
    // Integration-test files are exempt: local test seeds feed no artifact.
    let test_file = SourceFile {
        crate_name: "workload".into(),
        rel_path: "crates/workload/tests/fixture.rs".into(),
        kind: FileKind::Test,
        is_crate_root: true,
        text: "fn f() -> Pcg32 { Pcg32::seed_from_u64(42) }\n".into(),
    };
    let found = lint_one(test_file);
    assert!(!fires(&found, "L009"), "test exemption broken: {found:#?}");
}

#[test]
fn l010_lossy_casts() {
    matrix(
        "L010",
        "sim",
        "crates/sim/src/fixture.rs",
        "pub fn f(remaining: f64) -> usize { remaining as usize }\n",
        "pub fn f(remaining: f64) -> Option<usize> { checked_usize_from_f64(remaining) }\n",
    );
    // Narrowing integer cast with a visibly wide operand.
    let narrow = lint_one(lib_file(
        "core",
        "crates/core/src/fixture.rs",
        "pub fn f(n: usize) -> u16 { (n as u64) as u16 }\n",
    ));
    assert!(fires(&narrow, "L010"), "narrowing cast passed: {narrow:#?}");
    // Widening integer casts are fine.
    let widen = lint_one(lib_file(
        "core",
        "crates/core/src/fixture.rs",
        "pub fn f(n: u32) -> u64 { n as u64 }\n",
    ));
    assert!(!fires(&widen, "L010"), "widening cast flagged: {widen:#?}");
}

#[test]
fn l011_ambient_reads() {
    matrix(
        "L011",
        "sched",
        "crates/sched/src/fixture.rs",
        "pub fn f() -> Option<String> { std::env::var(\"THREADS\").ok() }\n",
        "pub fn f(threads: usize) -> usize { threads }\n",
    );
    // The imported-module spelling is caught too.
    let imported = lint_one(lib_file(
        "sim",
        "crates/sim/src/fixture.rs",
        "use std::fs;\npub fn f() -> std::io::Result<String> { fs::read_to_string(\"cfg\") }\n",
    ));
    assert!(
        fires(&imported, "L011"),
        "imported fs read passed: {imported:#?}"
    );
    // The cli crate sits outside the deterministic core and may read files.
    let cli = lint_one(lib_file(
        "cli",
        "crates/cli/src/fixture.rs",
        "pub fn f() -> std::io::Result<String> { std::fs::read_to_string(\"cfg\") }\n",
    ));
    assert!(!fires(&cli, "L011"), "cli exemption broken: {cli:#?}");
}

#[test]
fn l011_journal_is_the_sanctioned_fs_seam() {
    // PR 8's write-ahead journal: `obs/src/journal.rs` is the single
    // sanctioned `std::fs` site in the deterministic core (mirroring the
    // `obs/src/clock.rs` carve-out for L005/L006) — everything durable
    // flows through its `JournalSink` trait, so the file itself may open
    // and append to files without per-line allow directives.
    let journal = lint_one(lib_file(
        "obs",
        "crates/obs/src/journal.rs",
        "pub fn create(path: &str) -> std::io::Result<std::fs::File> {\n\
         \x20   std::fs::File::create(path)\n\
         }\n",
    ));
    assert!(
        !fires(&journal, "L011"),
        "journal carve-out broken: {journal:#?}"
    );
    // The carve-out is the file, not the crate: any other obs module
    // touching `std::fs` still fires.
    let sibling = lint_one(lib_file(
        "obs",
        "crates/obs/src/metrics.rs",
        "pub fn dump(path: &str, body: &str) -> std::io::Result<()> {\n\
         \x20   std::fs::write(path, body)\n\
         }\n",
    ));
    assert!(
        fires(&sibling, "L011"),
        "fs access outside journal.rs passed in obs: {sibling:#?}"
    );
}

#[test]
fn insight_is_a_deterministic_crate() {
    // PR 7 adds `insight` to the deterministic core: ledgers and ratio
    // reports must reproduce bit-for-bit from a trace alone, so the crate
    // inherits L005 (no wall clock), L007 (no hash-order iteration) and
    // L011 (no ambient process state).
    matrix(
        "L005",
        "insight",
        "crates/insight/src/fixture.rs",
        "pub fn f() -> Instant { Instant::now() }\n",
        "pub fn f(t: Time) -> Time { t }\n",
    );
    matrix(
        "L007",
        "insight",
        "crates/insight/src/fixture.rs",
        "use std::collections::HashMap;\n\
         pub struct Ledger { buckets: HashMap<u64, f64> }\n\
         impl Ledger { pub fn total(&self) -> f64 { self.buckets.values().sum() } }\n",
        "use std::collections::BTreeMap;\n\
         pub struct Ledger { buckets: BTreeMap<u64, f64> }\n\
         impl Ledger { pub fn total(&self) -> f64 { self.buckets.values().sum() } }\n",
    );
    matrix(
        "L011",
        "insight",
        "crates/insight/src/fixture.rs",
        "pub fn f(path: &str) -> std::io::Result<String> { std::fs::read_to_string(path) }\n",
        "pub fn f(jsonl: &str) -> usize { jsonl.lines().count() }\n",
    );
}

#[test]
fn fleet_engine_and_dispatch_are_fully_in_scope() {
    // PR 10's fleet layer (`DESIGN.md` §16): the sharded multi-machine
    // engine in `sim/src/fleet.rs` and the dispatch policies in
    // `sched/src/dispatch.rs` promise output that is a pure function of
    // `(seed, M, policy)` at every thread count, so both files carry the
    // full determinism contract — no wall clock (L005), no hash-order
    // iteration (L007), no raw thread fan-out (L008, `core::par` is the
    // sanctioned seam), seed discipline (L009), no ambient process state
    // (L011).
    matrix(
        "L005",
        "sim",
        "crates/sim/src/fleet.rs",
        "pub fn f() -> Instant { Instant::now() }\n",
        "pub fn f(t: Time) -> Time { t }\n",
    );
    matrix(
        "L007",
        "sim",
        "crates/sim/src/fleet.rs",
        "use std::collections::HashMap;\n\
         pub struct Fleet { backlog: HashMap<usize, f64> }\n\
         impl Fleet { pub fn total(&self) -> f64 { self.backlog.values().sum() } }\n",
        "pub struct Fleet { backlog: Vec<f64> }\n\
         impl Fleet { pub fn total(&self) -> f64 { self.backlog.iter().sum() } }\n",
    );
    matrix(
        "L008",
        "sim",
        "crates/sim/src/fleet.rs",
        "pub fn f() { std::thread::spawn(|| {}); }\n",
        "pub fn f(n: usize, threads: usize) -> Vec<u64> {\n\
         \x20   parallel_map_with(n, threads, || (), |_, i| i as u64)\n\
         }\n",
    );
    matrix(
        "L009",
        "sched",
        "crates/sched/src/dispatch.rs",
        "pub fn f() -> Pcg32 { Pcg32::seed_from_u64(42) }\n",
        "pub fn f(stream: u64, lambda: f64, run: usize) -> Pcg32 {\n\
         \x20   Pcg32::seed_from_u64(derive_seed(stream, lambda, run))\n\
         }\n",
    );
    matrix(
        "L011",
        "sched",
        "crates/sched/src/dispatch.rs",
        "pub fn f() -> Option<String> { std::env::var(\"FLEET_POLICY\").ok() }\n",
        "pub fn f(policy: &str) -> String { policy.to_string() }\n",
    );
}

#[test]
fn cfg_test_regions_are_exempt_everywhere() {
    let f = lib_file(
        "sched",
        "crates/sched/src/fixture.rs",
        "pub fn ok() {}\n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   fn helper(x: Option<u32>) -> u32 { x.unwrap() }\n\
         \x20   fn seeded() -> Pcg32 { Pcg32::seed_from_u64(7) }\n\
         }\n",
    );
    let found = lint_one(f);
    assert!(found.is_empty(), "cfg(test) region not exempt: {found:#?}");
}

#[test]
fn findings_inside_strings_and_comments_are_ignored() {
    let f = lib_file(
        "sched",
        "crates/sched/src/fixture.rs",
        "// a comment mentioning x.unwrap() and panic!(\"boom\")\n\
         pub const DOC: &str = \"x.unwrap() and Instant::now()\";\n\
         pub const RAW: &str = r#\"thread::spawn inside a raw \"string\"\"#;\n",
    );
    let found = lint_one(f);
    assert!(found.is_empty(), "lexical ghosts fired: {found:#?}");
}
