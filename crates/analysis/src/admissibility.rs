//! Definition 4 (individual admissibility) checks and instance triage.

use cloudsched_capacity::{CapacityProfile, Instance};
use cloudsched_core::{JobId, JobSet};

/// Splits a job set into individually admissible and non-admissible jobs
/// w.r.t. the worst-case capacity `c_lo` (Definition 4: `d−r >= p/c_lo`).
pub fn partition_admissible(jobs: &JobSet, c_lo: f64) -> (Vec<JobId>, Vec<JobId>) {
    let mut yes = Vec::new();
    let mut no = Vec::new();
    for j in jobs.iter() {
        if j.individually_admissible(c_lo) {
            yes.push(j.id);
        } else {
            no.push(j.id);
        }
    }
    (yes, no)
}

/// Coarse load triage of an instance. `CertifiedFit` is only a *necessary*
/// underload condition (total workload fits the fluid capacity of the span);
/// the sufficient EDF-based feasibility test lives in `cloudsched-offline`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadTriage {
    /// Total workload exceeds what the processor can serve over the span:
    /// certainly overloaded.
    CertifiedOverload,
    /// Workload fits the fluid bound; may or may not be schedulable.
    PossiblyUnderloaded,
}

/// Triage an instance by the fluid workload bound.
pub fn triage(instance: &Instance) -> LoadTriage {
    if instance.workload_fits_span() {
        LoadTriage::PossiblyUnderloaded
    } else {
        LoadTriage::CertifiedOverload
    }
}

/// The margin of Definition 4 for one job: `(d−r) − p/c_lo` (non-negative iff
/// admissible). Useful for diagnosing generated workloads; the paper's §IV
/// setup makes this exactly zero for every job.
pub fn admissibility_margin(jobs: &JobSet, id: JobId, c_lo: f64) -> f64 {
    let j = jobs.get(id);
    j.relative_deadline().as_f64() - j.workload / c_lo
}

/// `true` iff the whole instance satisfies the Theorem 3(2) precondition.
pub fn theorem3_precondition(instance: &Instance) -> bool {
    instance
        .jobs
        .all_individually_admissible(instance.capacity.c_lo())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_capacity::PiecewiseConstant;

    fn jobs() -> JobSet {
        JobSet::from_tuples(&[
            (0.0, 4.0, 2.0, 1.0), // margin 2 at c_lo=1
            (0.0, 1.0, 2.0, 1.0), // margin -1: not admissible
            (1.0, 3.0, 2.0, 1.0), // margin 0: exactly admissible
        ])
        .unwrap()
    }

    #[test]
    fn partition_matches_definition() {
        let (yes, no) = partition_admissible(&jobs(), 1.0);
        assert_eq!(yes, vec![JobId(0), JobId(2)]);
        assert_eq!(no, vec![JobId(1)]);
    }

    #[test]
    fn margins() {
        let js = jobs();
        assert_eq!(admissibility_margin(&js, JobId(0), 1.0), 2.0);
        assert_eq!(admissibility_margin(&js, JobId(1), 1.0), -1.0);
        assert_eq!(admissibility_margin(&js, JobId(2), 1.0), 0.0);
    }

    #[test]
    fn triage_detects_certain_overload() {
        let cap = PiecewiseConstant::constant(1.0).unwrap();
        // Span [0,1], capacity 1, workload 5: certified overload.
        let heavy = JobSet::from_tuples(&[(0.0, 1.0, 5.0, 1.0)]).unwrap();
        assert_eq!(
            triage(&Instance::new(heavy, cap.clone())),
            LoadTriage::CertifiedOverload
        );
        let light = JobSet::from_tuples(&[(0.0, 2.0, 1.0, 1.0)]).unwrap();
        assert_eq!(
            triage(&Instance::new(light, cap)),
            LoadTriage::PossiblyUnderloaded
        );
    }

    #[test]
    fn theorem3_precondition_uses_declared_c_lo() {
        let cap = PiecewiseConstant::from_durations(&[(1.0, 1.0), (1.0, 3.0)]).unwrap();
        let ok = JobSet::from_tuples(&[(0.0, 4.0, 2.0, 1.0)]).unwrap();
        assert!(theorem3_precondition(&Instance::new(ok, cap.clone())));
        let bad = JobSet::from_tuples(&[(0.0, 1.0, 2.0, 1.0)]).unwrap();
        assert!(!theorem3_precondition(&Instance::new(bad, cap)));
    }
}
