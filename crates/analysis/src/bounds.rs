//! Competitive-ratio formulas from Theorems 1 and 3.
//!
//! Conventions: `k >= 1` is the importance-ratio bound of the input job set
//! (Definition 3, min value density normalised to 1), `δ = c_hi/c_lo > 1` is
//! the maximum capacity variation (§II-A). All ratios are in `(0, 1]`.

/// The overload penalty function of Theorem 3:
/// `f(k, δ) = 2δ + 2 + log(δk) / log(δ/(δ−1))`.
///
/// Defined for `δ > 1` (for `δ = 1` the problem degenerates to the constant
/// capacity case covered by Dover's `1/(1+√k)²`).
///
/// # Panics
/// If `k < 1` or `δ <= 1`.
pub fn f_overload(k: f64, delta: f64) -> f64 {
    assert!(k >= 1.0, "importance ratio bound must be >= 1, got {k}"); // lint: allow(L001) — exact domain precondition
    assert!(delta > 1.0, "capacity variation must be > 1, got {delta}");
    2.0 * delta + 2.0 + (delta * k).ln() / (delta / (delta - 1.0)).ln()
}

/// V-Dover's achievable competitive ratio under individual admissibility
/// (Theorem 3(2)): `1 / ((√k + √f(k,δ))² + 1)`.
pub fn vdover_achievable_ratio(k: f64, delta: f64) -> f64 {
    let f = f_overload(k, delta);
    1.0 / ((k.sqrt() + f.sqrt()).powi(2) + 1.0)
}

/// The upper bound on any online algorithm's competitive ratio for the
/// varying-capacity overloaded problem (Theorem 3(1)): since the constant
/// capacity inputs are a subset of `C(c_lo, c_hi)`, the classical bound
/// `1/(1+√k)²` applies.
pub fn vdover_upper_bound(k: f64) -> f64 {
    dover_optimal_ratio(k)
}

/// Dover's optimal competitive ratio for constant capacity and importance
/// ratio bound `k` (Theorem 1(2), Koren & Shasha): `1/(1+√k)²`.
pub fn dover_optimal_ratio(k: f64) -> f64 {
    assert!(k >= 1.0, "importance ratio bound must be >= 1, got {k}"); // lint: allow(L001) — exact domain precondition
    1.0 / (1.0 + k.sqrt()).powi(2)
}

/// The value-comparison threshold optimising V-Dover's competitive ratio
/// (proof of Theorem 3(2)): `β* = 1 + √(k / f(k,δ))`.
pub fn optimal_beta(k: f64, delta: f64) -> f64 {
    1.0 + (k / f_overload(k, delta)).sqrt()
}

/// Dover's classical threshold for constant capacity: `1 + √k`.
pub fn dover_beta(k: f64) -> f64 {
    assert!(k >= 1.0, "importance ratio bound must be >= 1, got {k}"); // lint: allow(L001) — exact domain precondition
    1.0 + k.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_overload_reference_values() {
        // δ = 2: log(2/(2-1)) = ln 2; f = 6 + ln(2k)/ln 2.
        let f = f_overload(1.0, 2.0);
        assert!((f - (6.0 + 2.0_f64.ln() / 2.0_f64.ln())).abs() < 1e-12);
        // Paper's simulation: k = 7, δ = 35.
        let f = f_overload(7.0, 35.0);
        let expected = 72.0 + (245.0_f64).ln() / (35.0 / 34.0_f64).ln();
        assert!((f - expected).abs() < 1e-9);
    }

    #[test]
    fn f_grows_with_delta_and_k() {
        assert!(f_overload(7.0, 10.0) < f_overload(7.0, 20.0));
        assert!(f_overload(2.0, 10.0) < f_overload(8.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "capacity variation")]
    fn f_requires_delta_above_one() {
        f_overload(2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "importance ratio")]
    fn f_requires_k_at_least_one() {
        f_overload(0.5, 2.0);
    }

    #[test]
    fn dover_ratio_matches_formula() {
        assert!((dover_optimal_ratio(1.0) - 0.25).abs() < 1e-12);
        assert!((dover_optimal_ratio(4.0) - 1.0 / 9.0).abs() < 1e-12);
        assert!((dover_beta(4.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn achievable_is_below_upper_bound() {
        for &k in &[1.0, 2.0, 7.0, 50.0] {
            for &d in &[1.5, 2.0, 10.0, 35.0] {
                let ach = vdover_achievable_ratio(k, d);
                let ub = vdover_upper_bound(k);
                assert!(ach > 0.0 && ach < ub, "k={k} δ={d}: {ach} !< {ub}");
            }
        }
    }

    #[test]
    fn asymptotic_optimality_in_k() {
        // Theorem 3 discussion: achievable/upper-bound -> 1 as k -> ∞.
        let delta = 35.0;
        let ratio_at = |k: f64| vdover_achievable_ratio(k, delta) / vdover_upper_bound(k);
        let r3 = ratio_at(1e3);
        let r6 = ratio_at(1e6);
        let r9 = ratio_at(1e9);
        assert!(r3 < r6 && r6 < r9, "ratio should increase toward 1");
        assert!(r9 > 0.99, "ratio at k=1e9 should be near 1, got {r9}");
    }

    #[test]
    fn optimal_beta_reference() {
        let k = 7.0;
        let d = 35.0;
        let beta = optimal_beta(k, d);
        assert!((beta - (1.0 + (k / f_overload(k, d)).sqrt())).abs() < 1e-12);
        assert!(beta > 1.0);
        // β* decreases as overload penalty grows (urgent jobs preempt less).
        assert!(optimal_beta(7.0, 100.0) < optimal_beta(7.0, 2.0));
    }

    #[test]
    fn beta_is_the_minimiser() {
        // C(F) bound ∝ f(k,δ)·β + k + k/(β−1); β* should minimise
        // g(β) = f·β + k/(β−1) over β > 1 (the k constant does not matter).
        let (k, d) = (7.0, 35.0);
        let f = f_overload(k, d);
        let g = |b: f64| f * b + k / (b - 1.0);
        let b_star = optimal_beta(k, d);
        for &b in &[b_star * 0.9, b_star * 0.99, b_star * 1.01, b_star * 1.5] {
            assert!(
                g(b_star) <= g(b) + 1e-9,
                "β*={b_star} not optimal vs {b}: {} > {}",
                g(b_star),
                g(b)
            );
        }
    }
}
