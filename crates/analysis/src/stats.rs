//! Monte-Carlo aggregation for the experiment harness.

/// Summary statistics of a sample (Table I cells are means over 800 runs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance (0 for n < 2).
    pub variance: f64,
    /// Smallest sample (+∞ when empty).
    pub min: f64,
    /// Largest sample (−∞ when empty).
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of `samples`.
    pub fn from_samples(samples: &[f64]) -> Summary {
        let n = samples.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: 0.0,
                variance: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let variance = if n >= 2 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean,
            variance,
            min,
            max,
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Normal-approximation 95% confidence half-width for the mean.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_err()
    }
}

/// Linear-interpolation percentile of a sample (`q` in `[0, 1]`).
///
/// # Panics
/// If `samples` is empty or `q` is outside `[0, 1]`.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!(!samples.is_empty(), "percentile of an empty sample");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0,1], got {q}"
    );
    let mut xs = samples.to_vec();
    xs.sort_by(f64::total_cmp);
    let pos = q * (xs.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        xs[lo]
    } else {
        let w = pos - lo as f64;
        xs[lo] * (1.0 - w) + xs[hi] * w
    }
}

/// Empirical CDF evaluated at `x`: fraction of samples `<= x`.
pub fn ecdf(samples: &[f64], x: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&s| s <= x).count() as f64 / samples.len() as f64
}

/// Welford online accumulator — lets the parallel harness merge partial
/// results without storing every sample.
#[derive(Debug, Clone, Copy, Default)]
pub struct Accumulator {
    n: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Accumulator {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator (Chan's parallel combination).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let d = other.mean - self.mean;
        let mean = self.mean + d * other.n as f64 / n as f64;
        self.m2 += other.m2 + d * d * (self.n as f64 * other.n as f64) / n as f64;
        self.mean = mean;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Finalises into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            n: self.n,
            mean: if self.n == 0 { 0.0 } else { self.mean },
            variance: if self.n >= 2 {
                self.m2 / (self.n - 1) as f64
            } else {
                0.0
            },
            min: self.min,
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.variance - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_err() - s.std_dev() / 2.0).abs() < 1e-12);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn empty_and_singleton() {
        let e = Summary::from_samples(&[]);
        assert_eq!(e.n, 0);
        assert_eq!(e.mean, 0.0);
        assert_eq!(e.std_err(), 0.0);
        let s = Summary::from_samples(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.variance, 0.0);
    }

    #[test]
    fn accumulator_matches_batch() {
        let xs: Vec<f64> = (0..100).map(|i| ((i * 37) % 17) as f64 / 3.0).collect();
        let batch = Summary::from_samples(&xs);
        let mut acc = Accumulator::new();
        for &x in &xs {
            acc.push(x);
        }
        let s = acc.summary();
        assert_eq!(s.n, batch.n);
        assert!((s.mean - batch.mean).abs() < 1e-12);
        assert!((s.variance - batch.variance).abs() < 1e-10);
        assert_eq!(s.min, batch.min);
        assert_eq!(s.max, batch.max);
    }

    #[test]
    fn percentiles_and_ecdf() {
        let xs = [4.0, 1.0, 3.0, 2.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 5.0);
        assert_eq!(percentile(&xs, 0.5), 3.0);
        assert!((percentile(&xs, 0.25) - 2.0).abs() < 1e-12);
        assert!((percentile(&xs, 0.125) - 1.5).abs() < 1e-12); // interpolated
        assert_eq!(ecdf(&xs, 2.5), 0.4);
        assert_eq!(ecdf(&xs, 5.0), 1.0);
        assert_eq!(ecdf(&xs, 0.0), 0.0);
        assert_eq!(ecdf(&[], 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_empty_panics() {
        percentile(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn percentile_bad_quantile_panics() {
        percentile(&[1.0], 1.5);
    }

    #[test]
    fn merge_matches_batch() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin()).collect();
        let (a, b) = xs.split_at(20);
        let mut acc_a = Accumulator::new();
        let mut acc_b = Accumulator::new();
        a.iter().for_each(|&x| acc_a.push(x));
        b.iter().for_each(|&x| acc_b.push(x));
        acc_a.merge(&acc_b);
        let merged = acc_a.summary();
        let batch = Summary::from_samples(&xs);
        assert_eq!(merged.n, batch.n);
        assert!((merged.mean - batch.mean).abs() < 1e-12);
        assert!((merged.variance - batch.variance).abs() < 1e-10);
        // Merging with empty is a no-op both ways.
        let mut empty = Accumulator::new();
        empty.merge(&acc_a);
        assert_eq!(empty.summary().n, merged.n);
        let mut acc2 = acc_a;
        acc2.merge(&Accumulator::new());
        assert_eq!(acc2.summary().n, merged.n);
    }
}
