//! # cloudsched-analysis
//!
//! The paper's theory, executable:
//!
//! * [`bounds`] — the competitive-ratio formulas of Theorems 1 and 3
//!   (`f(k, δ)`, the achievable ratio, the upper bound, the optimal V-Dover
//!   threshold `β*`) and Dover's classical `1/(1+√k)²`;
//! * [`admissibility`] — Definition 4 checks and instance classification
//!   (underloaded vs overloaded necessary conditions);
//! * [`adversary`] — the Theorem 3(3) construction: an input family `I_n`
//!   containing one non-admissible job that drives every online algorithm's
//!   competitive ratio to zero;
//! * [`stats`] — Monte-Carlo aggregation (mean, variance, confidence
//!   intervals) for the experiment harness;
//! * [`table`] — plain CSV/Markdown emitters for reproducing the paper's
//!   Table I and Figure 1 without extra dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admissibility;
pub mod adversary;
pub mod bounds;
pub mod stats;
pub mod table;

pub use bounds::{
    dover_optimal_ratio, f_overload, optimal_beta, vdover_achievable_ratio, vdover_upper_bound,
};
pub use stats::Summary;
