//! Dependency-free table/series emitters (CSV and Markdown).
//!
//! The experiment binaries print the paper's Table I and Figure 1 data with
//! these helpers; no serde needed.

use std::fmt::Write as _;

/// A rectangular table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    ///
    /// # Panics
    /// If the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (RFC-4180-style quoting for fields containing commas,
    /// quotes or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |f: &str| -> String {
            if f.contains([',', '"', '\n']) {
                format!("\"{}\"", f.replace('"', "\"\""))
            } else {
                f.to_string()
            }
        };
        let emit = |out: &mut String, row: &[String]| {
            let line: Vec<String> = row.iter().map(|f| escape(f)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&mut out, &self.header);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Renders as a GitHub-flavoured Markdown table with aligned columns.
    pub fn to_markdown(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, f) in row.iter().enumerate() {
                widths[i] = widths[i].max(f.len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, row: &[String]| {
            out.push('|');
            for i in 0..cols {
                let f = row.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, " {f:<w$} |", w = widths[i]);
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{}|", "-".repeat(w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Formats a float with `prec` decimals (helper for table cells).
pub fn fnum(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Emits an `(x, series...)` dataset as CSV — used for Figure 1 style curves.
pub fn series_csv(x_name: &str, series_names: &[&str], points: &[(f64, Vec<f64>)]) -> String {
    let mut t = Table::new(
        std::iter::once(x_name.to_string())
            .chain(series_names.iter().map(|s| s.to_string()))
            .collect::<Vec<_>>(),
    );
    for (x, ys) in points {
        let mut row = vec![fnum(*x, 6)];
        row.extend(ys.iter().map(|y| fnum(*y, 6)));
        t.push_row(row);
    }
    t.to_csv()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip_simple() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1", "2"]);
        t.push_row(vec!["x,y", "q\"z"]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"z\""));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn markdown_is_aligned() {
        let mut t = Table::new(vec!["lambda", "gain"]);
        t.push_row(vec!["4", "8.74"]);
        t.push_row(vec!["12", "7.69"]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("|--"));
        // All lines same width thanks to padding.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only-one"]);
    }

    #[test]
    fn series_csv_layout() {
        let csv = series_csv(
            "t",
            &["dover", "vdover"],
            &[(0.0, vec![0.0, 0.0]), (1.0, vec![2.0, 3.0])],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "t,dover,vdover");
        assert!(lines[2].starts_with("1.000000,2.000000,3.000000"));
    }

    #[test]
    fn fnum_precision() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(50.0, 4), "50.0000");
    }
}
