//! The Theorem 3(3) adversary: without individual admissibility no online
//! algorithm has a positive competitive ratio.
//!
//! The paper's detailed construction lives in an unpublished technical
//! report; what we implement here is a faithful *qualitative* reproduction
//! built from the proof sketch ("an input instance `I_n` … the job input of
//! which contains one job not individually admissible, such that the
//! competitive ratio for the singleton set `{I_n}` is disproportional with
//! `n`"). Our gadget:
//!
//! * one **bait job** `B` with workload `δ·L` over a window of length `L`
//!   (not individually admissible: it completes only if the capacity sits at
//!   `c_hi = δ` for its *entire* window) and maximal value density `k`;
//! * a stream of `m` **filler jobs** with zero conservative laxity covering
//!   the same window at density 1 — any instant spent on the bait forfeits
//!   the concurrent filler;
//! * two capacity futures that agree until late in the window:
//!   `stay-high` (capacity `δ` throughout — bait feasible, worth `k·δ`
//!   versus filler worth `1`) and `drop` (capacity collapses to `c_lo` just
//!   before the end — bait infeasible, filler is everything).
//!
//! The adaptive adversary watches the online algorithm: chase the bait and
//! the capacity drops at the last moment (online salvages `O(1/m)` of the
//! filler while the clairvoyant offline collects all of it); ignore the bait
//! and the capacity stays high (offline collects `k·δ` times the filler
//! value). Because the online scheduler cannot distinguish the futures
//! before its filler jobs expire, chaining `n` independent rounds and
//! letting the filler granularity `m` grow with `n` drives the achieved
//! ratio to zero — which is exactly what the `adversary` experiment binary
//! demonstrates against every scheduler in this workspace.

use cloudsched_capacity::PiecewiseConstant;
use cloudsched_core::{CoreError, JobId, JobSet};

/// One round of the adversary game.
#[derive(Debug, Clone)]
pub struct TrapRound {
    /// Bait + filler jobs, bait first (id 0), times relative to round start 0.
    pub jobs: JobSet,
    /// Future 1: capacity stays at `c_hi` forever.
    pub cap_stay_high: PiecewiseConstant,
    /// Future 2: capacity drops to `c_lo` at `L·(1 − 1/m)`.
    pub cap_drop: PiecewiseConstant,
    /// Clairvoyant optimum under `cap_stay_high` (runs the bait): `k·δ·L·c_lo`.
    pub opt_stay_high: f64,
    /// Clairvoyant optimum under `cap_drop` (runs the filler): `L·c_lo`
    /// — the filler value (bait infeasible once the drop is fixed).
    pub opt_drop: f64,
}

/// Parameters of the trap construction.
#[derive(Debug, Clone, Copy)]
pub struct TrapParams {
    /// Importance-ratio bound `k >= 1` (bait density).
    pub k: f64,
    /// Capacity variation `δ > 1` (`c_lo = 1`, `c_hi = δ`).
    pub delta: f64,
    /// Window length of the round.
    pub window: f64,
    /// Number of filler jobs (granularity). More filler ⇒ less salvage for a
    /// bait-chasing online algorithm ⇒ smaller achieved ratio.
    pub fillers: usize,
}

impl TrapRound {
    /// Builds one round.
    pub fn build(p: TrapParams) -> Result<TrapRound, CoreError> {
        let TrapParams {
            k,
            delta,
            window: l,
            fillers: m,
        } = p;
        // lint: allow(L001) — exact domain validation
        if k < 1.0 || delta <= 1.0 || l <= 0.0 || m == 0 {
            return Err(CoreError::InvalidCapacityProfile {
                reason: format!("invalid trap parameters {p:?}"),
            });
        }
        // Bait: completable only at full capacity δ over the whole window.
        // Not individually admissible: p/c_lo = δ·l > l = d − r.
        let mut tuples = vec![(0.0, l, delta * l, k * delta * l)];
        // Fillers: m zero-conservative-laxity unit-density jobs tiling [0, l].
        let step = l / m as f64;
        for j in 0..m {
            let r = j as f64 * step;
            tuples.push((r, r + step, step, step));
        }
        let jobs = JobSet::from_tuples(&tuples)?;
        let cap_stay_high = PiecewiseConstant::constant(delta)?.with_declared_bounds(1.0, delta)?;
        let drop_at = l * (1.0 - 1.0 / m as f64);
        let cap_drop = if drop_at > 0.0 {
            PiecewiseConstant::from_durations(&[(drop_at, delta), (1.0, 1.0)])?
                .with_declared_bounds(1.0, delta)?
        } else {
            PiecewiseConstant::constant(1.0)?.with_declared_bounds(1.0, delta)?
        };
        Ok(TrapRound {
            jobs,
            cap_stay_high,
            cap_drop,
            opt_stay_high: k * delta * l,
            opt_drop: l,
        })
    }

    /// The theoretical best value any online algorithm can guarantee on this
    /// round against the adaptive adversary: it either abandons the bait and
    /// banks at most the filler (`l`), or chases the bait and salvages at
    /// most one filler slot (`l/m`) after the drop.
    pub fn online_guarantee(&self, p: TrapParams) -> f64 {
        p.window.max(p.window / p.fillers as f64)
    }
}

/// A §III-D-style *corrupt stream* for degradation testing: the trap's
/// inadmissible bait plus a duplicate release of the first filler, riding
/// on an otherwise clean filler stream under the stay-high capacity future.
///
/// The bait violates Def. 4 against the declared `c_lo = 1` (its window is
/// `1/δ` of its minimum processing time), and the duplicate replays filler
/// parameters under a fresh id — exactly the two job-stream faults the
/// degradation watchdog must catch. A `Strict` policy is expected to abort
/// on the first corrupt release; a `Degrade` policy to quarantine both and
/// still collect the clean filler value.
#[derive(Debug, Clone)]
pub struct CorruptRound {
    /// Bait (id 0), fillers (ids `1..=m`), duplicate of filler 1 (id `m+1`).
    pub jobs: JobSet,
    /// Stay-high capacity: constant `δ` with declared bounds `(1, δ)`.
    pub capacity: PiecewiseConstant,
    /// Ids of the corrupt jobs, in release order: the bait, then the
    /// duplicate.
    pub corrupt_ids: Vec<JobId>,
    /// Total value of the clean fillers (what a degraded run can still
    /// collect after quarantining the corruption).
    pub clean_value: f64,
}

impl CorruptRound {
    /// Builds the corrupt round from trap parameters.
    ///
    /// # Errors
    /// Same domain as [`TrapRound::build`].
    pub fn build(p: TrapParams) -> Result<CorruptRound, CoreError> {
        let trap = TrapRound::build(p)?;
        let m = p.fillers;
        let mut tuples: Vec<(f64, f64, f64, f64)> = trap
            .jobs
            .iter()
            .map(|j| (j.release.as_f64(), j.deadline.as_f64(), j.workload, j.value))
            .collect();
        // Duplicate release of the first filler (id 1): identical
        // parameters, fresh id appended after every original. The kernel's
        // id tie-break releases the original first, so the watchdog sees
        // the copy as a duplicate, not as a first sighting.
        let first_filler = trap.jobs.get(JobId(1));
        tuples.push((
            first_filler.release.as_f64(),
            first_filler.deadline.as_f64(),
            first_filler.workload,
            first_filler.value,
        ));
        let jobs = JobSet::from_tuples(&tuples)?;
        let clean_value: f64 = trap.jobs.iter().skip(1).map(|j| j.value).sum();
        Ok(CorruptRound {
            jobs,
            capacity: trap.cap_stay_high,
            corrupt_ids: vec![JobId(0), JobId(m as u64 + 1)],
            clean_value,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_capacity::CapacityProfile;
    use cloudsched_core::JobId;

    fn params() -> TrapParams {
        TrapParams {
            k: 7.0,
            delta: 5.0,
            window: 1.0,
            fillers: 10,
        }
    }

    #[test]
    fn bait_is_not_admissible_fillers_are() {
        let r = TrapRound::build(params()).unwrap();
        let bait = r.jobs.get(JobId(0));
        assert!(!bait.individually_admissible(1.0));
        for j in r.jobs.iter().skip(1) {
            assert!(
                j.individually_admissible(1.0),
                "{} must be admissible",
                j.id
            );
            // Zero conservative laxity exactly.
            assert!(
                (j.relative_deadline().as_f64() - j.workload).abs() < 1e-12,
                "filler must have zero claxity"
            );
        }
    }

    #[test]
    fn bait_feasible_only_in_stay_high_future() {
        let r = TrapRound::build(params()).unwrap();
        let bait = r.jobs.get(JobId(0));
        let high = r.cap_stay_high.integrate(bait.release, bait.deadline);
        assert!(high >= bait.workload - 1e-9, "bait fits under stay-high");
        let drop = r.cap_drop.integrate(bait.release, bait.deadline);
        assert!(drop < bait.workload, "bait must not fit under drop");
    }

    #[test]
    fn importance_ratio_is_k() {
        let r = TrapRound::build(params()).unwrap();
        assert!((r.jobs.importance_ratio().unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn optima_are_consistent() {
        let r = TrapRound::build(params()).unwrap();
        // Stay-high optimum is the bait's value; drop optimum the filler sum.
        assert!((r.opt_stay_high - 35.0).abs() < 1e-12);
        let filler_total: f64 = r.jobs.iter().skip(1).map(|j| j.value).sum();
        assert!((r.opt_drop - filler_total).abs() < 1e-9);
        // The adversarial ratio bound shrinks as fillers densify:
        // guarantee / opt_stay_high = 1/(kδ) when abandoning the bait.
        let g = r.online_guarantee(params());
        assert!((g - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_parameters_rejected() {
        for bad in [
            TrapParams { k: 0.5, ..params() },
            TrapParams {
                delta: 1.0,
                ..params()
            },
            TrapParams {
                window: 0.0,
                ..params()
            },
            TrapParams {
                fillers: 0,
                ..params()
            },
        ] {
            assert!(TrapRound::build(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn corrupt_round_marks_exactly_the_corrupt_jobs() {
        let p = params();
        let r = CorruptRound::build(p).unwrap();
        assert_eq!(r.jobs.len(), p.fillers + 2);
        assert_eq!(r.corrupt_ids, vec![JobId(0), JobId(p.fillers as u64 + 1)]);
        // The bait violates Def. 4 against the declared floor…
        assert!(!r.jobs.get(JobId(0)).individually_admissible(1.0));
        // …the duplicate replays filler 1 exactly…
        let (orig, dup) = (
            r.jobs.get(JobId(1)),
            r.jobs.get(JobId(p.fillers as u64 + 1)),
        );
        assert_eq!(orig.release, dup.release);
        assert_eq!(orig.deadline, dup.deadline);
        assert!((orig.workload - dup.workload).abs() < 1e-15);
        assert!((orig.value - dup.value).abs() < 1e-15);
        // …and every clean filler stays admissible.
        for j in r.jobs.iter().skip(1).take(p.fillers) {
            assert!(j.individually_admissible(1.0), "{} must be clean", j.id);
        }
        let filler_total: f64 = (1..=p.fillers)
            .map(|i| r.jobs.get(JobId(i as u64)).value)
            .sum();
        assert!((r.clean_value - filler_total).abs() < 1e-12);
    }

    #[test]
    fn capacity_futures_share_declared_bounds() {
        let r = TrapRound::build(params()).unwrap();
        assert_eq!(r.cap_stay_high.bounds(), (1.0, 5.0));
        assert_eq!(r.cap_drop.bounds(), (1.0, 5.0));
        // Futures agree up to the drop instant.
        let drop_at = 1.0 - 1.0 / 10.0;
        assert_eq!(
            r.cap_drop
                .rate_at(cloudsched_core::Time::new(drop_at - 1e-9)),
            5.0
        );
        assert_eq!(r.cap_drop.rate_at(cloudsched_core::Time::new(drop_at)), 1.0);
    }
}
