//! Per-job timelines and queue-depth time series from one trace.
//!
//! All output is deterministic fixed-format text: the series come out of
//! `BTreeMap`s keyed by the stable queue wire names, and the sparklines use
//! integer bucket math only.

use std::collections::BTreeMap;

use cloudsched_core::JobId;
use cloudsched_obs::TraceEvent;

/// Events concerning one job, in trace order.
pub fn job_timeline<'a>(events: &'a [TraceEvent], job: JobId) -> Vec<&'a TraceEvent> {
    events.iter().filter(|e| e.job() == Some(job)).collect()
}

/// Renders one job's timeline with the trace pretty-printer, one event per
/// line. Returns a placeholder line when the trace never mentions the job.
pub fn render_job_timeline(events: &[TraceEvent], job: JobId) -> String {
    let rows = job_timeline(events, job);
    if rows.is_empty() {
        return format!("timeline {job}\n  (no events)\n");
    }
    let mut out = format!("timeline {job}\n");
    for e in rows {
        out.push_str(&e.pretty());
        out.push('\n');
    }
    out
}

/// Queue-depth samples per queue, keyed by the stable wire name
/// (`ready`/`edf`/`other`/`supp`). `QueueDepth` events contribute directly;
/// V-Dover's supplement enqueue/rescue events also sample `supp`.
pub fn queue_depth_series(events: &[TraceEvent]) -> BTreeMap<&'static str, Vec<(f64, usize)>> {
    let mut series: BTreeMap<&'static str, Vec<(f64, usize)>> = BTreeMap::new();
    for ev in events {
        let (name, depth) = match *ev {
            TraceEvent::QueueDepth { queue, depth, .. } => (queue.as_str(), depth),
            TraceEvent::SupplementEnqueue { depth, .. }
            | TraceEvent::SupplementRescue { depth, .. } => ("supp", depth),
            _ => continue,
        };
        series
            .entry(name)
            .or_default()
            .push((ev.time().as_f64(), depth));
    }
    series
}

/// The sparkline glyph ladder: index 0 is an empty queue; depths are scaled
/// into the remaining rungs against the series maximum.
const LADDER: [char; 8] = ['.', '1', '2', '3', '4', '5', '6', '#'];

/// Renders a `width`-cell sparkline of one series over `[t0, t1]` with
/// carry-forward between samples.
fn sparkline(samples: &[(f64, usize)], t0: f64, t1: f64, width: usize) -> String {
    let width = width.max(1);
    let max_depth = samples.iter().map(|&(_, d)| d).max().unwrap_or(0);
    let span = t1 - t0;
    let mut cells = String::with_capacity(width);
    let mut last = 0usize;
    let mut i = 0usize;
    for cell in 0..width {
        // A cell covers (t0 + span*cell/width, t0 + span*(cell+1)/width];
        // carry the last sample at or before the cell's end forward.
        let frac = (cell + 1) as f64 / width as f64;
        let cell_end = if span > 0.0 { t0 + span * frac } else { t1 };
        while i < samples.len() && samples[i].0 <= cell_end {
            last = samples[i].1;
            i += 1;
        }
        let glyph = if last == 0 || max_depth == 0 {
            LADDER[0]
        } else {
            LADDER[(last * (LADDER.len() - 1))
                .div_ceil(max_depth)
                .min(LADDER.len() - 1)]
        };
        cells.push(glyph);
    }
    cells
}

/// Renders every queue's depth series: sample count, maximum, final depth
/// and a `width`-cell sparkline spanning the full trace duration.
pub fn render_queue_depths(events: &[TraceEvent], width: usize) -> String {
    let series = queue_depth_series(events);
    if series.is_empty() {
        return String::from("queue depths\n  (no queue samples)\n");
    }
    let t0 = events.first().map(|e| e.time().as_f64()).unwrap_or(0.0);
    let t1 = events.last().map(|e| e.time().as_f64()).unwrap_or(0.0);
    let mut out = String::from("queue depths\n");
    for (name, samples) in &series {
        let max_depth = samples.iter().map(|&(_, d)| d).max().unwrap_or(0);
        let final_depth = samples.last().map(|&(_, d)| d).unwrap_or(0);
        out.push_str(&format!(
            "  {:<6} samples={:<5} max={:<4} final={:<4} |{}|\n",
            name,
            samples.len(),
            max_depth,
            final_depth,
            sparkline(samples, t0, t1, width)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_core::Time;
    use cloudsched_obs::QueueKind;

    fn t(x: f64) -> Time {
        Time::new(x)
    }

    fn trace() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Arrival {
                t: t(0.0),
                job: JobId(0),
                laxity: 2.0,
            },
            TraceEvent::QueueDepth {
                t: t(0.0),
                queue: QueueKind::Other,
                depth: 1,
            },
            TraceEvent::Arrival {
                t: t(1.0),
                job: JobId(1),
                laxity: 1.0,
            },
            TraceEvent::SupplementEnqueue {
                t: t(2.0),
                job: JobId(1),
                depth: 1,
            },
            TraceEvent::QueueDepth {
                t: t(3.0),
                queue: QueueKind::Other,
                depth: 0,
            },
            TraceEvent::SupplementRescue {
                t: t(4.0),
                job: JobId(1),
                depth: 0,
            },
            TraceEvent::Complete {
                t: t(5.0),
                job: JobId(1),
                value: 2.0,
            },
        ]
    }

    #[test]
    fn timeline_filters_and_preserves_order() {
        let events = trace();
        let rows = job_timeline(&events, JobId(1));
        assert_eq!(rows.len(), 4);
        assert!(matches!(rows[0], TraceEvent::Arrival { .. }));
        assert!(matches!(rows[3], TraceEvent::Complete { .. }));
        let text = render_job_timeline(&events, JobId(1));
        assert!(text.starts_with("timeline T1\n"));
        assert!(text.contains("supp-enqueue"));
        assert!(render_job_timeline(&events, JobId(9)).contains("(no events)"));
    }

    #[test]
    fn queue_series_merges_supplement_events() {
        let events = trace();
        let series = queue_depth_series(&events);
        assert_eq!(
            series.get("other"),
            Some(&vec![(0.0, 1usize), (3.0, 0usize)])
        );
        assert_eq!(
            series.get("supp"),
            Some(&vec![(2.0, 1usize), (4.0, 0usize)])
        );
        assert_eq!(series.get("ready"), None);
    }

    #[test]
    fn sparkline_carries_forward_and_is_deterministic() {
        // Depth 1 from t=2 to t=4, 0 elsewhere over [0, 5] with 10 cells.
        let samples = vec![(2.0, 1usize), (4.0, 0usize)];
        let line = sparkline(&samples, 0.0, 5.0, 10);
        assert_eq!(line, "...####...");
        // Zero-span traces fill every cell with the depth at that instant.
        assert_eq!(sparkline(&samples, 2.0, 2.0, 4), "####");
        assert_eq!(sparkline(&[], 0.0, 5.0, 4), "....");
    }

    #[test]
    fn render_queue_depths_is_fixed_format() {
        let text = render_queue_depths(&trace(), 10);
        assert!(text.starts_with("queue depths\n"));
        assert!(text.contains("other  samples=2"), "{text}");
        assert!(text.contains("supp   samples=2"), "{text}");
        assert!(text.contains('|'));
        assert!(render_queue_depths(&[], 10).contains("no queue samples"));
    }
}
