//! Structural diffs between two benchmark reports.
//!
//! Parses two `BENCH_kernel.json`, `BENCH_sweep.json`, or
//! `BENCH_fleet.json` files with the strict parsers from
//! `cloudsched-bench`, matches rows by configuration key, and reports
//! per-metric deltas with a tolerance. Rows present in
//! only one file (e.g. a `--quick` run covers fewer sizes) are listed as
//! informational, never as regressions.

use std::collections::BTreeMap;

use cloudsched_bench::{parse_fleet_rows, parse_rows, parse_sweep_rows};

/// One metric's old-vs-new comparison for one matched row.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Row configuration key (e.g. `V-Dover n=1000` or `reuse threads=4`).
    pub key: String,
    /// Metric name (`ns_per_decision`, `wall_ms`, `runs_per_sec`).
    pub metric: &'static str,
    /// Value in the old report.
    pub old: f64,
    /// Value in the new report.
    pub new: f64,
    /// Percent change relative to old (0 when old is not positive).
    pub delta_pct: f64,
    /// Whether the change crosses the tolerance in the bad direction.
    pub regression: bool,
}

/// The full diff between two reports of the same suite.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDiff {
    /// `"kernel"`, `"sweep"`, or `"fleet"`.
    pub suite: &'static str,
    /// Per-metric deltas for rows present in both reports, in key order.
    pub deltas: Vec<MetricDelta>,
    /// Row keys only the old report has.
    pub only_old: Vec<String>,
    /// Row keys only the new report has.
    pub only_new: Vec<String>,
    /// The tolerance (percent) regressions were judged against.
    pub tol_pct: f64,
}

impl BenchDiff {
    /// Number of metric deltas flagged as regressions.
    pub fn regressions(&self) -> usize {
        self.deltas.iter().filter(|d| d.regression).count()
    }

    /// Deterministic fixed-format text report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "bench-diff ({}) tolerance ±{:.1}%\n",
            self.suite, self.tol_pct
        );
        if self.deltas.is_empty() {
            out.push_str("  (no rows in common)\n");
        }
        for d in &self.deltas {
            out.push_str(&format!(
                "  {:<28} {:<16} {:>14.3} -> {:>14.3}  {:>+7.1}%{}\n",
                d.key,
                d.metric,
                d.old,
                d.new,
                d.delta_pct,
                if d.regression { "  REGRESSION" } else { "" }
            ));
        }
        for k in &self.only_old {
            out.push_str(&format!("  {k:<28} only in old report\n"));
        }
        for k in &self.only_new {
            out.push_str(&format!("  {k:<28} only in new report\n"));
        }
        out.push_str(&format!(
            "  {} matched metric(s), {} regression(s)\n",
            self.deltas.len(),
            self.regressions()
        ));
        out
    }
}

/// Percent change of `new` relative to `old` (0 when `old` is not positive).
fn pct(old: f64, new: f64) -> f64 {
    if old > 0.0 {
        100.0 * (new - old) / old
    } else {
        0.0
    }
}

/// Compares one metric where *larger is worse* (latency, wall time).
fn worse_if_up(key: &str, metric: &'static str, old: f64, new: f64, tol_pct: f64) -> MetricDelta {
    let delta_pct = pct(old, new);
    MetricDelta {
        key: key.to_string(),
        metric,
        old,
        new,
        delta_pct,
        regression: delta_pct > tol_pct,
    }
}

/// Compares one metric where *smaller is worse* (throughput).
fn worse_if_down(key: &str, metric: &'static str, old: f64, new: f64, tol_pct: f64) -> MetricDelta {
    let delta_pct = pct(old, new);
    MetricDelta {
        key: key.to_string(),
        metric,
        old,
        new,
        delta_pct,
        regression: delta_pct < -tol_pct,
    }
}

/// Matches two keyed maps and folds each common key through `emit`.
fn match_rows<T>(
    old: BTreeMap<String, T>,
    new: BTreeMap<String, T>,
    tol_pct: f64,
    emit: impl Fn(&str, &T, &T, f64, &mut Vec<MetricDelta>),
) -> (Vec<MetricDelta>, Vec<String>, Vec<String>) {
    let mut deltas = Vec::new();
    let mut only_old = Vec::new();
    let mut only_new: Vec<String> = new
        .keys()
        .filter(|k| !old.contains_key(*k))
        .cloned()
        .collect();
    only_new.sort();
    for (key, o) in &old {
        match new.get(key) {
            Some(n) => emit(key, o, n, tol_pct, &mut deltas),
            None => only_old.push(key.clone()),
        }
    }
    (deltas, only_old, only_new)
}

/// Diffs two benchmark reports of the same suite.
///
/// The suite is auto-detected: both texts must parse as kernel reports,
/// both as sweep reports, or both as fleet reports.
///
/// # Errors
/// When the two texts parse as different suites, or neither parser accepts
/// them.
pub fn diff_reports(old_text: &str, new_text: &str, tol_pct: f64) -> Result<BenchDiff, String> {
    let tol_pct = tol_pct.abs();
    match (parse_rows(old_text), parse_rows(new_text)) {
        (Ok(old), Ok(new)) => {
            // Heap-backend rows from the flat-vs-heap comparison mode get
            // their own key, so a comparison report diffs cleanly against a
            // flat-only one (heap rows fall out as only-in-one, informational).
            let key = |r: &cloudsched_bench::KernelBenchRow| {
                if r.queue == "heap" {
                    format!("{} n={} [heap]", r.scheduler, r.n)
                } else {
                    format!("{} n={}", r.scheduler, r.n)
                }
            };
            let old: BTreeMap<_, _> = old.into_iter().map(|r| (key(&r), r)).collect();
            let new: BTreeMap<_, _> = new.into_iter().map(|r| (key(&r), r)).collect();
            let (deltas, only_old, only_new) =
                match_rows(old, new, tol_pct, |k, o, n, tol, out| {
                    out.push(worse_if_up(
                        k,
                        "ns_per_decision",
                        o.ns_per_decision,
                        n.ns_per_decision,
                        tol,
                    ));
                    out.push(worse_if_up(k, "wall_ms", o.wall_ms, n.wall_ms, tol));
                });
            return Ok(BenchDiff {
                suite: "kernel",
                deltas,
                only_old,
                only_new,
                tol_pct,
            });
        }
        (Ok(_), Err(e)) => {
            // Old is a kernel report; new must be too.
            if parse_sweep_rows(new_text).is_ok() {
                return Err("cannot diff a kernel report against a sweep report".into());
            }
            if parse_fleet_rows(new_text).is_ok() {
                return Err("cannot diff a kernel report against a fleet report".into());
            }
            return Err(format!("new report: {e}"));
        }
        (Err(e), Ok(_)) => {
            if parse_sweep_rows(old_text).is_ok() {
                return Err("cannot diff a sweep report against a kernel report".into());
            }
            if parse_fleet_rows(old_text).is_ok() {
                return Err("cannot diff a fleet report against a kernel report".into());
            }
            return Err(format!("old report: {e}"));
        }
        (Err(_), Err(_)) => {}
    }
    match (parse_sweep_rows(old_text), parse_sweep_rows(new_text)) {
        (Ok(old), Ok(new)) => {
            let key =
                |r: &cloudsched_bench::SweepBenchRow| format!("{} threads={}", r.mode, r.threads);
            let old: BTreeMap<_, _> = old.into_iter().map(|r| (key(&r), r)).collect();
            let new: BTreeMap<_, _> = new.into_iter().map(|r| (key(&r), r)).collect();
            let (deltas, only_old, only_new) =
                match_rows(old, new, tol_pct, |k, o, n, tol, out| {
                    out.push(worse_if_down(
                        k,
                        "runs_per_sec",
                        o.runs_per_sec,
                        n.runs_per_sec,
                        tol,
                    ));
                    out.push(worse_if_up(k, "wall_ms", o.wall_ms, n.wall_ms, tol));
                });
            return Ok(BenchDiff {
                suite: "sweep",
                deltas,
                only_old,
                only_new,
                tol_pct,
            });
        }
        (Ok(_), Err(e)) => {
            if parse_fleet_rows(new_text).is_ok() {
                return Err("cannot diff a sweep report against a fleet report".into());
            }
            return Err(format!("new report: {e}"));
        }
        (Err(e), Ok(_)) => {
            if parse_fleet_rows(old_text).is_ok() {
                return Err("cannot diff a fleet report against a sweep report".into());
            }
            return Err(format!("old report: {e}"));
        }
        (Err(_), Err(_)) => {}
    }
    let old = parse_fleet_rows(old_text).map_err(|e| format!("old report: {e}"))?;
    let new = parse_fleet_rows(new_text).map_err(|e| format!("new report: {e}"))?;
    let key =
        |r: &cloudsched_bench::FleetBenchRow| format!("M={} threads={}", r.machines, r.threads);
    let old: BTreeMap<_, _> = old.into_iter().map(|r| (key(&r), r)).collect();
    let new: BTreeMap<_, _> = new.into_iter().map(|r| (key(&r), r)).collect();
    let (deltas, only_old, only_new) = match_rows(old, new, tol_pct, |k, o, n, tol, out| {
        out.push(worse_if_down(
            k,
            "runs_per_sec",
            o.runs_per_sec,
            n.runs_per_sec,
            tol,
        ));
        out.push(worse_if_up(k, "wall_ms", o.wall_ms, n.wall_ms, tol));
    });
    Ok(BenchDiff {
        suite: "fleet",
        deltas,
        only_old,
        only_new,
        tol_pct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_bench::{
        fleet_rows_to_json, rows_to_json, sweep_rows_to_json, FleetBenchRow, KernelBenchRow,
        SweepBenchRow,
    };

    fn kernel_row(scheduler: &str, n: usize, ns: f64, wall: f64) -> KernelBenchRow {
        KernelBenchRow {
            bench: "kernel".into(),
            n,
            scheduler: scheduler.into(),
            ns_per_decision: ns,
            wall_ms: wall,
            seed: 7,
            queue: "flat".into(),
        }
    }

    fn sweep_row(mode: &str, threads: usize, rps: f64, wall: f64) -> SweepBenchRow {
        SweepBenchRow {
            bench: "sweep".into(),
            mode: mode.into(),
            threads,
            runs: 64,
            wall_ms: wall,
            runs_per_sec: rps,
            reuse_hits: 0,
            digest: "00000000deadbeef".into(),
            seed: 7,
        }
    }

    #[test]
    fn kernel_diff_flags_slowdowns_beyond_tolerance() {
        let old = rows_to_json(&[
            kernel_row("EDF", 1000, 100.0, 1.0),
            kernel_row("V-Dover", 1000, 200.0, 2.0),
            kernel_row("V-Dover", 10000, 250.0, 20.0),
        ]);
        let new = rows_to_json(&[
            kernel_row("EDF", 1000, 105.0, 1.0),
            kernel_row("V-Dover", 1000, 300.0, 2.0),
        ]);
        let diff = diff_reports(&old, &new, 10.0).expect("same suite");
        assert_eq!(diff.suite, "kernel");
        // 2 matched rows x 2 metrics.
        assert_eq!(diff.deltas.len(), 4);
        assert_eq!(diff.regressions(), 1);
        let reg = diff
            .deltas
            .iter()
            .find(|d| d.regression)
            .expect("one regression");
        assert_eq!(reg.key, "V-Dover n=1000");
        assert_eq!(reg.metric, "ns_per_decision");
        assert!((reg.delta_pct - 50.0).abs() < 1e-9);
        assert_eq!(diff.only_old, vec!["V-Dover n=10000".to_string()]);
        assert!(diff.only_new.is_empty());
        let text = diff.render();
        assert!(text.contains("REGRESSION"), "{text}");
        assert!(text.contains("only in old report"), "{text}");
        assert!(
            text.contains("4 matched metric(s), 1 regression(s)"),
            "{text}"
        );
    }

    #[test]
    fn sweep_diff_flags_throughput_drops() {
        let old = sweep_rows_to_json(&[sweep_row("reuse", 4, 1000.0, 64.0)]);
        let new = sweep_rows_to_json(&[
            sweep_row("reuse", 4, 800.0, 80.0),
            sweep_row("fresh", 4, 900.0, 70.0),
        ]);
        let diff = diff_reports(&old, &new, 10.0).expect("same suite");
        assert_eq!(diff.suite, "sweep");
        let rps = diff
            .deltas
            .iter()
            .find(|d| d.metric == "runs_per_sec")
            .expect("matched");
        assert!(rps.regression, "20% throughput drop at 10% tolerance");
        assert!((rps.delta_pct + 20.0).abs() < 1e-9);
        assert_eq!(diff.only_new, vec!["fresh threads=4".to_string()]);
    }

    #[test]
    fn heap_rows_key_separately_from_flat_rows() {
        let heap = |mut r: KernelBenchRow| {
            r.queue = "heap".into();
            r
        };
        // Old: flat-only report. New: comparison report with both backends.
        let old = rows_to_json(&[kernel_row("V-Dover", 1000, 100.0, 1.0)]);
        let new = rows_to_json(&[
            kernel_row("V-Dover", 1000, 90.0, 0.9),
            heap(kernel_row("V-Dover", 1000, 300.0, 3.0)),
        ]);
        let diff = diff_reports(&old, &new, 10.0).expect("same suite");
        assert_eq!(diff.deltas.len(), 2, "only the flat rows match");
        assert_eq!(diff.regressions(), 0, "the slow heap row is not a match");
        assert_eq!(diff.only_new, vec!["V-Dover n=1000 [heap]".to_string()]);
    }

    #[test]
    fn improvements_are_not_regressions() {
        let old = rows_to_json(&[kernel_row("EDF", 1000, 100.0, 1.0)]);
        let new = rows_to_json(&[kernel_row("EDF", 1000, 50.0, 0.5)]);
        let diff = diff_reports(&old, &new, 10.0).expect("same suite");
        assert_eq!(diff.regressions(), 0);
        assert!(diff.render().contains("-50.0%"));
    }

    fn fleet_row(machines: usize, threads: usize, rps: f64, wall: f64) -> FleetBenchRow {
        FleetBenchRow {
            bench: "fleet".into(),
            machines,
            threads,
            runs: 4,
            wall_ms: wall,
            runs_per_sec: rps,
            steals: 3,
            digest: "00000000deadbeef".into(),
            seed: 7,
        }
    }

    #[test]
    fn fleet_diff_flags_throughput_drops() {
        let old = fleet_rows_to_json(&[fleet_row(16, 1, 50.0, 80.0), fleet_row(16, 4, 50.0, 80.0)]);
        let new =
            fleet_rows_to_json(&[fleet_row(16, 1, 40.0, 100.0), fleet_row(16, 4, 50.0, 80.0)]);
        let diff = diff_reports(&old, &new, 10.0).expect("same suite");
        assert_eq!(diff.suite, "fleet");
        assert_eq!(diff.deltas.len(), 4, "2 matched rows x 2 metrics");
        assert_eq!(diff.regressions(), 2, "rps drop and wall rise on M=16 t=1");
        let reg = diff.deltas.iter().find(|d| d.regression).expect("flagged");
        assert_eq!(reg.key, "M=16 threads=1");
    }

    #[test]
    fn fleet_and_sweep_reports_do_not_cross_diff() {
        let fleet = fleet_rows_to_json(&[fleet_row(4, 1, 50.0, 80.0)]);
        let sweep = sweep_rows_to_json(&[sweep_row("reuse", 4, 1000.0, 64.0)]);
        let err = diff_reports(&sweep, &fleet, 10.0).expect_err("mixed suites");
        assert!(err.contains("sweep report against a fleet report"), "{err}");
        let err = diff_reports(&fleet, &sweep, 10.0).expect_err("mixed suites");
        assert!(err.contains("fleet report against a sweep report"), "{err}");
        let kernel = rows_to_json(&[kernel_row("EDF", 1000, 100.0, 1.0)]);
        let err = diff_reports(&kernel, &fleet, 10.0).expect_err("mixed suites");
        assert!(
            err.contains("kernel report against a fleet report"),
            "{err}"
        );
    }

    #[test]
    fn mixed_suites_are_rejected() {
        let kernel = rows_to_json(&[kernel_row("EDF", 1000, 100.0, 1.0)]);
        let sweep = sweep_rows_to_json(&[sweep_row("reuse", 4, 1000.0, 64.0)]);
        let err = diff_reports(&kernel, &sweep, 10.0).expect_err("mixed suites");
        assert!(
            err.contains("kernel report against a sweep report"),
            "{err}"
        );
        let err = diff_reports(&sweep, &kernel, 10.0).expect_err("mixed suites");
        assert!(
            err.contains("sweep report against a kernel report"),
            "{err}"
        );
        assert!(diff_reports("not json", "either", 10.0).is_err());
    }
}
