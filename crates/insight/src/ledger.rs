//! The value-loss ledger (`DESIGN.md` §13).
//!
//! Folds one trace into a per-job lifecycle, classifies every traced job
//! into exactly one loss bucket, and cross-checks *conservation*: the sum
//! of attributed values, taken in job-id order, must equal the sum of the
//! instance values of the same jobs in the same order — bit for bit. The
//! invariant is a per-job partition (each job's full value lands in exactly
//! one bucket and must match the terminal event's stamped value exactly),
//! so it holds independently of thread count: the fold is serial and the
//! two sums perform the identical float-addition sequence.

use std::collections::BTreeMap;

use cloudsched_core::{JobId, JobSet};
use cloudsched_obs::TraceEvent;

/// Where one traced job's value ended up. Exactly one bucket per job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Bucket {
    /// Completed by its deadline: value earned.
    Realized,
    /// Expired without ever being dispatched: lost waiting in a queue.
    ExpiredInQueue,
    /// Dispatched at least once but preempted or abandoned and never
    /// brought back to completion.
    PreemptedNeverRescued,
    /// Quarantined by the degradation layer and never re-admitted.
    Quarantined,
    /// Rejected at release as faulty with no quarantine (the `Strict`
    /// abort path): the scheduler never saw it.
    CorruptRejected,
    /// The trace ended before the job resolved (e.g. a policy abort cut
    /// the run short, or the trace was truncated).
    Unresolved,
}

impl Bucket {
    /// Every bucket, in ledger display order.
    pub const ALL: [Bucket; 6] = [
        Bucket::Realized,
        Bucket::ExpiredInQueue,
        Bucket::PreemptedNeverRescued,
        Bucket::Quarantined,
        Bucket::CorruptRejected,
        Bucket::Unresolved,
    ];

    /// Stable display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Bucket::Realized => "realized",
            Bucket::ExpiredInQueue => "expired-in-queue",
            Bucket::PreemptedNeverRescued => "preempted-never-rescued",
            Bucket::Quarantined => "quarantined",
            Bucket::CorruptRejected => "corrupt-rejected",
            Bucket::Unresolved => "unresolved",
        }
    }
}

/// What the trace recorded about one job, folded event by event.
#[derive(Debug, Clone, Copy, Default)]
struct Lifecycle {
    admitted: bool,
    quarantined: bool,
    readmitted: bool,
    fault: bool,
    terminal: Option<Terminal>,
}

/// The event that resolved a job, with the value it stamped.
#[derive(Debug, Clone, Copy)]
enum Terminal {
    Completed(f64),
    Expired(f64),
    Abandoned(f64),
}

/// One trace folded into per-job lifecycles, ready for attribution.
#[derive(Debug, Clone, Default)]
pub struct ValueLedger {
    lifecycles: BTreeMap<JobId, Lifecycle>,
    decisions: BTreeMap<&'static str, u64>,
    aborted: bool,
}

impl ValueLedger {
    /// Folds an event stream (in trace order) into a ledger.
    pub fn from_events(events: &[TraceEvent]) -> ValueLedger {
        let mut ledger = ValueLedger::default();
        for ev in events {
            match *ev {
                TraceEvent::Arrival { job, .. } => {
                    ledger.lifecycles.entry(job).or_default();
                }
                TraceEvent::Admit { job, .. } | TraceEvent::Resume { job, .. } => {
                    ledger.lifecycles.entry(job).or_default().admitted = true;
                }
                TraceEvent::Complete { job, value, .. } => {
                    ledger.lifecycles.entry(job).or_default().terminal =
                        Some(Terminal::Completed(value));
                }
                TraceEvent::Expire { job, value, .. } => {
                    let l = ledger.lifecycles.entry(job).or_default();
                    if l.terminal.is_none() {
                        l.terminal = Some(Terminal::Expired(value));
                    }
                }
                TraceEvent::Abandon { job, value, .. } => {
                    let l = ledger.lifecycles.entry(job).or_default();
                    if l.terminal.is_none() {
                        l.terminal = Some(Terminal::Abandoned(value));
                    }
                }
                TraceEvent::FaultDetected { job, .. } => {
                    ledger.lifecycles.entry(job).or_default().fault = true;
                }
                TraceEvent::Quarantine { job, .. } => {
                    ledger.lifecycles.entry(job).or_default().quarantined = true;
                }
                TraceEvent::Readmit { job, .. } => {
                    ledger.lifecycles.entry(job).or_default().readmitted = true;
                }
                TraceEvent::PolicyAbort { .. } => {
                    ledger.aborted = true;
                }
                TraceEvent::Decision { action, .. } => {
                    *ledger.decisions.entry(action.as_str()).or_insert(0) += 1;
                }
                _ => {}
            }
        }
        ledger
    }

    /// Number of jobs the trace mentions.
    pub fn traced_jobs(&self) -> usize {
        self.lifecycles.len()
    }

    /// Attributes every traced job's instance value to its bucket and
    /// verifies conservation.
    ///
    /// # Errors
    /// * the trace names a job the instance does not have;
    /// * a terminal event's stamped value differs (bit-wise) from the
    ///   instance value — the trace and the instance disagree;
    /// * the id-ordered sum of attributed values differs (bit-wise) from
    ///   the id-ordered sum of the same jobs' instance values.
    pub fn attribute(&self, jobs: &JobSet) -> Result<LedgerReport, String> {
        let mut entries = Vec::with_capacity(self.lifecycles.len());
        for (&job, life) in &self.lifecycles {
            if job.index() >= jobs.len() {
                return Err(format!(
                    "trace names {job} but the instance has only {} jobs",
                    jobs.len()
                ));
            }
            let value = jobs.get(job).value;
            if let Some(term) = life.terminal {
                let (stamped, kind) = match term {
                    Terminal::Completed(v) => (v, "complete"),
                    Terminal::Expired(v) => (v, "expire"),
                    Terminal::Abandoned(v) => (v, "abandon"),
                };
                if stamped.to_bits() != value.to_bits() {
                    return Err(format!(
                        "conservation broken: {kind} event for {job} stamps value \
                         {stamped} but the instance says {value}"
                    ));
                }
            }
            entries.push(LedgerEntry {
                job,
                bucket: classify(life),
                value,
            });
        }
        // Cross-check: both sums walk the same jobs in the same (id) order,
        // so they perform the identical float-addition sequence and must
        // agree bit for bit.
        let attributed: f64 = entries.iter().map(|e| e.value).sum();
        let arrived: f64 = entries.iter().map(|e| jobs.get(e.job).value).sum();
        if attributed.to_bits() != arrived.to_bits() {
            return Err(format!(
                "conservation broken: attributed value {attributed} != arrived value {arrived}"
            ));
        }
        let mut bucket_value = BTreeMap::new();
        let mut bucket_jobs = BTreeMap::new();
        for b in Bucket::ALL {
            bucket_value.insert(b, 0.0f64);
            bucket_jobs.insert(b, 0usize);
        }
        for e in &entries {
            // Entries are in id order, so per-bucket totals are summed in
            // a deterministic order too.
            *bucket_value
                .get_mut(&e.bucket)
                .expect("invariant: every bucket pre-registered") += e.value;
            *bucket_jobs
                .get_mut(&e.bucket)
                .expect("invariant: every bucket pre-registered") += 1;
        }
        Ok(LedgerReport {
            entries,
            total_value: arrived,
            bucket_value,
            bucket_jobs,
            decisions: self.decisions.clone(),
            aborted: self.aborted,
        })
    }
}

/// The classification rules, in precedence order.
fn classify(life: &Lifecycle) -> Bucket {
    match life.terminal {
        Some(Terminal::Completed(_)) => Bucket::Realized,
        // A quarantined job still gets a kernel Expire at its deadline even
        // though the scheduler never saw it: quarantine wins unless the job
        // was re-admitted back into play.
        _ if life.quarantined && !life.readmitted => Bucket::Quarantined,
        Some(_) if life.admitted => Bucket::PreemptedNeverRescued,
        Some(_) => Bucket::ExpiredInQueue,
        None if life.fault && !life.admitted && !life.quarantined => Bucket::CorruptRejected,
        None => Bucket::Unresolved,
    }
}

/// One job's attribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerEntry {
    /// The job.
    pub job: JobId,
    /// Where its value went.
    pub bucket: Bucket,
    /// The instance value attributed (the full job value).
    pub value: f64,
}

/// The conservation-checked attribution of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerReport {
    /// Per-job attributions, in job-id order.
    pub entries: Vec<LedgerEntry>,
    /// Total value of all traced jobs, summed in id order.
    pub total_value: f64,
    /// Per-bucket value totals (display only; the invariant is per-job).
    pub bucket_value: BTreeMap<Bucket, f64>,
    /// Per-bucket job counts.
    pub bucket_jobs: BTreeMap<Bucket, usize>,
    /// Decision-provenance counts per action, when the trace carries
    /// `Decision` events (empty otherwise).
    pub decisions: BTreeMap<&'static str, u64>,
    /// Whether the run was cut short by a `Strict` policy abort.
    pub aborted: bool,
}

impl LedgerReport {
    /// Value in one bucket.
    pub fn value_in(&self, bucket: Bucket) -> f64 {
        self.bucket_value.get(&bucket).copied().unwrap_or(0.0)
    }

    /// Job count in one bucket.
    pub fn jobs_in(&self, bucket: Bucket) -> usize {
        self.bucket_jobs.get(&bucket).copied().unwrap_or(0)
    }

    /// Deterministic fixed-format text summary (the `inspect --summary`
    /// golden format).
    pub fn render(&self) -> String {
        let mut out = String::from("value-loss ledger\n");
        out.push_str(&format!(
            "  {:<24}: {}\n",
            "jobs traced",
            self.entries.len()
        ));
        out.push_str(&format!(
            "  {:<24}: {:.4}\n",
            "arrived value", self.total_value
        ));
        for b in Bucket::ALL {
            let v = self.value_in(b);
            let share = if self.total_value > 0.0 {
                100.0 * v / self.total_value
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:<24}: {:>12.4}  {:>6.2}%  ({} jobs)\n",
                b.as_str(),
                v,
                share,
                self.jobs_in(b)
            ));
        }
        out.push_str(&format!(
            "  {:<24}: exact (per-job partition, bit-identical)\n",
            "conservation"
        ));
        if !self.decisions.is_empty() {
            let parts: Vec<String> = self
                .decisions
                .iter()
                .map(|(act, n)| format!("{act}={n}"))
                .collect();
            out.push_str(&format!("  {:<24}: {}\n", "decisions", parts.join(" ")));
        }
        if self.aborted {
            out.push_str(&format!("  {:<24}: run ended by policy abort\n", "note"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_core::Time;
    use cloudsched_obs::{DecisionAction, FaultKind};

    fn t(x: f64) -> Time {
        Time::new(x)
    }

    fn jobs3() -> JobSet {
        // (r, d, p, v)
        JobSet::from_tuples(&[
            (0.0, 10.0, 2.0, 5.0),
            (0.0, 2.0, 2.0, 3.0),
            (0.0, 4.0, 4.0, 7.0),
        ])
        .expect("invariant: valid tuples")
    }

    fn arrival(job: u64) -> TraceEvent {
        TraceEvent::Arrival {
            t: t(0.0),
            job: JobId(job),
            laxity: 1.0,
        }
    }

    #[test]
    fn classifies_realized_expired_and_preempted() {
        let events = vec![
            arrival(0),
            arrival(1),
            arrival(2),
            TraceEvent::Admit {
                t: t(0.0),
                job: JobId(0),
            },
            TraceEvent::Complete {
                t: t(2.0),
                job: JobId(0),
                value: 5.0,
            },
            TraceEvent::Expire {
                t: t(2.0),
                job: JobId(1),
                remaining: 2.0,
                value: 3.0,
            },
            TraceEvent::Admit {
                t: t(2.0),
                job: JobId(2),
            },
            TraceEvent::Preempt {
                t: t(3.0),
                job: JobId(2),
                remaining: 3.0,
            },
            TraceEvent::Expire {
                t: t(4.0),
                job: JobId(2),
                remaining: 3.0,
                value: 7.0,
            },
        ];
        let report = ValueLedger::from_events(&events)
            .attribute(&jobs3())
            .expect("invariant: consistent trace");
        assert_eq!(report.entries.len(), 3);
        assert_eq!(report.entries[0].bucket, Bucket::Realized);
        assert_eq!(report.entries[1].bucket, Bucket::ExpiredInQueue);
        assert_eq!(report.entries[2].bucket, Bucket::PreemptedNeverRescued);
        assert_eq!(report.total_value.to_bits(), 15.0f64.to_bits());
        assert_eq!(
            report.value_in(Bucket::Realized).to_bits(),
            5.0f64.to_bits()
        );
        assert_eq!(report.jobs_in(Bucket::Unresolved), 0);
        assert!(!report.aborted);
    }

    #[test]
    fn value_mismatch_breaks_conservation() {
        let events = vec![
            arrival(0),
            TraceEvent::Complete {
                t: t(2.0),
                job: JobId(0),
                value: 4.9, // instance says 5.0
            },
        ];
        let err = ValueLedger::from_events(&events)
            .attribute(&jobs3())
            .expect_err("mismatched value must be rejected");
        assert!(err.contains("conservation broken"), "{err}");
    }

    #[test]
    fn unknown_job_is_rejected() {
        let events = vec![arrival(9)];
        let err = ValueLedger::from_events(&events)
            .attribute(&jobs3())
            .expect_err("job 9 does not exist");
        assert!(err.contains("T9"), "{err}");
    }

    #[test]
    fn quarantine_corrupt_and_unresolved_buckets() {
        let events = vec![
            arrival(0),
            TraceEvent::FaultDetected {
                t: t(0.0),
                job: JobId(0),
                fault: FaultKind::ValueSpike,
            },
            TraceEvent::Quarantine {
                t: t(0.0),
                job: JobId(0),
                fault: FaultKind::ValueSpike,
            },
            // The kernel still expires hidden jobs at their deadline.
            TraceEvent::Expire {
                t: t(10.0),
                job: JobId(0),
                remaining: 2.0,
                value: 5.0,
            },
            arrival(1),
            TraceEvent::FaultDetected {
                t: t(0.0),
                job: JobId(1),
                fault: FaultKind::Inadmissible,
            },
            TraceEvent::PolicyAbort {
                t: t(0.0),
                fault: FaultKind::Inadmissible,
            },
            arrival(2),
        ];
        let report = ValueLedger::from_events(&events)
            .attribute(&jobs3())
            .expect("invariant: consistent trace");
        assert_eq!(report.entries[0].bucket, Bucket::Quarantined);
        assert_eq!(report.entries[1].bucket, Bucket::CorruptRejected);
        assert_eq!(report.entries[2].bucket, Bucket::Unresolved);
        assert!(report.aborted);
        assert!(report.render().contains("policy abort"));
    }

    #[test]
    fn readmitted_quarantine_resolves_by_terminal() {
        let events = vec![
            arrival(0),
            TraceEvent::Quarantine {
                t: t(0.0),
                job: JobId(0),
                fault: FaultKind::SlaDip,
            },
            TraceEvent::Readmit {
                t: t(1.0),
                job: JobId(0),
            },
            TraceEvent::Admit {
                t: t(1.0),
                job: JobId(0),
            },
            TraceEvent::Complete {
                t: t(3.0),
                job: JobId(0),
                value: 5.0,
            },
        ];
        let report = ValueLedger::from_events(&events)
            .attribute(&jobs3())
            .expect("invariant: consistent trace");
        assert_eq!(report.entries[0].bucket, Bucket::Realized);
    }

    #[test]
    fn decision_counts_appear_only_when_present() {
        let plain = ValueLedger::from_events(&[arrival(0)])
            .attribute(&jobs3())
            .expect("invariant: consistent trace");
        assert!(!plain.render().contains("decisions"));
        let events = vec![
            arrival(0),
            TraceEvent::Decision {
                t: t(0.0),
                job: JobId(0),
                action: DecisionAction::Admit,
                laxity: 1.0,
                density: 2.5,
                rank: 0,
                flip: false,
            },
            TraceEvent::Decision {
                t: t(1.0),
                job: JobId(0),
                action: DecisionAction::Admit,
                laxity: 0.5,
                density: 2.5,
                rank: 0,
                flip: false,
            },
        ];
        let with = ValueLedger::from_events(&events)
            .attribute(&jobs3())
            .expect("invariant: consistent trace");
        assert_eq!(with.decisions.get("admit"), Some(&2));
        assert!(with.render().contains("decisions"));
        assert!(with.render().contains("admit=2"));
    }

    #[test]
    fn render_is_fixed_format() {
        let events = vec![
            arrival(0),
            TraceEvent::Admit {
                t: t(0.0),
                job: JobId(0),
            },
            TraceEvent::Complete {
                t: t(2.0),
                job: JobId(0),
                value: 5.0,
            },
        ];
        let report = ValueLedger::from_events(&events)
            .attribute(&jobs3())
            .expect("invariant: consistent trace");
        let text = report.render();
        assert!(text.starts_with("value-loss ledger\n"));
        assert!(text.contains("jobs traced             : 1\n"), "{text}");
        assert!(
            text.contains("realized                :       5.0000  100.00%  (1 jobs)\n"),
            "{text}"
        );
        assert!(text.contains("conservation"));
    }

    #[test]
    fn bucket_names_are_stable() {
        let names: Vec<&str> = Bucket::ALL.iter().map(|b| b.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "realized",
                "expired-in-queue",
                "preempted-never-rescued",
                "quarantined",
                "corrupt-rejected",
                "unresolved"
            ]
        );
    }

    #[test]
    fn empty_trace_is_vacuously_conserved() {
        let report = ValueLedger::from_events(&[])
            .attribute(&jobs3())
            .expect("invariant: empty trace is consistent");
        assert!(report.entries.is_empty());
        assert_eq!(report.total_value, 0.0);
        assert!(report.render().contains("0.0000"));
    }
}
