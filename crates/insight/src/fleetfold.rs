//! The fleet value fold (`DESIGN.md` §16).
//!
//! Aggregates per-machine value accounting into one fleet-level view: an
//! ASCII table (one row per machine, machine-index order) plus fleet
//! totals and a *conservation* check — the machine-order sum of the
//! per-machine realized values must reproduce the fleet's aggregate value,
//! because the fleet engine folds its aggregate with the exact same
//! float-addition sequence.
//!
//! The crate deliberately sits below `cloudsched-sim` in the dependency
//! graph, so the fold consumes plain numbers: the caller (the `cloudsched
//! fleet` subcommand) flattens its `FleetReport` into [`MachineValue`]
//! rows.

use cloudsched_core::numeric::approx_eq;

/// One machine's value accounting, flattened out of the fleet report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineValue {
    /// Machine index.
    pub machine: usize,
    /// Jobs simulated on this machine (dispatched plus stolen in).
    pub jobs: usize,
    /// Jobs claimed from other machines' quarantine lists.
    pub steals_in: usize,
    /// Value of jobs that completed by their deadline here.
    pub realized: f64,
    /// Value that arrived here (realized plus every loss bucket).
    pub arrived: f64,
    /// Jobs that completed by their deadline here.
    pub completed: usize,
    /// Jobs that missed their deadline here.
    pub missed: usize,
}

/// The fleet-level fold of a set of [`MachineValue`] rows.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetFold {
    /// Per-machine rows, machine-index order.
    pub rows: Vec<MachineValue>,
    /// Machine-order sum of realized value.
    pub realized: f64,
    /// Machine-order sum of arrived value.
    pub arrived: f64,
    /// Total jobs across the fleet.
    pub jobs: usize,
    /// Total completions across the fleet.
    pub completed: usize,
    /// Total deadline misses across the fleet.
    pub missed: usize,
    /// Total cross-machine steals.
    pub steals: usize,
    /// Whether the machine-order realized sum reproduced the aggregate
    /// value the caller's engine reported.
    pub conserved: bool,
}

/// Folds per-machine rows into fleet totals, checking the machine-order
/// realized sum against the engine's own aggregate (`engine_value`).
pub fn fold_fleet(rows: &[MachineValue], engine_value: f64) -> FleetFold {
    let mut realized = 0.0;
    let mut arrived = 0.0;
    let mut jobs = 0;
    let mut completed = 0;
    let mut missed = 0;
    let mut steals = 0;
    for r in rows {
        realized += r.realized;
        arrived += r.arrived;
        jobs += r.jobs;
        completed += r.completed;
        missed += r.missed;
        steals += r.steals_in;
    }
    FleetFold {
        rows: rows.to_vec(),
        realized,
        arrived,
        jobs,
        completed,
        missed,
        steals,
        conserved: approx_eq(realized, engine_value),
    }
}

impl FleetFold {
    /// Deterministic fixed-format table (the `cloudsched fleet` output).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "machine     jobs  steals-in  completed  missed      realized       arrived\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:>7} {:>8} {:>10} {:>10} {:>7} {:>13.4} {:>13.4}\n",
                r.machine, r.jobs, r.steals_in, r.completed, r.missed, r.realized, r.arrived
            ));
        }
        out.push_str(&format!(
            "{:>7} {:>8} {:>10} {:>10} {:>7} {:>13.4} {:>13.4}\n",
            "fleet",
            self.jobs,
            self.steals,
            self.completed,
            self.missed,
            self.realized,
            self.arrived
        ));
        let share = if self.arrived > 0.0 {
            // lint: allow(L001) — exact zero guard before division
            100.0 * self.realized / self.arrived
        } else {
            0.0
        };
        out.push_str(&format!("realized share: {share:.2}%\n"));
        out.push_str(&format!(
            "conservation: {}\n",
            if self.conserved {
                "machine-order realized sum matches the engine aggregate"
            } else {
                "MISMATCH — per-machine rows disagree with the engine aggregate"
            }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(machine: usize, realized: f64, arrived: f64) -> MachineValue {
        MachineValue {
            machine,
            jobs: 10,
            steals_in: machine,
            realized,
            arrived,
            completed: 7,
            missed: 3,
        }
    }

    #[test]
    fn fold_sums_in_machine_order_and_checks_conservation() {
        let rows = [row(0, 5.0, 9.0), row(1, 2.5, 4.0)];
        let fold = fold_fleet(&rows, 7.5);
        assert!(fold.conserved);
        assert!(approx_eq(fold.realized, 7.5));
        assert!(approx_eq(fold.arrived, 13.0));
        assert_eq!(fold.jobs, 20);
        assert_eq!(fold.completed, 14);
        assert_eq!(fold.missed, 6);
        assert_eq!(fold.steals, 1);
    }

    #[test]
    fn fold_flags_an_aggregate_mismatch() {
        let rows = [row(0, 5.0, 9.0)];
        let fold = fold_fleet(&rows, 6.0);
        assert!(!fold.conserved);
        assert!(fold.render().contains("MISMATCH"));
    }

    #[test]
    fn render_is_fixed_format() {
        let fold = fold_fleet(&[row(0, 5.0, 9.0), row(1, 2.5, 4.0)], 7.5);
        let text = fold.render();
        assert!(text.starts_with("machine"));
        assert!(text.contains("\n      0 "));
        assert!(text.contains("\n  fleet "));
        assert!(text.contains("realized share: 57.69%"));
        assert!(text.contains("conservation: machine-order"));
    }

    #[test]
    fn empty_fleet_renders_a_zero_share() {
        let fold = fold_fleet(&[], 0.0);
        assert!(fold.conserved, "0 == 0");
        assert!(fold.render().contains("realized share: 0.00%"));
    }
}
