//! Empirical competitive ratio against the offline optimum, next to the
//! paper's Theorem 3(2) guarantee (`DESIGN.md` §13).
//!
//! Methodology: for small instances the denominator is the *exact*
//! branch-and-bound optimum and the measured ratio is conclusive — a
//! V-Dover run below the guarantee would disprove the theorem. Larger
//! instances fall back to the fractional LP relaxation, which upper-bounds
//! OPT: the measured ratio then *lower-bounds* the true ratio, so clearing
//! the guarantee still certifies compliance but missing it is
//! inconclusive.

use cloudsched_analysis::bounds::{
    dover_optimal_ratio, vdover_achievable_ratio, vdover_upper_bound,
};
use cloudsched_capacity::Instance;
use cloudsched_offline::{fractional_optimal, optimal_value};

/// Largest job count solved with the exact branch-and-bound optimum;
/// larger instances use the fractional LP upper bound on OPT.
pub const EXACT_JOB_LIMIT: usize = 26;

/// One run's empirical ratio next to the paper's bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct RatioReport {
    /// Scheduler display name.
    pub scheduler: String,
    /// Value the online run earned.
    pub online_value: f64,
    /// The offline denominator (exact OPT or its LP upper bound).
    pub denominator: f64,
    /// `"exact"` or `"fractional"`.
    pub normalizer: &'static str,
    /// `online_value / denominator` (1.0 when the denominator is zero:
    /// nothing to earn, vacuously optimal).
    pub ratio: f64,
    /// Importance ratio `k` of the instance (1.0 when undefined).
    pub k: f64,
    /// Capacity variation `δ = c_hi / c_lo`.
    pub delta: f64,
    /// The paper's achievable guarantee: Theorem 3(2) for `δ > 1`, else
    /// Dover's constant-capacity `1/(1+√k)²` (Theorem 1(2)).
    pub guarantee: f64,
    /// The upper bound `1/(1+√k)²` no online algorithm can beat in the
    /// worst case (Theorem 3(1)).
    pub upper: f64,
    /// Whether the denominator is the exact optimum (ratio conclusive).
    pub conclusive: bool,
    /// Exact ratio strictly below the guarantee: a Theorem violation.
    pub violates_bound: bool,
    /// Exact ratio above 1: the run "beat" the optimum, which can only
    /// mean the trace and the instance disagree.
    pub exceeds_opt: bool,
}

/// Measures one run's empirical ratio for `instance`, where the online
/// algorithm earned `online_value`.
pub fn measure_ratio(instance: &Instance, online_value: f64, scheduler: &str) -> RatioReport {
    let (denominator, normalizer, conclusive) = if instance.job_count() <= EXACT_JOB_LIMIT {
        (
            optimal_value(&instance.jobs, &instance.capacity).0,
            "exact",
            true,
        )
    } else {
        (
            fractional_optimal(&instance.jobs, &instance.capacity).0,
            "fractional",
            false,
        )
    };
    let ratio = if denominator > 0.0 {
        online_value / denominator
    } else {
        1.0
    };
    let k = instance.importance_ratio().unwrap_or(1.0).max(1.0);
    let delta = instance.delta();
    let guarantee = if delta > 1.0 {
        vdover_achievable_ratio(k, delta)
    } else {
        dover_optimal_ratio(k)
    };
    RatioReport {
        scheduler: scheduler.to_string(),
        online_value,
        denominator,
        normalizer,
        ratio,
        k,
        delta,
        guarantee,
        upper: vdover_upper_bound(k),
        conclusive,
        violates_bound: conclusive && ratio + 1e-9 < guarantee,
        exceeds_opt: conclusive && ratio > 1.0 + 1e-9,
    }
}

impl RatioReport {
    /// The verdict line: how the measured ratio relates to the paper's
    /// guarantee (which Theorem 3(2) promises for V-Dover under individual
    /// admissibility; other schedulers carry no such promise).
    pub fn verdict(&self) -> String {
        if self.exceeds_opt {
            return String::from("RATIO ABOVE 1 — trace and instance disagree");
        }
        if self.violates_bound {
            return String::from("BELOW the guarantee — Theorem 3(2) violated");
        }
        if !self.conclusive && self.ratio + 1e-9 < self.guarantee {
            return String::from("below the guarantee vs the LP upper bound — inconclusive");
        }
        String::from("meets the guarantee (consistent with Theorem 3)")
    }

    /// Deterministic fixed-format text report.
    pub fn render(&self) -> String {
        format!(
            "empirical competitive ratio — {}\n\
             \x20 online value : {:.4}\n\
             \x20 optimum      : {:.4} ({})\n\
             \x20 ratio        : {:.6}\n\
             \x20 k            : {:.4}   delta: {:.4}\n\
             \x20 guarantee    : {:.6}   upper bound: {:.6}\n\
             \x20 verdict      : {}\n",
            self.scheduler,
            self.online_value,
            self.denominator,
            self.normalizer,
            self.ratio,
            self.k,
            self.delta,
            self.guarantee,
            self.upper,
            self.verdict()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_capacity::PiecewiseConstant;
    use cloudsched_core::JobSet;

    fn small_instance() -> Instance {
        let jobs = JobSet::from_tuples(&[
            (0.0, 2.0, 2.0, 4.0),
            (0.0, 2.0, 2.0, 1.0),
            (2.0, 5.0, 3.0, 6.0),
        ])
        .expect("invariant: valid tuples");
        let cap = PiecewiseConstant::constant(1.0).expect("invariant: positive rate");
        Instance::new(jobs, cap)
    }

    #[test]
    fn exact_path_for_small_instances() {
        let inst = small_instance();
        // OPT here is jobs 0 and 2 back to back: value 10.
        let r = measure_ratio(&inst, 10.0, "V-Dover");
        assert_eq!(r.normalizer, "exact");
        assert!(r.conclusive);
        assert!((r.ratio - 1.0).abs() < 1e-9, "ratio {}", r.ratio);
        assert!(!r.violates_bound);
        assert!(!r.exceeds_opt);
        // Constant capacity (delta = 1): the Dover bound applies.
        assert!((r.guarantee - r.upper).abs() < 1e-12);
        assert!(r.render().contains("meets the guarantee"));
    }

    #[test]
    fn violation_and_overshoot_are_flagged() {
        let inst = small_instance();
        let low = measure_ratio(&inst, 0.0, "FIFO");
        assert!(low.violates_bound);
        assert!(low.render().contains("Theorem 3(2) violated"));
        let high = measure_ratio(&inst, 20.0, "oops");
        assert!(high.exceeds_opt);
        assert!(high.render().contains("ABOVE 1"));
    }

    #[test]
    fn fractional_path_for_large_instances() {
        let tuples: Vec<(f64, f64, f64, f64)> = (0..EXACT_JOB_LIMIT + 1)
            .map(|i| (i as f64, i as f64 + 2.0, 1.0, 1.0))
            .collect();
        let jobs = JobSet::from_tuples(&tuples).expect("invariant: valid tuples");
        let cap = PiecewiseConstant::constant(1.0).expect("invariant: positive rate");
        let inst = Instance::new(jobs, cap);
        let denom = fractional_optimal(&inst.jobs, &inst.capacity).0;
        let r = measure_ratio(&inst, denom * 0.5, "EDF");
        assert_eq!(r.normalizer, "fractional");
        assert!(!r.conclusive);
        assert!(!r.violates_bound, "fractional misses are inconclusive");
        assert!((r.ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn inconclusive_verdict_below_guarantee() {
        let tuples: Vec<(f64, f64, f64, f64)> = (0..EXACT_JOB_LIMIT + 1)
            .map(|i| (i as f64, i as f64 + 2.0, 1.0, 1.0))
            .collect();
        let jobs = JobSet::from_tuples(&tuples).expect("invariant: valid tuples");
        let cap = PiecewiseConstant::constant(1.0).expect("invariant: positive rate");
        let inst = Instance::new(jobs, cap);
        let r = measure_ratio(&inst, 0.0, "FIFO");
        assert!(!r.violates_bound);
        assert!(r.verdict().contains("inconclusive"));
    }

    #[test]
    fn empty_instance_is_vacuous() {
        let inst = Instance::new(
            JobSet::new(vec![]).expect("invariant: empty set is valid"),
            PiecewiseConstant::constant(1.0).expect("invariant: positive rate"),
        );
        let r = measure_ratio(&inst, 0.0, "EDF");
        assert_eq!(r.ratio, 1.0);
        assert!(!r.violates_bound);
    }

    #[test]
    fn varying_capacity_uses_theorem_3_guarantee() {
        let jobs = JobSet::from_tuples(&[(0.0, 4.0, 2.0, 2.0), (1.0, 6.0, 3.0, 9.0)])
            .expect("invariant: valid tuples");
        let cap = PiecewiseConstant::from_durations(&[(2.0, 1.0), (2.0, 3.0)])
            .expect("invariant: valid profile");
        let inst = Instance::new(jobs, cap);
        let r = measure_ratio(&inst, 9.0, "V-Dover");
        assert!(r.delta > 1.0);
        assert!(
            (r.guarantee - vdover_achievable_ratio(r.k, r.delta)).abs() < 1e-12,
            "guarantee must follow Theorem 3(2) when delta > 1"
        );
        assert!(r.guarantee < r.upper);
    }
}
