//! # cloudsched-insight
//!
//! Deterministic trace analytics over the typed event streams that
//! `cloudsched-sim` emits (`DESIGN.md` §13):
//!
//! * [`ledger`] — the value-loss ledger: folds a trace into a
//!   conservation-checked attribution of every unit of arrived value to
//!   realized / expired-in-queue / preempted-never-rescued / quarantined /
//!   corrupt-rejected buckets;
//! * [`timeline`] — per-job event timelines and queue-depth time series
//!   with deterministic ASCII sparklines;
//! * [`ratio`] — the empirical competitive ratio of one run against the
//!   exact (branch-and-bound) or fractional (LP) offline optimum, printed
//!   next to the paper's Theorem 3(2) guarantee;
//! * [`benchdiff`] — structural diffs between two checked-in benchmark
//!   reports (`BENCH_kernel.json` / `BENCH_sweep.json`).
//!
//! Everything here is a pure function from parsed trace events (or report
//! text) to values and rendered text: no filesystem, no clock, no hashing
//! iteration — the same inputs produce byte-identical output on any
//! platform and at any thread count. File I/O stays at the `cli` boundary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchdiff;
pub mod fleetfold;
pub mod ledger;
pub mod ratio;
pub mod timeline;

pub use benchdiff::{diff_reports, BenchDiff, MetricDelta};
pub use fleetfold::{fold_fleet, FleetFold, MachineValue};
pub use ledger::{Bucket, LedgerEntry, LedgerReport, ValueLedger};
pub use ratio::{measure_ratio, RatioReport, EXACT_JOB_LIMIT};
pub use timeline::{job_timeline, queue_depth_series, render_job_timeline, render_queue_depths};
