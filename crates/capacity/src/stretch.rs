//! The time-stretch transformation of §III-A.
//!
//! The paper's offline insight: define `T(t) = (1/c_ref) ∫_0^t c(τ)dτ`. Under
//! `T` the varying-capacity system becomes a *constant*-capacity system with
//! rate `c_ref`, workloads and values are unchanged, and a job completes by
//! its deadline in the original system iff the stretched job completes by the
//! stretched deadline in the transformed system. `T` is a bijection between
//! schedules of the two systems, so any constant-capacity offline algorithm
//! (exact or approximate) can be applied to the varying-capacity problem.
//!
//! The paper uses `c_ref = c_lo`; [`StretchMap::new`] defaults to that but any
//! positive reference rate works and is exposed for testing.

use crate::constant::Constant;
use crate::piecewise::PiecewiseConstant;
use crate::profile::CapacityProfile;
use cloudsched_core::{CoreError, Job, JobSet, Schedule, Time};
use cloudsched_obs::Profiler;

/// A concrete stretch transformation for one piecewise-constant profile.
#[derive(Debug, Clone)]
pub struct StretchMap {
    profile: PiecewiseConstant,
    c_ref: f64,
}

impl StretchMap {
    /// Builds the stretch map with the paper's reference rate `c_ref = c_lo`.
    ///
    /// ```
    /// use cloudsched_capacity::{PiecewiseConstant, StretchMap};
    /// use cloudsched_core::Time;
    /// // Rate 1 for 2 s then rate 3: the fast region is stretched 3×.
    /// let cap = PiecewiseConstant::from_durations(&[(2.0, 1.0), (2.0, 3.0)]).unwrap();
    /// let map = StretchMap::new(cap);
    /// assert_eq!(map.forward(Time::new(2.0)), Time::new(2.0));
    /// assert_eq!(map.forward(Time::new(4.0)), Time::new(8.0));
    /// assert_eq!(map.inverse(Time::new(8.0)), Time::new(4.0));
    /// ```
    pub fn new(profile: PiecewiseConstant) -> Self {
        let c_ref = profile.c_lo();
        StretchMap { profile, c_ref }
    }

    /// Builds the stretch map with an explicit reference rate.
    ///
    /// # Errors
    /// If `c_ref` is not positive and finite.
    pub fn with_reference(profile: PiecewiseConstant, c_ref: f64) -> Result<Self, CoreError> {
        if !(c_ref > 0.0) || !c_ref.is_finite() {
            return Err(CoreError::InvalidCapacityProfile {
                reason: format!("stretch reference rate must be positive, got {c_ref}"),
            });
        }
        Ok(StretchMap { profile, c_ref })
    }

    /// The reference (post-transformation) constant rate.
    #[inline]
    pub fn c_ref(&self) -> f64 {
        self.c_ref
    }

    /// The original (pre-transformation) profile.
    #[inline]
    pub fn profile(&self) -> &PiecewiseConstant {
        &self.profile
    }

    /// The transformed system's constant profile `c'(t') = c_ref`.
    pub fn transformed_profile(&self) -> Constant {
        Constant::new(self.c_ref)
            .expect("invariant: c_ref > 0 was validated at StretchMap construction")
    }

    /// Forward map `t' = T(t) = (1/c_ref) ∫_0^t c`.
    #[inline]
    pub fn forward(&self, t: Time) -> Time {
        Time::new(self.profile.integral_to(t) / self.c_ref)
    }

    /// Inverse map `t = T⁻¹(t')`.
    #[inline]
    pub fn inverse(&self, t_stretched: Time) -> Time {
        if !t_stretched.is_finite() {
            return Time::NEVER;
        }
        self.profile
            .inverse_integral(t_stretched.as_f64() * self.c_ref)
    }

    /// Maps a job into the transformed system: `r' = T(r)`, `d' = T(d)`,
    /// workload and value unchanged.
    pub fn stretch_job(&self, job: &Job) -> Result<Job, CoreError> {
        Job::new(
            job.id,
            self.forward(job.release),
            self.forward(job.deadline),
            job.workload,
            job.value,
        )
    }

    /// Maps a whole job set into the transformed system.
    pub fn stretch_jobs(&self, jobs: &JobSet) -> Result<JobSet, CoreError> {
        let stretched = jobs
            .iter()
            .map(|j| self.stretch_job(j))
            .collect::<Result<Vec<_>, _>>()?;
        JobSet::new(stretched)
    }

    /// Maps a schedule of the *original* system to the equivalent schedule of
    /// the transformed system (the paper's schedule bijection, forward
    /// direction). Workload executed per slice is preserved exactly.
    pub fn stretch_schedule(&self, schedule: &Schedule) -> Result<Schedule, CoreError> {
        schedule.map_time(|t| self.forward(t))
    }

    /// Maps a schedule of the *transformed* system back to the original
    /// system (the bijection, reverse direction).
    pub fn unstretch_schedule(&self, schedule: &Schedule) -> Result<Schedule, CoreError> {
        schedule.map_time(|t| self.inverse(t))
    }

    /// [`stretch_jobs`](Self::stretch_jobs) with a `stretch.forward` span
    /// recorded on `profiler`. With a deterministic (null) clock the span
    /// costs two virtual calls and records zeros, so the transform itself
    /// stays wall-clock-free.
    pub fn stretch_jobs_profiled(
        &self,
        jobs: &JobSet,
        profiler: &Profiler,
    ) -> Result<JobSet, CoreError> {
        let _span = profiler.span("stretch.forward");
        self.stretch_jobs(jobs)
    }

    /// [`unstretch_schedule`](Self::unstretch_schedule) with a
    /// `stretch.inverse` span recorded on `profiler`.
    pub fn unstretch_schedule_profiled(
        &self,
        schedule: &Schedule,
        profiler: &Profiler,
    ) -> Result<Schedule, CoreError> {
        let _span = profiler.span("stretch.inverse");
        self.unstretch_schedule(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_core::{approx_eq, JobId};

    fn t(x: f64) -> Time {
        Time::new(x)
    }

    /// rate 1 on [0,2), rate 3 on [2,4), rate 2 on [4,∞); c_lo = 1.
    fn profile() -> PiecewiseConstant {
        PiecewiseConstant::from_durations(&[(2.0, 1.0), (2.0, 3.0), (1.0, 2.0)]).unwrap()
    }

    #[test]
    fn forward_is_workload_scaled_time() {
        let m = StretchMap::new(profile());
        assert_eq!(m.c_ref(), 1.0);
        assert_eq!(m.forward(t(0.0)), t(0.0));
        assert_eq!(m.forward(t(2.0)), t(2.0)); // ∫ = 2
        assert_eq!(m.forward(t(4.0)), t(8.0)); // ∫ = 2 + 6
        assert_eq!(m.forward(t(5.0)), t(10.0)); // + 2
    }

    #[test]
    fn forward_inverse_round_trip() {
        let m = StretchMap::new(profile());
        for &x in &[0.0, 0.5, 2.0, 3.25, 4.0, 9.75] {
            let fwd = m.forward(t(x));
            assert!(approx_eq(m.inverse(fwd).as_f64(), x), "round trip at {x}");
        }
        for &y in &[0.0, 1.0, 2.5, 8.0, 20.0] {
            let inv = m.inverse(t(y));
            assert!(approx_eq(m.forward(inv).as_f64(), y), "round trip' at {y}");
        }
        assert_eq!(m.inverse(Time::NEVER), Time::NEVER);
    }

    #[test]
    fn forward_is_strictly_increasing() {
        let m = StretchMap::new(profile());
        let xs = [0.0, 0.1, 1.9, 2.0, 2.1, 3.999, 4.0, 7.0];
        for w in xs.windows(2) {
            assert!(m.forward(t(w[0])) < m.forward(t(w[1])));
        }
    }

    #[test]
    fn workload_is_preserved_between_epochs() {
        // The defining property: ∫_s^t c = c_ref * (T(t) - T(s)).
        let m = StretchMap::new(profile());
        let p = profile();
        for &(s, e) in &[(0.0, 1.0), (1.5, 2.5), (2.0, 4.0), (3.0, 6.0)] {
            let orig = p.integrate(t(s), t(e));
            let stretched = (m.forward(t(e)) - m.forward(t(s))).as_f64() * m.c_ref();
            assert!(
                approx_eq(orig, stretched),
                "({s},{e}): {orig} vs {stretched}"
            );
        }
    }

    #[test]
    fn stretch_job_maps_times_keeps_rest() {
        let m = StretchMap::new(profile());
        let j = Job::new(JobId(3), t(1.0), t(5.0), 2.5, 7.0).unwrap();
        let sj = m.stretch_job(&j).unwrap();
        assert_eq!(sj.id, JobId(3));
        assert_eq!(sj.release, m.forward(t(1.0)));
        assert_eq!(sj.deadline, m.forward(t(5.0)));
        assert_eq!(sj.workload, 2.5);
        assert_eq!(sj.value, 7.0);
    }

    #[test]
    fn feasibility_is_preserved() {
        // A job exactly schedulable in the original system maps to a job
        // exactly schedulable in the transformed system: available workload
        // in [r, d] equals c_ref * (d' - r').
        let m = StretchMap::new(profile());
        let p = profile();
        let avail = p.integrate(t(1.0), t(5.0));
        let j = Job::new(JobId(0), t(1.0), t(5.0), avail, 1.0).unwrap();
        let sj = m.stretch_job(&j).unwrap();
        let avail_stretched = (sj.deadline - sj.release).as_f64() * m.c_ref();
        assert!(approx_eq(avail, avail_stretched));
        assert!(approx_eq(sj.workload, avail_stretched));
    }

    #[test]
    fn schedule_bijection_round_trips() {
        let m = StretchMap::new(profile());
        let mut sched = Schedule::new();
        sched.push(JobId(0), t(0.0), t(1.5)).unwrap();
        sched.push(JobId(1), t(1.5), t(3.0)).unwrap();
        sched.push(JobId(0), t(4.5), t(5.0)).unwrap();
        let fwd = m.stretch_schedule(&sched).unwrap();
        // Slice workloads preserved: slice [1.5, 3.0) has ∫ = 0.5*1 + 1*3 = 3.5.
        let s1 = fwd.slices()[1];
        assert!(approx_eq(
            (s1.end - s1.start).as_f64() * m.c_ref(),
            profile().integrate(t(1.5), t(3.0))
        ));
        let back = m.unstretch_schedule(&fwd).unwrap();
        for (a, b) in sched.slices().iter().zip(back.slices()) {
            assert_eq!(a.job, b.job);
            assert!(a.start.approx_eq(b.start));
            assert!(a.end.approx_eq(b.end));
        }
    }

    #[test]
    fn stretch_jobs_maps_whole_set() {
        let m = StretchMap::new(profile());
        let js = JobSet::from_tuples(&[(0.0, 2.0, 1.0, 1.0), (2.0, 4.0, 3.0, 2.0)]).unwrap();
        let sjs = m.stretch_jobs(&js).unwrap();
        assert_eq!(sjs.len(), 2);
        assert_eq!(sjs.get(JobId(1)).release, t(2.0));
        assert_eq!(sjs.get(JobId(1)).deadline, t(8.0));
        assert_eq!(sjs.total_value(), js.total_value());
        assert_eq!(sjs.total_workload(), js.total_workload());
    }

    #[test]
    fn custom_reference_rate() {
        let m = StretchMap::with_reference(profile(), 2.0).unwrap();
        // T(2) = 2/2 = 1.
        assert_eq!(m.forward(t(2.0)), t(1.0));
        assert_eq!(m.transformed_profile().rate(), 2.0);
        assert!(StretchMap::with_reference(profile(), 0.0).is_err());
        assert!(StretchMap::with_reference(profile(), f64::NAN).is_err());
    }

    #[test]
    fn profiled_variants_match_and_record_spans() {
        let m = StretchMap::new(profile());
        let js = JobSet::from_tuples(&[(0.0, 2.0, 1.0, 1.0), (2.0, 4.0, 3.0, 2.0)]).unwrap();
        let prof = Profiler::deterministic();
        let plain = m.stretch_jobs(&js).unwrap();
        let profiled = m.stretch_jobs_profiled(&js, &prof).unwrap();
        for (a, b) in plain.iter().zip(profiled.iter()) {
            assert_eq!(a.release, b.release);
            assert_eq!(a.deadline, b.deadline);
        }
        let mut sched = Schedule::new();
        sched.push(JobId(0), t(0.0), t(1.5)).unwrap();
        let fwd = m.stretch_schedule(&sched).unwrap();
        m.unstretch_schedule_profiled(&fwd, &prof).unwrap();
        assert_eq!(prof.stats("stretch.forward").unwrap().count, 1);
        assert_eq!(prof.stats("stretch.inverse").unwrap().count, 1);
    }

    #[test]
    fn constant_profile_stretch_is_identity_with_cref_equal_rate() {
        let p = PiecewiseConstant::constant(2.0).unwrap();
        let m = StretchMap::new(p);
        // c_lo = 2 = rate, so T(t) = t.
        for &x in &[0.0, 1.0, 5.5] {
            assert!(approx_eq(m.forward(t(x)).as_f64(), x));
        }
    }
}
