//! Deterministic capacity-pattern builders.
//!
//! The paper's stochastic two-state capacity lives in
//! `cloudsched-workload::ctmc`; this module provides *deterministic*
//! profiles used by examples, tests and ablations: diurnal (day/night)
//! cycles and staircase approximations of smooth curves such as sinusoids.
//! Everything is still piecewise-constant, so the simulator's exact
//! integration applies unchanged.

use crate::piecewise::{PiecewiseConstant, PiecewiseConstantBuilder};
use cloudsched_core::CoreError;

/// A repeating two-phase (e.g. day/night) pattern: `high_rate` for
/// `high_duration`, then `low_rate` for `low_duration`, repeated `cycles`
/// times; the final phase's rate extends forever.
pub fn diurnal(
    high_rate: f64,
    high_duration: f64,
    low_rate: f64,
    low_duration: f64,
    cycles: usize,
) -> Result<PiecewiseConstant, CoreError> {
    if cycles == 0 {
        return Err(CoreError::InvalidCapacityProfile {
            reason: "diurnal pattern needs at least one cycle".into(),
        });
    }
    let mut b = PiecewiseConstantBuilder::new();
    for _ in 0..cycles {
        b.push_run(high_rate, high_duration);
        b.push_run(low_rate, low_duration);
    }
    b.finish(low_rate)
}

/// A staircase approximation of `c(t) = offset + amplitude·sin(2πt/period)`
/// with `steps_per_period` equal-width steps over `periods` periods, each
/// step holding the midpoint value of the sinusoid. Requires
/// `offset > amplitude >= 0` so rates stay positive.
pub fn sinusoid_steps(
    offset: f64,
    amplitude: f64,
    period: f64,
    steps_per_period: usize,
    periods: usize,
) -> Result<PiecewiseConstant, CoreError> {
    // lint: allow(L001) — exact domain validation
    if !(offset > amplitude && amplitude >= 0.0) || period <= 0.0 {
        return Err(CoreError::InvalidCapacityProfile {
            reason: format!(
                "sinusoid needs offset > amplitude >= 0 and period > 0, got \
                 offset={offset} amplitude={amplitude} period={period}"
            ),
        });
    }
    if steps_per_period == 0 || periods == 0 {
        return Err(CoreError::InvalidCapacityProfile {
            reason: "sinusoid needs at least one step and one period".into(),
        });
    }
    let step = period / steps_per_period as f64;
    let mut b = PiecewiseConstantBuilder::new();
    for p in 0..periods {
        for s in 0..steps_per_period {
            let mid = (p * steps_per_period + s) as f64 * step + step / 2.0;
            let rate = offset + amplitude * (2.0 * std::f64::consts::PI * mid / period).sin();
            b.push_run(rate, step);
        }
    }
    b.finish(offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::CapacityProfile;
    use cloudsched_core::{approx_eq, Time};

    #[test]
    fn diurnal_cycles_repeat() {
        let p = diurnal(8.0, 2.0, 2.0, 1.0, 3).unwrap();
        assert_eq!(p.rate_at(Time::new(0.5)), 8.0);
        assert_eq!(p.rate_at(Time::new(2.5)), 2.0);
        assert_eq!(p.rate_at(Time::new(3.5)), 8.0); // second cycle
        assert_eq!(p.rate_at(Time::new(8.5)), 2.0); // third cycle's night
        assert_eq!(p.rate_at(Time::new(100.0)), 2.0); // tail
                                                      // Area per cycle: 8*2 + 2*1 = 18.
        assert!(approx_eq(p.integrate(Time::ZERO, Time::new(9.0)), 54.0));
    }

    #[test]
    fn diurnal_needs_cycles() {
        assert!(diurnal(2.0, 1.0, 1.0, 1.0, 0).is_err());
    }

    #[test]
    fn sinusoid_bounds_and_mean() {
        let p = sinusoid_steps(5.0, 3.0, 10.0, 20, 4).unwrap();
        let (lo, hi) = p.observed_bounds();
        assert!(lo >= 2.0 - 1e-9 && hi <= 8.0 + 1e-9, "({lo}, {hi})");
        // Mean over whole periods ~ offset.
        let mean = p.integrate(Time::ZERO, Time::new(40.0)) / 40.0;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn sinusoid_rejects_nonpositive_rates() {
        assert!(sinusoid_steps(1.0, 1.0, 10.0, 8, 1).is_err());
        assert!(sinusoid_steps(2.0, 1.0, 0.0, 8, 1).is_err());
        assert!(sinusoid_steps(2.0, 1.0, 10.0, 0, 1).is_err());
        assert!(sinusoid_steps(2.0, 1.0, 10.0, 8, 0).is_err());
    }

    #[test]
    fn sinusoid_step_count() {
        let p = sinusoid_steps(5.0, 2.0, 8.0, 16, 2).unwrap();
        // 32 steps, minus the pairs that coalesce where the sinusoid is
        // symmetric around its extrema, plus a possible tail segment.
        assert!(
            p.segment_count() >= 24 && p.segment_count() <= 34,
            "got {}",
            p.segment_count()
        );
    }
}
