//! # cloudsched-capacity
//!
//! Time-varying processor capacity, exactly as modelled in §II-A of
//! *Secondary Job Scheduling in the Cloud with Deadlines*:
//!
//! > the input capacity function belongs to
//! > `C(c_lo, c_hi) = { c(t) | c integrable, c_lo <= c(t) <= c_hi }`
//! > and the workload finished in `[t1, t2]` is `∫ c(τ) dτ`.
//!
//! The crate provides:
//!
//! * the [`CapacityProfile`] trait — rate queries, *exact* workload
//!   integration, and the inverse query "when will `w` units of workload be
//!   done" that the event-driven simulator relies on;
//! * [`Constant`] and [`PiecewiseConstant`] profiles (the latter is what all
//!   generators produce — including the paper's two-state Markov capacity);
//! * the **stretch transformation** of §III-A ([`StretchMap`]) which reduces
//!   the varying-capacity problem to the classical constant-capacity one, for
//!   jobs *and* whole schedules, in both directions;
//! * [`Instance`] — a job set paired with a capacity profile, the paper's
//!   complete input instance `I`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constant;
pub mod instance;
pub mod patterns;
pub mod piecewise;
pub mod profile;
pub mod stretch;

pub use constant::Constant;
pub use instance::Instance;
pub use piecewise::{PiecewiseConstant, PiecewiseConstantBuilder, Segment};
pub use profile::CapacityProfile;
pub use stretch::StretchMap;
