//! Constant capacity — the classical scheduling model.

use crate::profile::CapacityProfile;
use cloudsched_core::{CoreError, Duration, Time};

/// The constant profile `c(t) = c` for all `t` (the setting of Theorem 1,
/// Dover, EDF/LLF classics). Also what the stretch transformation of §III-A
/// produces.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant {
    rate: f64,
}

impl Constant {
    /// Creates a constant profile with rate `c > 0`.
    pub fn new(rate: f64) -> Result<Self, CoreError> {
        if !(rate > 0.0) || !rate.is_finite() {
            return Err(CoreError::InvalidCapacityProfile {
                reason: format!("constant rate must be positive and finite, got {rate}"),
            });
        }
        Ok(Constant { rate })
    }

    /// The unit-capacity profile `c(t) = 1`.
    pub fn unit() -> Self {
        Constant { rate: 1.0 }
    }

    /// The constant rate.
    #[inline]
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl CapacityProfile for Constant {
    #[inline]
    fn rate_at(&self, _t: Time) -> f64 {
        self.rate
    }

    #[inline]
    fn integrate(&self, a: Time, b: Time) -> f64 {
        debug_assert!(a <= b, "integrate requires a <= b");
        (b - a).as_f64() * self.rate
    }

    #[inline]
    fn time_to_complete(&self, from: Time, workload: f64) -> Time {
        // lint: allow(L001) — exact non-positive-workload guard
        if workload <= 0.0 {
            return from;
        }
        from + Duration::new(workload / self.rate)
    }

    #[inline]
    fn bounds(&self) -> (f64, f64) {
        (self.rate, self.rate)
    }

    #[inline]
    fn next_change_after(&self, _t: Time) -> Time {
        Time::NEVER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_rate() {
        assert!(Constant::new(0.0).is_err());
        assert!(Constant::new(-1.0).is_err());
        assert!(Constant::new(f64::INFINITY).is_err());
        assert!(Constant::new(f64::NAN).is_err());
        assert_eq!(Constant::new(2.5).unwrap().rate(), 2.5);
        assert_eq!(Constant::unit().rate(), 1.0);
    }

    #[test]
    fn integration_is_linear() {
        let c = Constant::new(2.0).unwrap();
        assert_eq!(c.integrate(Time::new(1.0), Time::new(4.0)), 6.0);
        assert_eq!(c.integrate(Time::new(3.0), Time::new(3.0)), 0.0);
    }

    #[test]
    fn inverse_query() {
        let c = Constant::new(2.0).unwrap();
        assert_eq!(c.time_to_complete(Time::new(1.0), 6.0), Time::new(4.0));
        assert_eq!(c.time_to_complete(Time::new(1.0), 0.0), Time::new(1.0));
        assert_eq!(c.time_to_complete(Time::new(1.0), -1.0), Time::new(1.0));
    }

    #[test]
    fn bounds_and_delta() {
        let c = Constant::new(3.0).unwrap();
        assert_eq!(c.bounds(), (3.0, 3.0));
        assert_eq!(c.delta(), 1.0);
        assert_eq!(c.c_lo(), 3.0);
        assert_eq!(c.next_change_after(Time::ZERO), Time::NEVER);
    }

    #[test]
    fn trait_object_via_reference() {
        let c = Constant::unit();
        let r: &dyn CapacityProfile = &c;
        assert_eq!(r.rate_at(Time::ZERO), 1.0);
        assert_eq!((&c).integrate(Time::ZERO, Time::new(2.0)), 2.0);
    }
}
