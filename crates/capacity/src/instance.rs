//! Complete input instances: jobs + capacity.

use crate::piecewise::PiecewiseConstant;
use crate::profile::CapacityProfile;
use cloudsched_core::{approx_le, JobSet, Time};

/// The paper's input instance `I`: a set of secondary jobs together with the
/// processor capacity function over their duration (§II-A).
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// The released jobs.
    pub jobs: JobSet,
    /// The time-varying capacity.
    pub capacity: PiecewiseConstant,
}

impl Instance {
    /// Pairs jobs with a capacity profile.
    pub fn new(jobs: JobSet, capacity: PiecewiseConstant) -> Self {
        Instance { jobs, capacity }
    }

    /// Number of jobs.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Capacity variation `δ = c_hi / c_lo` of the declared class.
    pub fn delta(&self) -> f64 {
        self.capacity.delta()
    }

    /// Importance ratio `k_I` of the job set (None if undefined).
    pub fn importance_ratio(&self) -> Option<f64> {
        self.jobs.importance_ratio()
    }

    /// `true` iff every job satisfies Definition 4 w.r.t. the declared `c_lo`.
    pub fn all_individually_admissible(&self) -> bool {
        self.jobs.all_individually_admissible(self.capacity.c_lo())
    }

    /// Total workload the processor could serve between the first release and
    /// the last deadline — a crude upper bound on useful work.
    pub fn served_workload_bound(&self) -> f64 {
        let a = self.jobs.first_release();
        let b = self.jobs.last_deadline();
        if b <= a {
            return 0.0;
        }
        self.capacity.integrate(a, b)
    }

    /// A quick *necessary* underload check: total workload fits in the span.
    /// (Sufficiency requires the EDF feasibility test in `cloudsched-offline`.)
    pub fn workload_fits_span(&self) -> bool {
        approx_le(self.jobs.total_workload(), self.served_workload_bound())
    }

    /// Latest deadline — the natural simulation horizon.
    pub fn horizon(&self) -> Time {
        self.jobs.last_deadline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> Instance {
        let jobs = JobSet::from_tuples(&[(0.0, 4.0, 2.0, 2.0), (1.0, 6.0, 3.0, 9.0)]).unwrap();
        let cap = PiecewiseConstant::from_durations(&[(2.0, 1.0), (2.0, 3.0)]).unwrap();
        Instance::new(jobs, cap)
    }

    #[test]
    fn derived_quantities() {
        let i = instance();
        assert_eq!(i.job_count(), 2);
        assert_eq!(i.delta(), 3.0);
        assert_eq!(i.importance_ratio(), Some(3.0));
        assert_eq!(i.horizon(), Time::new(6.0));
    }

    #[test]
    fn admissibility_uses_c_lo() {
        let i = instance();
        // c_lo = 1; job 0 needs d-r=4 >= p/c_lo=2: ok. job 1: 5 >= 3: ok.
        assert!(i.all_individually_admissible());
        let tight = JobSet::from_tuples(&[(0.0, 1.0, 2.0, 1.0)]).unwrap();
        let i2 = Instance::new(tight, i.capacity.clone());
        assert!(!i2.all_individually_admissible());
    }

    #[test]
    fn workload_bounds() {
        let i = instance();
        // Span [0,6]: ∫ = 2*1 + 2*3 + 2*3 = 14.
        assert_eq!(i.served_workload_bound(), 14.0);
        assert!(i.workload_fits_span());
    }

    #[test]
    fn empty_span_bound_is_zero() {
        let jobs = JobSet::new(vec![]).unwrap();
        let cap = PiecewiseConstant::constant(1.0).unwrap();
        let i = Instance::new(jobs, cap);
        assert_eq!(i.served_workload_bound(), 0.0);
        assert!(i.workload_fits_span());
    }
}
