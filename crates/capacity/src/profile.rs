//! The capacity-profile abstraction.

use cloudsched_core::Time;

/// A time-varying processor capacity `c(t)` defined on `[0, ∞)`.
///
/// Implementations must guarantee, for all `t`:
/// `bounds().0 <= rate_at(t) <= bounds().1` and `rate_at(t) > 0`
/// (the paper's capacity class `C(c_lo, c_hi)` has `c_lo > 0`; strictly
/// positive rates also mean every finite workload finishes in finite time,
/// which the simulator relies on).
///
/// `integrate` must be *exact* for the profile class (no numeric quadrature):
/// all profiles in this workspace are piecewise constant, so integrals are
/// sums of rectangle areas and the inverse query is a closed form.
pub trait CapacityProfile {
    /// Instantaneous capacity at `t` (right-continuous: the rate on `[t, t+ε)`).
    fn rate_at(&self, t: Time) -> f64;

    /// Workload executable in `[a, b]`: `∫_a^b c(τ) dτ`. Requires `a <= b`.
    fn integrate(&self, a: Time, b: Time) -> f64;

    /// The earliest `s >= from` such that `integrate(from, s) == workload`.
    ///
    /// With strictly positive rates this always exists for finite `workload`;
    /// `workload <= 0` returns `from` itself.
    fn time_to_complete(&self, from: Time, workload: f64) -> Time;

    /// Declared capacity bounds `(c_lo, c_hi)` of the class the profile
    /// belongs to. The *actual* rates may span a narrower range.
    fn bounds(&self) -> (f64, f64);

    /// The next instant strictly after `t` at which the rate changes, or
    /// [`Time::NEVER`] if the rate is constant from `t` on.
    fn next_change_after(&self, t: Time) -> Time;

    /// Maximum capacity variation `δ = c_hi / c_lo` (§II-A).
    fn delta(&self) -> f64 {
        let (lo, hi) = self.bounds();
        hi / lo
    }

    /// Lower capacity bound `c_lo` — the conservative estimate used by
    /// V-Dover's conservative laxity (Definition 5).
    fn c_lo(&self) -> f64 {
        self.bounds().0
    }

    /// Upper capacity bound `c_hi`.
    fn c_hi(&self) -> f64 {
        self.bounds().1
    }
}

impl<P: CapacityProfile + ?Sized> CapacityProfile for &P {
    fn rate_at(&self, t: Time) -> f64 {
        (**self).rate_at(t)
    }
    fn integrate(&self, a: Time, b: Time) -> f64 {
        (**self).integrate(a, b)
    }
    fn time_to_complete(&self, from: Time, workload: f64) -> Time {
        (**self).time_to_complete(from, workload)
    }
    fn bounds(&self) -> (f64, f64) {
        (**self).bounds()
    }
    fn next_change_after(&self, t: Time) -> Time {
        (**self).next_change_after(t)
    }
}
