//! Piecewise-constant capacity profiles.
//!
//! Every capacity process in this workspace — including the paper's two-state
//! continuous-time Markov capacity (§IV) and the primary-load-induced traces
//! of `cloudsched-cloud` — is materialised as a [`PiecewiseConstant`] profile.
//! Prefix integrals are precomputed so that workload integration and the
//! inverse "completion time" query are both `O(log n)` and *exact* (rectangle
//! areas, no quadrature).

use crate::profile::CapacityProfile;
use cloudsched_core::{CoreError, Time};
use std::sync::atomic::{AtomicUsize, Ordering};

/// One segment of a piecewise-constant profile: rate `rate` from `start`
/// until the next segment's start (the last segment extends to `+∞`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Segment start time.
    pub start: Time,
    /// Capacity on the segment.
    pub rate: f64,
}

/// A piecewise-constant capacity profile on `[0, ∞)`.
///
/// Invariants: segment starts strictly increase beginning at `0`; every rate
/// is finite and `> 0`; the last segment's rate extends forever.
///
/// Segment lookups keep a memoized cursor (the last segment returned): the
/// kernel's queries march forward in event-time and the stretch transform
/// walks `cum` monotonically, so the common case is "same segment or the
/// next one" and resolves without a binary search. The cursor is a pure
/// performance memo — it never changes a result (a stale hint falls back to
/// the exact `partition_point` search) and is excluded from equality and
/// debug formatting.
pub struct PiecewiseConstant {
    /// Segment start times; `starts[0] == 0.0`, strictly increasing.
    starts: Vec<f64>,
    /// `rates[i]` holds on `[starts[i], starts[i+1])`.
    rates: Vec<f64>,
    /// Prefix integrals: `cum[i] = ∫_0^{starts[i]} c(τ)dτ`.
    cum: Vec<f64>,
    /// Declared class bounds `(c_lo, c_hi)`; default: observed min/max rate.
    declared: (f64, f64),
    /// Last segment index returned by a time-keyed lookup.
    seg_hint: AtomicUsize,
    /// Last segment index returned by an area-keyed (`inverse_integral`) lookup.
    inv_hint: AtomicUsize,
}

impl Clone for PiecewiseConstant {
    fn clone(&self) -> Self {
        PiecewiseConstant {
            starts: self.starts.clone(),
            rates: self.rates.clone(),
            cum: self.cum.clone(),
            declared: self.declared,
            seg_hint: AtomicUsize::new(self.seg_hint.load(Ordering::Relaxed)),
            inv_hint: AtomicUsize::new(self.inv_hint.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for PiecewiseConstant {
    fn eq(&self, other: &Self) -> bool {
        self.starts == other.starts
            && self.rates == other.rates
            && self.cum == other.cum
            && self.declared == other.declared
    }
}

impl std::fmt::Debug for PiecewiseConstant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PiecewiseConstant")
            .field("starts", &self.starts)
            .field("rates", &self.rates)
            .field("cum", &self.cum)
            .field("declared", &self.declared)
            .finish()
    }
}

impl PiecewiseConstant {
    /// Builds a profile from `(start, rate)` segments.
    ///
    /// # Errors
    /// If the list is empty, does not start at time 0, is not strictly
    /// increasing, or contains a non-positive/non-finite rate.
    pub fn new(segments: Vec<Segment>) -> Result<Self, CoreError> {
        if segments.is_empty() {
            return Err(CoreError::InvalidCapacityProfile {
                reason: "profile needs at least one segment".into(),
            });
        }
        if segments[0].start != Time::ZERO {
            return Err(CoreError::InvalidCapacityProfile {
                reason: format!("first segment must start at 0, got {}", segments[0].start),
            });
        }
        let mut starts = Vec::with_capacity(segments.len());
        let mut rates = Vec::with_capacity(segments.len());
        for (i, s) in segments.iter().enumerate() {
            if !(s.rate > 0.0) || !s.rate.is_finite() {
                return Err(CoreError::InvalidCapacityProfile {
                    reason: format!(
                        "segment {i} rate must be positive and finite, got {}",
                        s.rate
                    ),
                });
            }
            if !s.start.is_finite() {
                return Err(CoreError::InvalidCapacityProfile {
                    reason: format!("segment {i} start must be finite"),
                });
            }
            // lint: allow(L001) — exact strict-ordering validation
            if i > 0 && s.start.as_f64() <= starts[i - 1] {
                return Err(CoreError::InvalidCapacityProfile {
                    reason: format!(
                        "segment starts must strictly increase: segment {i} starts at {} after {}",
                        s.start.as_f64(),
                        starts[i - 1]
                    ),
                });
            }
            starts.push(s.start.as_f64());
            rates.push(s.rate);
        }
        let mut cum = Vec::with_capacity(starts.len());
        cum.push(0.0);
        for i in 1..starts.len() {
            let area = rates[i - 1] * (starts[i] - starts[i - 1]);
            cum.push(cum[i - 1] + area);
        }
        let lo = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = rates.iter().cloned().fold(0.0f64, f64::max);
        Ok(PiecewiseConstant {
            starts,
            rates,
            cum,
            declared: (lo, hi),
            seg_hint: AtomicUsize::new(0),
            inv_hint: AtomicUsize::new(0),
        })
    }

    /// Builds a profile from consecutive `(duration, rate)` pairs starting at
    /// time 0. The final rate extends forever.
    ///
    /// ```
    /// use cloudsched_capacity::{CapacityProfile, PiecewiseConstant};
    /// use cloudsched_core::Time;
    /// // 1 unit/s for 2 s, then 4 units/s.
    /// let c = PiecewiseConstant::from_durations(&[(2.0, 1.0), (1.0, 4.0)]).unwrap();
    /// assert_eq!(c.integrate(Time::new(0.0), Time::new(3.0)), 6.0);
    /// assert_eq!(c.time_to_complete(Time::new(0.0), 6.0), Time::new(3.0));
    /// ```
    pub fn from_durations(pairs: &[(f64, f64)]) -> Result<Self, CoreError> {
        if pairs.is_empty() {
            return Err(CoreError::InvalidCapacityProfile {
                reason: "profile needs at least one (duration, rate) pair".into(),
            });
        }
        let mut t = 0.0;
        let mut segments = Vec::with_capacity(pairs.len());
        for &(dur, rate) in pairs {
            if !(dur > 0.0) || !dur.is_finite() {
                return Err(CoreError::InvalidCapacityProfile {
                    reason: format!("segment duration must be positive and finite, got {dur}"),
                });
            }
            segments.push(Segment {
                start: Time::new(t),
                rate,
            });
            t += dur;
        }
        PiecewiseConstant::new(segments)
    }

    /// Wraps a single constant rate.
    pub fn constant(rate: f64) -> Result<Self, CoreError> {
        PiecewiseConstant::new(vec![Segment {
            start: Time::ZERO,
            rate,
        }])
    }

    /// Overrides the declared class bounds `(c_lo, c_hi)`.
    ///
    /// Useful when a stochastic generator draws from a class wider than one
    /// realised trace (e.g. a CTMC trace that happens never to visit the high
    /// state still belongs to `C(1, 35)`). Schedulers read the *declared*
    /// bounds, not the realised extremes.
    ///
    /// # Errors
    /// If the declared interval does not contain every realised rate.
    pub fn with_declared_bounds(mut self, c_lo: f64, c_hi: f64) -> Result<Self, CoreError> {
        if !(c_lo > 0.0) || c_hi < c_lo {
            return Err(CoreError::InvalidCapacityProfile {
                reason: format!("invalid declared bounds ({c_lo}, {c_hi})"),
            });
        }
        let (lo, hi) = self.observed_bounds();
        if c_lo > lo + 1e-12 || c_hi < hi - 1e-12 {
            return Err(CoreError::InvalidCapacityProfile {
                reason: format!(
                    "declared bounds ({c_lo}, {c_hi}) do not contain observed rates ({lo}, {hi})"
                ),
            });
        }
        self.declared = (c_lo, c_hi);
        Ok(self)
    }

    /// Overrides the declared class bounds *without* the containment check
    /// of [`with_declared_bounds`](Self::with_declared_bounds): the realised
    /// trace is allowed to violate the declared `(c_lo, c_hi)`.
    ///
    /// This is the sanctioned seam for **fault injection**: a profile that
    /// *claims* class `C(c_lo, c_hi)` while its realised rate dips below
    /// `c_lo` models a broken capacity SLA (the scenario
    /// `cloudsched-faults` exercises and the degradation watchdog detects).
    /// Everything downstream of the declaration — conservative laxities,
    /// V-Dover's β — trusts the lie exactly as a real scheduler would.
    ///
    /// # Errors
    /// If the bounds are not an interval with `0 < c_lo ≤ c_hi`.
    pub fn with_asserted_bounds(mut self, c_lo: f64, c_hi: f64) -> Result<Self, CoreError> {
        if !(c_lo > 0.0) || !c_hi.is_finite() || c_hi < c_lo {
            return Err(CoreError::InvalidCapacityProfile {
                reason: format!("invalid asserted bounds ({c_lo}, {c_hi})"),
            });
        }
        self.declared = (c_lo, c_hi);
        Ok(self)
    }

    /// Observed `(min, max)` over realised segment rates.
    pub fn observed_bounds(&self) -> (f64, f64) {
        let lo = self.rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = self.rates.iter().cloned().fold(0.0f64, f64::max);
        (lo, hi)
    }

    /// Number of segments.
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.starts.len()
    }

    /// The segments in time order.
    pub fn segments(&self) -> impl Iterator<Item = Segment> + '_ {
        self.starts.iter().zip(&self.rates).map(|(&s, &r)| Segment {
            start: Time::new(s),
            rate: r,
        })
    }

    /// Index of the segment containing `t` (largest `i` with `starts[i] <= t`).
    ///
    /// Checks the memoized cursor (and its successor) before falling back to
    /// a binary search; every path reproduces `partition_point(|s| s <= t) - 1`
    /// exactly, so results are bit-identical with or without the memo.
    #[inline]
    fn seg_index(&self, t: f64) -> usize {
        debug_assert!(t >= 0.0, "profile queried before time 0");
        let n = self.starts.len();
        let h = self.seg_hint.load(Ordering::Relaxed).min(n - 1);
        let i = if self.starts[h] <= t {
            if h + 1 == n || self.starts[h + 1] > t {
                h
            } else if h + 2 == n || self.starts[h + 2] > t {
                h + 1
            } else {
                // partition_point returns the first index with starts[i] > t.
                self.starts.partition_point(|&s| s <= t).saturating_sub(1)
            }
        } else {
            self.starts.partition_point(|&s| s <= t).saturating_sub(1)
        };
        self.seg_hint.store(i, Ordering::Relaxed);
        i
    }

    /// Exact prefix integral `∫_0^t c(τ)dτ`.
    #[inline]
    pub fn integral_to(&self, t: Time) -> f64 {
        let tf = t.as_f64();
        let i = self.seg_index(tf);
        self.cum[i] + self.rates[i] * (tf - self.starts[i])
    }

    /// Inverse of [`integral_to`](Self::integral_to): the earliest `t` with
    /// `∫_0^t c = area`.
    pub fn inverse_integral(&self, area: f64) -> Time {
        // lint: allow(L001) — exact non-positive-area guard
        if area <= 0.0 {
            return Time::ZERO;
        }
        // Memoized cursor over `cum` (strictly increasing, since every
        // segment has positive rate and duration); same bit-exact contract
        // as `seg_index`: first index with cum[i] > area, minus one.
        let n = self.cum.len();
        let h = self.inv_hint.load(Ordering::Relaxed).min(n - 1);
        let i = if self.cum[h] <= area {
            if h + 1 == n || self.cum[h + 1] > area {
                h
            } else if h + 2 == n || self.cum[h + 2] > area {
                h + 1
            } else {
                self.cum.partition_point(|&c| c <= area).saturating_sub(1)
            }
        } else {
            self.cum.partition_point(|&c| c <= area).saturating_sub(1)
        };
        self.inv_hint.store(i, Ordering::Relaxed);
        Time::new(self.starts[i] + (area - self.cum[i]) / self.rates[i])
    }
}

impl CapacityProfile for PiecewiseConstant {
    #[inline]
    fn rate_at(&self, t: Time) -> f64 {
        self.rates[self.seg_index(t.as_f64())]
    }

    #[inline]
    fn integrate(&self, a: Time, b: Time) -> f64 {
        debug_assert!(a <= b, "integrate requires a <= b");
        self.integral_to(b) - self.integral_to(a)
    }

    fn time_to_complete(&self, from: Time, workload: f64) -> Time {
        // lint: allow(L001) — exact non-positive-workload guard
        if workload <= 0.0 {
            return from;
        }
        self.inverse_integral(self.integral_to(from) + workload)
    }

    #[inline]
    fn bounds(&self) -> (f64, f64) {
        self.declared
    }

    fn next_change_after(&self, t: Time) -> Time {
        let tf = t.as_f64();
        let i = self.starts.partition_point(|&s| s <= tf);
        if i < self.starts.len() {
            Time::new(self.starts[i])
        } else {
            Time::NEVER
        }
    }
}

/// Incremental builder used by trace generators: append `(rate, duration)`
/// runs and finish with an open-ended tail rate.
#[derive(Debug, Clone)]
pub struct PiecewiseConstantBuilder {
    t: f64,
    segments: Vec<Segment>,
}

impl PiecewiseConstantBuilder {
    /// Starts an empty builder at time 0.
    pub fn new() -> Self {
        PiecewiseConstantBuilder {
            t: 0.0,
            segments: Vec::new(),
        }
    }

    /// Appends a run of `rate` lasting `duration`.
    pub fn push_run(&mut self, rate: f64, duration: f64) -> &mut Self {
        // Coalesce equal-rate neighbours to keep profiles small.
        if let Some(last) = self.segments.last() {
            // lint: allow(L001) — coalesce only bit-identical rates
            if last.rate == rate {
                self.t += duration;
                return self;
            }
        }
        self.segments.push(Segment {
            start: Time::new(self.t),
            rate,
        });
        self.t += duration;
        self
    }

    /// Current end time of the accumulated runs.
    pub fn elapsed(&self) -> f64 {
        self.t
    }

    /// Finishes the profile; `tail_rate` extends from the last run to `+∞`.
    pub fn finish(mut self, tail_rate: f64) -> Result<PiecewiseConstant, CoreError> {
        let need_tail = match self.segments.last() {
            Some(last) => last.rate != tail_rate, // lint: allow(L001) — tail only skipped for bit-identical rates
            None => true,
        };
        if need_tail {
            self.segments.push(Segment {
                start: Time::new(self.t),
                rate: tail_rate,
            });
        }
        PiecewiseConstant::new(self.segments)
    }
}

impl Default for PiecewiseConstantBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_core::approx_eq;

    fn t(x: f64) -> Time {
        Time::new(x)
    }

    /// rate 2 on [0,1), rate 1 on [1,3), rate 4 on [3,∞)
    fn profile() -> PiecewiseConstant {
        PiecewiseConstant::from_durations(&[(1.0, 2.0), (2.0, 1.0), (1.0, 4.0)]).unwrap()
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        assert!(PiecewiseConstant::new(vec![]).is_err());
        assert!(PiecewiseConstant::new(vec![Segment {
            start: t(1.0),
            rate: 1.0
        }])
        .is_err());
        assert!(PiecewiseConstant::new(vec![
            Segment {
                start: t(0.0),
                rate: 1.0
            },
            Segment {
                start: t(0.0),
                rate: 2.0
            }
        ])
        .is_err());
        assert!(PiecewiseConstant::new(vec![Segment {
            start: t(0.0),
            rate: 0.0
        }])
        .is_err());
        assert!(PiecewiseConstant::from_durations(&[(0.0, 1.0)]).is_err());
        assert!(PiecewiseConstant::from_durations(&[]).is_err());
    }

    #[test]
    fn rate_lookup_is_right_continuous() {
        let p = profile();
        assert_eq!(p.rate_at(t(0.0)), 2.0);
        assert_eq!(p.rate_at(t(0.999)), 2.0);
        assert_eq!(p.rate_at(t(1.0)), 1.0);
        assert_eq!(p.rate_at(t(3.0)), 4.0);
        assert_eq!(p.rate_at(t(1000.0)), 4.0);
    }

    #[test]
    fn prefix_integral_and_integrate() {
        let p = profile();
        assert_eq!(p.integral_to(t(0.0)), 0.0);
        assert_eq!(p.integral_to(t(1.0)), 2.0);
        assert_eq!(p.integral_to(t(3.0)), 4.0);
        assert_eq!(p.integral_to(t(5.0)), 12.0);
        assert_eq!(p.integrate(t(0.5), t(2.0)), 1.0 + 1.0);
        assert_eq!(p.integrate(t(2.0), t(4.0)), 1.0 + 4.0);
        assert_eq!(p.integrate(t(2.0), t(2.0)), 0.0);
    }

    #[test]
    fn inverse_integral_round_trips() {
        let p = profile();
        for &x in &[0.0, 0.3, 1.0, 1.7, 2.999, 3.0, 7.25, 100.0] {
            let area = p.integral_to(t(x));
            let back = p.inverse_integral(area);
            assert!(
                approx_eq(back.as_f64(), x),
                "round trip failed at {x}: got {back}"
            );
        }
        assert_eq!(p.inverse_integral(-1.0), Time::ZERO);
    }

    #[test]
    fn time_to_complete_crosses_breakpoints() {
        let p = profile();
        // From t=0.5: 1 unit in [0.5,1) at rate 2, then 2 more on [1,3) at
        // rate 1 => workload 3 completes exactly at t=3.
        assert!(p.time_to_complete(t(0.5), 3.0).approx_eq(t(3.0)));
        // Another 2 units at rate 4 => 0.5s more.
        assert!(p.time_to_complete(t(0.5), 5.0).approx_eq(t(3.5)));
        assert_eq!(p.time_to_complete(t(2.0), 0.0), t(2.0));
    }

    #[test]
    fn next_change_after_walks_breakpoints() {
        let p = profile();
        assert_eq!(p.next_change_after(t(0.0)), t(1.0));
        assert_eq!(p.next_change_after(t(1.0)), t(3.0));
        assert_eq!(p.next_change_after(t(2.5)), t(3.0));
        assert_eq!(p.next_change_after(t(3.0)), Time::NEVER);
    }

    #[test]
    fn bounds_observed_and_declared() {
        let p = profile();
        assert_eq!(p.bounds(), (1.0, 4.0));
        assert_eq!(p.delta(), 4.0);
        let p2 = p.clone().with_declared_bounds(0.5, 10.0).unwrap();
        assert_eq!(p2.bounds(), (0.5, 10.0));
        assert_eq!(p2.observed_bounds(), (1.0, 4.0));
        // Declared bounds must contain observed rates.
        assert!(p.clone().with_declared_bounds(2.0, 10.0).is_err());
        assert!(p.clone().with_declared_bounds(0.5, 3.0).is_err());
        assert!(p.with_declared_bounds(-1.0, 3.0).is_err());
    }

    #[test]
    fn asserted_bounds_may_violate_observed_rates() {
        // Observed rates are (1, 4); an SLA claiming C(2, 10) is a lie the
        // fault-injection seam must be able to state.
        let p = profile().with_asserted_bounds(2.0, 10.0).unwrap();
        assert_eq!(p.bounds(), (2.0, 10.0));
        assert_eq!(p.observed_bounds(), (1.0, 4.0));
        assert!(profile().with_asserted_bounds(0.0, 1.0).is_err());
        assert!(profile().with_asserted_bounds(2.0, 1.0).is_err());
        assert!(profile().with_asserted_bounds(1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn constant_helper() {
        let p = PiecewiseConstant::constant(3.0).unwrap();
        assert_eq!(p.segment_count(), 1);
        assert_eq!(p.integrate(t(1.0), t(4.0)), 9.0);
        assert_eq!(p.next_change_after(t(0.0)), Time::NEVER);
    }

    #[test]
    fn builder_coalesces_and_finishes() {
        let mut b = PiecewiseConstantBuilder::new();
        b.push_run(1.0, 2.0).push_run(1.0, 3.0).push_run(5.0, 1.0);
        assert_eq!(b.elapsed(), 6.0);
        let p = b.finish(1.0).unwrap();
        // Segments: rate 1 on [0,5), 5 on [5,6), 1 on [6,∞).
        assert_eq!(p.segment_count(), 3);
        assert_eq!(p.rate_at(t(4.9)), 1.0);
        assert_eq!(p.rate_at(t(5.5)), 5.0);
        assert_eq!(p.rate_at(t(6.5)), 1.0);
        // Tail equal to last run's rate adds no segment.
        let mut b = PiecewiseConstantBuilder::new();
        b.push_run(2.0, 1.0);
        let p = b.finish(2.0).unwrap();
        assert_eq!(p.segment_count(), 1);
        // Empty builder still yields a valid constant profile.
        let p = PiecewiseConstantBuilder::new().finish(3.0).unwrap();
        assert_eq!(p.rate_at(t(0.0)), 3.0);
    }

    #[test]
    fn segments_iterator_round_trips() {
        let p = profile();
        let segs: Vec<Segment> = p.segments().collect();
        let q = PiecewiseConstant::new(segs).unwrap();
        assert_eq!(p, q);
    }

    /// The memoized cursor must never change an answer: random
    /// back-and-forth queries (worst case for a stale hint) agree with a
    /// plain binary search over the same segment table.
    #[test]
    fn memoized_cursor_matches_binary_search() {
        let pairs: Vec<(f64, f64)> = (0..257)
            .map(|i| (0.25 + (i % 7) as f64 * 0.125, 1.0 + (i % 5) as f64))
            .collect();
        let p = PiecewiseConstant::from_durations(&pairs).unwrap();
        let segs: Vec<Segment> = p.segments().collect();
        let starts: Vec<f64> = segs.iter().map(|s| s.start.as_f64()).collect();
        let mut cum = vec![0.0];
        for i in 1..starts.len() {
            cum.push(cum[i - 1] + segs[i - 1].rate * (starts[i] - starts[i - 1]));
        }
        let span = starts.last().unwrap() + 5.0;
        let total = p.integral_to(t(span));
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut rng = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..2000 {
            let q = rng() * span;
            let i = starts.partition_point(|&s| s <= q).saturating_sub(1);
            assert_eq!(p.rate_at(t(q)), segs[i].rate, "rate diverged at {q}");
            let expect = cum[i] + segs[i].rate * (q - starts[i]);
            assert_eq!(p.integral_to(t(q)), expect, "integral diverged at {q}");
            let a = rng() * total;
            let j = cum.partition_point(|&c| c <= a).saturating_sub(1);
            let expect = starts[j] + (a - cum[j]) / segs[j].rate;
            assert_eq!(
                p.inverse_integral(a),
                Time::new(expect),
                "inverse diverged at area {a}"
            );
        }
    }

    #[test]
    fn many_segments_binary_search() {
        // 10_000 alternating segments; check integral consistency.
        let pairs: Vec<(f64, f64)> = (0..10_000)
            .map(|i| (0.5, if i % 2 == 0 { 1.0 } else { 3.0 }))
            .collect();
        let p = PiecewiseConstant::from_durations(&pairs).unwrap();
        // Average rate 2 over a whole period of 1.0.
        assert!(approx_eq(p.integrate(t(0.0), t(5000.0)), 10000.0));
        let s = p.time_to_complete(t(0.0), 10000.0);
        assert!(s.approx_eq(t(5000.0)));
    }
}
