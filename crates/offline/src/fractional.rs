//! The fractional (LP) relaxation of the offline problem — a *tight* upper
//! bound on the optimal integral value.
//!
//! Relaxation: each job may be served fractionally, earning `v_i · x_i` for
//! executing `x_i · p_i` of its workload inside `[r_i, d_i]`, subject to the
//! capacity constraints. Under preemption the feasible service vectors form
//! a **polymatroid**, so the LP optimum is reached by the density-greedy
//! rule: process jobs in descending value density and give each the maximum
//! additional service *achievable by rearranging* earlier allocations
//! (amounts of earlier jobs stay fixed; which time cells serve them may
//! change). The rearranging step is a max-flow augmentation on the bipartite
//! job/cell transportation network.
//!
//! The result dominates [`crate::exact::optimal_value`] and runs in
//! polynomial time, so harnesses use it to normalise online values on
//! instances too large for branch-and-bound.

use cloudsched_capacity::CapacityProfile;
use cloudsched_core::{JobSet, Time};
use std::collections::VecDeque;

const EPS: f64 = 1e-9;

/// Maximum value of the fractional relaxation, and the per-job served
/// fractions (indexed by job id).
pub fn fractional_optimal<P: CapacityProfile>(jobs: &JobSet, capacity: &P) -> (f64, Vec<f64>) {
    let n = jobs.len();
    if n == 0 {
        return (0.0, Vec::new());
    }
    // Elementary cells: the partition induced by all releases and deadlines.
    let mut cuts: Vec<f64> = Vec::with_capacity(2 * n);
    for j in jobs.iter() {
        cuts.push(j.release.as_f64());
        cuts.push(j.deadline.as_f64());
    }
    cuts.sort_by(f64::total_cmp);
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let cells: Vec<(f64, f64)> = cuts.windows(2).map(|w| (w[0], w[1])).collect();
    let m = cells.len();
    let mut residual: Vec<f64> = cells
        .iter()
        .map(|&(a, b)| capacity.integrate(Time::new(a), Time::new(b)))
        .collect();

    // Cells overlapping each job's window.
    let window_cells: Vec<Vec<usize>> = jobs
        .iter()
        .map(|j| {
            let (r, d) = (j.release.as_f64(), j.deadline.as_f64());
            cells
                .iter()
                .enumerate()
                .filter(|(_, &(a, b))| b > r + 1e-15 && a < d - 1e-15)
                .map(|(c, _)| c)
                .collect()
        })
        .collect();

    // alloc[i][c]: workload of job i served in cell c (sparse would also do;
    // n and m are both O(jobs), so dense is simplest).
    let mut alloc = vec![vec![0.0f64; m]; n];

    // Density-greedy order.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        let s = jobs.as_slice();
        s[b].value_density()
            .total_cmp(&s[a].value_density())
            .then(s[a].id.cmp(&s[b].id))
    });

    let mut served = vec![0.0f64; n];
    for &i in &order {
        let mut need = jobs.as_slice()[i].workload;
        while need > EPS {
            // BFS over the residual transportation network starting from the
            // cells of job i's window, alternating cell -> job (positive
            // allocation) -> cell (job's window).
            let Some((target, parent_job, parent_cell)) =
                bfs_augmenting(i, &window_cells, &alloc, &residual)
            else {
                break;
            };
            // Reconstruct path target-cell <- job <- cell <- ... <- job i and
            // find the bottleneck.
            let mut path: Vec<(usize, usize)> = Vec::new(); // (job, cell) hops
            let mut c = target;
            loop {
                let j = parent_job[c].expect("invariant: BFS reached this cell via some job");
                path.push((j, c));
                if j == i {
                    break;
                }
                c = parent_cell[j]
                    .expect("invariant: every non-source job on the path was reached via a cell");
            }
            // path is [(j_k, target), ..., (i, c1)] — bottleneck over the
            // "decrease alloc[j][parent_cell[j]]" edges plus residual+need.
            let mut bottleneck = need.min(residual[target]);
            for &(j, _) in &path {
                if j != i {
                    let pc =
                        parent_cell[j].expect("invariant: non-source path jobs have a parent cell");
                    bottleneck = bottleneck.min(alloc[j][pc]);
                }
            }
            if bottleneck <= EPS {
                break;
            }
            // Apply: along the path, job j moves `bottleneck` units from its
            // parent cell into the cell it reaches; job i absorbs from c1.
            residual[target] -= bottleneck;
            for &(j, c_to) in &path {
                alloc[j][c_to] += bottleneck;
                if j != i {
                    let pc =
                        parent_cell[j].expect("invariant: non-source path jobs have a parent cell");
                    alloc[j][pc] -= bottleneck;
                }
            }
            need -= bottleneck;
        }
        served[i] = jobs.as_slice()[i].workload - need;
    }

    let fractions: Vec<f64> = jobs
        .iter()
        .map(|j| (served[j.id.index()] / j.workload).clamp(0.0, 1.0))
        .collect();
    let total = jobs.iter().map(|j| j.value * fractions[j.id.index()]).sum();
    (total, fractions)
}

/// BFS for an augmenting path from job `i` to any cell with residual
/// capacity. Returns `(target_cell, parent_job, parent_cell)` where
/// `parent_job[c]` is the job that reached cell `c` and `parent_cell[j]` is
/// the cell through which job `j` was reached.
fn bfs_augmenting(
    i: usize,
    window_cells: &[Vec<usize>],
    alloc: &[Vec<f64>],
    residual: &[f64],
) -> Option<(usize, Vec<Option<usize>>, Vec<Option<usize>>)> {
    let n = alloc.len();
    let m = residual.len();
    let mut parent_job: Vec<Option<usize>> = vec![None; m];
    let mut parent_cell: Vec<Option<usize>> = vec![None; n];
    let mut seen_job = vec![false; n];
    let mut queue: VecDeque<usize> = VecDeque::new(); // job indices
    seen_job[i] = true;
    queue.push_back(i);
    while let Some(j) = queue.pop_front() {
        for &c in &window_cells[j] {
            if parent_job[c].is_some() {
                continue;
            }
            parent_job[c] = Some(j);
            if residual[c] > EPS {
                return Some((c, parent_job, parent_cell));
            }
            // Continue through jobs currently allocated in this cell.
            for (j2, a) in alloc.iter().enumerate() {
                if !seen_job[j2] && a[c] > EPS {
                    seen_job[j2] = true;
                    parent_cell[j2] = Some(c);
                    queue.push_back(j2);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::optimal_value;
    use cloudsched_capacity::{Constant, PiecewiseConstant};

    #[test]
    fn empty_set() {
        let jobs = JobSet::new(vec![]).unwrap();
        let (v, f) = fractional_optimal(&jobs, &Constant::unit());
        assert_eq!(v, 0.0);
        assert!(f.is_empty());
    }

    #[test]
    fn feasible_set_fully_served() {
        let jobs = JobSet::from_tuples(&[(0.0, 4.0, 2.0, 3.0), (1.0, 6.0, 2.0, 5.0)]).unwrap();
        let (v, f) = fractional_optimal(&jobs, &Constant::unit());
        assert!((v - 8.0).abs() < 1e-9);
        assert!(f.iter().all(|&x| (x - 1.0).abs() < 1e-9));
    }

    #[test]
    fn overload_prefers_denser_job() {
        let jobs = JobSet::from_tuples(&[
            (0.0, 2.0, 2.0, 8.0), // density 4
            (0.0, 2.0, 2.0, 2.0), // density 1
        ])
        .unwrap();
        let (v, f) = fractional_optimal(&jobs, &Constant::unit());
        assert!((v - 8.0).abs() < 1e-9);
        assert!((f[0] - 1.0).abs() < 1e-9);
        assert!(f[1].abs() < 1e-9);
    }

    #[test]
    fn partial_service_counts_fractionally() {
        let jobs = JobSet::from_tuples(&[(0.0, 1.0, 2.0, 10.0)]).unwrap();
        let (v, f) = fractional_optimal(&jobs, &Constant::unit());
        assert!((v - 5.0).abs() < 1e-9);
        assert!((f[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reallocation_rescues_disjoint_window_job() {
        // Dense job B could sit anywhere in [0,2]; sparse job A only in
        // [0,1]. The augmenting step must move B out of A's way: both fit.
        let jobs = JobSet::from_tuples(&[
            (0.0, 1.0, 1.0, 2.0), // A: density 2
            (0.0, 2.0, 1.0, 3.0), // B: density 3, allocated first
        ])
        .unwrap();
        let (v, f) = fractional_optimal(&jobs, &Constant::unit());
        assert!((v - 5.0).abs() < 1e-9, "got {v}, rearrangement failed");
        assert!(f.iter().all(|&x| (x - 1.0).abs() < 1e-9));
    }

    #[test]
    fn chain_reallocation() {
        // Three nested windows forcing a two-hop augmenting path.
        let jobs = JobSet::from_tuples(&[
            (0.0, 1.0, 1.0, 1.0), // [0,1] only, density 1 (allocated last)
            (0.0, 2.0, 1.0, 2.0), // [0,2], density 2
            (0.0, 3.0, 1.0, 3.0), // [0,3], density 3 (allocated first)
        ])
        .unwrap();
        let (v, f) = fractional_optimal(&jobs, &Constant::unit());
        assert!((v - 6.0).abs() < 1e-9, "got {v}");
        assert!(f.iter().all(|&x| (x - 1.0).abs() < 1e-9));
    }

    #[test]
    fn dominates_integral_optimum() {
        for seed in 0..30u64 {
            let f = |x: u64| {
                ((seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(x.wrapping_mul(1442695040888963407)))
                    % 1000) as f64
                    / 1000.0
            };
            let tuples: Vec<(f64, f64, f64, f64)> = (0..9)
                .map(|i| {
                    let r = 5.0 * f(i * 4);
                    let p = 0.2 + 2.0 * f(i * 4 + 1);
                    let d = r + p * (0.4 + 2.0 * f(i * 4 + 2));
                    let v = 0.5 + 6.0 * f(i * 4 + 3);
                    (r, d, p, v)
                })
                .collect();
            let jobs = JobSet::from_tuples(&tuples).unwrap();
            let cap = PiecewiseConstant::from_durations(&[(2.0, 1.0), (2.0, 3.0)]).unwrap();
            let (frac, _) = fractional_optimal(&jobs, &cap);
            let (exact, _) = optimal_value(&jobs, &cap);
            assert!(
                frac + 1e-6 >= exact,
                "seed {seed}: fractional {frac} < integral {exact}"
            );
        }
    }

    #[test]
    fn respects_windows_strictly() {
        let jobs = JobSet::from_tuples(&[(5.0, 6.0, 3.0, 3.0)]).unwrap();
        let (v, f) = fractional_optimal(&jobs, &Constant::unit());
        assert!((f[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn varying_capacity_cells() {
        let jobs = JobSet::from_tuples(&[(0.0, 2.0, 5.0, 10.0), (1.0, 3.0, 4.0, 4.0)]).unwrap();
        let cap = PiecewiseConstant::from_durations(&[(1.0, 1.0), (2.0, 4.0)]).unwrap();
        let (v, f) = fractional_optimal(&jobs, &cap);
        assert!((v - 14.0).abs() < 1e-9);
        assert!(f.iter().all(|&x| (x - 1.0).abs() < 1e-9));
    }
}
