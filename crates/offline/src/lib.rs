//! # cloudsched-offline
//!
//! Offline (clairvoyant) scheduling under time-varying capacity:
//!
//! * [`feasibility`] — the EDF feasibility test: a job set is preemptively
//!   schedulable on one processor iff EDF schedules it, a fact that carries
//!   over to varying capacity via the paper's §III-A stretch transformation;
//! * [`exact`] — the exact optimal offline value by branch-and-bound over
//!   feasible subsets (the problem is NP-hard [Dertouzos & Mok], so this is
//!   exponential worst-case; fine for the instance sizes where exact
//!   competitive ratios are measured);
//! * [`fractional`] — the LP relaxation solved exactly (density-greedy on
//!   the service polymatroid with max-flow reallocation): a tight,
//!   polynomial-time upper bound used to normalise large experiments;
//! * [`greedy`] — polynomial add-if-feasible approximations (by value and by
//!   value density);
//! * [`bounds`] — cheap upper bounds on the optimal value;
//! * [`reduction`] — the §III-A pipeline made executable: solve the
//!   transformed constant-capacity problem and map the answer back.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod exact;
pub mod feasibility;
pub mod fractional;
pub mod greedy;
pub mod reduction;

pub use exact::optimal_value;
pub use feasibility::edf_feasible;
pub use fractional::fractional_optimal;
pub use greedy::{greedy_by_density, greedy_by_value};
