//! EDF feasibility testing under time-varying capacity.
//!
//! Classical fact (Dertouzos): on a single preemptive processor, a job set
//! is schedulable iff EDF schedules it. The stretch transformation (§III-A)
//! maps the varying-capacity problem to the constant one bijectively, so the
//! same holds here — simulate EDF with exact capacity integration and check
//! for misses.

use cloudsched_capacity::CapacityProfile;
use cloudsched_core::{approx_le, approx_zero, Job, Time};
use std::collections::BTreeSet;

/// Returns `true` iff the given jobs can all be completed by their deadlines
/// on `capacity` (preemptive, single processor), by simulating EDF.
///
/// Runs in `O(n log n)` events with `O(log m)` capacity queries each
/// (`m` = number of capacity segments).
pub fn edf_feasible<P: CapacityProfile>(jobs: &[Job], capacity: &P) -> bool {
    if jobs.is_empty() {
        return true;
    }
    // Releases sorted ascending; `next` walks them.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by(|&a, &b| {
        jobs[a]
            .release
            .cmp(&jobs[b].release)
            .then(jobs[a].deadline.cmp(&jobs[b].deadline))
    });
    let mut remaining: Vec<f64> = jobs.iter().map(|j| j.workload).collect();
    // Ready set keyed by (deadline, index).
    let mut ready: BTreeSet<(Time, usize)> = BTreeSet::new();
    let mut next = 0usize;
    let mut t = jobs[order[0]].release;

    loop {
        // Admit everything released by `t`.
        while next < order.len() && jobs[order[next]].release <= t {
            let i = order[next];
            ready.insert((jobs[i].deadline, i));
            next += 1;
        }
        let Some(&(d, i)) = ready.first() else {
            // Idle: jump to the next release, or done.
            match order.get(next) {
                Some(&i) => {
                    t = jobs[i].release;
                    continue;
                }
                None => return true,
            }
        };
        let completion = capacity.time_to_complete(t, remaining[i]);
        let next_release = order
            .get(next)
            .map(|&i| jobs[i].release)
            .unwrap_or(Time::NEVER);
        if completion <= next_release {
            // Runs to completion before anything else arrives.
            if !approx_le(completion.as_f64(), d.as_f64()) {
                return false; // EDF misses => set infeasible
            }
            ready.pop_first();
            remaining[i] = 0.0;
            t = completion;
        } else {
            // Preempted (or joined) by the next arrival.
            let done = capacity.integrate(t, next_release);
            remaining[i] = (remaining[i] - done).max(0.0);
            t = next_release;
            if approx_zero(remaining[i]) {
                // Finished within rounding right at the boundary.
                if !approx_le(t.as_f64(), d.as_f64()) {
                    return false;
                }
                ready.pop_first();
            } else if d < t {
                // Its deadline passed while it still had work: missed.
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_capacity::{Constant, PiecewiseConstant};
    use cloudsched_core::{JobId, JobSet};

    fn jobs(tuples: &[(f64, f64, f64)]) -> Vec<Job> {
        // (r, d, p); value irrelevant for feasibility.
        tuples
            .iter()
            .enumerate()
            .map(|(i, &(r, d, p))| {
                Job::new(JobId(i as u64), Time::new(r), Time::new(d), p, 1.0).unwrap()
            })
            .collect()
    }

    #[test]
    fn empty_set_is_feasible() {
        assert!(edf_feasible(&[], &Constant::unit()));
    }

    #[test]
    fn single_job_boundary() {
        assert!(edf_feasible(&jobs(&[(0.0, 2.0, 2.0)]), &Constant::unit()));
        assert!(!edf_feasible(&jobs(&[(0.0, 2.0, 2.1)]), &Constant::unit()));
    }

    #[test]
    fn classic_two_job_interleaving() {
        // J0: [0,4] p=2; J1: [1,2] p=1 — EDF: run J0 [0,1), J1 [1,2), J0 [2,3].
        assert!(edf_feasible(
            &jobs(&[(0.0, 4.0, 2.0), (1.0, 2.0, 1.0)]),
            &Constant::unit()
        ));
        // Tighten J0's deadline to 2.9: still needs 3 time units total by 2.9.
        assert!(!edf_feasible(
            &jobs(&[(0.0, 2.9, 2.0), (1.0, 2.0, 1.0)]),
            &Constant::unit()
        ));
    }

    #[test]
    fn varying_capacity_enables_feasibility() {
        // Workload 6 due at t=2: impossible at rate 1, fine at rate 4 later.
        let j = jobs(&[(0.0, 2.0, 6.0)]);
        assert!(!edf_feasible(&j, &Constant::unit()));
        let cap = PiecewiseConstant::from_durations(&[(1.0, 2.0), (1.0, 4.0)]).unwrap();
        assert!(edf_feasible(&j, &cap));
    }

    #[test]
    fn queued_job_expiring_is_detected() {
        // J0 earliest deadline hogs the processor; J1's deadline passes while
        // queued.
        let j = jobs(&[(0.0, 3.5, 3.0), (1.0, 2.0, 0.5)]);
        // EDF runs J1 at t=1 (earlier deadline): J0 [0,1)∪[1.5,3.5] — feasible.
        assert!(edf_feasible(&j, &Constant::unit()));
        // Flip deadlines so J0 keeps the processor and J1 expires queued.
        let j = jobs(&[(0.0, 2.5, 2.5), (1.0, 3.6, 1.5)]);
        // EDF: J0 [0,2.5], J1 [2.5, 4.0] but d=3.6 < 4.0: infeasible.
        assert!(!edf_feasible(&j, &Constant::unit()));
    }

    #[test]
    fn idle_gaps_are_skipped() {
        let j = jobs(&[(0.0, 1.0, 1.0), (5.0, 6.0, 1.0)]);
        assert!(edf_feasible(&j, &Constant::unit()));
    }

    #[test]
    fn simultaneous_releases() {
        let j = jobs(&[(0.0, 3.0, 1.0), (0.0, 2.0, 1.0), (0.0, 1.0, 1.0)]);
        assert!(edf_feasible(&j, &Constant::unit()));
        let j = jobs(&[(0.0, 3.0, 1.5), (0.0, 2.0, 1.0), (0.0, 1.0, 1.0)]);
        assert!(!edf_feasible(&j, &Constant::unit()));
    }

    #[test]
    fn agrees_with_fluid_necessity() {
        // Any feasible set satisfies the fluid bound on every window; spot
        // check one violating instance.
        let j = jobs(&[(0.0, 1.0, 0.7), (0.0, 1.0, 0.7)]);
        assert!(!edf_feasible(&j, &Constant::unit()));
    }

    #[test]
    fn matches_jobset_usage() {
        let set = JobSet::from_tuples(&[(0.0, 4.0, 2.0, 1.0), (1.0, 2.0, 1.0, 1.0)]).unwrap();
        assert!(edf_feasible(set.as_slice(), &Constant::unit()));
    }
}
