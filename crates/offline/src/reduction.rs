//! The §III-A reduction pipeline, executable.
//!
//! `reduce` stretches an instance to constant capacity; `solve_via_stretch`
//! solves the transformed problem with any constant-capacity solver and the
//! answer (value and chosen subset) is *exactly* the answer of the original
//! problem, because the transformation is a value-preserving bijection
//! between schedules.

use crate::exact::optimal_value;
use cloudsched_capacity::{Constant, Instance, StretchMap};
use cloudsched_core::{CoreError, JobId, JobSet};

/// A varying-capacity instance reduced to constant capacity.
#[derive(Debug, Clone)]
pub struct Reduced {
    /// The stretched jobs (`r' = T(r)`, `d' = T(d)`, workload/value kept).
    pub jobs: JobSet,
    /// The constant transformed capacity `c' = c_ref`.
    pub capacity: Constant,
    /// The transformation, kept for mapping schedules back.
    pub map: StretchMap,
}

/// Applies the stretch transformation to a whole instance.
pub fn reduce(instance: &Instance) -> Result<Reduced, CoreError> {
    let map = StretchMap::new(instance.capacity.clone());
    let jobs = map.stretch_jobs(&instance.jobs)?;
    let capacity = map.transformed_profile();
    Ok(Reduced {
        jobs,
        capacity,
        map,
    })
}

/// Solves the original problem optimally *via* the constant-capacity
/// transformed problem. Returns `(optimal value, chosen job ids)`.
pub fn solve_via_stretch(instance: &Instance) -> Result<(f64, Vec<JobId>), CoreError> {
    let reduced = reduce(instance)?;
    Ok(optimal_value(&reduced.jobs, &reduced.capacity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_capacity::PiecewiseConstant;

    fn varying_instance() -> Instance {
        let jobs = JobSet::from_tuples(&[
            (0.0, 2.0, 4.0, 5.0), // only fits thanks to the high segment
            (0.0, 2.0, 2.0, 3.0),
            (2.0, 5.0, 3.0, 4.0),
        ])
        .unwrap();
        let cap = PiecewiseConstant::from_durations(&[(1.0, 1.0), (2.0, 4.0), (1.0, 2.0)]).unwrap();
        Instance::new(jobs, cap)
    }

    #[test]
    fn reduction_yields_constant_capacity() {
        let r = reduce(&varying_instance()).unwrap();
        assert_eq!(r.capacity.rate(), 1.0); // c_ref = c_lo = 1
        assert_eq!(r.jobs.len(), 3);
        // Workloads and values unchanged.
        assert_eq!(r.jobs.total_workload(), 9.0);
        assert_eq!(r.jobs.total_value(), 12.0);
    }

    #[test]
    fn stretch_solution_matches_direct_solution() {
        // The theorem: optimal values agree exactly.
        let inst = varying_instance();
        let (direct, mut direct_ids) = optimal_value(&inst.jobs, &inst.capacity);
        let (via, mut via_ids) = solve_via_stretch(&inst).unwrap();
        assert!(
            (direct - via).abs() < 1e-9,
            "direct {direct} vs via-stretch {via}"
        );
        direct_ids.sort();
        via_ids.sort();
        assert_eq!(direct_ids, via_ids);
    }

    #[test]
    fn agreement_on_many_random_instances() {
        // Deterministic pseudo-random sweep (no RNG dependency here).
        for seed in 0..20u64 {
            let f = |x: u64| ((seed * 2654435761 + x * 40503) % 1000) as f64 / 1000.0;
            let tuples: Vec<(f64, f64, f64, f64)> = (0..8)
                .map(|i| {
                    let r = 4.0 * f(i * 4);
                    let p = 0.2 + 2.0 * f(i * 4 + 1);
                    let d = r + p * (0.5 + 2.0 * f(i * 4 + 2));
                    let v = 0.5 + 5.0 * f(i * 4 + 3);
                    (r, d, p, v)
                })
                .collect();
            let jobs = JobSet::from_tuples(&tuples).unwrap();
            let cap = PiecewiseConstant::from_durations(&[
                (1.0 + 2.0 * f(100), 1.0 + 3.0 * f(101)),
                (1.0 + 2.0 * f(102), 1.0 + 3.0 * f(103)),
                (1.0, 1.0 + 3.0 * f(104)),
            ])
            .unwrap();
            let inst = Instance::new(jobs, cap);
            let (direct, _) = optimal_value(&inst.jobs, &inst.capacity);
            let (via, _) = solve_via_stretch(&inst).unwrap();
            assert!(
                (direct - via).abs() < 1e-6,
                "seed {seed}: direct {direct} vs via {via}"
            );
        }
    }
}
