//! Polynomial offline approximations: add-if-feasible greedy.

use crate::feasibility::edf_feasible;
use cloudsched_capacity::CapacityProfile;
use cloudsched_core::{Job, JobId, JobSet};

fn greedy_by<P, K>(jobs: &JobSet, capacity: &P, key: K) -> (f64, Vec<JobId>)
where
    P: CapacityProfile,
    K: Fn(&Job) -> f64,
{
    let mut order: Vec<&Job> = jobs.iter().collect();
    order.sort_by(|a, b| key(b).total_cmp(&key(a)).then(a.id.cmp(&b.id)));
    let mut chosen: Vec<Job> = Vec::new();
    let mut value = 0.0;
    for job in order {
        chosen.push(job.clone());
        if edf_feasible(&chosen, capacity) {
            value += job.value;
        } else {
            chosen.pop();
        }
    }
    let mut ids: Vec<JobId> = chosen.iter().map(|j| j.id).collect();
    ids.sort();
    (value, ids)
}

/// Greedy by descending value: admit each job if the accepted set stays
/// feasible.
pub fn greedy_by_value<P: CapacityProfile>(jobs: &JobSet, capacity: &P) -> (f64, Vec<JobId>) {
    greedy_by(jobs, capacity, |j| j.value)
}

/// Greedy by descending value density (Definition 3).
pub fn greedy_by_density<P: CapacityProfile>(jobs: &JobSet, capacity: &P) -> (f64, Vec<JobId>) {
    greedy_by(jobs, capacity, Job::value_density)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_capacity::Constant;

    #[test]
    fn takes_everything_when_feasible() {
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 1.0, 1.0), (0.0, 10.0, 1.0, 2.0)]).unwrap();
        let (v, ids) = greedy_by_value(&jobs, &Constant::unit());
        assert_eq!(v, 3.0);
        assert_eq!(ids, vec![JobId(0), JobId(1)]);
    }

    #[test]
    fn value_greedy_picks_the_big_one() {
        let jobs = JobSet::from_tuples(&[(0.0, 2.0, 2.0, 5.0), (0.0, 2.0, 2.0, 7.0)]).unwrap();
        let (v, ids) = greedy_by_value(&jobs, &Constant::unit());
        assert_eq!(v, 7.0);
        assert_eq!(ids, vec![JobId(1)]);
    }

    #[test]
    fn density_greedy_differs_from_value_greedy() {
        // Big value, terrible density vs small value, great density.
        let jobs = JobSet::from_tuples(&[
            (0.0, 4.0, 4.0, 6.0), // density 1.5
            (0.0, 4.0, 1.0, 4.0), // density 4
            (0.0, 4.0, 1.0, 4.0), // density 4
            (0.0, 4.0, 1.0, 4.0), // density 4
        ])
        .unwrap();
        let cap = Constant::unit();
        let (v_val, _) = greedy_by_value(&jobs, &cap);
        let (v_den, ids) = greedy_by_density(&jobs, &cap);
        // Value greedy admits job 0 first (6), then fits the three 1-unit
        // jobs? 4 + 3 > capacity 4 on [0,4] — only job 0 plus nothing... it
        // admits 6 then each 4-unit job fails feasibility => 6... wait the
        // three small jobs are 1 unit each: 4+1 > 4 infeasible, so 6 total.
        assert_eq!(v_val, 6.0);
        // Density greedy takes the three small jobs (12), job 0 then fails.
        assert_eq!(v_den, 12.0);
        assert_eq!(ids, vec![JobId(1), JobId(2), JobId(3)]);
    }

    #[test]
    fn greedy_is_suboptimal_in_general() {
        // Value greedy locks in a job that blocks a better pair.
        let jobs = JobSet::from_tuples(&[
            (0.0, 2.0, 2.0, 10.0),
            (0.0, 1.0, 1.0, 6.0),
            (1.0, 2.0, 1.0, 6.0),
        ])
        .unwrap();
        let cap = Constant::unit();
        let (v, _) = greedy_by_value(&jobs, &cap);
        assert_eq!(v, 10.0);
        let (opt, _) = crate::exact::optimal_value(&jobs, &cap);
        assert_eq!(opt, 12.0);
    }

    #[test]
    fn empty_input() {
        let jobs = JobSet::new(vec![]).unwrap();
        let (v, ids) = greedy_by_density(&jobs, &Constant::unit());
        assert_eq!(v, 0.0);
        assert!(ids.is_empty());
    }
}
