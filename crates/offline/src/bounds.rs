//! Cheap upper bounds on the optimal offline value.

use cloudsched_capacity::CapacityProfile;
use cloudsched_core::{JobSet, Time};

/// The trivial bound: the sum of all values.
pub fn total_value_bound(jobs: &JobSet) -> f64 {
    jobs.total_value()
}

/// The fluid bound: no schedule can extract more value than
/// `max density × workload servable between the first release and the last
/// deadline`, and never more than the total value.
pub fn fluid_bound<P: CapacityProfile>(jobs: &JobSet, capacity: &P) -> f64 {
    if jobs.is_empty() {
        return 0.0;
    }
    let rho_max = jobs
        .iter()
        .map(|j| j.value_density())
        .fold(0.0f64, f64::max);
    let servable = capacity.integrate(jobs.first_release(), jobs.last_deadline());
    (rho_max * servable).min(jobs.total_value())
}

/// A per-window refinement: each job can contribute at most
/// `min(v_i, ρ_i × servable(r_i, d_i))` — useful when windows barely fit
/// their own workload. Still a relaxation (windows may overlap).
pub fn windowed_bound<P: CapacityProfile>(jobs: &JobSet, capacity: &P) -> f64 {
    jobs.iter()
        .map(|j| {
            let servable = capacity.integrate(j.release, j.deadline);
            j.value.min(j.value_density() * servable)
        })
        .sum()
}

/// Workload the processor can serve on `[a, b]` — re-exported convenience.
pub fn servable<P: CapacityProfile>(capacity: &P, a: Time, b: Time) -> f64 {
    capacity.integrate(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::optimal_value;
    use cloudsched_capacity::{Constant, PiecewiseConstant};

    fn overloaded_jobs() -> JobSet {
        JobSet::from_tuples(&[
            (0.0, 2.0, 2.0, 4.0),
            (0.0, 2.0, 2.0, 2.0),
            (1.0, 3.0, 2.0, 6.0),
        ])
        .unwrap()
    }

    #[test]
    fn bounds_dominate_optimum() {
        let jobs = overloaded_jobs();
        for cap in [
            PiecewiseConstant::constant(1.0).unwrap(),
            PiecewiseConstant::from_durations(&[(1.0, 1.0), (1.0, 3.0)]).unwrap(),
        ] {
            let (opt, _) = optimal_value(&jobs, &cap);
            assert!(total_value_bound(&jobs) >= opt - 1e-9);
            assert!(fluid_bound(&jobs, &cap) >= opt - 1e-9);
            assert!(windowed_bound(&jobs, &cap) >= opt - 1e-9);
        }
    }

    #[test]
    fn fluid_bound_is_tight_for_saturated_uniform_density() {
        // Density-1 jobs saturating the span: fluid bound = servable workload.
        let jobs = JobSet::from_tuples(&[(0.0, 1.0, 2.0, 2.0), (0.0, 1.0, 2.0, 2.0)]).unwrap();
        let cap = Constant::unit();
        assert_eq!(fluid_bound(&jobs, &cap), 1.0);
        let (opt, _) = optimal_value(&jobs, &cap);
        // opt = 0 here (neither 2-unit job fits in [0,1] at rate 1).
        assert_eq!(opt, 0.0);
    }

    #[test]
    fn windowed_bound_caps_infeasible_jobs() {
        // A job whose window can't hold its workload contributes only the
        // servable fraction of its value.
        let jobs = JobSet::from_tuples(&[(0.0, 1.0, 4.0, 8.0)]).unwrap();
        let cap = Constant::unit();
        // density 2, servable 1 => bound 2 (< value 8).
        assert_eq!(windowed_bound(&jobs, &cap), 2.0);
        assert!(fluid_bound(&jobs, &cap) == 2.0);
    }

    #[test]
    fn empty_set_bounds_are_zero() {
        let jobs = JobSet::new(vec![]).unwrap();
        assert_eq!(total_value_bound(&jobs), 0.0);
        assert_eq!(fluid_bound(&jobs, &Constant::unit()), 0.0);
        assert_eq!(windowed_bound(&jobs, &Constant::unit()), 0.0);
    }
}
