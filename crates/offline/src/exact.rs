//! Exact optimal offline value by branch-and-bound over feasible subsets.
//!
//! The offline problem is NP-hard even with constant capacity (Dertouzos &
//! Mok), so exactness costs exponential time in the worst case. The search
//! explores jobs in descending value order with the classic optimistic bound
//! (current value + everything not yet decided) and an EDF feasibility check
//! at every inclusion; instances up to ~20–25 jobs — the sizes used for
//! measured competitive ratios — solve in milliseconds.

use crate::feasibility::edf_feasible;
use cloudsched_capacity::CapacityProfile;
use cloudsched_core::{Job, JobId, JobSet};

/// The exact optimum: maximum total value over feasible subsets, and one
/// subset achieving it (ids in ascending order).
pub fn optimal_value<P: CapacityProfile>(jobs: &JobSet, capacity: &P) -> (f64, Vec<JobId>) {
    let mut order: Vec<&Job> = jobs.iter().collect();
    // Highest value first gives strong early incumbents.
    order.sort_by(|a, b| b.value.total_cmp(&a.value).then(a.id.cmp(&b.id)));
    // Suffix sums of value for the optimistic bound.
    let mut suffix = vec![0.0; order.len() + 1];
    for i in (0..order.len()).rev() {
        suffix[i] = suffix[i + 1] + order[i].value;
    }
    let mut best_value = 0.0;
    let mut best_set: Vec<JobId> = Vec::new();
    let mut chosen: Vec<Job> = Vec::new();

    fn recurse<P: CapacityProfile>(
        order: &[&Job],
        suffix: &[f64],
        capacity: &P,
        idx: usize,
        chosen: &mut Vec<Job>,
        chosen_value: f64,
        best_value: &mut f64,
        best_set: &mut Vec<JobId>,
    ) {
        // lint: allow(L001) — deliberate one-sided pruning slack
        if chosen_value + suffix[idx] <= *best_value + 1e-12 {
            return; // optimistic bound cannot beat the incumbent
        }
        if idx == order.len() {
            if chosen_value > *best_value {
                *best_value = chosen_value;
                *best_set = chosen.iter().map(|j| j.id).collect();
                best_set.sort();
            }
            return;
        }
        let job = order[idx];
        // Branch 1: include (only if still feasible).
        chosen.push(job.clone());
        if edf_feasible(chosen, capacity) {
            recurse(
                order,
                suffix,
                capacity,
                idx + 1,
                chosen,
                chosen_value + job.value,
                best_value,
                best_set,
            );
        }
        chosen.pop();
        // Branch 2: exclude.
        recurse(
            order,
            suffix,
            capacity,
            idx + 1,
            chosen,
            chosen_value,
            best_value,
            best_set,
        );
    }

    recurse(
        &order,
        &suffix,
        capacity,
        0,
        &mut chosen,
        0.0,
        &mut best_value,
        &mut best_set,
    );
    (best_value, best_set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_capacity::{Constant, PiecewiseConstant};

    #[test]
    fn empty_set() {
        let jobs = JobSet::new(vec![]).unwrap();
        let (v, s) = optimal_value(&jobs, &Constant::unit());
        assert_eq!(v, 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn feasible_set_takes_everything() {
        let jobs = JobSet::from_tuples(&[
            (0.0, 10.0, 2.0, 3.0),
            (1.0, 9.0, 2.0, 4.0),
            (2.0, 8.0, 2.0, 5.0),
        ])
        .unwrap();
        let (v, s) = optimal_value(&jobs, &Constant::unit());
        assert_eq!(v, 12.0);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn overload_picks_best_subset() {
        // Two conflicting jobs; the valuable one wins.
        let jobs = JobSet::from_tuples(&[(0.0, 2.0, 2.0, 1.0), (0.0, 2.0, 2.0, 9.0)]).unwrap();
        let (v, s) = optimal_value(&jobs, &Constant::unit());
        assert_eq!(v, 9.0);
        assert_eq!(s, vec![JobId(1)]);
    }

    #[test]
    fn knapsack_like_combination_beats_single_big() {
        // One job worth 10 occupying everything vs three jobs worth 4 each
        // that fit together.
        let jobs = JobSet::from_tuples(&[
            (0.0, 3.0, 3.0, 10.0),
            (0.0, 1.0, 1.0, 4.0),
            (1.0, 2.0, 1.0, 4.0),
            (2.0, 3.0, 1.0, 4.0),
        ])
        .unwrap();
        let (v, s) = optimal_value(&jobs, &Constant::unit());
        assert_eq!(v, 12.0);
        assert_eq!(s, vec![JobId(1), JobId(2), JobId(3)]);
    }

    #[test]
    fn varying_capacity_changes_the_answer() {
        let jobs = JobSet::from_tuples(&[
            (0.0, 2.0, 6.0, 10.0), // needs high capacity
            (0.0, 2.0, 2.0, 3.0),
        ])
        .unwrap();
        let low = Constant::unit();
        let (v, s) = optimal_value(&jobs, &low);
        assert_eq!(v, 3.0);
        assert_eq!(s, vec![JobId(1)]);
        let high = PiecewiseConstant::constant(4.0).unwrap();
        let (v, s) = optimal_value(&jobs, &high);
        // Rate 4 on [0,2]: 8 units serve both (6 + 2).
        assert_eq!(v, 13.0);
        assert_eq!(s, vec![JobId(0), JobId(1)]);
    }

    #[test]
    fn optimum_dominates_greedy() {
        let jobs = JobSet::from_tuples(&[
            (0.0, 4.0, 4.0, 10.0),
            (0.0, 2.0, 2.0, 6.0),
            (2.0, 4.0, 2.0, 6.0),
        ])
        .unwrap();
        let cap = Constant::unit();
        let (opt, _) = optimal_value(&jobs, &cap);
        let (g, _) = crate::greedy::greedy_by_value(&jobs, &cap);
        assert!(opt >= g);
        assert_eq!(opt, 12.0); // the two sixes beat the ten
    }

    #[test]
    fn brute_force_agreement_on_random_instance() {
        // Cross-check B&B against exhaustive enumeration for n = 10.
        let tuples: Vec<(f64, f64, f64, f64)> = (0..10)
            .map(|i| {
                let f = i as f64;
                let r = (f * 0.7) % 3.0;
                let p = 0.5 + (f * 0.37) % 1.5;
                let d = r + p + (f * 0.53) % 2.0;
                let v = 1.0 + (f * 1.3) % 5.0;
                (r, d, p, v)
            })
            .collect();
        let jobs = JobSet::from_tuples(&tuples).unwrap();
        let cap = PiecewiseConstant::from_durations(&[(2.0, 1.0), (2.0, 3.0)]).unwrap();
        let (bb, _) = optimal_value(&jobs, &cap);
        // Exhaustive.
        let all: Vec<Job> = jobs.iter().cloned().collect();
        let mut brute: f64 = 0.0;
        for mask in 0u32..(1 << all.len()) {
            let subset: Vec<Job> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, j)| j.clone())
                .collect();
            if edf_feasible(&subset, &cap) {
                brute = brute.max(subset.iter().map(|j| j.value).sum());
            }
        }
        assert!(
            (bb - brute).abs() < 1e-9,
            "branch-and-bound {bb} vs brute force {brute}"
        );
    }
}
