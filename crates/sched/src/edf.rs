//! Preemptive earliest-deadline-first.
//!
//! EDF needs no knowledge of the capacity at all — it always executes the
//! released, unexpired job with the earliest deadline. Theorem 2 of the paper
//! shows this is 1-competitive for underloaded systems *even when the
//! capacity varies*, generalising the classical Dertouzos result. Under
//! overload it can perform arbitrarily badly (Locke), which is what the
//! Dover family addresses.

use crate::ready::DeadlineQueue;
use cloudsched_core::JobId;
use cloudsched_obs::{QueueKind, TraceEvent};
use cloudsched_sim::{Decision, Scheduler, SimContext};

/// Preemptive EDF.
#[derive(Debug, Clone, Default)]
pub struct Edf {
    ready: DeadlineQueue,
}

impl Edf {
    /// Creates an EDF scheduler.
    pub fn new() -> Self {
        Edf {
            ready: DeadlineQueue::new(),
        }
    }

    fn dispatch_earliest(&mut self) -> Decision {
        match self.ready.pop_earliest() {
            Some((_, job)) => Decision::Run(job),
            None => Decision::Idle,
        }
    }

    /// Stamps the ready-queue depth after an enqueue.
    fn trace_depth(&self, ctx: &mut SimContext<'_>) {
        if ctx.tracing_enabled() {
            ctx.trace(TraceEvent::QueueDepth {
                t: ctx.now(),
                queue: QueueKind::Ready,
                depth: self.ready.len(),
            });
        }
    }
}

impl Scheduler for Edf {
    fn name(&self) -> String {
        "EDF".into()
    }

    fn on_release(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        let d_new = ctx.job(job).deadline;
        match ctx.running() {
            None => Decision::Run(job),
            Some(cur) => {
                let d_cur = ctx.job(cur).deadline;
                if (d_new, job) < (d_cur, cur) {
                    let fresh = self.ready.insert(d_cur, cur);
                    debug_assert!(fresh, "{cur} double-queued in the EDF ready set");
                    self.trace_depth(ctx);
                    Decision::Run(job)
                } else {
                    let fresh = self.ready.insert(d_new, job);
                    debug_assert!(fresh, "{job} double-queued in the EDF ready set");
                    self.trace_depth(ctx);
                    Decision::Continue
                }
            }
        }
    }

    fn on_completion(&mut self, ctx: &mut SimContext<'_>, _job: JobId) -> Decision {
        if ctx.running().is_some() {
            // Tolerance-path completion of a queued job; keep running.
            return Decision::Continue;
        }
        self.dispatch_earliest()
    }

    fn on_deadline_miss(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        self.ready.remove(ctx.job(job).deadline, job);
        if ctx.running().is_some() {
            Decision::Continue
        } else {
            self.dispatch_earliest()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_capacity::{Constant, PiecewiseConstant};
    use cloudsched_core::{approx_eq, JobSet};
    use cloudsched_sim::{audit::audit_report, simulate, RunOptions};

    #[test]
    fn runs_in_deadline_order() {
        let jobs = JobSet::from_tuples(&[
            (0.0, 9.0, 1.0, 1.0),
            (0.0, 3.0, 1.0, 1.0),
            (0.0, 6.0, 1.0, 1.0),
        ])
        .unwrap();
        let cap = Constant::unit();
        let r = simulate(&jobs, &cap, &mut Edf::new(), RunOptions::full());
        assert_eq!(r.completed, 3);
        let order: Vec<JobId> = r.schedule.unwrap().slices().iter().map(|s| s.job).collect();
        assert_eq!(order, vec![JobId(1), JobId(2), JobId(0)]);
    }

    #[test]
    fn preempts_for_earlier_deadline() {
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 5.0, 1.0), (1.0, 3.0, 1.0, 1.0)]).unwrap();
        let cap = Constant::unit();
        let r = simulate(&jobs, &cap, &mut Edf::new(), RunOptions::full());
        assert_eq!(r.completed, 2);
        assert_eq!(r.preemptions, 1);
        let sched = r.schedule.unwrap();
        let order: Vec<JobId> = sched.slices().iter().map(|s| s.job).collect();
        assert_eq!(order, vec![JobId(0), JobId(1), JobId(0)]);
        // Job 0 completes at 6 (1 + 1 pause + 4 rest).
        assert!(approx_eq(sched.wall_time_of(JobId(0)), 5.0));
    }

    #[test]
    fn no_preemption_for_later_deadline() {
        let jobs = JobSet::from_tuples(&[(0.0, 5.0, 3.0, 1.0), (1.0, 10.0, 1.0, 1.0)]).unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut Edf::new(),
            RunOptions::full(),
        );
        assert_eq!(r.preemptions, 0);
        assert_eq!(r.completed, 2);
    }

    #[test]
    fn completes_underloaded_set_on_varying_capacity() {
        // Theorem 2 sanity: a feasible set stays feasible for EDF under
        // varying capacity.
        let cap = PiecewiseConstant::from_durations(&[(2.0, 1.0), (2.0, 4.0), (2.0, 2.0)]).unwrap();
        // Built to be exactly feasible: total workload equals capacity on [0,6]
        // consumed in deadline order.
        let jobs = JobSet::from_tuples(&[
            (0.0, 2.0, 2.0, 1.0), // served on [0,2) at rate 1
            (0.0, 4.0, 8.0, 1.0), // served on [2,4) at rate 4
            (0.0, 6.0, 4.0, 1.0), // served on [4,6) at rate 2
        ])
        .unwrap();
        let r = simulate(&jobs, &cap, &mut Edf::new(), RunOptions::full());
        assert_eq!(r.completed, 3, "all jobs must meet deadlines");
        audit_report(&jobs, &cap, &r).unwrap();
    }

    #[test]
    fn overload_can_starve_high_value() {
        // Classic EDF failure under overload: it chases deadlines, not value.
        let jobs = JobSet::from_tuples(&[
            (0.0, 2.0, 2.0, 1.0),   // low value, early deadline
            (0.0, 2.1, 2.0, 100.0), // high value, slightly later deadline
        ])
        .unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut Edf::new(),
            RunOptions::default(),
        );
        // EDF finishes job 0, job 1 misses: value 1 of 101.
        assert_eq!(r.completed, 1);
        assert!(r.outcome.get(JobId(0)).is_completed());
        assert!(approx_eq(r.value, 1.0));
    }

    #[test]
    fn deadline_tie_broken_by_id() {
        let jobs = JobSet::from_tuples(&[(0.0, 4.0, 1.0, 1.0), (0.0, 4.0, 1.0, 1.0)]).unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut Edf::new(),
            RunOptions::full(),
        );
        let order: Vec<JobId> = r.schedule.unwrap().slices().iter().map(|s| s.job).collect();
        assert_eq!(order, vec![JobId(0), JobId(1)]);
    }

    #[test]
    fn audit_on_random_like_mix() {
        let jobs = JobSet::from_tuples(&[
            (0.0, 3.0, 2.0, 2.0),
            (0.5, 2.0, 1.0, 1.0),
            (1.0, 8.0, 2.0, 3.0),
            (2.0, 4.0, 3.0, 4.0),
            (2.5, 5.0, 1.0, 1.0),
        ])
        .unwrap();
        let cap = PiecewiseConstant::from_durations(&[(1.0, 2.0), (2.0, 1.0), (1.0, 3.0)]).unwrap();
        let r = simulate(&jobs, &cap, &mut Edf::new(), RunOptions::full());
        audit_report(&jobs, &cap, &r).unwrap();
    }
}
