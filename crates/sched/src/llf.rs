//! Least-laxity-first with a capacity estimate.
//!
//! True laxity is unknowable under time-varying capacity (the paper: "it is
//! difficult to generalize LLF for our problem because the remaining
//! processing time (or laxity) is not known"). This baseline therefore
//! computes laxity with an assumed constant rate `ĉ` — the same estimation
//! device §IV applies to Dover — and re-evaluates at every interrupt plus at
//! predicted laxity-crossing instants. A small hysteresis stops the classic
//! continuous-time LLF thrashing: a waiting job preempts only once its
//! estimated laxity is smaller than the running job's by `hysteresis`.

use cloudsched_core::{JobId, Time};
use cloudsched_sim::{Decision, Scheduler, SimContext};
use std::collections::BTreeSet;

/// Minimum delay of a re-evaluation timer: guarantees the event-driven LLF
/// loop always advances simulated time (no same-instant timer storms).
const MIN_TIMER_STEP: f64 = 1e-3;

/// Least-laxity-first under a constant-rate estimate.
#[derive(Debug, Clone)]
pub struct Llf {
    /// Assumed future capacity used for laxity computation.
    c_est: Option<f64>,
    /// Preemption hysteresis (seconds of laxity difference).
    hysteresis: f64,
    ready: BTreeSet<JobId>,
    /// Timer token generation (stale-crossing detection).
    generation: u64,
}

impl Llf {
    /// LLF computing laxity with the conservative class bound `c_lo`.
    pub fn conservative() -> Self {
        Llf {
            c_est: None,
            hysteresis: 1e-3,
            ready: BTreeSet::new(),
            generation: 0,
        }
    }

    /// LLF with an explicit capacity estimate `ĉ`.
    pub fn with_estimate(c_est: f64) -> Self {
        assert!(c_est > 0.0, "capacity estimate must be positive");
        Llf {
            c_est: Some(c_est),
            hysteresis: 1e-3,
            ready: BTreeSet::new(),
            generation: 0,
        }
    }

    /// Overrides the preemption hysteresis.
    pub fn hysteresis(mut self, h: f64) -> Self {
        assert!(h >= 0.0); // lint: allow(L001) — exact sign precondition
        self.hysteresis = h;
        self
    }

    fn rate(&self, ctx: &SimContext<'_>) -> f64 {
        self.c_est.unwrap_or_else(|| ctx.c_lo())
    }

    fn laxity(&self, ctx: &SimContext<'_>, job: JobId) -> f64 {
        ctx.laxity_with_rate(job, self.rate(ctx)).as_f64()
    }

    /// The ready job with minimal (laxity, deadline, id).
    fn best_waiting(&self, ctx: &SimContext<'_>) -> Option<(f64, JobId)> {
        self.ready
            .iter()
            .map(|&j| (self.laxity(ctx, j), ctx.job(j).deadline, j))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)))
            .map(|(l, _, j)| (l, j))
    }

    /// Re-evaluates the processor assignment; arms a crossing timer if the
    /// running job keeps the processor.
    fn reschedule(&mut self, ctx: &mut SimContext<'_>) -> Decision {
        let best = self.best_waiting(ctx);
        match (ctx.running(), best) {
            (None, None) => Decision::Idle,
            (None, Some((_, j))) => {
                self.ready.remove(&j);
                self.arm_crossing_timer(ctx, j);
                Decision::Run(j)
            }
            (Some(_), None) => Decision::Continue,
            (Some(cur), Some((lw, j))) => {
                let lc = self.laxity(ctx, cur);
                if lw < lc - self.hysteresis {
                    self.ready.remove(&j);
                    self.ready.insert(cur);
                    self.arm_crossing_timer(ctx, j);
                    Decision::Run(j)
                } else {
                    // Predict when the best waiting job's laxity undercuts
                    // the running job's (waiting laxity falls at rate 1,
                    // running laxity is constant under the estimate). The
                    // floor guarantees forward progress when the prediction
                    // lands exactly on the hysteresis boundary.
                    let dt = (lw - lc + self.hysteresis).max(MIN_TIMER_STEP);
                    self.generation += 1;
                    let at = ctx.now() + cloudsched_core::Duration::new(dt);
                    ctx.set_timer(at, j, self.generation);
                    Decision::Continue
                }
            }
        }
    }

    /// After dispatching `job`, predict when the best waiting job will
    /// undercut it and arm a re-evaluation timer.
    fn arm_crossing_timer(&mut self, ctx: &mut SimContext<'_>, dispatched: JobId) {
        if let Some((lw, j)) = self.best_waiting(ctx) {
            let lc = self.laxity(ctx, dispatched);
            let dt = (lw - lc + self.hysteresis).max(MIN_TIMER_STEP);
            self.generation += 1;
            let at = ctx.now() + cloudsched_core::Duration::new(dt);
            ctx.set_timer(at, j, self.generation);
        }
    }
}

impl Scheduler for Llf {
    fn name(&self) -> String {
        match self.c_est {
            Some(c) => format!("LLF(c={c})"),
            None => "LLF(c_lo)".into(),
        }
    }

    fn on_release(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        self.ready.insert(job);
        self.reschedule(ctx)
    }

    fn on_completion(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        self.ready.remove(&job);
        self.reschedule(ctx)
    }

    fn on_deadline_miss(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        self.ready.remove(&job);
        self.reschedule(ctx)
    }

    fn on_timer(&mut self, ctx: &mut SimContext<'_>, job: JobId, token: u64) -> Decision {
        if token != self.generation || !self.ready.contains(&job) {
            return Decision::Continue; // stale crossing prediction
        }
        self.reschedule(ctx)
    }
}

/// Internal helper re-exported for tests.
#[doc(hidden)]
pub fn _laxity_at(d: Time, now: Time, remaining: f64, rate: f64) -> f64 {
    (d - now).as_f64() - remaining / rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_capacity::Constant;
    use cloudsched_core::JobSet;
    use cloudsched_sim::{audit::audit_report, simulate, RunOptions};

    #[test]
    fn runs_least_laxity_job_first() {
        // Job 0: d=10, p=2 -> laxity 8. Job 1: d=6, p=5 -> laxity 1.
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 2.0, 1.0), (0.0, 6.0, 5.0, 1.0)]).unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut Llf::with_estimate(1.0),
            RunOptions::full(),
        );
        assert_eq!(r.completed, 2);
        let first = r.schedule.unwrap().slices()[0].job;
        assert_eq!(first, JobId(1));
    }

    #[test]
    fn crossing_preemption_happens() {
        // Job 0: d=20, p=2 (laxity 18, runs first as the only job).
        // Job 1 released at 0: d=6, p=2 -> laxity 4 < 18, so it should win
        // immediately; then job 0 waits, its laxity falls, but job 1 is
        // short, so both complete.
        let jobs = JobSet::from_tuples(&[(0.0, 20.0, 2.0, 1.0), (1.0, 7.0, 2.0, 1.0)]).unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut Llf::with_estimate(1.0),
            RunOptions::full(),
        );
        assert_eq!(r.completed, 2);
        // Job 1 (laxity 4 at release) preempts job 0 (laxity 18).
        assert!(r.preemptions >= 1);
    }

    #[test]
    fn underloaded_feasible_set_completes() {
        let jobs = JobSet::from_tuples(&[
            (0.0, 4.0, 1.0, 1.0),
            (0.0, 5.0, 2.0, 1.0),
            (1.0, 8.0, 2.0, 1.0),
        ])
        .unwrap();
        let cap = Constant::unit();
        let r = simulate(
            &jobs,
            &cap,
            &mut Llf::with_estimate(1.0),
            RunOptions::full(),
        );
        assert_eq!(r.completed, 3);
        audit_report(&jobs, &cap, &r).unwrap();
    }

    #[test]
    fn conservative_variant_uses_class_bound() {
        let llf = Llf::conservative();
        assert_eq!(llf.name(), "LLF(c_lo)");
        let jobs = JobSet::from_tuples(&[(0.0, 4.0, 1.0, 1.0)]).unwrap();
        let r = simulate(
            &jobs,
            &Constant::new(2.0).unwrap(),
            &mut Llf::conservative(),
            RunOptions::default(),
        );
        assert_eq!(r.completed, 1);
    }

    #[test]
    fn hysteresis_bounds_switching() {
        // Two identical jobs: pure LLF would thrash; hysteresis keeps the
        // number of preemptions small.
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 4.0, 1.0), (0.0, 10.0, 4.0, 1.0)]).unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut Llf::with_estimate(1.0).hysteresis(0.5),
            RunOptions::full(),
        );
        assert_eq!(r.completed, 2);
        assert!(
            r.preemptions < 20,
            "hysteresis must bound context switches, got {}",
            r.preemptions
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_estimate_rejected() {
        let _ = Llf::with_estimate(0.0);
    }
}
