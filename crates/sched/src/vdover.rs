//! V-Dover — the paper's online scheduler for overloaded systems with
//! time-varying capacity (§III-D, procedures A–D).
//!
//! V-Dover is Dover's interrupt structure with two changes (§III-D end):
//!
//! 1. **conservative capacity estimation** — laxities use the class bound
//!    `c_lo` (Definition 5's *conservative laxity*), the only safe constant
//!    estimate when the future capacity is unknown but bounded below;
//! 2. **supplement jobs** — a job whose zero-conservative-laxity interrupt
//!    loses the value comparison is *parked*, not dropped: under conservative
//!    estimation it might be unfinishable, but the realised capacity may
//!    exceed `c_lo` and complete it anyway. Supplement jobs run only when no
//!    regular work exists and are revived latest-deadline-first.
//!
//! With every job individually admissible (Definition 4) V-Dover is
//! `1/((√k + √f(k,δ))² + 1)`-competitive, which is asymptotically optimal
//! (Theorem 3).

use crate::dover::{CapacityEstimate, DoverFamily, FamilyConfig, SupplementOrder};
use cloudsched_analysis::bounds::{dover_beta, optimal_beta};
use cloudsched_core::{CoreError, JobId};
use cloudsched_sim::{Decision, Scheduler, SimContext};

/// Tunable parameters of [`VDover`] (the defaults reproduce the paper).
#[derive(Debug, Clone)]
pub struct VDoverConfig {
    /// Zero-conservative-laxity value threshold `β > 1`. The paper's optimum
    /// is `β* = 1 + √(k/f(k,δ))`.
    pub beta: f64,
    /// Keep the supplement queue (disable for the ablation that degrades
    /// V-Dover back to conservative Dover).
    pub supplement: bool,
    /// Supplement revival order (paper: latest deadline first).
    pub supplement_order: SupplementOrder,
}

impl VDoverConfig {
    /// The paper's configuration for importance bound `k` and capacity
    /// variation `δ`. Falls back to Dover's `β = 1 + √k` when `δ <= 1`
    /// (constant capacity, where `f(k,δ)` is undefined).
    pub fn paper(k: f64, delta: f64) -> Self {
        let beta = if delta > 1.0 {
            optimal_beta(k, delta)
        } else {
            dover_beta(k)
        };
        VDoverConfig {
            beta,
            supplement: true,
            supplement_order: SupplementOrder::LatestDeadline,
        }
    }
}

/// The V-Dover scheduler.
#[derive(Debug, Clone)]
pub struct VDover(DoverFamily);

impl VDover {
    /// V-Dover with the paper's optimal threshold for `(k, δ)`.
    ///
    /// ```
    /// use cloudsched_capacity::PiecewiseConstant;
    /// use cloudsched_core::JobSet;
    /// use cloudsched_sched::VDover;
    /// use cloudsched_sim::{simulate, RunOptions};
    ///
    /// let jobs = JobSet::from_tuples(&[(0.0, 4.0, 4.0, 10.0), (0.0, 4.0, 4.0, 1.0)]).unwrap();
    /// let cap = PiecewiseConstant::constant(4.0).unwrap()
    ///     .with_declared_bounds(1.0, 4.0).unwrap();
    /// // Conservatively both jobs look hopeless (claxity 0 at c_lo = 1),
    /// // but the realised capacity completes both — thanks to Qsupp.
    /// let report = simulate(&jobs, &cap, &mut VDover::new(10.0, 4.0), RunOptions::lean());
    /// assert_eq!(report.completed, 2);
    /// ```
    pub fn new(k: f64, delta: f64) -> Self {
        VDover::from_config(VDoverConfig::paper(k, delta))
    }

    /// V-Dover from an explicit configuration.
    pub fn from_config(cfg: VDoverConfig) -> Self {
        VDover(DoverFamily::from_config(FamilyConfig {
            name: if cfg.supplement {
                "V-Dover".into()
            } else {
                "V-Dover(no-supp)".into()
            },
            estimate: CapacityEstimate::ClassLow,
            beta: cfg.beta,
            supplement: cfg.supplement,
            supplement_order: cfg.supplement_order,
        }))
    }

    /// Access to the underlying engine.
    pub fn family(&self) -> &DoverFamily {
        &self.0
    }
}

impl Scheduler for VDover {
    fn name(&self) -> String {
        self.0.name()
    }
    fn on_release(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        self.0.on_release(ctx, job)
    }
    fn on_completion(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        self.0.on_completion(ctx, job)
    }
    fn on_deadline_miss(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        self.0.on_deadline_miss(ctx, job)
    }
    fn on_timer(&mut self, ctx: &mut SimContext<'_>, job: JobId, token: u64) -> Decision {
        self.0.on_timer(ctx, job, token)
    }
    fn snapshot_state(&self) -> Option<String> {
        self.0.snapshot_state()
    }
    fn restore_state(&mut self, state: &str) -> Result<(), CoreError> {
        self.0.restore_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_capacity::PiecewiseConstant;
    use cloudsched_core::{approx_eq, JobSet};
    use cloudsched_sim::{audit::audit_report, simulate, RunOptions};

    /// Capacity class C(1, 4): rate 1 until `switch_at`, rate 4 afterwards.
    fn low_then_high(switch_at: f64) -> PiecewiseConstant {
        let p = if switch_at > 0.0 {
            PiecewiseConstant::from_durations(&[(switch_at, 1.0), (1.0, 4.0)]).unwrap()
        } else {
            PiecewiseConstant::constant(4.0).unwrap()
        };
        p.with_declared_bounds(1.0, 4.0).unwrap()
    }

    #[test]
    fn supplement_job_completes_when_capacity_rises() {
        // The V-Dover signature move. Two zero-conservative-laxity jobs
        // compete; the loser is parked as supplement. Capacity then jumps to
        // 4 so the winner finishes early and the supplement still makes it.
        let jobs = JobSet::from_tuples(&[
            (0.0, 8.0, 8.0, 10.0), // wins (scheduled at release)
            (0.0, 8.0, 8.0, 1.0),  // zero claxity, loses, parked
        ])
        .unwrap();
        let cap = low_then_high(0.0); // rate 4 immediately, class C(1,4)
        let r = simulate(&jobs, &cap, &mut VDover::new(10.0, 4.0), RunOptions::full());
        // At rate 4 each job needs 2s: both fit before t=8.
        assert_eq!(r.completed, 2, "supplement must be revived and finish");
        assert!(approx_eq(r.value, 11.0));
        audit_report(&jobs, &cap, &r).unwrap();
    }

    #[test]
    fn dover_equivalence_under_constant_capacity() {
        // With c(t) = c_lo = ĉ and the same β, V-Dover and Dover produce the
        // same outcomes (supplement jobs can never finish: capacity never
        // exceeds the conservative estimate... they may still run, but earn
        // nothing extra). The paper: "V-Dover reduces to Dover under
        // constant capacity".
        let jobs = JobSet::from_tuples(&[
            (0.0, 6.0, 6.0, 5.0),
            (1.0, 4.0, 3.0, 30.0),
            (2.0, 9.0, 2.0, 2.0),
            (3.0, 7.0, 1.0, 1.0),
        ])
        .unwrap();
        let cap = PiecewiseConstant::constant(1.0).unwrap();
        let beta = 3.0;
        let mut vd = VDover::from_config(VDoverConfig {
            beta,
            supplement: true,
            supplement_order: SupplementOrder::LatestDeadline,
        });
        let mut dv = crate::Dover::with_beta(beta, 1.0);
        let rv = simulate(&jobs, &cap, &mut vd, RunOptions::full());
        let rd = simulate(&jobs, &cap, &mut dv, RunOptions::full());
        assert!(
            approx_eq(rv.value, rd.value),
            "{} vs {}",
            rv.value,
            rd.value
        );
        for j in jobs.iter() {
            assert_eq!(
                rv.outcome.get(j.id).is_completed(),
                rd.outcome.get(j.id).is_completed(),
                "outcome of {} differs",
                j.id
            );
        }
    }

    #[test]
    fn conservative_laxity_does_not_abandon_rescuable_jobs() {
        // Same instance where Dover with an optimistic estimate fails but
        // V-Dover succeeds thanks to conservatism + supplements.
        let jobs = JobSet::from_tuples(&[(0.0, 4.0, 4.0, 10.0), (0.0, 4.0, 4.0, 9.0)]).unwrap();
        let cap = PiecewiseConstant::constant(4.0)
            .unwrap()
            .with_declared_bounds(1.0, 4.0)
            .unwrap();
        let r = simulate(&jobs, &cap, &mut VDover::new(2.0, 4.0), RunOptions::full());
        // Both complete at the realised rate 4 (2s total work before t=4).
        assert_eq!(r.completed, 2);
        audit_report(&jobs, &cap, &r).unwrap();
    }

    #[test]
    fn regular_jobs_preempt_supplement_jobs() {
        // A supplement job is running; a fresh regular release must preempt
        // it immediately (procedure B lines 13–15).
        let jobs = JobSet::from_tuples(&[
            (0.0, 4.0, 4.0, 10.0), // regular, runs [0, 1) at rate 4
            (0.0, 6.0, 6.0, 1.0),  // parked as supplement, revived at t=1
            (2.0, 6.0, 1.0, 5.0),  // regular arrival while supplement runs
        ])
        .unwrap();
        let cap = low_then_high(0.0);
        let r = simulate(&jobs, &cap, &mut VDover::new(10.0, 4.0), RunOptions::full());
        // Job 0 done at t=1 (rate 4). Supplement job 1 revived at t=1 with
        // 6 units of work. Job 2 arrives at t=2 and preempts it immediately
        // (procedure B supp branch); job 1 resumes at t=2.25 and completes
        // its remaining 2 units by t=2.75 < 6.
        assert!(r.outcome.get(JobId(2)).is_completed());
        assert!(r.outcome.get(JobId(0)).is_completed());
        let sched = r.schedule.unwrap();
        // Supplement job 1 ran both before and after job 2's interval.
        let slices1: Vec<_> = sched.slices_of(JobId(1)).collect();
        assert!(slices1.len() >= 2, "supplement resumed after preemption");
    }

    #[test]
    fn no_supplement_ablation_loses_value() {
        let jobs = JobSet::from_tuples(&[(0.0, 8.0, 8.0, 10.0), (0.0, 8.0, 8.0, 1.0)]).unwrap();
        let cap = low_then_high(0.0);
        let mut without = VDover::from_config(VDoverConfig {
            beta: 2.0,
            supplement: false,
            supplement_order: SupplementOrder::LatestDeadline,
        });
        let mut with = VDover::from_config(VDoverConfig {
            beta: 2.0,
            supplement: true,
            supplement_order: SupplementOrder::LatestDeadline,
        });
        let r_without = simulate(&jobs, &cap, &mut without, RunOptions::default());
        let r_with = simulate(&jobs, &cap, &mut with, RunOptions::default());
        assert!(r_with.value > r_without.value);
        assert_eq!(r_without.scheduler, "V-Dover(no-supp)");
    }

    #[test]
    fn trace_shows_supplement_enqueue_rescue_and_claxity_flip() {
        use cloudsched_obs::{RingTracer, TraceEvent};
        use cloudsched_sim::simulate_traced;
        // The signature instance: the zero-conservative-laxity loser is
        // parked (supp_enqueue) and later revived (supp_rescue); the park
        // decision is preceded by the zero-laxity interrupt (claxity_zero).
        let jobs = JobSet::from_tuples(&[(0.0, 8.0, 8.0, 10.0), (0.0, 8.0, 8.0, 1.0)]).unwrap();
        let cap = low_then_high(0.0);
        let mut ring = RingTracer::new(256);
        let r = simulate_traced(
            &jobs,
            &cap,
            &mut VDover::new(10.0, 4.0),
            RunOptions::lean(),
            &mut ring,
        );
        assert_eq!(r.completed, 2);
        let enqueues = ring
            .events()
            .filter(|e| matches!(e, TraceEvent::SupplementEnqueue { .. }))
            .count();
        let rescues = ring
            .events()
            .filter(|e| matches!(e, TraceEvent::SupplementRescue { .. }))
            .count();
        let flips = ring
            .events()
            .filter(|e| matches!(e, TraceEvent::ClaxityZero { .. }))
            .count();
        assert!(enqueues >= 1, "loser must be parked");
        assert!(rescues >= 1, "parked job must be revived");
        assert!(rescues <= enqueues, "can only revive what was parked");
        assert!(flips >= 1, "zero-laxity interrupt must be stamped");
        // The parked job is the low-value one.
        assert!(ring
            .events()
            .any(|e| matches!(e, TraceEvent::SupplementEnqueue { job: JobId(1), .. })));
    }

    #[test]
    fn paper_config_beta_matches_formula() {
        let cfg = VDoverConfig::paper(7.0, 35.0);
        assert!(approx_eq(
            cfg.beta,
            cloudsched_analysis::bounds::optimal_beta(7.0, 35.0)
        ));
        // δ = 1 falls back to Dover's threshold.
        let cfg = VDoverConfig::paper(4.0, 1.0);
        assert!(approx_eq(cfg.beta, 3.0));
    }

    #[test]
    fn zero_claxity_storm_is_stable() {
        // Many simultaneous zero-conservative-laxity jobs (the paper's §IV
        // regime): the scheduler must arbitrate without livelock and keep
        // the kernel's invariants intact.
        let mut tuples = Vec::new();
        for i in 0..30 {
            let r = i as f64 * 0.1;
            let p = 1.0 + (i % 5) as f64 * 0.3;
            let v = 1.0 + (i % 7) as f64;
            tuples.push((r, r + p, p, v)); // zero claxity at c_lo = 1
        }
        let jobs = JobSet::from_tuples(&tuples).unwrap();
        let cap = PiecewiseConstant::from_durations(&[(1.5, 1.0), (1.0, 4.0), (1.0, 1.0)])
            .unwrap()
            .with_declared_bounds(1.0, 4.0)
            .unwrap();
        let r = simulate(&jobs, &cap, &mut VDover::new(8.0, 4.0), RunOptions::full());
        audit_report(&jobs, &cap, &r).unwrap();
        assert!(r.completed >= 1);
        assert_eq!(r.completed + r.missed, 30);
    }
}
