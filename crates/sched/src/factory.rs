//! Name-based scheduler construction.
//!
//! The CLI, the tracing facade and the benchmark harness all need to turn a
//! scheduler name like `"vdover"` into a boxed [`Scheduler`] with the right
//! parameters. Centralising the mapping here keeps the set of recognised
//! names — and the parameterisation conventions — identical everywhere.

use crate::{Dover, Edf, Fifo, Greedy, Llf, VDover};
use cloudsched_core::CoreError;
use cloudsched_sim::Scheduler;

/// Names accepted by [`by_name`], in display order.
pub const SCHEDULER_NAMES: &[&str] = &[
    "vdover", "dover", "dover-lo", "dover-hi", "edf", "llf", "fifo", "greedy", "hvdf",
];

/// Validates one factory parameter against its mathematical domain.
fn check(name: &'static str, value: f64, ok: bool, reason: &str) -> Result<(), CoreError> {
    if ok {
        Ok(())
    } else {
        Err(CoreError::InvalidParameter {
            name: name.to_string(),
            value,
            reason: reason.to_string(),
        })
    }
}

/// Builds a scheduler from its command-line name.
///
/// Parameters follow the paper's evaluation conventions:
///
/// * `k` — importance ratio (max/min value density), used by the Dover
///   family's β threshold;
/// * `delta` — capacity-class width `c_hi / c_lo`, used by V-Dover;
/// * `c_lo`, `c_hi` — class bounds; `dover`/`dover-lo` estimate capacity at
///   `c_lo`, `dover-hi` at `c_hi`, and LLF computes laxity against `c_lo`.
///
/// # Errors
/// [`CoreError::UnknownScheduler`] for an unrecognised name;
/// [`CoreError::InvalidParameter`] when a parameter leaves its domain
/// (`k >= 1`, `delta >= 1`, `0 < c_lo <= c_hi`, all finite).
pub fn by_name(
    name: &str,
    k: f64,
    delta: f64,
    c_lo: f64,
    c_hi: f64,
) -> Result<Box<dyn Scheduler>, CoreError> {
    check(
        "k",
        k,
        k.is_finite() && k >= 1.0, // lint: allow(L001) — domain boundary, k = 1 is legal
        "importance ratio k must be finite and >= 1",
    )?;
    check(
        "delta",
        delta,
        delta.is_finite() && delta >= 1.0, // lint: allow(L001) — domain boundary, delta = 1 is legal
        "capacity variation delta = c_hi/c_lo must be finite and >= 1",
    )?;
    check(
        "c_lo",
        c_lo,
        c_lo.is_finite() && c_lo > 0.0,
        "c_lo must be finite and > 0",
    )?;
    check(
        "c_hi",
        c_hi,
        c_hi.is_finite() && c_hi >= c_lo, // lint: allow(L001) — domain boundary, c_hi = c_lo is legal
        "c_hi must be finite and >= c_lo",
    )?;
    Ok(match name {
        "vdover" => Box::new(VDover::new(k, delta)),
        "dover" | "dover-lo" => Box::new(Dover::new(k, c_lo)),
        "dover-hi" => Box::new(Dover::new(k, c_hi)),
        "edf" => Box::new(Edf::new()),
        "llf" => Box::new(Llf::with_estimate(c_lo)),
        "fifo" => Box::new(Fifo::new()),
        "greedy" => Box::new(Greedy::highest_value()),
        "hvdf" => Box::new(Greedy::highest_density()),
        other => {
            return Err(CoreError::UnknownScheduler {
                name: other.to_string(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_knows_every_listed_name() {
        for name in SCHEDULER_NAMES {
            assert!(
                by_name(name, 7.0, 2.0, 1.0, 2.0).is_ok(),
                "factory rejected {name}"
            );
        }
        assert!(by_name("bogus", 7.0, 2.0, 1.0, 2.0).is_err());
    }

    #[test]
    fn factory_rejects_out_of_domain_parameters_with_typed_errors() {
        match by_name("bogus", 7.0, 2.0, 1.0, 2.0) {
            Err(CoreError::UnknownScheduler { name }) => assert_eq!(name, "bogus"),
            Err(other) => panic!("expected UnknownScheduler, got {other:?}"),
            Ok(_) => panic!("expected UnknownScheduler, got a scheduler"),
        }
        for (k, delta, c_lo, c_hi, param) in [
            (0.5, 2.0, 1.0, 2.0, "k"),
            (f64::NAN, 2.0, 1.0, 2.0, "k"),
            (7.0, 0.9, 1.0, 2.0, "delta"),
            (7.0, 2.0, 0.0, 2.0, "c_lo"),
            (7.0, 2.0, -1.0, 2.0, "c_lo"),
            (7.0, 2.0, 1.0, 0.5, "c_hi"),
            (7.0, 2.0, 1.0, f64::INFINITY, "c_hi"),
        ] {
            match by_name("vdover", k, delta, c_lo, c_hi) {
                Err(CoreError::InvalidParameter { name, .. }) => assert_eq!(name, param),
                Err(other) => panic!("expected InvalidParameter({param}), got {other:?}"),
                Ok(_) => panic!("expected InvalidParameter({param}), got a scheduler"),
            }
        }
        // Boundary values are legal: k = 1, delta = 1, c_hi = c_lo.
        assert!(by_name("vdover", 1.0, 1.0, 2.0, 2.0).is_ok());
    }

    #[test]
    fn dover_variants_use_the_requested_bound() {
        // The names must construct distinct schedulers; their display names
        // encode the estimate so a mix-up would be visible in reports.
        let lo = by_name("dover-lo", 7.0, 2.0, 1.0, 4.0).unwrap();
        let hi = by_name("dover-hi", 7.0, 2.0, 1.0, 4.0).unwrap();
        assert_ne!(lo.name(), hi.name());
    }
}
