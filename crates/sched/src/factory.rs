//! Name-based scheduler construction.
//!
//! The CLI, the tracing facade and the benchmark harness all need to turn a
//! scheduler name like `"vdover"` into a boxed [`Scheduler`] with the right
//! parameters. Centralising the mapping here keeps the set of recognised
//! names — and the parameterisation conventions — identical everywhere.

use crate::{Dover, Edf, Fifo, Greedy, Llf, VDover};
use cloudsched_sim::Scheduler;

/// Names accepted by [`by_name`], in display order.
pub const SCHEDULER_NAMES: &[&str] = &[
    "vdover", "dover", "dover-lo", "dover-hi", "edf", "llf", "fifo", "greedy", "hvdf",
];

/// Builds a scheduler from its command-line name.
///
/// Parameters follow the paper's evaluation conventions:
///
/// * `k` — importance ratio (max/min value density), used by the Dover
///   family's β threshold;
/// * `delta` — capacity-class width `c_hi / c_lo`, used by V-Dover;
/// * `c_lo`, `c_hi` — class bounds; `dover`/`dover-lo` estimate capacity at
///   `c_lo`, `dover-hi` at `c_hi`, and LLF computes laxity against `c_lo`.
pub fn by_name(
    name: &str,
    k: f64,
    delta: f64,
    c_lo: f64,
    c_hi: f64,
) -> Result<Box<dyn Scheduler>, String> {
    Ok(match name {
        "vdover" => Box::new(VDover::new(k, delta)),
        "dover" | "dover-lo" => Box::new(Dover::new(k, c_lo)),
        "dover-hi" => Box::new(Dover::new(k, c_hi)),
        "edf" => Box::new(Edf::new()),
        "llf" => Box::new(Llf::with_estimate(c_lo)),
        "fifo" => Box::new(Fifo::new()),
        "greedy" => Box::new(Greedy::highest_value()),
        "hvdf" => Box::new(Greedy::highest_density()),
        other => return Err(format!("unknown scheduler `{other}`")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_knows_every_listed_name() {
        for name in SCHEDULER_NAMES {
            assert!(
                by_name(name, 7.0, 2.0, 1.0, 2.0).is_ok(),
                "factory rejected {name}"
            );
        }
        assert!(by_name("bogus", 7.0, 2.0, 1.0, 2.0).is_err());
    }

    #[test]
    fn dover_variants_use_the_requested_bound() {
        // The names must construct distinct schedulers; their display names
        // encode the estimate so a mix-up would be visible in reports.
        let lo = by_name("dover-lo", 7.0, 2.0, 1.0, 4.0).unwrap();
        let hi = by_name("dover-hi", 7.0, 2.0, 1.0, 4.0).unwrap();
        assert_ne!(lo.name(), hi.name());
    }
}
