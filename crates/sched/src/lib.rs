//! # cloudsched-sched
//!
//! Online scheduling algorithms for firm-deadline jobs under time-varying
//! capacity — the algorithmic heart of *Secondary Job Scheduling in the
//! Cloud with Deadlines*:
//!
//! * [`Edf`] — preemptive earliest-deadline-first; 1-competitive for
//!   underloaded systems even under time-varying capacity (Theorem 2);
//! * [`Llf`] — least-laxity-first with a capacity estimate (the paper notes
//!   exact LLF does not generalise because true laxity is unknowable online);
//! * [`Fifo`] — non-preemptive first-in-first-out, the naive baseline;
//! * [`Greedy`] — preemptive highest-value / highest-value-density first
//!   (the policies Locke showed collapse under overload);
//! * [`Dover`] — Koren & Shasha's optimal constant-capacity overload
//!   scheduler, parameterised by a capacity estimate `ĉ` exactly as the
//!   paper's §IV evaluation does;
//! * [`VDover`] — the paper's algorithm (procedures A–D): Dover's structure
//!   with (i) *conservative laxity* computed from the class bound `c_lo` and
//!   (ii) a *supplement queue* that rescues conservatively-abandoned jobs
//!   when the realised capacity runs high.
//!
//! All schedulers implement [`cloudsched_sim::Scheduler`] and are driven by
//! the kernel's release / completion-or-failure / timer interrupts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dispatch;
pub mod dover;
pub mod edf;
pub mod factory;
pub mod fifo;
pub mod greedy;
pub mod llf;
pub mod ready;
pub mod vdover;

pub use dispatch::{DispatchPolicy, LeastLaxityFit, PowerOfTwo, RoundRobin, DISPATCH_NAMES};
pub use dover::Dover;
pub use edf::Edf;
pub use factory::{by_name, SCHEDULER_NAMES};
pub use fifo::Fifo;
pub use greedy::{Greedy, GreedyKey};
pub use llf::Llf;
pub use vdover::{VDover, VDoverConfig};
