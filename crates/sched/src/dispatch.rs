//! Fleet dispatch policies (`DESIGN.md` §16).
//!
//! Concrete implementations of the [`Dispatch`] seam that
//! `cloudsched_sim::fleet` drives: each policy is a value (per-fleet state,
//! no globals) and a pure function of its own state plus the online
//! [`FleetLoads`] view, so fleet output stays a pure function of
//! `(seed, M, policy)`:
//!
//! * [`RoundRobin`] — fixed rotation, oblivious to load;
//! * [`LeastLaxityFit`] — the machine with the largest conservative fit
//!   laxity for this job (ties to the lowest index), the fleet analogue of
//!   the paper's conservative-laxity reasoning;
//! * [`PowerOfTwo`] — power-of-two-choices: two candidate machines drawn
//!   from a seeded [`Pcg32`] (seed via [`derive_seed`] — lint rule L009),
//!   keep the one with the larger fit laxity. The classic load-balancing
//!   sweet spot: near-best placement at O(1) probes, fully deterministic
//!   for a fixed seed.

use cloudsched_core::rng::{Pcg32, Rng};
use cloudsched_core::{CoreError, Job};
use cloudsched_sim::{Dispatch, FleetLoads};
use std::cmp::Ordering;

/// Names accepted by [`DispatchPolicy::parse`], in display order.
pub const DISPATCH_NAMES: &[&str] = &["rr", "llf", "p2c"];

/// A parsed dispatch-policy name, ready to build per-fleet state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Fixed rotation.
    RoundRobin,
    /// Largest conservative fit laxity.
    LeastLaxityFit,
    /// Seeded power-of-two-choices.
    PowerOfTwo,
}

impl DispatchPolicy {
    /// Parses a command-line policy name.
    ///
    /// # Errors
    /// [`CoreError::InvalidArgument`] for an unrecognised name.
    pub fn parse(name: &str) -> Result<Self, CoreError> {
        match name {
            "rr" => Ok(DispatchPolicy::RoundRobin),
            "llf" => Ok(DispatchPolicy::LeastLaxityFit),
            "p2c" => Ok(DispatchPolicy::PowerOfTwo),
            other => Err(CoreError::InvalidArgument {
                flag: "--policy".into(),
                reason: format!(
                    "unknown dispatch policy `{other}` (expected one of: {})",
                    DISPATCH_NAMES.join(", ")
                ),
            }),
        }
    }

    /// Stable display name (the string [`DispatchPolicy::parse`] accepts).
    pub fn as_str(self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "rr",
            DispatchPolicy::LeastLaxityFit => "llf",
            DispatchPolicy::PowerOfTwo => "p2c",
        }
    }

    /// Builds fresh per-fleet dispatcher state. `seed` feeds the
    /// power-of-two-choices coin flips (derive it via
    /// [`cloudsched_core::rng::derive_seed`]); the deterministic policies
    /// ignore it.
    pub fn build(self, seed: u64) -> Box<dyn Dispatch> {
        match self {
            DispatchPolicy::RoundRobin => Box::new(RoundRobin { next: 0 }),
            DispatchPolicy::LeastLaxityFit => Box::new(LeastLaxityFit),
            DispatchPolicy::PowerOfTwo => Box::new(PowerOfTwo {
                rng: Pcg32::seed_from_u64(seed),
            }),
        }
    }
}

/// Fixed rotation over the machines, oblivious to load. The baseline every
/// informed policy has to beat.
#[derive(Debug, Clone)]
pub struct RoundRobin {
    next: usize,
}

impl Dispatch for RoundRobin {
    fn name(&self) -> &str {
        "rr"
    }
    fn choose(&mut self, _job: &Job, loads: &FleetLoads<'_>) -> usize {
        let m = self.next % loads.machines();
        self.next = self.next.wrapping_add(1);
        m
    }
}

/// Places each job on the machine with the largest conservative fit
/// laxity — the machine that can most comfortably absorb it at its
/// declared floor. Ties break to the lowest machine index (exact
/// `total_cmp`, no float-equality fuzz), keeping the choice deterministic.
#[derive(Debug, Clone)]
pub struct LeastLaxityFit;

impl Dispatch for LeastLaxityFit {
    fn name(&self) -> &str {
        "llf"
    }
    fn choose(&mut self, job: &Job, loads: &FleetLoads<'_>) -> usize {
        let mut best = 0usize;
        for m in 1..loads.machines() {
            let better = loads
                .fit_laxity(m, job)
                .total_cmp(&loads.fit_laxity(best, job))
                == Ordering::Greater;
            if better {
                best = m;
            }
        }
        best
    }
}

/// Power-of-two-choices: draw two candidate machines from the seeded
/// stream, keep the one with the larger conservative fit laxity (ties to
/// the lower index). Every draw consumes exactly two RNG outputs per job
/// regardless of the outcome, so the decision sequence is a pure function
/// of `(seed, job sequence)`.
#[derive(Debug, Clone)]
pub struct PowerOfTwo {
    rng: Pcg32,
}

impl PowerOfTwo {
    /// Builds the policy from a derived seed (see
    /// [`cloudsched_core::rng::derive_seed`]).
    pub fn from_seed(seed: u64) -> Self {
        PowerOfTwo {
            rng: Pcg32::seed_from_u64(seed),
        }
    }
}

impl Dispatch for PowerOfTwo {
    fn name(&self) -> &str {
        "p2c"
    }
    fn choose(&mut self, job: &Job, loads: &FleetLoads<'_>) -> usize {
        let n = loads.machines();
        let a = self.rng.next_index(n);
        let b = self.rng.next_index(n);
        let (lo, hi) = (a.min(b), a.max(b));
        let hi_better = loads
            .fit_laxity(hi, job)
            .total_cmp(&loads.fit_laxity(lo, job))
            == Ordering::Greater;
        if hi_better {
            hi
        } else {
            lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_core::rng::{derive_seed, SEED_STREAM_FLEET};
    use cloudsched_core::{JobId, JobSet, Time};

    fn job(release: f64, deadline: f64, workload: f64) -> Job {
        Job::new(
            JobId(0),
            Time::new(release),
            Time::new(deadline),
            workload,
            1.0,
        )
        .expect("invariant: test job parameters are valid")
    }

    /// Drives a policy directly through the sim fleet engine's public view
    /// by building a tiny fleet run — exercised more heavily in the bench
    /// crate's determinism suite; here we pin the pure-policy behaviour.
    fn loads_view(test: impl FnOnce(&FleetLoads<'_>)) {
        use cloudsched_capacity::PiecewiseConstant;
        use cloudsched_sim::{run_fleet, RunOptions, Scheduler};

        // Capture the FleetLoads view at a known dispatch instant by
        // wrapping the closure in a one-shot Dispatch impl.
        struct Probe<F: FnOnce(&FleetLoads<'_>)> {
            test: Option<F>,
        }
        impl<F: FnOnce(&FleetLoads<'_>)> Dispatch for Probe<F> {
            fn name(&self) -> &str {
                "probe"
            }
            fn choose(&mut self, _job: &Job, loads: &FleetLoads<'_>) -> usize {
                if let Some(test) = self.test.take() {
                    test(loads);
                }
                0
            }
        }
        struct Idle;
        impl Scheduler for Idle {
            fn name(&self) -> String {
                "idle".into()
            }
            fn on_release(
                &mut self,
                _ctx: &mut cloudsched_sim::SimContext<'_>,
                _job: JobId,
            ) -> cloudsched_sim::Decision {
                cloudsched_sim::Decision::Idle
            }
            fn on_completion(
                &mut self,
                _ctx: &mut cloudsched_sim::SimContext<'_>,
                _job: JobId,
            ) -> cloudsched_sim::Decision {
                cloudsched_sim::Decision::Idle
            }
            fn on_deadline_miss(
                &mut self,
                _ctx: &mut cloudsched_sim::SimContext<'_>,
                _job: JobId,
            ) -> cloudsched_sim::Decision {
                cloudsched_sim::Decision::Idle
            }
        }
        let jobs =
            JobSet::from_tuples(&[(1.0, 4.0, 1.0, 1.0)]).expect("invariant: valid test tuple");
        let machines = vec![
            PiecewiseConstant::constant(1.0).expect("invariant: positive rate"),
            PiecewiseConstant::constant(2.0).expect("invariant: positive rate"),
        ];
        let mut probe = Probe { test: Some(test) };
        run_fleet(
            &jobs,
            &machines,
            &mut probe,
            &|_m| Box::new(Idle),
            RunOptions::lean(),
            1,
        );
    }

    #[test]
    fn parse_round_trips_every_listed_name() {
        for name in DISPATCH_NAMES {
            let p = DispatchPolicy::parse(name).expect("listed name parses");
            assert_eq!(p.as_str(), *name);
            assert_eq!(p.build(1).name(), *name);
        }
        match DispatchPolicy::parse("bogus") {
            Err(CoreError::InvalidArgument { flag, reason }) => {
                assert_eq!(flag, "--policy");
                assert!(reason.contains("bogus"));
            }
            other => panic!("expected InvalidArgument, got {other:?}"),
        }
    }

    #[test]
    fn round_robin_cycles_regardless_of_load() {
        loads_view(|loads| {
            let mut rr = RoundRobin { next: 0 };
            let j = job(1.0, 4.0, 1.0);
            let picks: Vec<usize> = (0..5).map(|_| rr.choose(&j, loads)).collect();
            assert_eq!(picks, vec![0, 1, 0, 1, 0]);
        });
    }

    #[test]
    fn least_laxity_fit_prefers_the_emptier_faster_machine() {
        loads_view(|loads| {
            // Machine 1 has c_lo = 2 vs machine 0's c_lo = 1: double the
            // guaranteed drain rate means strictly larger fit laxity.
            let mut llf = LeastLaxityFit;
            let j = job(1.0, 4.0, 1.0);
            assert!(loads
                .fit_laxity(1, &j)
                .total_cmp(&loads.fit_laxity(0, &j))
                .is_gt());
            assert_eq!(llf.choose(&j, loads), 1);
        });
    }

    #[test]
    fn p2c_is_deterministic_for_a_seed_and_varies_across_seeds() {
        loads_view(|loads| {
            let j = job(1.0, 4.0, 1.0);
            let picks = |seed: u64| -> Vec<usize> {
                let mut p = PowerOfTwo::from_seed(seed);
                (0..64).map(|_| p.choose(&j, loads)).collect()
            };
            let s0 = derive_seed(SEED_STREAM_FLEET, 0.0, 0);
            assert_eq!(picks(s0), picks(s0), "same seed, same decision stream");
            let all: Vec<Vec<usize>> = (0..8)
                .map(|r| picks(derive_seed(SEED_STREAM_FLEET, 0.0, r)))
                .collect();
            assert!(
                all.iter().any(|p| p != &all[0]),
                "distinct seeds should disagree somewhere"
            );
        });
    }

    #[test]
    fn p2c_picks_the_larger_laxity_of_its_two_probes() {
        loads_view(|loads| {
            // With M = 2 every p2c draw either repeats one machine (the
            // choice is forced) or probes both — and then machine 1's
            // strictly larger laxity must win.
            let j = job(1.0, 4.0, 1.0);
            let mut p = PowerOfTwo::from_seed(7);
            for _ in 0..128 {
                let pick = p.choose(&j, loads);
                assert!(pick < loads.machines());
            }
            // Statistically machine 1 must dominate: it wins every mixed
            // probe and half of the doubles.
            let mut p = PowerOfTwo::from_seed(11);
            let ones = (0..256).filter(|_| p.choose(&j, loads) == 1).count();
            assert!(ones > 128, "machine 1 won only {ones}/256 picks");
        });
    }
}
