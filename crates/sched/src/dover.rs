//! The Dover family: Koren–Shasha's overload scheduler and the paper's
//! V-Dover variant share one engine, [`DoverFamily`], differing only in
//!
//! 1. the **capacity estimate** used for laxity computations — Dover assumes
//!    a constant rate `ĉ` (it was designed for constant capacity; §IV of the
//!    paper evaluates it with several `ĉ` values), V-Dover uses the class
//!    bound `c_lo` (*conservative laxity*, Definition 5);
//! 2. the **value threshold** `β` of the zero-laxity handler — Dover's
//!    optimal constant-capacity threshold is `1 + √k`, V-Dover's is
//!    `β* = 1 + √(k / f(k,δ))` (Theorem 3);
//! 3. the **supplement queue** — V-Dover parks jobs that lose the
//!    zero-conservative-laxity arbitration in `Qsupp` and revives them when
//!    the processor drains (the realised capacity may exceed `c_lo`, so they
//!    may still make their deadlines); Dover abandons them, which is correct
//!    under constant capacity where a zero-laxity loser can never finish.
//!
//! The engine implements the paper's procedures A–D verbatim: the three
//! queues `Qedf` / `Qother` / `Qsupp`, the `cSlack` ledger with its
//! `(T, t_insert, cSlack_insert)` tuples, and the three interrupt handlers.

use crate::ready::{DeadlineMap, DeadlineQueue, RankedQueue};
use cloudsched_core::{approx_ge, CoreError, JobId, Time};
use cloudsched_obs::{DecisionAction, QueueKind, TraceEvent};
use cloudsched_sim::{Decision, Scheduler, SimContext};

/// Byte-stable rendering of an `f64` for snapshot blobs: the IEEE-754 bit
/// pattern in fixed-width hex. Round-trips every value exactly, including
/// the `+∞` that `cslack` holds while no regular job is committed.
fn f64_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn parse_f64_hex(s: &str) -> Result<f64, CoreError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| corrupt(format!("bad f64 bits `{s}`")))
}

fn parse_u64(s: &str) -> Result<u64, CoreError> {
    s.parse().map_err(|_| corrupt(format!("bad integer `{s}`")))
}

fn corrupt(reason: String) -> CoreError {
    // Scheduler blobs are embedded in a journal snapshot record; the
    // recovery driver rewrites `line` with the record's position.
    CoreError::CorruptJournal { line: 0, reason }
}

/// Which constant future-capacity assumption drives laxity computations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CapacityEstimate {
    /// The declared class lower bound `c_lo` — V-Dover's conservative
    /// estimate (always safe: real capacity is never lower).
    ClassLow,
    /// A fixed rate `ĉ` — the estimate the paper hands to Dover in §IV.
    Fixed(f64),
}

impl CapacityEstimate {
    fn rate(self, ctx: &SimContext<'_>) -> f64 {
        match self {
            CapacityEstimate::ClassLow => ctx.c_lo(),
            CapacityEstimate::Fixed(c) => c,
        }
    }
}

/// Order in which parked supplement jobs are revived.
///
/// Every order resolves ties deterministically in favour of the **lowest**
/// [`JobId`] (the shared tie-break rule of [`crate::ready`]): two parked
/// jobs with equal deadlines — or equal values under
/// [`SupplementOrder::HighestValue`] — revive in id order regardless of
/// when they were parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupplementOrder {
    /// Latest deadline first — the paper's choice (most time left to finish).
    LatestDeadline,
    /// Earliest deadline first (EDF-style ablation).
    EarliestDeadline,
    /// Highest value first (greedy ablation).
    HighestValue,
}

/// Full configuration of a [`DoverFamily`] scheduler.
#[derive(Debug, Clone)]
pub struct FamilyConfig {
    /// Display name for reports.
    pub name: String,
    /// Laxity capacity assumption.
    pub estimate: CapacityEstimate,
    /// Zero-laxity arbitration threshold `β > 1`.
    pub beta: f64,
    /// Keep zero-laxity losers in a supplement queue (V-Dover) instead of
    /// abandoning them (Dover).
    pub supplement: bool,
    /// Revival order of the supplement queue.
    pub supplement_order: SupplementOrder,
}

/// Processor status flag of procedure A: `reg`, `supp` or `idle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flag {
    Idle,
    Reg,
    Supp,
}

/// Per-entry bookkeeping of `Qedf`: what a recently EDF-preempted regular
/// job needs to restore `cSlack` (procedure C lines 2–3, 14–15). The job id
/// and deadline live in the [`DeadlineMap`] key.
#[derive(Debug, Clone, Copy)]
struct EdfMeta {
    t_insert: Time,
    cslack_insert: f64,
}

/// The shared Dover/V-Dover engine. Construct through [`Dover`] or
/// [`crate::VDover`] for the two published algorithms, or directly from a
/// [`FamilyConfig`] for ablations.
#[derive(Debug, Clone)]
pub struct DoverFamily {
    cfg: FamilyConfig,
    /// Recently EDF-scheduled regular jobs, earliest deadline first, with
    /// their `cSlack` restoration tuples as payload. Indexed: front pops,
    /// arbitrary removals and membership are `O(log n)` (the sorted-`Vec`
    /// predecessor paid `O(n)` per front pop / removal inside the event
    /// loop, i.e. `O(n²)` per run).
    qedf: DeadlineMap<EdfMeta>,
    /// Other regular jobs, earliest deadline first.
    qother: DeadlineQueue,
    /// Supplement jobs (only populated when `cfg.supplement`), ranked by
    /// the configured revival order so every pop is `O(log n)` instead of
    /// the predecessor's full scan.
    qsupp: RankedQueue,
    /// Slack available for new work under the capacity estimate (seconds;
    /// may be `+∞` while no regular job is committed).
    cslack: f64,
    flag: Flag,
    /// Per-job timer generation: stale zero-laxity timers are ignored.
    generation: Vec<u64>,
}

impl DoverFamily {
    /// Builds a scheduler from an explicit configuration.
    ///
    /// # Panics
    /// If `beta <= 1` or a fixed estimate is non-positive.
    pub fn from_config(cfg: FamilyConfig) -> Self {
        assert!(cfg.beta > 1.0, "β must exceed 1, got {}", cfg.beta);
        if let CapacityEstimate::Fixed(c) = cfg.estimate {
            assert!(c > 0.0, "capacity estimate must be positive, got {c}");
        }
        DoverFamily {
            cfg,
            qedf: DeadlineMap::new(),
            qother: DeadlineQueue::new(),
            qsupp: RankedQueue::new(),
            cslack: f64::INFINITY,
            flag: Flag::Idle,
            generation: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FamilyConfig {
        &self.cfg
    }

    // ---- snapshot codec -------------------------------------------------

    /// Serializes the engine's mutable state (queues, `cSlack`, flag, timer
    /// generations) into a byte-stable blob. Every `f64` is rendered as its
    /// IEEE-754 bit pattern, so the round-trip is exact; the configuration
    /// is *not* included — recovery reconstructs it from the journal header
    /// and [`DoverFamily::restore_blob`] only fills in the mutable state.
    pub fn snapshot_blob(&self) -> String {
        let flag = match self.flag {
            Flag::Idle => 'I',
            Flag::Reg => 'R',
            Flag::Supp => 'S',
        };
        let qedf: Vec<String> = self
            .qedf
            .iter()
            .map(|(d, j, m)| {
                format!(
                    "{}:{}:{}:{}",
                    f64_hex(d.as_f64()),
                    j.0,
                    f64_hex(m.t_insert.as_f64()),
                    f64_hex(m.cslack_insert)
                )
            })
            .collect();
        let qother: Vec<String> = self
            .qother
            .iter()
            .map(|(d, j)| format!("{}:{}", f64_hex(d.as_f64()), j.0))
            .collect();
        let qsupp: Vec<String> = self
            .qsupp
            .iter()
            .map(|(r, j)| format!("{}:{}", f64_hex(r), j.0))
            .collect();
        let gen: Vec<String> = self.generation.iter().map(|g| g.to_string()).collect();
        format!(
            "dover1|{flag}|{}|{}|{}|{}|{}",
            f64_hex(self.cslack),
            qedf.join(","),
            qother.join(","),
            qsupp.join(","),
            gen.join(",")
        )
    }

    /// Restores the mutable state captured by [`DoverFamily::snapshot_blob`]
    /// onto this instance (whose configuration must match the one that took
    /// the snapshot). All existing mutable state is replaced.
    pub fn restore_blob(&mut self, blob: &str) -> Result<(), CoreError> {
        let parts: Vec<&str> = blob.split('|').collect();
        if parts.len() != 7 || parts[0] != "dover1" {
            return Err(corrupt(format!(
                "expected 7-part dover1 scheduler blob, got {} parts",
                parts.len()
            )));
        }
        let flag = match parts[1] {
            "I" => Flag::Idle,
            "R" => Flag::Reg,
            "S" => Flag::Supp,
            other => return Err(corrupt(format!("unknown processor flag `{other}`"))),
        };
        let cslack = parse_f64_hex(parts[2])?;
        let mut qedf = DeadlineMap::new();
        for item in parts[3].split(',').filter(|s| !s.is_empty()) {
            let f: Vec<&str> = item.split(':').collect();
            if f.len() != 4 {
                return Err(corrupt(format!("bad qedf entry `{item}`")));
            }
            qedf.insert(
                Time::new(parse_f64_hex(f[0])?),
                JobId(parse_u64(f[1])?),
                EdfMeta {
                    t_insert: Time::new(parse_f64_hex(f[2])?),
                    cslack_insert: parse_f64_hex(f[3])?,
                },
            );
        }
        let mut qother = DeadlineQueue::new();
        for item in parts[4].split(',').filter(|s| !s.is_empty()) {
            let f: Vec<&str> = item.split(':').collect();
            if f.len() != 2 {
                return Err(corrupt(format!("bad qother entry `{item}`")));
            }
            qother.insert(Time::new(parse_f64_hex(f[0])?), JobId(parse_u64(f[1])?));
        }
        let mut qsupp = RankedQueue::new();
        for item in parts[5].split(',').filter(|s| !s.is_empty()) {
            let f: Vec<&str> = item.split(':').collect();
            if f.len() != 2 {
                return Err(corrupt(format!("bad qsupp entry `{item}`")));
            }
            qsupp.insert(parse_f64_hex(f[0])?, JobId(parse_u64(f[1])?));
        }
        let mut generation = Vec::new();
        for item in parts[6].split(',').filter(|s| !s.is_empty()) {
            generation.push(parse_u64(item)?);
        }
        self.qedf = qedf;
        self.qother = qother;
        self.qsupp = qsupp;
        self.cslack = cslack;
        self.flag = flag;
        self.generation = generation;
        Ok(())
    }

    // ---- small helpers --------------------------------------------------

    fn rate(&self, ctx: &SimContext<'_>) -> f64 {
        self.cfg.estimate.rate(ctx)
    }

    /// Estimated remaining processing time `t_c(T, ĉ)`.
    fn tc(&self, ctx: &SimContext<'_>, job: JobId) -> f64 {
        ctx.remaining(job) / self.rate(ctx)
    }

    /// Estimated laxity (conservative laxity when the estimate is `c_lo`).
    fn claxity(&self, ctx: &SimContext<'_>, job: JobId) -> f64 {
        (ctx.job(job).deadline - ctx.now()).as_f64() - self.tc(ctx, job)
    }

    fn gen_mut(&mut self, job: JobId) -> &mut u64 {
        let i = job.index();
        if i >= self.generation.len() {
            self.generation.resize(i + 1, 0);
        }
        &mut self.generation[i]
    }

    fn gen(&self, job: JobId) -> u64 {
        self.generation.get(job.index()).copied().unwrap_or(0)
    }

    /// Invalidates any pending zero-laxity timer of `job`.
    fn bump(&mut self, job: JobId) {
        *self.gen_mut(job) += 1;
    }

    /// Instrumentation (Definition 5): a freshly-released, individually-
    /// admissible job dispatched at its release instant must have
    /// non-negative conservative laxity — at release the two quantities
    /// coincide, so a violation means the kernel clock or the slack
    /// bookkeeping drifted.
    fn debug_assert_dispatch_laxity(&self, ctx: &SimContext<'_>, job: JobId) {
        if cfg!(debug_assertions) {
            let j = ctx.job(job);
            let rate = self.cfg.estimate.rate(ctx);
            if rate > 0.0 && j.individually_admissible(rate) && ctx.now().approx_eq(j.release) {
                debug_assert!(
                    ctx.laxity_with_rate(job, rate).as_f64() >= -1e-9,
                    "dispatched {job} with negative conservative laxity at release"
                );
            }
        }
    }

    /// Inserts `job` into `Qother` and arms its zero-laxity interrupt at
    /// `d − p_r/ĉ` (clamped to now if already non-positive).
    fn insert_qother(&mut self, ctx: &mut SimContext<'_>, job: JobId) {
        let d = ctx.job(job).deadline;
        let t0 = Time::new(d.as_f64() - self.tc(ctx, job));
        let fresh = self.qother.insert(d, job);
        debug_assert!(fresh, "{job} double-admitted to Qother");
        self.bump(job);
        let token = self.gen(job);
        ctx.set_timer(t0, job, token);
        if ctx.tracing_enabled() {
            ctx.trace(TraceEvent::QueueDepth {
                t: ctx.now(),
                queue: QueueKind::Other,
                depth: self.qother.len(),
            });
        }
        if ctx.provenance_enabled() {
            // Rejected-for-now: the job lost its arbitration and waits in
            // Qother for its zero-laxity interrupt. Laxity is stamped under
            // the scheduler's own capacity estimate — the number the
            // decision actually used.
            let flip = self.claxity(ctx, job) <= 0.0; // lint: allow(L001) — flip is defined by exact sign, not tolerance
            ctx.trace_decision(
                DecisionAction::Reject,
                job,
                self.rate(ctx),
                self.qother.len(),
                flip,
            );
        }
    }

    /// The supplement-queue rank of `job` under the configured revival
    /// order. Ranks derive from immutable job attributes, so the same rank
    /// is recomputable at insert, remove and pop time.
    fn supplement_rank(&self, ctx: &SimContext<'_>, job: JobId) -> f64 {
        match self.cfg.supplement_order {
            SupplementOrder::LatestDeadline | SupplementOrder::EarliestDeadline => {
                ctx.job(job).deadline.as_f64()
            }
            SupplementOrder::HighestValue => ctx.job(job).value,
        }
    }

    /// Parks `job` in the supplement queue, stamping the enqueue.
    fn park_supplement(&mut self, ctx: &mut SimContext<'_>, job: JobId) {
        let fresh = self.qsupp.insert(self.supplement_rank(ctx, job), job);
        debug_assert!(fresh, "{job} double-parked in Qsupp");
        if ctx.tracing_enabled() {
            ctx.trace(TraceEvent::SupplementEnqueue {
                t: ctx.now(),
                job,
                depth: self.qsupp.len(),
            });
        }
        if ctx.provenance_enabled() {
            let flip = self.claxity(ctx, job) <= 0.0; // lint: allow(L001) — flip is defined by exact sign, not tolerance
            ctx.trace_decision(
                DecisionAction::Park,
                job,
                self.rate(ctx),
                self.qsupp.len(),
                flip,
            );
        }
    }

    fn qedf_value(&self, ctx: &SimContext<'_>) -> f64 {
        // (deadline, id)-ascending iteration — the exact order the sorted
        // Vec predecessor summed in, so the float total is bit-identical.
        self.qedf.iter().map(|(_, j, _)| ctx.job(j).value).sum()
    }

    /// Removes `job` from whichever queue holds it (deadline misses and
    /// tolerance-path completions of queued jobs).
    fn remove_everywhere(&mut self, ctx: &SimContext<'_>, job: JobId) {
        let d = ctx.job(job).deadline;
        self.qother.remove(d, job);
        self.qedf.remove(d, job);
        self.qsupp.remove(self.supplement_rank(ctx, job), job);
        self.bump(job);
    }

    /// Pops the next supplement job according to the configured order
    /// (lowest id on rank ties, the documented [`SupplementOrder`] rule).
    fn pop_supplement(&mut self, _ctx: &SimContext<'_>) -> Option<JobId> {
        match self.cfg.supplement_order {
            SupplementOrder::LatestDeadline | SupplementOrder::HighestValue => self.qsupp.pop_max(),
            SupplementOrder::EarliestDeadline => self.qsupp.pop_min(),
        }
    }

    // ---- procedure C: job completion or failure handler -----------------

    fn handler_c(&mut self, ctx: &mut SimContext<'_>) -> Decision {
        let now = ctx.now();
        // Lines C.1–C.9: both queues non-empty — arbitrate between the head
        // of Qother and the head of Qedf under the restored slack.
        if !self.qedf.is_empty() && !self.qother.is_empty() {
            let (d_e, e_job, meta) = self
                .qedf
                .first()
                .map(|(d, j, m)| (d, j, *m))
                .expect("invariant: qedf checked non-empty above");
            let cs = meta.cslack_insert - (now - meta.t_insert).as_f64();
            let (d_o, o) = self
                .qother
                .earliest()
                .expect("invariant: qother checked non-empty above");
            if d_o < d_e && approx_ge(cs, self.tc(ctx, o)) {
                self.qother.pop_earliest();
                self.bump(o);
                self.cslack = (cs - self.tc(ctx, o)).min(self.claxity(ctx, o));
                self.flag = Flag::Reg;
                return Decision::Run(o);
            }
            self.qedf.pop_first();
            self.cslack = cs;
            self.flag = Flag::Reg;
            return Decision::Run(e_job);
        }
        // Lines C.10–C.12: only Qother.
        if let Some((_, o)) = self.qother.pop_earliest() {
            self.bump(o);
            self.cslack = self.claxity(ctx, o);
            self.flag = Flag::Reg;
            return Decision::Run(o);
        }
        // Lines C.13–C.15: only Qedf.
        if let Some((_, e_job, meta)) = self.qedf.pop_first() {
            self.cslack = meta.cslack_insert - (now - meta.t_insert).as_f64();
            self.flag = Flag::Reg;
            return Decision::Run(e_job);
        }
        // Lines C.16–C.22: no regular work — revive a supplement job or idle.
        self.cslack = f64::INFINITY;
        if let Some(s) = self.pop_supplement(ctx) {
            if ctx.tracing_enabled() {
                ctx.trace(TraceEvent::SupplementRescue {
                    t: now,
                    job: s,
                    depth: self.qsupp.len(),
                });
            }
            if ctx.provenance_enabled() {
                let flip = self.claxity(ctx, s) <= 0.0; // lint: allow(L001) — flip is defined by exact sign, not tolerance
                ctx.trace_decision(
                    DecisionAction::Rescue,
                    s,
                    self.rate(ctx),
                    self.qsupp.len(),
                    flip,
                );
            }
            self.flag = Flag::Supp;
            return Decision::Run(s);
        }
        self.flag = Flag::Idle;
        Decision::Idle
    }
}

impl Scheduler for DoverFamily {
    fn name(&self) -> String {
        self.cfg.name.clone()
    }

    // ---- procedure B: job release handler -------------------------------

    fn on_release(&mut self, ctx: &mut SimContext<'_>, arr: JobId) -> Decision {
        self.bump(arr); // fresh generation for a fresh job
        match (self.flag, ctx.running()) {
            // Lines B.1–B.4: idle processor — run the arrival.
            (Flag::Idle, _) | (_, None) => {
                self.cslack = self.claxity(ctx, arr);
                self.flag = Flag::Reg;
                self.debug_assert_dispatch_laxity(ctx, arr);
                Decision::Run(arr)
            }
            // Lines B.5–B.12: regular job running — EDF arbitration with
            // overload protection through cSlack.
            (Flag::Reg, Some(cur)) => {
                let d_arr = ctx.job(arr).deadline;
                let d_cur = ctx.job(cur).deadline;
                if d_arr < d_cur && approx_ge(self.cslack, self.tc(ctx, arr)) {
                    let fresh = self.qedf.insert(
                        d_cur,
                        cur,
                        EdfMeta {
                            t_insert: ctx.now(),
                            cslack_insert: self.cslack,
                        },
                    );
                    debug_assert!(fresh, "{cur} double-admitted to Qedf");
                    if ctx.tracing_enabled() {
                        ctx.trace(TraceEvent::QueueDepth {
                            t: ctx.now(),
                            queue: QueueKind::Edf,
                            depth: self.qedf.len(),
                        });
                    }
                    self.cslack = (self.cslack - self.tc(ctx, arr)).min(self.claxity(ctx, arr));
                    self.debug_assert_dispatch_laxity(ctx, arr);
                    Decision::Run(arr)
                } else {
                    self.insert_qother(ctx, arr);
                    Decision::Continue
                }
            }
            // Lines B.13–B.15: supplement running — regular work preempts it
            // unconditionally.
            (Flag::Supp, Some(cur)) => {
                if self.cfg.supplement {
                    self.park_supplement(ctx, cur);
                    self.bump(cur);
                }
                self.cslack = self.claxity(ctx, arr);
                self.flag = Flag::Reg;
                self.debug_assert_dispatch_laxity(ctx, arr);
                Decision::Run(arr)
            }
        }
    }

    // ---- procedure C entry points ----------------------------------------

    fn on_completion(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        self.remove_everywhere(ctx, job);
        if ctx.running().is_none() {
            self.handler_c(ctx)
        } else {
            Decision::Continue
        }
    }

    fn on_deadline_miss(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        self.remove_everywhere(ctx, job);
        if ctx.running().is_none() {
            self.handler_c(ctx)
        } else {
            Decision::Continue
        }
    }

    // ---- procedure D: zero (conservative) laxity handler -----------------

    fn on_timer(&mut self, ctx: &mut SimContext<'_>, job: JobId, token: u64) -> Decision {
        if token != self.gen(job) {
            return Decision::Continue; // stale timer
        }
        let d = ctx.job(job).deadline;
        if !self.qother.contains(d, job) {
            return Decision::Continue; // defensive: only Qother jobs arbitrate
        }
        // The estimated laxity of `job` flips sign at this instant: this is
        // the paper's zero-(conservative-)laxity interrupt actually firing.
        if ctx.tracing_enabled() {
            ctx.trace(TraceEvent::ClaxityZero { t: ctx.now(), job });
        }
        self.qother.remove(d, job);
        self.bump(job);
        // Line D.1: compare the urgent job's value against β times the value
        // it would displace (the running regular job plus all of Qedf).
        let mut protected = self.qedf_value(ctx);
        if self.flag == Flag::Reg {
            if let Some(cur) = ctx.running() {
                protected += ctx.job(cur).value;
            }
        }
        if ctx.job(job).value > self.cfg.beta * protected {
            // Lines D.2–D.5: displace everything and run the urgent job.
            if let Some(cur) = ctx.running() {
                match self.flag {
                    Flag::Reg => self.insert_qother(ctx, cur),
                    Flag::Supp => {
                        if self.cfg.supplement {
                            self.park_supplement(ctx, cur);
                            self.bump(cur);
                        }
                    }
                    Flag::Idle => {}
                }
            }
            // Drain in (deadline, id) order — the order the sorted Vec
            // predecessor displaced in, so timer arming order is preserved.
            for (_, displaced, _) in self.qedf.drain() {
                self.insert_qother(ctx, displaced);
            }
            self.cslack = 0.0;
            self.flag = Flag::Reg;
            Decision::Run(job)
        } else {
            // Line D.7: not valuable enough — park (V-Dover) or abandon
            // (Dover: under constant capacity a zero-laxity loser can never
            // finish, so the engine books it as explicitly given up).
            if self.cfg.supplement {
                self.park_supplement(ctx, job);
            } else {
                ctx.abandon(job);
            }
            Decision::Continue
        }
    }

    fn snapshot_state(&self) -> Option<String> {
        Some(self.snapshot_blob())
    }

    fn restore_state(&mut self, state: &str) -> Result<(), CoreError> {
        self.restore_blob(state)
    }
}

/// Koren & Shasha's Dover with a capacity estimate `ĉ`, exactly as evaluated
/// in the paper's §IV: laxity computed from `ĉ`, threshold `β = 1 + √k`,
/// zero-laxity losers abandoned (no supplement queue).
#[derive(Debug, Clone)]
pub struct Dover(DoverFamily);

impl Dover {
    /// Dover for importance-ratio bound `k`, computing laxity with `ĉ`.
    pub fn new(k: f64, c_estimate: f64) -> Self {
        let beta = cloudsched_analysis::bounds::dover_beta(k);
        Dover::with_beta(beta, c_estimate)
    }

    /// Dover with an explicit threshold `β` and capacity estimate `ĉ`.
    pub fn with_beta(beta: f64, c_estimate: f64) -> Self {
        Dover(DoverFamily::from_config(FamilyConfig {
            name: format!("Dover(c={c_estimate})"),
            estimate: CapacityEstimate::Fixed(c_estimate),
            beta,
            supplement: false,
            supplement_order: SupplementOrder::LatestDeadline,
        }))
    }

    /// Access to the underlying engine (for ablation inspection).
    pub fn family(&self) -> &DoverFamily {
        &self.0
    }
}

impl Scheduler for Dover {
    fn name(&self) -> String {
        self.0.name()
    }
    fn on_release(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        self.0.on_release(ctx, job)
    }
    fn on_completion(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        self.0.on_completion(ctx, job)
    }
    fn on_deadline_miss(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        self.0.on_deadline_miss(ctx, job)
    }
    fn on_timer(&mut self, ctx: &mut SimContext<'_>, job: JobId, token: u64) -> Decision {
        self.0.on_timer(ctx, job, token)
    }
    fn snapshot_state(&self) -> Option<String> {
        self.0.snapshot_state()
    }
    fn restore_state(&mut self, state: &str) -> Result<(), CoreError> {
        self.0.restore_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_capacity::{Constant, PiecewiseConstant};
    use cloudsched_core::{approx_eq, JobSet};
    use cloudsched_sim::{audit::audit_report, simulate, RunOptions};

    #[test]
    fn underloaded_behaves_like_edf() {
        let jobs = JobSet::from_tuples(&[
            (0.0, 9.0, 1.0, 1.0),
            (0.0, 3.0, 1.0, 1.0),
            (0.0, 6.0, 1.0, 1.0),
        ])
        .unwrap();
        let cap = Constant::unit();
        let r = simulate(&jobs, &cap, &mut Dover::new(4.0, 1.0), RunOptions::full());
        assert_eq!(r.completed, 3);
        let order: Vec<JobId> = r.schedule.unwrap().slices().iter().map(|s| s.job).collect();
        assert_eq!(order, vec![JobId(1), JobId(2), JobId(0)]);
    }

    #[test]
    fn urgent_valuable_job_preempts_through_zero_laxity() {
        // Job 0 runs (long, low value, cSlack only 1). Job 1 arrives with
        // zero laxity and huge value: EDF admission fails (tc=4 > cSlack=1),
        // so its zero-laxity interrupt fires immediately and the value
        // comparison of procedure D displaces job 0.
        let jobs = JobSet::from_tuples(&[
            (0.0, 11.0, 10.0, 1.0),
            (1.0, 5.0, 4.0, 100.0), // laxity (5-1) - 4 = 0 at release
        ])
        .unwrap();
        let cap = Constant::unit();
        let r = simulate(&jobs, &cap, &mut Dover::new(100.0, 1.0), RunOptions::full());
        assert!(
            r.outcome.get(JobId(1)).is_completed(),
            "urgent job must win"
        );
        assert!(approx_eq(r.value, 100.0 + 1.0) || approx_eq(r.value, 100.0));
        audit_report(&jobs, &cap, &r).unwrap();
    }

    #[test]
    fn cheap_urgent_job_is_abandoned() {
        // Same shape but the urgent job is worthless: Dover lets it die and
        // finishes the running job.
        let jobs = JobSet::from_tuples(&[
            (0.0, 13.0, 10.0, 100.0), // cSlack = 3 < tc of the arrival
            (1.0, 5.0, 4.0, 1.0),
        ])
        .unwrap();
        let cap = Constant::unit();
        let r = simulate(&jobs, &cap, &mut Dover::new(100.0, 1.0), RunOptions::full());
        assert!(r.outcome.get(JobId(0)).is_completed());
        assert!(!r.outcome.get(JobId(1)).is_completed());
        // The loser was explicitly abandoned (procedure D, no supplement
        // queue), never executed — and the report books it as an
        // abandonment, not a passive expiry.
        assert_eq!(r.abandoned, 1);
        assert_eq!(r.expired, 0);
        assert!(approx_eq(r.abandoned_value, 1.0));
        assert_eq!(r.schedule.unwrap().slices_of(JobId(1)).count(), 0);
    }

    #[test]
    fn edf_preemption_guarded_by_cslack() {
        // Running job 0 has claxity 10-0-8 = 2 at t=0 (cSlack=2).
        // Job 1 (d=6 < 10, tc=1 <= 2): EDF-preempts, goes fine.
        // Job 2 (d=5 < 10 but tc=4 > remaining slack): must NOT preempt.
        let jobs = JobSet::from_tuples(&[
            (0.0, 10.0, 8.0, 1.0),
            (0.5, 6.0, 1.0, 1.0),
            (0.6, 5.0, 4.0, 1.0),
        ])
        .unwrap();
        let cap = Constant::unit();
        let r = simulate(&jobs, &cap, &mut Dover::new(7.0, 1.0), RunOptions::full());
        // Job 1 preempts job 0; job 2 is refused (would overload) and,
        // being worthless relative to the protected set, dies.
        assert!(r.outcome.get(JobId(0)).is_completed(), "protected job 0");
        assert!(r.outcome.get(JobId(1)).is_completed(), "EDF-admitted job 1");
        assert!(!r.outcome.get(JobId(2)).is_completed());
        audit_report(&jobs, &cap, &r).unwrap();
    }

    #[test]
    fn dover_with_underestimate_wastes_high_capacity() {
        // Capacity is 4 but Dover thinks 1: it abandons a job that is
        // actually completable. (This is the V-Dover motivation.)
        let jobs = JobSet::from_tuples(&[
            (0.0, 4.0, 4.0, 10.0), // at ĉ=1 claxity 0; actually easy at c=4
            (0.0, 4.0, 4.1, 9.0),
        ])
        .unwrap();
        let cap = PiecewiseConstant::constant(4.0)
            .unwrap()
            .with_declared_bounds(1.0, 4.0)
            .unwrap();
        let r = simulate(&jobs, &cap, &mut Dover::new(2.0, 1.0), RunOptions::full());
        // Both jobs could complete at rate 4 (workloads 4+4.1 < 16 available
        // before the common deadline). Dover's pessimism abandons one.
        assert!(r.completed < 2, "Dover(ĉ=1) should fail to exploit c=4");
    }

    #[test]
    #[should_panic(expected = "β must exceed 1")]
    fn beta_must_exceed_one() {
        DoverFamily::from_config(FamilyConfig {
            name: "bad".into(),
            estimate: CapacityEstimate::ClassLow,
            beta: 1.0,
            supplement: true,
            supplement_order: SupplementOrder::LatestDeadline,
        });
    }

    #[test]
    fn handler_c_arbitrates_qedf_against_qother() {
        // Builds the exact situation of procedure C lines 1–9: at a
        // completion, both Qedf and Qother are non-empty. The run below
        // exercises BOTH outcomes: first the Qedf head wins (the Qother head
        // has a later deadline), later the Qother head wins (earlier deadline
        // than the Qedf head and enough restored slack).
        let jobs = JobSet::from_tuples(&[
            (0.0, 20.0, 6.0, 1.0), // J0: first on the processor
            (1.0, 5.0, 2.0, 1.0),  // J1: EDF-preempts J0 -> J0 to Qedf
            (2.0, 4.0, 0.5, 1.0),  // J2: EDF-preempts J1 -> J1 to Qedf
            (2.1, 18.0, 2.0, 1.0), // J3: later deadline -> Qother
        ])
        .unwrap();
        let cap = Constant::unit();
        let r = simulate(&jobs, &cap, &mut Dover::new(4.0, 1.0), RunOptions::full());
        // Everything completes; in particular J3 must be admitted from
        // Qother *between* the two Qedf resumptions (C.5–C.7), and J0 must
        // resume last with its restored cSlack (C.13–C.15).
        assert_eq!(r.completed, 4, "outcome: {:?}", r.outcome);
        let order: Vec<JobId> = r
            .schedule
            .as_ref()
            .unwrap()
            .slices()
            .iter()
            .map(|s| s.job)
            .collect();
        assert_eq!(
            order,
            vec![JobId(0), JobId(1), JobId(2), JobId(1), JobId(3), JobId(0)],
            "expected C-handler arbitration order"
        );
        audit_report(&jobs, &cap, &r).unwrap();
    }

    #[test]
    fn config_accessors() {
        let d = Dover::new(4.0, 2.5);
        assert_eq!(d.name(), "Dover(c=2.5)");
        assert!(approx_eq(d.family().config().beta, 3.0));
        assert!(!d.family().config().supplement);
    }

    #[test]
    fn snapshot_blob_round_trips_mid_run_state() {
        let cfg = FamilyConfig {
            name: "snap".into(),
            estimate: CapacityEstimate::ClassLow,
            beta: 2.0,
            supplement: true,
            supplement_order: SupplementOrder::LatestDeadline,
        };
        let mut a = DoverFamily::from_config(cfg.clone());
        // Hand-build a mid-run state covering every serialized field,
        // including the +∞ cslack a committed-free processor holds.
        a.qedf.insert(
            Time::new(5.0),
            JobId(2),
            EdfMeta {
                t_insert: Time::new(1.25),
                cslack_insert: 2.5,
            },
        );
        a.qedf.insert(
            Time::new(5.0),
            JobId(7),
            EdfMeta {
                t_insert: Time::new(0.5),
                cslack_insert: f64::INFINITY,
            },
        );
        a.qother.insert(Time::new(7.0), JobId(3));
        a.qsupp.insert(4.0, JobId(1));
        a.qsupp.insert(4.0, JobId(0));
        a.cslack = 0.1 + 0.2; // a value with no short decimal rendering
        a.flag = Flag::Reg;
        a.generation = vec![0, 3, 1];
        let blob = a.snapshot_blob();
        let mut b = DoverFamily::from_config(cfg);
        b.restore_blob(&blob).unwrap();
        assert_eq!(b.snapshot_blob(), blob, "round-trip must be exact");
        assert_eq!(b.cslack.to_bits(), a.cslack.to_bits());
        assert_eq!(b.flag, Flag::Reg);
        assert_eq!(b.generation, vec![0, 3, 1]);
        assert_eq!(b.qedf.len(), 2);
        assert_eq!(b.qother.len(), 1);
        assert_eq!(b.qsupp.len(), 2);
        // Fresh state serializes and restores too (empty sections).
        let fresh = Dover::new(4.0, 1.0);
        let blob = fresh.snapshot_state().expect("dover supports snapshots");
        let mut back = Dover::new(4.0, 1.0);
        back.restore_state(&blob).unwrap();
        assert_eq!(back.snapshot_state().unwrap(), blob);
        // Garbage is rejected, not misparsed.
        assert!(b.restore_blob("nonsense").is_err());
        assert!(b.restore_blob("dover1|X|0|||||").is_err());
    }
}
