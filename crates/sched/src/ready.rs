//! Shared ready-queue structure: a set of jobs ordered by deadline.

use cloudsched_core::{JobId, Time};
use std::collections::BTreeSet;

/// A set of ready jobs ordered by `(deadline, id)` — supports earliest- and
/// latest-deadline queries plus arbitrary removal, all `O(log n)`.
///
/// The deadline is stored in the key so callers must pass the same deadline
/// at insert and remove time (deadlines are immutable job attributes, so
/// this is natural).
#[derive(Debug, Clone, Default)]
pub struct DeadlineQueue {
    set: BTreeSet<(Time, JobId)>,
}

impl DeadlineQueue {
    /// Empty queue.
    pub fn new() -> Self {
        DeadlineQueue {
            set: BTreeSet::new(),
        }
    }

    /// Inserts a job; returns `false` if it was already present.
    pub fn insert(&mut self, deadline: Time, job: JobId) -> bool {
        self.set.insert((deadline, job))
    }

    /// Removes a job; returns `true` if it was present.
    pub fn remove(&mut self, deadline: Time, job: JobId) -> bool {
        self.set.remove(&(deadline, job))
    }

    /// `true` if the job is queued.
    pub fn contains(&self, deadline: Time, job: JobId) -> bool {
        self.set.contains(&(deadline, job))
    }

    /// The job with the earliest deadline.
    pub fn earliest(&self) -> Option<(Time, JobId)> {
        self.set.first().copied()
    }

    /// The job with the latest deadline.
    pub fn latest(&self) -> Option<(Time, JobId)> {
        self.set.last().copied()
    }

    /// Removes and returns the earliest-deadline job.
    pub fn pop_earliest(&mut self) -> Option<(Time, JobId)> {
        self.set.pop_first()
    }

    /// Removes and returns the latest-deadline job.
    pub fn pop_latest(&mut self) -> Option<(Time, JobId)> {
        self.set.pop_last()
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterates `(deadline, job)` in deadline order.
    pub fn iter(&self) -> impl Iterator<Item = (Time, JobId)> + '_ {
        self.set.iter().copied()
    }

    /// Removes every job and returns them in deadline order.
    pub fn drain(&mut self) -> Vec<(Time, JobId)> {
        let out: Vec<_> = self.set.iter().copied().collect();
        self.set.clear();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> Time {
        Time::new(x)
    }

    #[test]
    fn ordering_by_deadline_then_id() {
        let mut q = DeadlineQueue::new();
        q.insert(t(3.0), JobId(0));
        q.insert(t(1.0), JobId(1));
        q.insert(t(1.0), JobId(2));
        assert_eq!(q.earliest(), Some((t(1.0), JobId(1))));
        assert_eq!(q.latest(), Some((t(3.0), JobId(0))));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn pop_both_ends() {
        let mut q = DeadlineQueue::new();
        for (d, i) in [(5.0, 0), (2.0, 1), (9.0, 2)] {
            q.insert(t(d), JobId(i));
        }
        assert_eq!(q.pop_earliest(), Some((t(2.0), JobId(1))));
        assert_eq!(q.pop_latest(), Some((t(9.0), JobId(2))));
        assert_eq!(q.pop_earliest(), Some((t(5.0), JobId(0))));
        assert!(q.pop_earliest().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn insert_remove_contains() {
        let mut q = DeadlineQueue::new();
        assert!(q.insert(t(1.0), JobId(0)));
        assert!(!q.insert(t(1.0), JobId(0)), "duplicate insert");
        assert!(q.contains(t(1.0), JobId(0)));
        assert!(q.remove(t(1.0), JobId(0)));
        assert!(!q.remove(t(1.0), JobId(0)), "double remove");
        assert!(!q.contains(t(1.0), JobId(0)));
    }

    #[test]
    fn drain_returns_deadline_order() {
        let mut q = DeadlineQueue::new();
        q.insert(t(3.0), JobId(0));
        q.insert(t(1.0), JobId(1));
        let drained = q.drain();
        assert_eq!(drained, vec![(t(1.0), JobId(1)), (t(3.0), JobId(0))]);
        assert!(q.is_empty());
    }
}
