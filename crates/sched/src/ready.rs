//! Shared ready-queue structures: sets of jobs ordered by deadline or by an
//! arbitrary scalar rank, with every per-operation cost `O(log n)`.
//!
//! Three structures live here:
//!
//! * [`DeadlineQueue`] — a plain `(deadline, id)` ordered set (EDF ready
//!   queues, Dover's `Qother`);
//! * [`DeadlineMap`] — the same ordering with a payload per entry (Dover's
//!   `Qedf`, which carries the `cSlack` restoration bookkeeping);
//! * [`RankedQueue`] — jobs ordered by an arbitrary finite `f64` rank
//!   (V-Dover's `Qsupp` under its configurable revival orders).
//!
//! **Tie-break rule:** every pop of every structure resolves equal keys
//! deterministically in favour of the *lowest* [`JobId`] — including
//! [`RankedQueue::pop_max`], which returns the lowest id among the entries
//! sharing the maximum rank. Replay determinism across queue
//! implementations depends on this rule; do not weaken it.

use cloudsched_core::{JobId, Time};
use std::collections::{BTreeMap, BTreeSet};

/// A set of ready jobs ordered by `(deadline, id)` — supports earliest- and
/// latest-deadline queries plus arbitrary removal, all `O(log n)`.
///
/// The deadline is stored in the key so callers must pass the same deadline
/// at insert and remove time (deadlines are immutable job attributes, so
/// this is natural).
#[derive(Debug, Clone, Default)]
pub struct DeadlineQueue {
    set: BTreeSet<(Time, JobId)>,
}

impl DeadlineQueue {
    /// Empty queue.
    pub fn new() -> Self {
        DeadlineQueue {
            set: BTreeSet::new(),
        }
    }

    /// Inserts a job; returns `false` if it was already present.
    pub fn insert(&mut self, deadline: Time, job: JobId) -> bool {
        self.set.insert((deadline, job))
    }

    /// Removes a job; returns `true` if it was present.
    pub fn remove(&mut self, deadline: Time, job: JobId) -> bool {
        self.set.remove(&(deadline, job))
    }

    /// `true` if the job is queued.
    pub fn contains(&self, deadline: Time, job: JobId) -> bool {
        self.set.contains(&(deadline, job))
    }

    /// The job with the earliest deadline.
    pub fn earliest(&self) -> Option<(Time, JobId)> {
        self.set.first().copied()
    }

    /// The job with the latest deadline, preferring the **lowest** id among
    /// jobs sharing that deadline (the module-level tie-break rule).
    pub fn latest(&self) -> Option<(Time, JobId)> {
        let &(top, _) = self.set.last()?;
        self.set.range((top, JobId(0))..).next().copied()
    }

    /// Removes and returns the earliest-deadline job.
    pub fn pop_earliest(&mut self) -> Option<(Time, JobId)> {
        self.set.pop_first()
    }

    /// Removes and returns the latest-deadline job (lowest id on ties).
    pub fn pop_latest(&mut self) -> Option<(Time, JobId)> {
        let entry = self.latest()?;
        self.set.remove(&entry);
        Some(entry)
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterates `(deadline, job)` in deadline order.
    pub fn iter(&self) -> impl Iterator<Item = (Time, JobId)> + '_ {
        self.set.iter().copied()
    }

    /// Removes every job and returns them in deadline order.
    pub fn drain(&mut self) -> Vec<(Time, JobId)> {
        let out: Vec<_> = self.set.iter().copied().collect();
        self.set.clear();
        out
    }
}

/// A `(deadline, id)`-ordered map carrying a payload per entry — the
/// indexed replacement for sorted-`Vec` EDF queues whose entries hold
/// bookkeeping (Dover's `Qedf` and its `cSlack` restoration tuples).
///
/// Iteration and [`DeadlineMap::drain`] yield entries in exactly the order
/// the sorted `Vec` held them (`(deadline, id)` ascending), so replacing a
/// `Vec`-backed queue with this map preserves float summation order and
/// therefore byte-identical traces.
#[derive(Debug, Clone, Default)]
pub struct DeadlineMap<V> {
    map: BTreeMap<(Time, JobId), V>,
}

impl<V> DeadlineMap<V> {
    /// Empty map.
    pub fn new() -> Self {
        DeadlineMap {
            map: BTreeMap::new(),
        }
    }

    /// Inserts an entry; returns `false` (leaving the existing payload in
    /// place) if the job was already present under this deadline.
    pub fn insert(&mut self, deadline: Time, job: JobId, value: V) -> bool {
        match self.map.entry((deadline, job)) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(value);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Removes an entry, returning its payload if it was present.
    pub fn remove(&mut self, deadline: Time, job: JobId) -> Option<V> {
        self.map.remove(&(deadline, job))
    }

    /// The earliest-deadline entry (lowest id on deadline ties).
    pub fn first(&self) -> Option<(Time, JobId, &V)> {
        self.map.iter().next().map(|(&(d, j), v)| (d, j, v))
    }

    /// Removes and returns the earliest-deadline entry.
    pub fn pop_first(&mut self) -> Option<(Time, JobId, V)> {
        self.map.pop_first().map(|((d, j), v)| (d, j, v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates entries in `(deadline, id)` order.
    pub fn iter(&self) -> impl Iterator<Item = (Time, JobId, &V)> {
        self.map.iter().map(|(&(d, j), v)| (d, j, v))
    }

    /// Removes every entry and returns them in `(deadline, id)` order.
    pub fn drain(&mut self) -> Vec<(Time, JobId, V)> {
        std::mem::take(&mut self.map)
            .into_iter()
            .map(|((d, j), v)| (d, j, v))
            .collect()
    }
}

/// A finite `f64` key with a total order (`f64::total_cmp`), so ranked jobs
/// can live in a `BTreeSet`. Ranks are job attributes (deadlines, values) —
/// always finite, so the NaN corner of `total_cmp` never matters.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Rank(f64);

impl Eq for Rank {}

impl PartialOrd for Rank {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rank {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A set of jobs ordered by an arbitrary finite `f64` rank — V-Dover's
/// supplement queue under its configurable revival orders (rank = deadline
/// or rank = value), with `O(log n)` insert, remove and pops at both ends.
///
/// Both [`RankedQueue::pop_min`] and [`RankedQueue::pop_max`] resolve rank
/// ties in favour of the **lowest** [`JobId`] (see the module-level
/// tie-break rule). Callers must pass the same rank at insert and remove
/// time; ranks derive from immutable job attributes, so this is natural.
#[derive(Debug, Clone, Default)]
pub struct RankedQueue {
    set: BTreeSet<(Rank, JobId)>,
}

impl RankedQueue {
    /// Empty queue.
    pub fn new() -> Self {
        RankedQueue {
            set: BTreeSet::new(),
        }
    }

    /// Inserts a job; returns `false` if it was already present.
    pub fn insert(&mut self, rank: f64, job: JobId) -> bool {
        self.set.insert((Rank(rank), job))
    }

    /// Removes a job; returns `true` if it was present.
    pub fn remove(&mut self, rank: f64, job: JobId) -> bool {
        self.set.remove(&(Rank(rank), job))
    }

    /// Removes and returns the job with the lowest rank (lowest id on ties).
    pub fn pop_min(&mut self) -> Option<JobId> {
        self.set.pop_first().map(|(_, j)| j)
    }

    /// Removes and returns the job with the highest rank, preferring the
    /// **lowest** id among entries sharing that rank.
    pub fn pop_max(&mut self) -> Option<JobId> {
        let &(top, _) = self.set.last()?;
        let &(rank, job) = self
            .set
            .range((top, JobId(0))..)
            .next()
            .expect("invariant: the maximal rank group is non-empty");
        self.set.remove(&(rank, job));
        Some(job)
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Iterates `(rank, job)` in `(rank, id)` order — snapshot serialization
    /// walks the queue through this.
    pub fn iter(&self) -> impl Iterator<Item = (f64, JobId)> + '_ {
        self.set.iter().map(|&(Rank(r), j)| (r, j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> Time {
        Time::new(x)
    }

    #[test]
    fn ordering_by_deadline_then_id() {
        let mut q = DeadlineQueue::new();
        q.insert(t(3.0), JobId(0));
        q.insert(t(1.0), JobId(1));
        q.insert(t(1.0), JobId(2));
        assert_eq!(q.earliest(), Some((t(1.0), JobId(1))));
        assert_eq!(q.latest(), Some((t(3.0), JobId(0))));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn pop_both_ends() {
        let mut q = DeadlineQueue::new();
        for (d, i) in [(5.0, 0), (2.0, 1), (9.0, 2)] {
            q.insert(t(d), JobId(i));
        }
        assert_eq!(q.pop_earliest(), Some((t(2.0), JobId(1))));
        assert_eq!(q.pop_latest(), Some((t(9.0), JobId(2))));
        assert_eq!(q.pop_earliest(), Some((t(5.0), JobId(0))));
        assert!(q.pop_earliest().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn insert_remove_contains() {
        let mut q = DeadlineQueue::new();
        assert!(q.insert(t(1.0), JobId(0)));
        assert!(!q.insert(t(1.0), JobId(0)), "duplicate insert");
        assert!(q.contains(t(1.0), JobId(0)));
        assert!(q.remove(t(1.0), JobId(0)));
        assert!(!q.remove(t(1.0), JobId(0)), "double remove");
        assert!(!q.contains(t(1.0), JobId(0)));
    }

    #[test]
    fn drain_returns_deadline_order() {
        let mut q = DeadlineQueue::new();
        q.insert(t(3.0), JobId(0));
        q.insert(t(1.0), JobId(1));
        let drained = q.drain();
        assert_eq!(drained, vec![(t(1.0), JobId(1)), (t(3.0), JobId(0))]);
        assert!(q.is_empty());
    }

    #[test]
    fn deadline_map_orders_and_keeps_payloads() {
        let mut m = DeadlineMap::new();
        assert!(m.insert(t(3.0), JobId(0), "a"));
        assert!(m.insert(t(1.0), JobId(1), "b"));
        assert!(m.insert(t(1.0), JobId(2), "c"));
        assert!(!m.insert(t(1.0), JobId(1), "dup"), "duplicate insert");
        assert_eq!(m.len(), 3);
        assert_eq!(m.first(), Some((t(1.0), JobId(1), &"b")), "lowest id wins");
        assert_eq!(m.pop_first(), Some((t(1.0), JobId(1), "b")));
        assert_eq!(m.remove(t(3.0), JobId(0)), Some("a"));
        assert_eq!(m.remove(t(3.0), JobId(0)), None, "double remove");
        assert_eq!(m.drain(), vec![(t(1.0), JobId(2), "c")]);
        assert!(m.is_empty());
    }

    #[test]
    fn deadline_map_iterates_like_a_sorted_vec() {
        let mut m = DeadlineMap::new();
        for (d, i) in [(5.0, 4), (2.0, 0), (5.0, 1), (9.0, 2)] {
            m.insert(t(d), JobId(i), i);
        }
        let order: Vec<JobId> = m.iter().map(|(_, j, _)| j).collect();
        assert_eq!(order, vec![JobId(0), JobId(1), JobId(4), JobId(2)]);
    }

    #[test]
    fn ranked_queue_pops_prefer_lowest_id_on_ties() {
        let mut q = RankedQueue::new();
        for (r, i) in [(2.0, 5), (2.0, 3), (1.0, 9), (1.0, 4)] {
            assert!(q.insert(r, JobId(i)));
        }
        assert!(!q.insert(2.0, JobId(5)), "duplicate insert");
        // Both ends prefer the lowest id within the extreme rank group.
        assert_eq!(q.pop_max(), Some(JobId(3)));
        assert_eq!(q.pop_min(), Some(JobId(4)));
        assert_eq!(q.pop_max(), Some(JobId(5)));
        assert_eq!(q.pop_min(), Some(JobId(9)));
        assert!(q.pop_max().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn ranked_queue_remove_by_rank_and_id() {
        let mut q = RankedQueue::new();
        q.insert(4.0, JobId(1));
        q.insert(4.0, JobId(2));
        assert!(q.remove(4.0, JobId(1)));
        assert!(!q.remove(4.0, JobId(1)), "double remove");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_max(), Some(JobId(2)));
    }
}
