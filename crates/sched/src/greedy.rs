//! Preemptive greedy schedulers: highest value / highest value density.
//!
//! Locke's experiments (cited by the paper as the motivation for Dover)
//! showed that these myopic policies behave reasonably at light load and
//! collapse in specific overload patterns; they are included as baselines
//! for the Table-I-style comparisons.

use cloudsched_core::JobId;
use cloudsched_sim::{Decision, Scheduler, SimContext};
use std::collections::BTreeSet;

/// Priority key for [`Greedy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GreedyKey {
    /// Prefer the job with the largest value `v_i`.
    Value,
    /// Prefer the job with the largest value density `v_i / p_i`
    /// (Definition 3) computed on *original* workload.
    ValueDensity,
}

/// Preemptive greedy scheduler over the chosen key; ties break toward the
/// earlier deadline, then the smaller id.
#[derive(Debug, Clone)]
pub struct Greedy {
    key: GreedyKey,
    ready: BTreeSet<JobId>,
}

impl Greedy {
    /// Highest-value-first.
    pub fn highest_value() -> Self {
        Greedy {
            key: GreedyKey::Value,
            ready: BTreeSet::new(),
        }
    }

    /// Highest-value-density-first (HVDF).
    pub fn highest_density() -> Self {
        Greedy {
            key: GreedyKey::ValueDensity,
            ready: BTreeSet::new(),
        }
    }

    fn score(&self, ctx: &SimContext<'_>, job: JobId) -> f64 {
        let j = ctx.job(job);
        match self.key {
            GreedyKey::Value => j.value,
            GreedyKey::ValueDensity => j.value_density(),
        }
    }

    fn best_ready(&self, ctx: &SimContext<'_>) -> Option<JobId> {
        self.ready
            .iter()
            .map(|&j| (self.score(ctx, j), ctx.job(j).deadline, j))
            .max_by(|a, b| {
                a.0.total_cmp(&b.0)
                    .then(b.1.cmp(&a.1)) // earlier deadline preferred
                    .then(b.2.cmp(&a.2)) // smaller id preferred
            })
            .map(|(_, _, j)| j)
    }

    fn dispatch_best(&mut self, ctx: &SimContext<'_>) -> Decision {
        match self.best_ready(ctx) {
            Some(j) => {
                self.ready.remove(&j);
                Decision::Run(j)
            }
            None => Decision::Idle,
        }
    }
}

impl Scheduler for Greedy {
    fn name(&self) -> String {
        match self.key {
            GreedyKey::Value => "Greedy(value)".into(),
            GreedyKey::ValueDensity => "HVDF".into(),
        }
    }

    fn on_release(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        match ctx.running() {
            None => Decision::Run(job),
            Some(cur) => {
                if self.score(ctx, job) > self.score(ctx, cur) {
                    self.ready.insert(cur);
                    Decision::Run(job)
                } else {
                    self.ready.insert(job);
                    Decision::Continue
                }
            }
        }
    }

    fn on_completion(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        self.ready.remove(&job);
        if ctx.running().is_some() {
            return Decision::Continue;
        }
        self.dispatch_best(ctx)
    }

    fn on_deadline_miss(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        self.ready.remove(&job);
        if ctx.running().is_some() {
            Decision::Continue
        } else {
            self.dispatch_best(ctx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_capacity::Constant;
    use cloudsched_core::{approx_eq, JobSet};
    use cloudsched_sim::{simulate, RunOptions};

    #[test]
    fn value_greedy_prefers_big_value() {
        let jobs = JobSet::from_tuples(&[(0.0, 3.0, 2.0, 1.0), (0.0, 3.0, 2.0, 10.0)]).unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut Greedy::highest_value(),
            RunOptions::full(),
        );
        // Only one of the two can finish; greedy picks the valuable one.
        assert!(r.outcome.get(JobId(1)).is_completed());
        assert!(approx_eq(r.value, 10.0));
    }

    #[test]
    fn density_greedy_prefers_dense_job() {
        // Job 0: v=6, p=6 (density 1). Job 1: v=4, p=1 (density 4).
        let jobs = JobSet::from_tuples(&[(0.0, 6.0, 6.0, 6.0), (0.0, 6.0, 1.0, 4.0)]).unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut Greedy::highest_density(),
            RunOptions::full(),
        );
        let first = r.schedule.unwrap().slices()[0].job;
        assert_eq!(first, JobId(1));
    }

    #[test]
    fn preempts_on_strictly_better_arrival() {
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 5.0, 1.0), (1.0, 10.0, 1.0, 5.0)]).unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut Greedy::highest_value(),
            RunOptions::full(),
        );
        assert_eq!(r.preemptions, 1);
        assert_eq!(r.completed, 2);
    }

    #[test]
    fn equal_score_does_not_preempt() {
        let jobs = JobSet::from_tuples(&[(0.0, 10.0, 2.0, 3.0), (1.0, 10.0, 2.0, 3.0)]).unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut Greedy::highest_value(),
            RunOptions::full(),
        );
        assert_eq!(r.preemptions, 0);
        assert_eq!(r.completed, 2);
    }

    #[test]
    fn greedy_value_overload_pathology() {
        // A long mediocre-value job beats many short jobs whose *total*
        // value is higher — the classic greedy failure.
        let mut tuples = vec![(0.0, 10.0, 10.0, 11.0)];
        for i in 0..10 {
            let r = i as f64;
            tuples.push((r, r + 1.0, 1.0, 10.0));
        }
        let jobs = JobSet::from_tuples(&tuples).unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut Greedy::highest_value(),
            RunOptions::default(),
        );
        // Greedy sticks with the big job: 11 out of 111.
        assert!(approx_eq(r.value, 11.0));
    }

    #[test]
    fn names() {
        assert_eq!(Greedy::highest_value().name(), "Greedy(value)");
        assert_eq!(Greedy::highest_density().name(), "HVDF");
    }
}
