//! Non-preemptive first-in-first-out.
//!
//! The naive baseline: jobs run to completion (or failure) in release order.
//! Optionally skips jobs that have become hopeless under the conservative
//! capacity estimate, which is the only sensible work-conserving variant
//! under overload.

use cloudsched_core::JobId;
use cloudsched_sim::{Decision, Scheduler, SimContext};
use std::collections::VecDeque;

/// Non-preemptive FIFO.
#[derive(Debug, Clone, Default)]
pub struct Fifo {
    queue: VecDeque<JobId>,
    /// Skip queued jobs that cannot complete even at the maximum capacity.
    skip_hopeless: bool,
}

impl Fifo {
    /// Plain FIFO: runs everything in arrival order, even doomed jobs.
    pub fn new() -> Self {
        Fifo {
            queue: VecDeque::new(),
            skip_hopeless: false,
        }
    }

    /// FIFO that drops queued jobs which cannot finish by their deadline
    /// even if the capacity sat at `c_hi` from now on.
    pub fn skipping_hopeless() -> Self {
        Fifo {
            queue: VecDeque::new(),
            skip_hopeless: true,
        }
    }

    fn next(&mut self, ctx: &SimContext<'_>) -> Decision {
        while let Some(j) = self.queue.pop_front() {
            if self.skip_hopeless {
                let best_case = ctx.laxity_with_rate(j, ctx.c_hi());
                if best_case.is_negative() {
                    continue; // cannot finish even at full capacity
                }
            }
            return Decision::Run(j);
        }
        Decision::Idle
    }
}

impl Scheduler for Fifo {
    fn name(&self) -> String {
        if self.skip_hopeless {
            "FIFO(skip)".into()
        } else {
            "FIFO".into()
        }
    }

    fn on_release(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        if ctx.running().is_none() && self.queue.is_empty() {
            Decision::Run(job)
        } else {
            self.queue.push_back(job);
            Decision::Continue
        }
    }

    fn on_completion(&mut self, ctx: &mut SimContext<'_>, _job: JobId) -> Decision {
        if ctx.running().is_some() {
            return Decision::Continue;
        }
        self.next(ctx)
    }

    fn on_deadline_miss(&mut self, ctx: &mut SimContext<'_>, job: JobId) -> Decision {
        self.queue.retain(|&j| j != job);
        if ctx.running().is_some() {
            Decision::Continue
        } else {
            self.next(ctx)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudsched_capacity::Constant;
    use cloudsched_core::JobSet;
    use cloudsched_sim::{simulate, RunOptions};

    #[test]
    fn strict_arrival_order_no_preemption() {
        let jobs = JobSet::from_tuples(&[
            (0.0, 20.0, 3.0, 1.0),
            (1.0, 5.0, 1.0, 100.0), // urgent and valuable — FIFO ignores that
            (2.0, 20.0, 1.0, 1.0),
        ])
        .unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut Fifo::new(),
            RunOptions::full(),
        );
        assert_eq!(r.preemptions, 0);
        let order: Vec<JobId> = r.schedule.unwrap().slices().iter().map(|s| s.job).collect();
        assert_eq!(order, vec![JobId(0), JobId(1), JobId(2)]);
        assert_eq!(r.completed, 3);
    }

    #[test]
    fn head_of_line_blocking_kills_urgent_jobs() {
        let jobs = JobSet::from_tuples(&[
            (0.0, 20.0, 5.0, 1.0),
            (1.0, 3.0, 1.0, 10.0), // dies in the queue
        ])
        .unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut Fifo::new(),
            RunOptions::default(),
        );
        assert_eq!(r.completed, 1);
        assert!(!r.outcome.get(JobId(1)).is_completed());
    }

    #[test]
    fn hopeless_skipping_saves_time() {
        // Job 1's deadline passes while job 0 runs; plain FIFO would still
        // pointlessly run job 1 if it were queued at dispatch time — the
        // skipping variant jumps straight to job 2.
        let jobs = JobSet::from_tuples(&[
            (0.0, 20.0, 4.0, 1.0),
            (1.0, 4.5, 2.0, 1.0), // at t=4 it has 0.5s left but p=2: hopeless
            (1.0, 20.0, 1.0, 1.0),
        ])
        .unwrap();
        let r = simulate(
            &jobs,
            &Constant::unit(),
            &mut Fifo::skipping_hopeless(),
            RunOptions::full(),
        );
        // Job 1 is never dispatched.
        assert!(r.schedule.unwrap().slices_of(JobId(1)).count() == 0);
        assert!(r.outcome.get(JobId(2)).is_completed());
    }

    #[test]
    fn names_differ() {
        assert_eq!(Fifo::new().name(), "FIFO");
        assert_eq!(Fifo::skipping_hopeless().name(), "FIFO(skip)");
    }
}
