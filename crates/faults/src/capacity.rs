//! Capacity-SLA violations: carving a below-`c_lo` dip into a physical
//! capacity trace while the *declared* class bounds keep promising the
//! original `C(c_lo, c_hi)`.
//!
//! This is the one fault that attacks the physics rather than the
//! monitoring plane: jobs genuinely run slower during the dip, Thm. 2's
//! premises genuinely fail, and the watchdog's re-estimation of the running
//! `c_lo` is the intended recovery path.

use crate::config::CapacityFaultConfig;
use cloudsched_capacity::{CapacityProfile, PiecewiseConstant, Segment};
use cloudsched_core::{CoreError, Time};

/// Rewrites `profile` so that the rate on `[dip_start, dip_end)` is
/// `dip_rate`, keeping the original declared bounds as a (now false) SLA
/// claim.
///
/// Segment boundaries outside the dip window are preserved exactly, so the
/// fault-free prefix of a dipped run is event-for-event identical to the
/// clean run.
///
/// # Errors
/// If the window is empty/backwards, `dip_rate` is not positive and finite,
/// or the rewritten profile fails validation.
pub fn inject_dip(
    profile: &PiecewiseConstant,
    dip_start: f64,
    dip_end: f64,
    dip_rate: f64,
) -> Result<PiecewiseConstant, CoreError> {
    if !(dip_start >= 0.0) || !(dip_end > dip_start) || !dip_rate.is_finite() || !(dip_rate > 0.0) {
        return Err(CoreError::InvalidCapacityProfile {
            reason: format!("invalid dip: [{dip_start}, {dip_end}) at rate {dip_rate}"),
        });
    }
    let (declared_lo, declared_hi) = profile.bounds();
    // Boundary set: original starts plus the dip edges, deduplicated.
    let mut starts: Vec<f64> = profile.segments().map(|s| s.start.as_f64()).collect();
    starts.push(dip_start);
    starts.push(dip_end);
    starts.sort_by(f64::total_cmp);
    starts.dedup_by(|a, b| a.total_cmp(b) == std::cmp::Ordering::Equal);
    let segments: Vec<Segment> = starts
        .into_iter()
        .map(|s| {
            let in_dip = s.total_cmp(&dip_start) != std::cmp::Ordering::Less
                && s.total_cmp(&dip_end) == std::cmp::Ordering::Less;
            Segment {
                start: Time::new(s),
                rate: if in_dip {
                    dip_rate
                } else {
                    profile.rate_at(Time::new(s))
                },
            }
        })
        .collect();
    PiecewiseConstant::new(segments)?.with_asserted_bounds(declared_lo, declared_hi)
}

/// Applies `cfg` to `profile` over `[0, horizon)`: the dip covers
/// `[dip_start_frac, dip_start_frac + dip_len_frac) · horizon` at rate
/// `dip_depth · c_lo` (declared). Returns the profile unchanged when the
/// config is inactive.
///
/// # Errors
/// Propagates [`inject_dip`] failures for degenerate configs.
pub fn apply_capacity_faults(
    profile: &PiecewiseConstant,
    cfg: &CapacityFaultConfig,
    horizon: f64,
) -> Result<PiecewiseConstant, CoreError> {
    if !cfg.active() {
        return Ok(profile.clone());
    }
    let (declared_lo, _) = profile.bounds();
    let dip_start = cfg.dip_start_frac * horizon;
    let dip_end = dip_start + cfg.dip_len_frac * horizon;
    inject_dip(profile, dip_start, dip_end, cfg.dip_depth * declared_lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> PiecewiseConstant {
        PiecewiseConstant::from_durations(&[(10.0, 1.0), (10.0, 4.0), (10.0, 1.0)])
            .unwrap()
            .with_declared_bounds(1.0, 4.0)
            .unwrap()
    }

    #[test]
    fn dip_lowers_the_rate_but_keeps_the_declared_claim() {
        let dipped = inject_dip(&base(), 12.0, 18.0, 0.4).unwrap();
        assert_eq!(
            dipped.bounds(),
            (1.0, 4.0),
            "SLA claim must survive the dip"
        );
        assert_eq!(dipped.rate_at(Time::new(11.0)), 4.0);
        assert_eq!(dipped.rate_at(Time::new(12.0)), 0.4);
        assert_eq!(dipped.rate_at(Time::new(17.9)), 0.4);
        assert_eq!(dipped.rate_at(Time::new(18.0)), 4.0);
        let (obs_lo, _) = dipped.observed_bounds();
        assert_eq!(obs_lo, 0.4);
    }

    #[test]
    fn boundaries_outside_the_dip_are_preserved() {
        let dipped = inject_dip(&base(), 12.0, 18.0, 0.4).unwrap();
        let starts: Vec<f64> = dipped.segments().map(|s| s.start.as_f64()).collect();
        assert_eq!(starts, vec![0.0, 10.0, 12.0, 18.0, 20.0]);
    }

    #[test]
    fn dip_aligned_with_existing_boundaries_does_not_duplicate_them() {
        let dipped = inject_dip(&base(), 10.0, 20.0, 0.5).unwrap();
        let starts: Vec<f64> = dipped.segments().map(|s| s.start.as_f64()).collect();
        assert_eq!(starts, vec![0.0, 10.0, 20.0]);
        assert_eq!(dipped.rate_at(Time::new(15.0)), 0.5);
    }

    #[test]
    fn inactive_config_is_identity() {
        let p = base();
        let out = apply_capacity_faults(&p, &CapacityFaultConfig::none(), 30.0).unwrap();
        assert_eq!(out, p);
    }

    #[test]
    fn config_fractions_scale_with_the_horizon() {
        let cfg = CapacityFaultConfig {
            dip_start_frac: 0.5,
            dip_len_frac: 0.1,
            dip_depth: 0.4,
        };
        let out = apply_capacity_faults(&base(), &cfg, 30.0).unwrap();
        // Dip on [15, 18) at 0.4 * declared c_lo (= 1.0).
        assert_eq!(out.rate_at(Time::new(16.0)), 0.4);
        assert_eq!(out.rate_at(Time::new(14.9)), 4.0);
        assert_eq!(out.rate_at(Time::new(18.1)), 4.0);
        assert_eq!(out.rate_at(Time::new(21.0)), 1.0);
    }

    #[test]
    fn degenerate_windows_are_rejected() {
        assert!(inject_dip(&base(), 5.0, 5.0, 0.4).is_err());
        assert!(inject_dip(&base(), 8.0, 5.0, 0.4).is_err());
        assert!(inject_dip(&base(), 5.0, 8.0, 0.0).is_err());
        assert!(inject_dip(&base(), 5.0, 8.0, f64::NAN).is_err());
    }
}
